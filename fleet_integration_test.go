package servicebroker

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/fleet"
	"servicebroker/internal/frontend"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/metrics"
	"servicebroker/internal/obs"
	"servicebroker/internal/qos"
	"servicebroker/internal/registry"
	"servicebroker/internal/trace"
)

// fleetMember is one pool member the way brokerd deploys it: a traced broker
// behind a gateway, a lease registrar advertising the member's admin-plane
// address, and the admin plane itself for the federator to scrape. The
// backend sits behind a FaultConnector so a test can make the member answer
// error status without killing it.
type fleetMember struct {
	t     *testing.T
	fault *backend.FaultConnector
	b     *broker.Broker
	addr  string

	mu    sync.Mutex
	gw    *broker.Gateway
	rgr   *registry.Registrar
	admin *obs.Server
}

func newFleetMember(t *testing.T, service string) *fleetMember {
	t.Helper()
	fault := &backend.FaultConnector{Inner: &backend.DelayConnector{ServiceName: service, ProcessTime: time.Millisecond}}
	rec := trace.NewRecorder(trace.WithExport(256))
	b, err := broker.New(fault, broker.WithTracer(rec), broker.WithThreshold(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	gw, err := broker.NewGateway("127.0.0.1:0", map[string]*broker.Broker{service: b})
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	admin := obs.New()
	admin.MountRegistry("broker."+service+".", b.Metrics())
	admin.SetRecorder(rec)
	if err := admin.Start("127.0.0.1:0"); err != nil {
		gw.Close()
		b.Close()
		t.Fatal(err)
	}
	m := &fleetMember{t: t, fault: fault, b: b, gw: gw, admin: admin, addr: gw.Addr().String()}
	t.Cleanup(m.close)
	return m
}

func (m *fleetMember) adminAddr() string { return m.admin.Addr().String() }

func (m *fleetMember) register(service, target string, ttl time.Duration) {
	m.t.Helper()
	rgr, err := registry.NewRegistrar(registry.RegistrarConfig{
		Service:   service,
		Addr:      m.addr,
		Target:    target,
		TTL:       ttl,
		Interval:  ttl / 3,
		Load:      m.b.Load,
		AdminAddr: m.adminAddr(),
	})
	if err != nil {
		m.t.Fatal(err)
	}
	m.mu.Lock()
	m.rgr = rgr
	m.mu.Unlock()
}

// crash kills the member like a process death: renewals stop without a
// deregister, the gateway socket closes, and the admin plane stops answering
// the federator's scrapes.
func (m *fleetMember) crash() {
	m.mu.Lock()
	gw, rgr, admin := m.gw, m.rgr, m.admin
	m.gw, m.rgr, m.admin = nil, nil, nil
	m.mu.Unlock()
	if rgr != nil {
		rgr.Abandon()
	}
	if gw != nil {
		gw.Close()
	}
	if admin != nil {
		admin.Close()
	}
}

func (m *fleetMember) close() {
	m.crash()
	m.b.Close()
}

// TestFleetObservability drives the federation plane end to end: three
// lease-registered members scraped by a frontend-hosted federator, a forced
// failover producing one stitched /tracez tree with spans from two brokers,
// a member crash marking it stale on /fleetz within one lease TTL, and
// /eventz carrying the lease expiry and the breaker-open with the failing
// request's trace ID.
func TestFleetObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	const (
		service  = "db"
		leaseTTL = 2 * time.Second
	)

	members := []*fleetMember{newFleetMember(t, service), newFleetMember(t, service), newFleetMember(t, service)}

	fe, err := frontend.NewDistributed("127.0.0.1:0",
		members[0].addr,
		[]frontend.Route{{Pattern: "/db", Service: service, DefaultClass: qos.Class3}})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	lsn, err := fe.EnableRegistry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	fe.EnableTracing(rec)
	events := fleet.NewLog(0, nil)
	fe.EnableFleet(events)

	// The frontend's admin plane, wired the way cmd/frontend wires it: the
	// trace recorder, the event timeline, and a lease-driven federator.
	adminSrv := obs.New()
	adminSrv.SetRecorder(rec)
	adminSrv.SetEventLog(events)
	fleetReg := metrics.NewRegistry()
	fed := fleet.NewFederator(fleet.FederatorConfig{
		Discover:   fe.FleetMembers,
		Interval:   100 * time.Millisecond,
		StaleAfter: 300 * time.Millisecond,
		Metrics:    fleetReg,
		Events:     events,
	})
	defer fed.Close()
	adminSrv.SetFederator(fed)
	if err := adminSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer adminSrv.Close()
	fed.Start()

	for _, m := range members {
		m.register(service, lsn.Addr(), leaseTTL)
	}

	page := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + adminSrv.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	waitPage := func(path, desc string, timeout time.Duration, ok func(string) bool) string {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			body := page(path)
			if ok(body) {
				return body
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never showed %s; last:\n%s", path, desc, body)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// All three members join the fleet view live.
	waitPage("/fleetz", "3 live members", 5*time.Second, func(b string) bool {
		return strings.Count(b, "state=live") >= 3 && strings.Contains(b, "fleet: 3 members")
	})

	cli := httpserver.NewClient(fe.Addr(), httpserver.WithPersistent(1))
	defer cli.Close()
	premium := func(q string) {
		t.Helper()
		resp, err := cli.Get("/db", map[string]string{"q": q, "qos": "1"})
		if err != nil {
			t.Fatalf("premium request failed: %v", err)
		}
		if resp.Status != 200 || resp.Header["x-broker-status"] != "ok" {
			t.Fatalf("premium request = %d %s %q, want 200 ok",
				resp.Status, resp.Header["x-broker-status"], resp.Body)
		}
	}
	premium("warm")

	// With traffic flowing, the next scrape merges every member's series
	// under broker= labels and sums them into broker="fleet" rollups.
	metricsBody := waitPage("/metrics", "fleet rollup series", 5*time.Second, func(b string) bool {
		return strings.Contains(b, `broker="fleet"`)
	})
	for _, m := range members {
		if !strings.Contains(metricsBody, fmt.Sprintf("fleet_member_up{broker=%q} 1", m.addr)) {
			t.Fatalf("federated /metrics missing live marker for %s:\n%.2000s", m.addr, metricsBody)
		}
	}

	// --- (a) forced failover stitches one tree from two brokers -------------
	// The idle pool picks the lowest address first; make that member answer
	// error status (backend down, member alive) so the request fails over
	// with the failed member's spans still on the trace.
	first := members[0]
	for _, m := range members[1:] {
		if m.addr < first.addr {
			first = m
		}
	}
	first.fault.SetDown(true)
	premium("stitched")
	first.fault.SetDown(false)

	tracez := waitPage("/tracez", "a stitched failover tree", 5*time.Second, func(b string) bool {
		return findStitchedTrace(b, first.addr) != ""
	})
	block := findStitchedTrace(tracez, first.addr)
	if !strings.Contains(block, "stage=failover") {
		t.Fatalf("stitched trace missing the failover hop:\n%s", block)
	}

	// --- (b) a killed member marks stale within one lease TTL ---------------
	victim := first
	killedAt := time.Now()
	victim.crash()
	waitPage("/fleetz", "killed member stale", leaseTTL, func(b string) bool {
		for _, line := range strings.Split(b, "\n") {
			if strings.Contains(line, "member="+victim.addr) && strings.Contains(line, "state=stale") {
				return true
			}
		}
		return false
	})
	if elapsed := time.Since(killedAt); elapsed > leaseTTL {
		t.Fatalf("stale marking took %v, want within one lease TTL (%v)", elapsed, leaseTTL)
	}

	// Premium traffic through the crash: every request fails over, and the
	// repeated failures open the dead member's pool breaker.
	crashUntil := time.Now().Add(leaseTTL + time.Second)
	for time.Now().Before(crashUntil) {
		premium("failover")
		time.Sleep(10 * time.Millisecond)
	}

	// --- (c) /eventz carries the lease expiry and the traced breaker-open ---
	waitPage("/eventz", "lease expiry and breaker open for the crashed member", 5*time.Second, func(b string) bool {
		var sawExpiry, sawBreaker bool
		for _, line := range strings.Split(b, "\n") {
			if !strings.Contains(line, "member="+victim.addr) {
				continue
			}
			if strings.Contains(line, "kind=lease_expired") {
				sawExpiry = true
			}
			if strings.Contains(line, "kind=breaker_open") && strings.Contains(line, " trace=") {
				sawBreaker = true
			}
		}
		return sawExpiry && sawBreaker
	})

	// The fleet gauges track the scrape health the whole time.
	if got := fleetReg.Gauge("fleet_members_stale").Value(); got < 1 {
		t.Fatalf("fleet_members_stale = %d, want >= 1", got)
	}
	if got := fleetReg.Counter("fleet_scrapes_total").Value(); got == 0 {
		t.Fatal("federator never scraped")
	}
}

// findStitchedTrace returns the first /tracez block whose spans carry
// broker attributions from failedAddr plus at least one other broker.
func findStitchedTrace(body, failedAddr string) string {
	var block strings.Builder
	brokers := map[string]bool{}
	flush := func() string {
		if brokers[failedAddr] && len(brokers) >= 2 {
			return block.String()
		}
		return ""
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "trace ") {
			if b := flush(); b != "" {
				return b
			}
			block.Reset()
			brokers = map[string]bool{}
		}
		block.WriteString(line)
		block.WriteString("\n")
		if i := strings.Index(line, " broker="); i >= 0 && strings.HasPrefix(line, "  stage=") {
			rest := line[i+len(" broker="):]
			if j := strings.IndexByte(rest, ' '); j >= 0 {
				rest = rest[:j]
			}
			brokers[rest] = true
		}
	}
	return flush()
}
