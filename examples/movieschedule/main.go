// Movieschedule: the paper's result-caching scenario (§III). "Consider an
// online Web site that provides movie schedules ... in the peak time, there
// would be lots of requests for the same movie schedule. If the results are
// not cached, the database has to process the same query repeatedly."
//
// This example builds the full movie site backend (database + broker) and
// drives a peak-hour workload twice — caching off, then on — printing the
// response-time and backend-load difference:
//
//	go run ./examples/movieschedule
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/qos"
	"servicebroker/internal/sqldb"
	"servicebroker/internal/workload"
)

const (
	theaters       = 12
	moviesPerHouse = 8
	peakRequests   = 400
	hotMovies      = 5 // tonight's blockbusters everyone asks about
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := buildScheduleDB()
	if err != nil {
		return err
	}
	defer db.Close()

	uncached, err := runPeak(db.Addr().String(), false)
	if err != nil {
		return err
	}
	cached, err := runPeak(db.Addr().String(), true)
	if err != nil {
		return err
	}

	fmt.Println("peak-hour movie-schedule workload:", peakRequests, "requests,",
		hotMovies, "hot movies")
	fmt.Printf("  without broker cache: mean=%-12v backend queries=%d\n",
		uncached.mean, uncached.backendQueries)
	fmt.Printf("  with broker cache:    mean=%-12v backend queries=%d hit ratio=%.2f\n",
		cached.mean, cached.backendQueries, cached.hitRatio)
	fmt.Printf("  speedup %.1fx, backend load reduced %.1fx\n",
		float64(uncached.mean)/float64(cached.mean),
		float64(uncached.backendQueries)/float64(cached.backendQueries))
	return nil
}

// buildScheduleDB creates the showtimes database.
func buildScheduleDB() (*sqldb.Server, error) {
	engine := sqldb.NewEngine()
	if _, err := engine.Exec("CREATE TABLE schedule (id INT PRIMARY KEY, movie INT, theater INT, showtime TEXT)"); err != nil {
		return nil, err
	}
	if _, err := engine.Exec("CREATE INDEX schedule_movie ON schedule (movie)"); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(2003))
	id := 0
	ins := &sqldb.Insert{Table: "schedule"}
	for th := 0; th < theaters; th++ {
		for m := 0; m < moviesPerHouse; m++ {
			for _, slot := range []string{"17:00", "19:30", "22:00"} {
				ins.Rows = append(ins.Rows, []sqldb.Value{
					int64(id), int64(rng.Intn(40)), int64(th), slot,
				})
				id++
			}
		}
	}
	if _, err := engine.ExecStmt(ins); err != nil {
		return nil, err
	}
	// A per-query cost makes the backend's relief visible; real MySQL pays
	// this in disk and parse time.
	return sqldb.NewServer(engine, "127.0.0.1:0", sqldb.WithQueryDelay(2*time.Millisecond))
}

type peakResult struct {
	mean           time.Duration
	backendQueries int64
	hitRatio       float64
}

// runPeak drives the peak workload through a broker with or without cache.
func runPeak(dbAddr string, withCache bool) (*peakResult, error) {
	opts := []broker.Option{
		broker.WithThreshold(64, 1),
		broker.WithWorkers(8),
	}
	if withCache {
		opts = append(opts, broker.WithCache(1024, time.Minute))
	}
	b, err := broker.New(&backend.SQLConnector{Addr: dbAddr}, opts...)
	if err != nil {
		return nil, err
	}
	defer b.Close()

	// The target runs on concurrent client goroutines; math/rand.Rand is
	// not concurrency-safe.
	var rngMu sync.Mutex
	rng := rand.New(rand.NewSource(42))
	target := func(ctx context.Context, _, _ int) (qos.Fidelity, error) {
		// 85% of the peak asks for one of tonight's hot movies.
		rngMu.Lock()
		movie := rng.Intn(40)
		if rng.Float64() < 0.85 {
			movie = rng.Intn(hotMovies)
		}
		rngMu.Unlock()
		resp := b.Handle(ctx, &broker.Request{
			Payload: []byte(fmt.Sprintf(
				"SELECT theater, showtime FROM schedule WHERE movie = %d ORDER BY showtime", movie)),
			Class: qos.Class1,
		})
		if resp.Err != nil {
			return 0, resp.Err
		}
		return resp.Fidelity, nil
	}
	res, err := workload.ClosedLoop{Concurrency: 16, Requests: peakRequests}.Run(context.Background(), target)
	if err != nil {
		return nil, err
	}
	return &peakResult{
		mean:           res.Latency.Mean(),
		backendQueries: b.Metrics().Counter("completed").Value(),
		hitRatio:       b.CacheStats().HitRatio(),
	}, nil
}
