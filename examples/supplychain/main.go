// Supplychain: the paper's transaction-integrity scenario (§III). "A
// computer manufacturer conducts an online purchase from multiple vendors:
// it first selects proper monitor models from a monitor vendor site (step
// 1), then video cards from the other vendors (step 2), then comes back to
// the monitor vendor again to match and purchase the best models (step 3).
// If somehow during step 3 the channel to the monitor vendor site is
// congested, the transaction could abort." Brokers escalate the priority of
// later steps so nearly complete transactions survive overload.
//
//	go run ./examples/supplychain
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/qos"
	"servicebroker/internal/txn"
)

const purchases = 20

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	flatAborts, err := runPurchases(false)
	if err != nil {
		return err
	}
	escalatedAborts, err := runPurchases(true)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("%d purchase transactions against a congested monitor vendor:\n", purchases)
	fmt.Printf("  without step escalation: %d aborted\n", flatAborts)
	fmt.Printf("  with step escalation:    %d aborted\n", escalatedAborts)
	fmt.Println("\nlater transaction steps outrank fresh low-priority traffic, so")
	fmt.Println("transactions that already did two steps of work are not thrown away.")
	return nil
}

// runPurchases drives the three-step purchase flow while background
// traffic congests the monitor vendor, reporting how many transactions
// abort at step 3.
func runPurchases(escalate bool) (aborted int, err error) {
	// The monitor vendor: a slow, capacity-limited backend.
	monitorVendor := &backend.DelayConnector{
		ServiceName:   "monitor-vendor",
		ProcessTime:   15 * time.Millisecond,
		MaxConcurrent: 2,
	}
	// The video-card vendor: uncongested.
	cardVendor := &backend.DelayConnector{
		ServiceName: "card-vendor",
		ProcessTime: 2 * time.Millisecond,
	}

	// Brokers for the two vendors share one transaction tracker, so a step
	// observed at the card vendor escalates later accesses at the monitor
	// vendor (the paper's broker-to-broker state exchange).
	opts := []broker.Option{broker.WithThreshold(6, 3), broker.WithWorkers(2)}
	cardOpts := []broker.Option{broker.WithThreshold(16, 3)}
	if escalate {
		shared := txn.NewTracker()
		opts = append(opts, broker.WithSharedTransactions(shared))
		cardOpts = append(cardOpts, broker.WithSharedTransactions(shared))
	}
	monitors, err := broker.New(monitorVendor, opts...)
	if err != nil {
		return 0, err
	}
	defer monitors.Close()
	cards, err := broker.New(cardVendor, cardOpts...)
	if err != nil {
		return 0, err
	}
	defer cards.Close()

	ctx := context.Background()

	// Background browsing traffic congests the monitor vendor.
	var bg sync.WaitGroup
	stop := make(chan struct{})
	bg.Add(1)
	go func() {
		defer bg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			bg.Add(1)
			go func(i int) {
				defer bg.Done()
				monitors.Handle(ctx, &broker.Request{
					Payload: []byte(fmt.Sprintf("browse-%d", i)),
					Class:   qos.Class2,
					NoCache: true,
				})
			}(i)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer func() {
		close(stop)
		bg.Wait()
	}()
	time.Sleep(20 * time.Millisecond) // let congestion build

	for i := 0; i < purchases; i++ {
		txnID := fmt.Sprintf("purchase-%d", i)
		// Step 1: browse monitors (low priority; may be shed, retried once).
		step1 := monitors.Handle(ctx, &broker.Request{
			Payload: []byte("SELECT monitors"), Class: qos.Class3,
			TxnID: txnID, TxnStep: 1, NoCache: true,
		})
		if step1.Status == broker.StatusError {
			return 0, step1.Err
		}
		// Step 2: pick video cards at the other vendor.
		step2 := cards.Handle(ctx, &broker.Request{
			Payload: []byte("SELECT cards"), Class: qos.Class3,
			TxnID: txnID, TxnStep: 2, NoCache: true,
		})
		if step2.Status == broker.StatusError {
			return 0, step2.Err
		}
		// Step 3: return to the congested monitor vendor to purchase. This
		// is the access the paper protects: dropped here, the whole
		// transaction aborts.
		step3 := monitors.Handle(ctx, &broker.Request{
			Payload: []byte("PURCHASE monitors"), Class: qos.Class3,
			TxnID: txnID, TxnStep: 3, NoCache: true,
		})
		switch step3.Status {
		case broker.StatusError:
			return 0, step3.Err
		case broker.StatusDropped:
			aborted++
			if tr := monitors.Tracker(); tr != nil {
				_ = tr.Abort(txnID)
			}
		default:
			if tr := monitors.Tracker(); tr != nil {
				_ = tr.Complete(txnID)
			}
		}
	}

	mode := "flat classes"
	if escalate {
		mode = "step escalation"
	}
	fmt.Printf("[%s] %d/%d transactions aborted at step 3\n", mode, aborted, purchases)
	return aborted, nil
}
