// Supplychain: the paper's transaction-integrity scenario (§III). "A
// computer manufacturer conducts an online purchase from multiple vendors:
// it first selects proper monitor models from a monitor vendor site (step
// 1), then video cards from the other vendors (step 2), then comes back to
// the monitor vendor again to match and purchase the best models (step 3).
// If somehow during step 3 the channel to the monitor vendor site is
// congested, the transaction could abort." This demo shows the three
// integrity mechanisms working together (DESIGN.md §14):
//
//  1. Step escalation — brokers sharing a transaction tracker escalate
//     later steps' priority, so nearly complete transactions outrank fresh
//     low-priority traffic and survive overload.
//
//  2. Saga compensation — each step that leaves an effect behind registers
//     a compensation; an aborted transaction runs them in reverse order, so
//     no inventory hold is orphaned.
//
//  3. Idempotent retries — mutating steps carry an idempotency key; a
//     duplicate delivery (client retry, failover) replays the recorded
//     first outcome instead of executing the effect twice.
//
//     go run ./examples/supplychain
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/qos"
	"servicebroker/internal/txn"
)

const purchases = 20

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	flat, err := runPurchases(false)
	if err != nil {
		return err
	}
	saga, err := runPurchases(true)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("%d purchase transactions against a congested monitor vendor:\n", purchases)
	fmt.Printf("  without integrity: %d aborted, %d inventory holds orphaned, %d duplicate effects\n",
		flat.aborted, flat.orphaned, flat.duplicates)
	fmt.Printf("  with integrity:    %d aborted, %d inventory holds orphaned, %d duplicate effects\n",
		saga.aborted, saga.orphaned, saga.duplicates)
	fmt.Println("\nlater transaction steps outrank fresh low-priority traffic, aborted")
	fmt.Println("transactions compensate their holds in reverse order, and retried")
	fmt.Println("mutations replay their recorded outcome instead of re-executing.")
	return nil
}

type outcome struct {
	aborted    int
	orphaned   int
	duplicates int64
}

// runPurchases drives the three-step purchase flow while background traffic
// congests the monitor vendor. With integrity on, the vendor and warehouse
// brokers share a transaction tracker, holds register compensations, and the
// commit is retried through the idempotency table.
func runPurchases(integrity bool) (out outcome, err error) {
	// The monitor vendor: a slow, capacity-limited backend.
	monitorVendor := &backend.DelayConnector{
		ServiceName:   "monitor-vendor",
		ProcessTime:   15 * time.Millisecond,
		MaxConcurrent: 2,
	}
	// The warehouse holds inventory and counts every executed effect.
	warehouse := &backend.EffectConnector{ServiceName: "warehouse"}

	opts := []broker.Option{broker.WithThreshold(6, 3), broker.WithWorkers(2)}
	whOpts := []broker.Option{broker.WithThreshold(16, 3)}
	var tracker *txn.Tracker
	if integrity {
		// Brokers for the two services share one transaction tracker, so a
		// step observed at the warehouse escalates later accesses at the
		// monitor vendor (the paper's broker-to-broker state exchange), and
		// the warehouse broker suppresses duplicate effects.
		tracker = txn.NewTracker()
		opts = append(opts, broker.WithSharedTransactions(tracker))
		whOpts = append(whOpts,
			broker.WithSharedTransactions(tracker),
			broker.WithIdempotency(1024, time.Minute))
	}
	monitors, err := broker.New(monitorVendor, opts...)
	if err != nil {
		return out, err
	}
	defer monitors.Close()
	wh, err := broker.New(warehouse, whOpts...)
	if err != nil {
		return out, err
	}
	defer wh.Close()

	ctx := context.Background()

	// Background browsing traffic congests the monitor vendor.
	var bg sync.WaitGroup
	stop := make(chan struct{})
	bg.Add(1)
	go func() {
		defer bg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			bg.Add(1)
			go func(i int) {
				defer bg.Done()
				monitors.Handle(ctx, &broker.Request{
					Payload: []byte(fmt.Sprintf("browse-%d", i)),
					Class:   qos.Class2,
					NoCache: true,
				})
			}(i)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer func() {
		close(stop)
		bg.Wait()
	}()
	time.Sleep(20 * time.Millisecond) // let congestion build

	release := func(sku string) func(context.Context) error {
		return func(ctx context.Context) error {
			s, err := warehouse.Connect(ctx)
			if err != nil {
				return err
			}
			defer s.Close()
			_, err = s.Do(ctx, []byte("RELEASE "+sku+" 1"))
			return err
		}
	}

	var logicalMutations int64
	for i := 0; i < purchases; i++ {
		txnID := fmt.Sprintf("purchase-%d", i)
		sku := fmt.Sprintf("monitor-%d", i)
		// Step 1: browse monitors (read-only; a drop costs nothing).
		step1 := wh.Handle(ctx, &broker.Request{
			Payload: []byte("GET " + sku), Class: qos.Class3,
			TxnID: txnID, TxnStep: 1, NoCache: true,
		})
		if step1.Status == broker.StatusError {
			return out, step1.Err
		}
		// Step 2: hold the chosen monitor at the warehouse. The idempotency
		// key makes the hold safe to retry; the compensation undoes it if
		// the transaction later aborts. Deliver it twice to simulate a
		// retransmitted request — exactly one hold must result.
		for attempt := 0; attempt < 2; attempt++ {
			step2 := wh.Handle(ctx, &broker.Request{
				Payload: []byte("HOLD " + sku + " 1"), Class: qos.Class3,
				TxnID: txnID, TxnStep: 2, IdemKey: "hold", NoCache: true,
			})
			if step2.Status != broker.StatusOK {
				return out, fmt.Errorf("hold %s: %v (%v)", sku, step2.Status, step2.Err)
			}
		}
		logicalMutations++ // two deliveries, one logical hold
		if tracker != nil {
			if err := tracker.RegisterCompensation(txnID, 2, "release-hold", release(sku)); err != nil {
				return out, err
			}
		}
		// Step 3: return to the congested monitor vendor to match the held
		// models. This is the access the paper protects: dropped here, the
		// whole transaction aborts with a hold already placed.
		step3 := monitors.Handle(ctx, &broker.Request{
			Payload: []byte("MATCH " + sku), Class: qos.Class3,
			TxnID: txnID, TxnStep: 3, NoCache: true,
		})
		switch step3.Status {
		case broker.StatusError:
			return out, step3.Err
		case broker.StatusOK:
			commit := wh.Handle(ctx, &broker.Request{
				Payload: []byte("PURCHASE " + sku + " 1"), Class: qos.Class3,
				TxnID: txnID, TxnStep: 3, IdemKey: "commit", NoCache: true,
			})
			if commit.Status != broker.StatusOK {
				return out, fmt.Errorf("commit %s: %v (%v)", sku, commit.Status, commit.Err)
			}
			logicalMutations++
			if tracker != nil {
				_ = tracker.Complete(txnID)
			}
		default:
			out.aborted++
			if tracker != nil {
				// Saga abort: compensations run in reverse registration
				// order, releasing the hold. Flat mode just walks away.
				if _, err := tracker.AbortContext(ctx, txnID); err != nil {
					return out, err
				}
				logicalMutations++ // the compensating release
			}
		}
	}

	out.orphaned = warehouse.TotalHolds()
	out.duplicates = warehouse.Mutations() - logicalMutations

	mode := "flat"
	if integrity {
		mode = "integrity"
	}
	fmt.Printf("[%s] %d/%d aborted at step 3, %d holds orphaned, backend executed %d mutations for %d logical\n",
		mode, out.aborted, purchases, out.orphaned, warehouse.Mutations(), logicalMutations)
	return out, nil
}
