// Contract: the paper's loosely coupled service model (§II). "Since the
// loosely coupled servers are shared resources, service guarantee becomes
// an outstanding problem. We envision that in the future such services
// would be contract-based such that the service availability is honored
// only when the incoming traffic [is] within the contracted
// specifications."
//
// This example brokers access to an external web service under a token-
// bucket contract (10 requests/second, burst 5, for the standard class) and
// drives a burst well beyond the contract: in-contract requests get full
// answers, the excess is answered instantly with low-fidelity replies, and
// the external provider never sees the overage — which is exactly what
// keeps the contract honored. A premium class without a contract rides
// through untouched.
//
//	go run ./examples/contract
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/qos"
)

const (
	contractRate  = 10.0 // requests per second
	contractBurst = 5
	burstSize     = 30
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The external provider counts every request it serves; staying within
	// contract means keeping this number down.
	provider, served, err := startProvider()
	if err != nil {
		return err
	}
	defer provider.Close()

	b, err := broker.New(
		&backend.WebConnector{Addr: provider.Addr().String(), ServiceName: "partner-api"},
		broker.WithThreshold(64, 2),
		broker.WithWorkers(4),
		broker.WithCache(64, time.Minute),
		// Class 2 (standard) is contract-bound; class 1 (premium) is not.
		broker.WithContract(qos.Class2, contractRate, contractBurst),
	)
	if err != nil {
		return err
	}
	defer b.Close()

	ctx := context.Background()
	fmt.Printf("bursting %d standard-class requests against a %g req/s (burst %d) contract\n\n",
		burstSize, contractRate, contractBurst)

	var full, shed int
	for i := 0; i < burstSize; i++ {
		resp := b.Handle(ctx, &broker.Request{
			Payload: []byte(fmt.Sprintf("/quote?item=%d", i)),
			Class:   qos.Class2,
		})
		switch resp.Status {
		case broker.StatusOK:
			full++
		case broker.StatusDropped:
			shed++
		default:
			return resp.Err
		}
	}
	fmt.Printf("standard class: %d served in full, %d answered with a low-fidelity reply\n", full, shed)

	// Premium traffic is unaffected by the partner contract.
	premium := b.Handle(ctx, &broker.Request{Payload: []byte("/quote?item=vip"), Class: qos.Class1})
	fmt.Printf("premium class:  status=%v fidelity=%v\n", premium.Status, premium.Fidelity)

	total := served.Load()
	fmt.Printf("\nthe provider served %d requests — the %d-request burst never breached the contract\n",
		total, burstSize+1)
	if total > contractBurst+2 {
		return fmt.Errorf("contract breached: provider saw %d requests", total)
	}
	return nil
}

// startProvider runs the external partner web service.
func startProvider() (*httpserver.Server, *atomic.Int64, error) {
	served := new(atomic.Int64)
	srv, err := httpserver.NewServer("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	srv.Handle("/quote", func(req *httpserver.Request) *httpserver.Response {
		served.Add(1)
		return httpserver.Text("quote for " + req.Query["item"])
	})
	return srv, served, nil
}
