// Quickstart: put a service broker in front of a database backend and make
// message-passing requests to it — the smallest end-to-end use of the
// framework's public pieces.
//
// It starts an in-memory SQL database server, a broker with caching and QoS
// thresholds, and a UDP gateway, then issues a few brokered queries at
// different QoS classes:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/qos"
	"servicebroker/internal/sqldb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A backend: the SQL database server with a small fixture.
	engine := sqldb.NewEngine()
	if _, err := engine.Exec("CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, stars FLOAT)"); err != nil {
		return err
	}
	if _, err := engine.Exec(`INSERT INTO movies VALUES
		(1, 'Alien', 4.5), (2, 'Brazil', 4.0), (3, 'Contact', 3.5)`); err != nil {
		return err
	}
	db, err := sqldb.NewServer(engine, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Println("database server on", db.Addr())

	// 2. A service broker for the "db" service: persistent connections,
	//    result caching, the paper's threshold-based QoS policy.
	b, err := broker.New(
		&backend.SQLConnector{Addr: db.Addr().String()},
		broker.WithThreshold(20, 3),
		broker.WithWorkers(4),
		broker.WithCache(256, time.Minute),
	)
	if err != nil {
		return err
	}
	defer b.Close()

	// 3. A UDP gateway so web applications reach the broker by message
	//    passing instead of backend APIs.
	gw, err := broker.NewGateway("127.0.0.1:0", map[string]*broker.Broker{"db": b})
	if err != nil {
		return err
	}
	defer gw.Close()
	fmt.Println("broker gateway on", gw.Addr())

	cli, err := broker.DialGateway(gw.Addr().String())
	if err != nil {
		return err
	}
	defer cli.Close()

	// 4. Brokered requests. The first query hits the database; the repeat
	//    is served from the broker's cache without touching the backend.
	ctx := context.Background()
	for i, class := range []qos.Class{qos.Class1, qos.Class1, qos.Class3} {
		resp, err := cli.Do(ctx, "db", &broker.Request{
			Payload: []byte("SELECT title, stars FROM movies WHERE stars >= 4 ORDER BY stars DESC"),
			Class:   class,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nrequest %d (%v) → status=%v fidelity=%v\n%s",
			i+1, class, resp.Status, resp.Fidelity, resp.Payload)
	}

	stats := b.CacheStats()
	fmt.Printf("\nbroker cache: %d hits, %d misses (ratio %.2f)\n",
		stats.Hits, stats.Misses, stats.HitRatio())
	fmt.Println("broker load:", b.Load())
	return nil
}
