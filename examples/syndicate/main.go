// Syndicate: the paper's multitasking scenario (§III). "A web syndicate
// like My.Yahoo composes contents from different and independent providers
// ... the page generator can send requests in parallel to service brokers
// that are associated with individual providers" so the retrievals overlap.
//
// This example runs three loosely coupled content providers behind WAN-like
// latency (netsim), one broker per provider (each also prefetching the
// provider's headlines), and composes the portal page twice — sequentially
// through the API model and in parallel through brokers:
//
//	go run ./examples/syndicate
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"servicebroker/internal/apimodel"
	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/netsim"
	"servicebroker/internal/qos"
)

// provider describes one content source of the portal page.
type provider struct {
	name    string
	path    string
	content string
	srv     *httpserver.Server
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	providers := []*provider{
		{name: "news", path: "/headlines", content: "PEACE TALKS PROGRESS; MARKETS CALM"},
		{name: "weather", path: "/forecast", content: "Davis, CA: sunny, 31°C"},
		{name: "stocks", path: "/quotes", content: "WEBCO 42.00 (+1.2%)"},
	}
	for _, p := range providers {
		srv, err := httpserver.NewServer("127.0.0.1:0")
		if err != nil {
			return err
		}
		content := p.content
		srv.Handle(p.path, func(req *httpserver.Request) *httpserver.Response {
			return httpserver.Text(content)
		})
		p.srv = srv
		defer srv.Close()
	}

	// Loosely coupled providers sit across a WAN: ~30ms latency each way.
	wan := netsim.Dialer{Profile: netsim.Profile{Latency: 15 * time.Millisecond, Jitter: 5 * time.Millisecond}}
	dial := func(network, address string) (net.Conn, error) { return wan.Dial(network, address) }

	// One broker per provider, as the paper prescribes (brokers are per
	// service).
	brokers := map[string]*broker.Broker{}
	apis := map[string]*apimodel.Accessor{}
	for _, p := range providers {
		conn := &backend.WebConnector{
			Addr:        p.srv.Addr().String(),
			ServiceName: p.name,
			Dial:        dial,
		}
		path := p.path
		b, err := broker.New(conn,
			broker.WithThreshold(16, 1),
			broker.WithWorkers(2),
			broker.WithCache(64, 500*time.Millisecond),
			// Prefetch the provider's content during idle periods (paper
			// §III: a news provider's headlines are re-fetched before
			// readers ask).
			broker.WithPrefetch(100*time.Millisecond, 4, func() [][]byte {
				return [][]byte{[]byte(path)}
			}),
		)
		if err != nil {
			return err
		}
		defer b.Close()
		brokers[p.name] = b

		a, err := apimodel.New(&backend.WebConnector{
			Addr:        p.srv.Addr().String(),
			ServiceName: p.name,
			Dial:        dial,
		})
		if err != nil {
			return err
		}
		apis[p.name] = a
	}

	gw, err := broker.NewGateway("127.0.0.1:0", brokers)
	if err != nil {
		return err
	}
	defer gw.Close()
	cli, err := broker.DialGateway(gw.Addr().String())
	if err != nil {
		return err
	}
	defer cli.Close()

	ctx := context.Background()

	// Portal page via the API model: sequential, one connection per fetch.
	start := time.Now()
	var apiPage []string
	for _, p := range providers {
		body, err := apis[p.name].Do(ctx, []byte(p.path))
		if err != nil {
			return err
		}
		apiPage = append(apiPage, fmt.Sprintf("[%s] %s", p.name, body))
	}
	apiTime := time.Since(start)

	// Portal page via brokers: parallel fan-out over persistent channels.
	services := make([]string, len(providers))
	reqs := make([]*broker.Request, len(providers))
	for i, p := range providers {
		services[i] = p.name
		// NoCache keeps the comparison honest: the measured win comes from
		// parallel fan-out and persistent connections, not cached bodies.
		reqs[i] = &broker.Request{Payload: []byte(p.path), Class: qos.Class1, NoCache: true}
	}
	// Warm the persistent connections the way a running portal would be.
	if _, err := cli.Multi(ctx, services, reqs); err != nil {
		return err
	}
	start = time.Now()
	resps, err := cli.Multi(ctx, services, reqs)
	if err != nil {
		return err
	}
	brokerTime := time.Since(start)

	fmt.Println("=== my.portal — composed page ===")
	for i, r := range resps {
		fmt.Printf("[%s] %s (fidelity %v)\n", services[i], r.Payload, r.Fidelity)
	}
	fmt.Println()
	fmt.Printf("API model (sequential, per-request connections): %v\n", apiTime)
	fmt.Printf("broker model (parallel, persistent connections): %v\n", brokerTime)
	fmt.Printf("speedup: %.1fx\n", float64(apiTime)/float64(brokerTime))

	if len(apiPage) != len(resps) || !strings.Contains(apiPage[0], "PEACE") {
		return fmt.Errorf("page composition mismatch")
	}
	return nil
}
