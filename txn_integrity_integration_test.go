package servicebroker

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/frontend"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/qos"
	"servicebroker/internal/txn"
)

// txnMember is one broker-pool replica for the transaction chaos test: its
// gateway socket can be crashed and rebound on a pinned address while the
// broker (and the tracker/idempotency state it shares with its peers)
// survives — the mid-transaction crash+failover case.
type txnMember struct {
	t      *testing.T
	broker *broker.Broker
	addr   string

	mu sync.Mutex
	gw *broker.Gateway
}

func newTxnMember(t *testing.T, service string, b *broker.Broker) *txnMember {
	t.Helper()
	gw, err := broker.NewGateway("127.0.0.1:0", map[string]*broker.Broker{service: b})
	if err != nil {
		t.Fatal(err)
	}
	m := &txnMember{t: t, broker: b, gw: gw, addr: gw.Addr().String()}
	t.Cleanup(m.close)
	return m
}

func (m *txnMember) crash() {
	m.mu.Lock()
	gw := m.gw
	m.gw = nil
	m.mu.Unlock()
	if gw != nil {
		gw.Close()
	}
}

func (m *txnMember) restart(service string) {
	m.t.Helper()
	var gw *broker.Gateway
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		gw, err = broker.NewGateway(m.addr, map[string]*broker.Broker{service: m.broker})
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		m.t.Fatalf("rebind %s: %v", m.addr, err)
	}
	m.mu.Lock()
	m.gw = gw
	m.mu.Unlock()
}

func (m *txnMember) close() {
	m.mu.Lock()
	gw := m.gw
	m.gw = nil
	m.mu.Unlock()
	if gw != nil {
		gw.Close()
	}
}

// TestTxnIntegrityChaos proves exactly-once transaction effects end to end
// through real sockets: an HTTP front end routes tagged requests (txn, step,
// idem query parameters) across a two-member broker pool whose members share
// a transaction tracker and a journal-backed idempotency table over one
// effect-counting warehouse. The test injects duplicate delivery, a
// mid-step-2 member crash with failover, and a broker restart that re-arms
// its idempotency state from the journal — and at the end the
// backend-observed mutation count equals the logically issued count, every
// aborted transaction's compensations ran in reverse order, and no inventory
// hold is orphaned.
//
// This is the txn chaos-soak target: CI runs it under -race repeatedly.
func TestTxnIntegrityChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	const service = "supply"
	ctx := context.Background()

	// One warehouse, one tracker, one idempotency table — shared by both
	// pool members (the paper's brokers "exchange state information").
	// Recorded outcomes append to a journal for the restart phase.
	store := &backend.EffectConnector{ServiceName: service}
	tracker := txn.NewTracker()
	table := txn.NewIdemTable(1024, time.Minute)
	journalPath := filepath.Join(t.TempDir(), "supply.journal")
	journal, err := txn.OpenJournal(journalPath, false)
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	table.OnRecord(func(key string, out txn.Outcome) {
		if err := journal.AppendOutcome(key, out); err != nil {
			t.Errorf("journal append: %v", err)
		}
	})

	newPoolBroker := func() *broker.Broker {
		b, err := broker.New(store,
			broker.WithThreshold(64, 4),
			broker.WithSharedTransactions(tracker),
			broker.WithSharedIdempotency(table))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}
	members := []*txnMember{
		newTxnMember(t, service, newPoolBroker()),
		newTxnMember(t, service, newPoolBroker()),
	}

	fe, err := frontend.NewDistributed("127.0.0.1:0",
		members[0].addr+"|"+members[1].addr,
		[]frontend.Route{{Pattern: "/supply", Service: service, DefaultClass: qos.Class3}})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	cli := httpserver.NewClient(fe.Addr(), httpserver.WithPersistent(1))
	defer cli.Close()

	do := func(q map[string]string) *httpserver.Response {
		t.Helper()
		resp, err := cli.Get("/supply", q)
		if err != nil {
			t.Fatalf("GET %v: %v", q, err)
		}
		return resp
	}
	mustOK := func(q map[string]string) *httpserver.Response {
		t.Helper()
		resp := do(q)
		if resp.Status != 200 || resp.Header["x-broker-status"] != "ok" {
			t.Fatalf("GET %v = %d %s %q, want 200 ok",
				q, resp.Status, resp.Header["x-broker-status"], resp.Body)
		}
		return resp
	}
	step := func(txnID string, n int, cmd, idem string) map[string]string {
		q := map[string]string{"q": cmd, "txn": txnID, "step": fmt.Sprint(n)}
		if idem != "" {
			q["idem"] = idem
		}
		return q
	}

	// Compensation bookkeeping: every hold registers a release plus an audit
	// void, so an abort must run them in reverse registration order.
	var compMu sync.Mutex
	compRan := map[string][]string{}
	releaseHold := func(txnID, sku string) func(context.Context) error {
		return func(ctx context.Context) error {
			s, err := store.Connect(ctx)
			if err != nil {
				return err
			}
			defer s.Close()
			if _, err := s.Do(ctx, []byte("RELEASE "+sku+" 1")); err != nil {
				return err
			}
			compMu.Lock()
			compRan[txnID] = append(compRan[txnID], "release-hold")
			compMu.Unlock()
			return nil
		}
	}
	voidAudit := func(txnID string) func(context.Context) error {
		return func(context.Context) error {
			compMu.Lock()
			compRan[txnID] = append(compRan[txnID], "void-audit")
			compMu.Unlock()
			return nil
		}
	}

	var logical int64 // mutations logically issued (duplicates excluded)

	// Phase 1 — six purchase sagas with duplicate delivery of every hold.
	// Even transactions commit, odd ones abort and must compensate.
	const sagas = 6
	for i := 0; i < sagas; i++ {
		txnID := fmt.Sprintf("purchase-%d", i)
		sku := fmt.Sprintf("sku-%d", i)
		mustOK(step(txnID, 1, "GET "+sku, "")) // read-only browse
		// The hold is delivered twice — a client retransmit. Exactly one
		// execution may reach the warehouse.
		first := mustOK(step(txnID, 2, "HOLD "+sku+" 1", "hold"))
		second := mustOK(step(txnID, 2, "HOLD "+sku+" 1", "hold"))
		if string(first.Body) != string(second.Body) {
			t.Fatalf("duplicate hold diverged: %q vs %q", first.Body, second.Body)
		}
		logical++
		if err := tracker.RegisterCompensation(txnID, 2, "void-audit", voidAudit(txnID)); err != nil {
			t.Fatal(err)
		}
		if err := tracker.RegisterCompensation(txnID, 2, "release-hold", releaseHold(txnID, sku)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			mustOK(step(txnID, 3, "PURCHASE "+sku+" 1", "commit"))
			logical++
			if err := tracker.Complete(txnID); err != nil {
				t.Fatal(err)
			}
		} else {
			report, err := tracker.AbortContext(ctx, txnID)
			if err != nil {
				t.Fatal(err)
			}
			if len(report.Ran) != 2 || report.Failed != 0 {
				t.Fatalf("abort %s ran %d compensations (%d failed), want 2/0", txnID, len(report.Ran), report.Failed)
			}
			logical++ // the compensating release
			compMu.Lock()
			order := append([]string(nil), compRan[txnID]...)
			compMu.Unlock()
			// Registered void-audit then release-hold; reverse order runs
			// the release first.
			if len(order) != 2 || order[0] != "release-hold" || order[1] != "void-audit" {
				t.Fatalf("abort %s compensation order = %v, want [release-hold void-audit]", txnID, order)
			}
		}
	}

	// Phase 2 — crash mid-step-2 with failover. The hold executes, the
	// member pool crashes one replica, and the duplicate is re-delivered:
	// the pool must fail over (late transaction steps try every member) and
	// the shared idempotency table must replay, not re-execute.
	const crashTxn, crashSKU = "purchase-crash", "sku-crash"
	mustOK(step(crashTxn, 1, "GET "+crashSKU, ""))
	first := mustOK(step(crashTxn, 2, "HOLD "+crashSKU+" 1", "hold"))
	logical++
	mutationsBefore := store.Mutations()
	members[0].crash()
	redelivered := mustOK(step(crashTxn, 2, "HOLD "+crashSKU+" 1", "hold"))
	if string(redelivered.Body) != string(first.Body) {
		t.Fatalf("post-crash duplicate diverged: %q vs %q", redelivered.Body, first.Body)
	}
	if got := store.Mutations(); got != mutationsBefore {
		t.Fatalf("post-crash duplicate re-executed: mutations %d -> %d", mutationsBefore, got)
	}
	if err := tracker.RegisterCompensation(crashTxn, 2, "release-hold", releaseHold(crashTxn, crashSKU)); err != nil {
		t.Fatal(err)
	}
	// Step 3 commits through the surviving member (step >= 2 is premium, so
	// the pool keeps trying members until one answers).
	mustOK(step(crashTxn, 3, "PURCHASE "+crashSKU+" 1", "commit"))
	logical++
	if err := tracker.Complete(crashTxn); err != nil {
		t.Fatal(err)
	}
	members[0].restart(service)

	// Phase 3 — crash-safe recovery: a freshly started broker restores the
	// journal and answers a replayed idempotency key without touching the
	// backend, exactly as brokerd -txn-journal does on boot.
	restored := txn.NewIdemTable(1024, time.Minute)
	n, err := txn.RestoreTable(journalPath, restored)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("journal restored 0 outcomes")
	}
	restarted, err := broker.New(store,
		broker.WithThreshold(64, 4),
		broker.WithTransactions(),
		broker.WithSharedIdempotency(restored))
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	mutationsBefore = store.Mutations()
	replay := restarted.Handle(ctx, &broker.Request{
		Payload: []byte("HOLD " + crashSKU + " 1"), Class: qos.Class3,
		TxnID: crashTxn, TxnStep: 2, IdemKey: "hold", NoCache: true,
	})
	if replay.Status != broker.StatusOK {
		t.Fatalf("restarted broker replay = %v (%v)", replay.Status, replay.Err)
	}
	if string(replay.Payload) != string(first.Body) {
		t.Fatalf("restarted broker replay diverged: %q vs %q", replay.Payload, first.Body)
	}
	if got := store.Mutations(); got != mutationsBefore {
		t.Fatalf("restarted broker re-executed a journaled outcome: mutations %d -> %d", mutationsBefore, got)
	}

	// Final accounting — the exactly-once ledger. Every hold, purchase, and
	// compensating release executed exactly once despite duplicates, a
	// crash, a failover, and a restart; and no hold is orphaned.
	if got := store.Mutations(); got != logical {
		t.Fatalf("backend executed %d mutations for %d logically issued", got, logical)
	}
	if got := store.TotalHolds(); got != 0 {
		t.Fatalf("orphaned holds: %d", got)
	}
	if !strings.Contains(string(first.Body), "hold ok") {
		t.Fatalf("unexpected hold response body: %q", first.Body)
	}
}
