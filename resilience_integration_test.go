package servicebroker

import (
	"context"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/loadbalance"
	"servicebroker/internal/netsim"
	"servicebroker/internal/qos"
	"servicebroker/internal/resilience"
)

// TestResilientBrokerOverWANSurvivesReplicaFailure drives the full
// fault-tolerance path end to end: a replicated web backend reached across a
// simulated WAN, with one replica failing its first accesses. The broker's
// retries must hop off the failing replica (tripping its breaker) so every
// request succeeds, and after the breaker cooldown the recovered replica is
// probed back into rotation.
func TestResilientBrokerOverWANSurvivesReplicaFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}

	newWeb := func() *httpserver.Server {
		srv, err := httpserver.NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		srv.Handle("/feed", func(req *httpserver.Request) *httpserver.Response {
			return httpserver.Text("today's headlines")
		})
		return srv
	}
	web0, web1 := newWeb(), newWeb()

	// Both replicas sit behind the paper's loosely coupled link profile;
	// replica 0 additionally fails its first three accesses.
	wan := netsim.Dialer{Profile: netsim.WAN}
	faulty := &backend.FaultConnector{
		Inner:     &backend.WebConnector{Addr: web0.Addr().String(), ServiceName: "news", Dial: wan.Dial},
		FailFirst: 3,
	}
	healthy := &backend.WebConnector{Addr: web1.Addr().String(), ServiceName: "news", Dial: wan.Dial}

	b, err := broker.New(nil,
		broker.WithReplicas(loadbalance.LeastOutstanding{}, 1, faulty, healthy),
		broker.WithResilience(resilience.Config{
			Retry:   resilience.RetryConfig{MaxAttempts: 4, BaseDelay: time.Millisecond},
			Breaker: resilience.BreakerConfig{FailureThreshold: 3, Cooldown: 50 * time.Millisecond},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := 0; i < 4; i++ {
		resp := b.Handle(context.Background(), &broker.Request{Payload: []byte("/feed"), Class: qos.Class1, NoCache: true})
		if resp.Status != broker.StatusOK || string(resp.Payload) != "today's headlines" {
			t.Fatalf("request %d = %+v (%q), want OK via failover", i, resp, resp.Payload)
		}
	}
	if snaps := b.BreakerSnapshots(); snaps[0].Opens != 1 {
		t.Fatalf("replica 0 breaker opens = %d, want 1 (snapshots: %+v)", snaps[0].Opens, snaps)
	}
	if got := b.Metrics().Counter("retries_total").Value(); got < 3 {
		t.Fatalf("retries_total = %d, want ≥ 3", got)
	}

	// FailFirst is exhausted, so after the cooldown a half-open probe must
	// re-admit replica 0.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := b.Handle(context.Background(), &broker.Request{Payload: []byte("/feed"), Class: qos.Class1, NoCache: true})
		if resp.Status != broker.StatusOK {
			t.Fatalf("post-recovery request = %+v", resp)
		}
		if s := b.BreakerSnapshots()[0]; s.State == resilience.StateClosed && s.Successes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 0 not re-admitted: %+v", b.BreakerSnapshots()[0])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
