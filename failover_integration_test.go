package servicebroker

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/frontend"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/qos"
	"servicebroker/internal/registry"
	"servicebroker/internal/testutil"
)

// haMember is one replicated broker behind the HA front end: a gateway
// socket plus a lease registrar, both of which a "crash" destroys without
// deregistering (the lease must lapse at the front end, like a real crash).
type haMember struct {
	t      *testing.T
	broker *broker.Broker
	addr   string // pinned host:port, stable across crash/restart

	mu  sync.Mutex
	gw  *broker.Gateway
	rgr *registry.Registrar
}

func newHAMember(t *testing.T, service string) *haMember {
	t.Helper()
	b, err := broker.New(&backend.DelayConnector{ServiceName: service, ProcessTime: time.Millisecond},
		broker.WithThreshold(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	gw, err := broker.NewGateway("127.0.0.1:0", map[string]*broker.Broker{service: b})
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	m := &haMember{t: t, broker: b, gw: gw, addr: gw.Addr().String()}
	t.Cleanup(m.close)
	return m
}

// register starts lease renewal toward the front end's lease listener.
func (m *haMember) register(service, target string, ttl time.Duration) {
	m.t.Helper()
	rgr, err := registry.NewRegistrar(registry.RegistrarConfig{
		Service:  service,
		Addr:     m.addr,
		Target:   target,
		TTL:      ttl,
		Interval: ttl / 3,
		Load:     m.broker.Load,
	})
	if err != nil {
		m.t.Fatal(err)
	}
	m.mu.Lock()
	m.rgr = rgr
	m.mu.Unlock()
}

// crash kills the member without deregistering: renewals stop (the lease
// lapses at the front end) and the gateway socket closes (peers see refused).
func (m *haMember) crash() {
	m.mu.Lock()
	gw, rgr := m.gw, m.rgr
	m.gw, m.rgr = nil, nil
	m.mu.Unlock()
	if rgr != nil {
		rgr.Abandon()
	}
	if gw != nil {
		gw.Close()
	}
}

// restart rebinds the gateway on its pinned address (retrying briefly on the
// rebind race) and re-registers its lease.
func (m *haMember) restart(service, target string, ttl time.Duration) {
	m.t.Helper()
	var gw *broker.Gateway
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		gw, err = broker.NewGateway(m.addr, map[string]*broker.Broker{service: m.broker})
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		m.t.Fatalf("rebind %s: %v", m.addr, err)
	}
	m.mu.Lock()
	m.gw = gw
	m.mu.Unlock()
	m.register(service, target, ttl)
}

func (m *haMember) close() {
	m.mu.Lock()
	gw, rgr := m.gw, m.rgr
	m.gw, m.rgr = nil, nil
	m.mu.Unlock()
	if rgr != nil {
		rgr.Close()
	}
	if gw != nil {
		gw.Close()
	}
	m.broker.Close()
}

// TestBrokerPoolFailover drives the broker-tier HA path end to end through
// real sockets: three lease-registered broker replicas behind a distributed
// front end, /poolz reflecting membership, a hard crash of one member with
// premium traffic in flight (zero premium failures allowed), lease expiry
// surfacing on /poolz, and the member rejoining after restart.
//
// This is the chaos-soak target: CI runs it under -race repeatedly, and
// CHAOS_LEAK_CHECK=1 adds a goroutine-leak sweep after teardown.
func TestBrokerPoolFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	const (
		service  = "db"
		leaseTTL = 250 * time.Millisecond
	)

	members := []*haMember{newHAMember(t, service), newHAMember(t, service), newHAMember(t, service)}

	// Member 0 doubles as the static -gateway seed (how cmd/frontend boots
	// before any lease arrives); 1 and 2 are discovered purely via leases.
	fe, err := frontend.NewDistributed("127.0.0.1:0",
		members[0].addr,
		[]frontend.Route{{Pattern: "/db", Service: service, DefaultClass: qos.Class3}})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	lsn, err := fe.EnableRegistry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fe.ServeStatus()
	for _, m := range members {
		m.register(service, lsn.Addr(), leaseTTL)
	}

	cli := httpserver.NewClient(fe.Addr(), httpserver.WithPersistent(1))
	defer cli.Close()

	poolz := func() string {
		resp, err := cli.Get("/poolz", nil)
		if err != nil {
			t.Fatalf("/poolz: %v", err)
		}
		return string(resp.Body)
	}
	waitPoolz := func(desc string, ok func(string) bool) string {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			body := poolz()
			if ok(body) {
				return body
			}
			if time.Now().After(deadline) {
				t.Fatalf("/poolz never showed %s; last:\n%s", desc, body)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	liveRows := func(body string) int {
		n := 0
		for _, line := range strings.Split(body, "\n") {
			if strings.Contains(line, "source=lease") && strings.Contains(line, "state=live") {
				n++
			}
		}
		return n
	}

	// All three leases land and show live on /poolz.
	waitPoolz("3 live lease rows", func(b string) bool { return liveRows(b) == 3 })

	premium := func() {
		t.Helper()
		resp, err := cli.Get("/db", map[string]string{"q": "lookup", "qos": "1"})
		if err != nil {
			t.Fatalf("premium request failed: %v", err)
		}
		if resp.Status != 200 || resp.Header["x-broker-status"] != "ok" {
			t.Fatalf("premium request = %d %s %q, want 200 ok",
				resp.Status, resp.Header["x-broker-status"], resp.Body)
		}
	}
	premium()

	// Crash the member an idle pool picks first (weight ties break on
	// address order), so the very next requests must fail over off it.
	victim := members[0]
	for _, m := range members[1:] {
		if m.addr < victim.addr {
			victim = m
		}
	}

	// Hard-crash it and keep premium traffic flowing for longer than the
	// lease TTL + reconcile interval: every request must fail over to the
	// survivors.
	victim.crash()
	crashUntil := time.Now().Add(leaseTTL + time.Second)
	for time.Now().Before(crashUntil) {
		premium()
		time.Sleep(10 * time.Millisecond)
	}

	// The lapsed lease surfaces on /poolz (an expired tombstone for the
	// crashed addr) and in the lease_expirations counter; the failovers the
	// crash forced are visible on the pool counters.
	body := waitPoolz("expired row for crashed member", func(b string) bool {
		for _, line := range strings.Split(b, "\n") {
			if strings.Contains(line, "addr="+victim.addr) && strings.Contains(line, "state=expired") {
				return true
			}
		}
		return false
	})
	if got := fe.Metrics().Counter("lease_expirations").Value(); got < 1 {
		t.Fatalf("lease_expirations = %d, want >= 1; /poolz:\n%s", got, body)
	}
	if got := fe.Metrics().Counter("pool_failovers").Value(); got < 1 {
		t.Fatalf("pool_failovers = %d, want >= 1 after crashing a member", got)
	}

	// Restart on the same address: the lease re-registers, counts as a
	// rejoin, and the member returns to live rotation on /poolz.
	victim.restart(service, lsn.Addr(), leaseTTL)
	waitPoolz("crashed member live again", func(b string) bool {
		for _, line := range strings.Split(b, "\n") {
			if strings.Contains(line, "addr="+victim.addr) &&
				strings.Contains(line, "source=lease") && strings.Contains(line, "state=live") {
				return true
			}
		}
		return false
	})
	if got := fe.Metrics().Counter("lease_rejoins").Value(); got < 1 {
		t.Fatalf("lease_rejoins = %d, want >= 1 after restart", got)
	}
	premium()

	// Chaos-soak mode: tear everything down and verify no goroutine leaked.
	if os.Getenv("CHAOS_LEAK_CHECK") == "1" {
		for _, m := range members {
			m.close()
		}
		cli.Close()
		fe.Close()
		if err := testutil.CheckLeaks(3 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
}
