package servicebroker

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/cluster"
	"servicebroker/internal/frontend"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/ldapdir"
	"servicebroker/internal/mailsvc"
	"servicebroker/internal/qos"
	"servicebroker/internal/sqldb"
)

// TestFullStackAllBackends drives the complete chain — HTTP front end →
// UDP gateway → per-service brokers → four heterogeneous backend servers —
// exactly as Figure 2 draws it.
func TestFullStackAllBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}

	// Backends: database, directory, mail, and a remote web provider.
	engine := sqldb.NewEngine()
	if _, err := engine.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Exec("INSERT INTO kv VALUES (1, 'alpha'), (2, 'beta')"); err != nil {
		t.Fatal(err)
	}
	db, err := sqldb.NewServer(engine, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	dir := ldapdir.NewDirectory()
	root, _ := ldapdir.ParseDN("dc=example")
	if err := dir.Add(root, map[string][]string{"objectclass": {"domain"}}); err != nil {
		t.Fatal(err)
	}
	dirSrv, err := ldapdir.NewServer(dir, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dirSrv.Close()

	mailSrv, err := mailsvc.NewServer(mailsvc.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mailSrv.Close()

	webSrv, err := httpserver.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer webSrv.Close()
	webSrv.Handle("/feed", func(req *httpserver.Request) *httpserver.Response {
		return httpserver.Text("today's headlines")
	})

	// One broker per service, one gateway for all of them.
	brokers := map[string]*broker.Broker{}
	for name, conn := range map[string]backend.Connector{
		"db":   &backend.SQLConnector{Addr: db.Addr().String()},
		"dir":  &backend.DirConnector{Addr: dirSrv.Addr().String()},
		"mail": &backend.MailConnector{Addr: mailSrv.Addr().String()},
		"news": &backend.WebConnector{Addr: webSrv.Addr().String(), ServiceName: "news"},
	} {
		b, err := broker.New(conn, broker.WithThreshold(16, 3), broker.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		brokers[name] = b
	}
	gw, err := broker.NewGateway("127.0.0.1:0", brokers)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// The front-end web server (distributed model) with one route per
	// service.
	routes := []frontend.Route{
		{Pattern: "/db", Service: "db", DefaultClass: qos.Class2},
		{Pattern: "/dir", Service: "dir", DefaultClass: qos.Class2},
		{Pattern: "/mail", Service: "mail", DefaultClass: qos.Class2},
		{Pattern: "/news", Service: "news", DefaultClass: qos.Class3},
	}
	fe, err := frontend.NewDistributed("127.0.0.1:0", gw.Addr().String(), routes)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	cli := httpserver.NewClient(fe.Addr(), httpserver.WithPersistent(2))
	defer cli.Close()

	// Database access through the whole chain.
	resp, err := cli.Get("/db", map[string]string{"q": "SELECT v FROM kv WHERE k = 2", "qos": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "beta") {
		t.Fatalf("db resp = %d %q", resp.Status, resp.Body)
	}

	// Directory: add then search.
	resp, err = cli.Get("/dir", map[string]string{
		"q": "ADD cn=zoe,dc=example objectclass=person|mail=zoe@example.com", "qos": "1"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("dir add = %+v, %v", resp, err)
	}
	resp, err = cli.Get("/dir", map[string]string{"q": "SEARCH dc=example sub (cn=zoe)", "qos": "1"})
	if err != nil || !strings.Contains(string(resp.Body), "zoe@example.com") {
		t.Fatalf("dir search = %q, %v", resp.Body, err)
	}

	// Mail: send then list.
	resp, err = cli.Get("/mail", map[string]string{"q": "SEND a@x.com b@x.com hello from the stack", "qos": "1"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("mail send = %+v, %v", resp, err)
	}
	resp, err = cli.Get("/mail", map[string]string{"q": "LIST b@x.com", "qos": "1"})
	if err != nil || !strings.Contains(string(resp.Body), "a@x.com") {
		t.Fatalf("mail list = %q, %v", resp.Body, err)
	}

	// Loosely coupled web provider.
	resp, err = cli.Get("/news", map[string]string{"q": "/feed", "qos": "1"})
	if err != nil || string(resp.Body) != "today's headlines" {
		t.Fatalf("news = %q, %v", resp.Body, err)
	}
}

// TestBackendRestartRecovery kills the database server mid-run and
// restarts it on the same address; the broker's session pool must discard
// broken sessions and recover without intervention.
func TestBackendRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	engine := sqldb.NewEngine()
	if _, err := engine.Exec("CREATE TABLE t (n INT)"); err != nil {
		t.Fatal(err)
	}
	db, err := sqldb.NewServer(engine, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := db.Addr().String()

	b, err := broker.New(&backend.SQLConnector{Addr: addr},
		broker.WithThreshold(8, 1), broker.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx := context.Background()
	req := &broker.Request{Payload: []byte("SELECT COUNT(*) FROM t"), Class: qos.Class1, NoCache: true}
	if resp := b.Handle(ctx, req); resp.Status != broker.StatusOK {
		t.Fatalf("pre-restart resp = %+v", resp)
	}

	// Kill the backend. In-flight pooled sessions are now broken.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	sawError := false
	for i := 0; i < 3; i++ {
		if resp := b.Handle(ctx, req); resp.Status == broker.StatusError {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("no error surfaced while the backend was down")
	}

	// Restart on the same address (retry briefly: the port may linger).
	var db2 *sqldb.Server
	deadline := time.Now().Add(5 * time.Second)
	for {
		db2, err = sqldb.NewServer(engine, addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer db2.Close()

	// The broker recovers: broken sessions were closed, new dials succeed.
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp := b.Handle(ctx, req)
		if resp.Status == broker.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("broker never recovered: %+v", resp)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCentralizedEndToEndOverload drives the centralized model through a
// real overload: the reporter feeds the listener thread, and the web server
// starts aborting requests up front, then recovers.
func TestCentralizedEndToEndOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	conn := &backend.DelayConnector{ServiceName: "db", ProcessTime: 20 * time.Millisecond, MaxConcurrent: 2}
	b, err := broker.New(conn, broker.WithThreshold(4, 1), broker.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	gw, err := broker.NewGateway("127.0.0.1:0", map[string]*broker.Broker{"db": b})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	routes := []frontend.Route{{Pattern: "/db", Service: "db", DefaultClass: qos.Class1}}
	profiles := map[string][]frontend.Demand{"/db": {{Service: "db", Weight: 1}}}
	fe, err := frontend.NewCentralized("127.0.0.1:0", gw.Addr().String(), "127.0.0.1:0", routes, profiles)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	rep, err := frontend.NewReporter(b, fe.ListenerAddr(), 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	// Saturate the broker with direct holds.
	var hold sync.WaitGroup
	stop := make(chan struct{})
	hold.Add(1)
	go func() {
		defer hold.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			hold.Add(1)
			go func(i int) {
				defer hold.Done()
				b.Handle(context.Background(), &broker.Request{
					Payload: []byte(fmt.Sprintf("hold%d", i)), Class: qos.Class1, NoCache: true,
				})
			}(i)
			time.Sleep(time.Millisecond)
		}
	}()

	// The web server must start answering 503 once a report shows overload.
	cli := httpserver.NewClient(fe.Addr())
	defer cli.Close()
	saw503 := false
	deadline := time.Now().Add(5 * time.Second)
	for !saw503 && time.Now().Before(deadline) {
		resp, err := cli.Get("/db", map[string]string{"q": "probe"})
		if err == nil && resp.Status == 503 {
			saw503 = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	hold.Wait()
	if !saw503 {
		t.Fatal("centralized front end never aborted during overload")
	}

	// After the load drains and a fresh report lands, requests pass again.
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := cli.Get("/db", map[string]string{"q": "recovered"})
		if err == nil && resp.Status == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("front end never recovered (err=%v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fe.ListenerUpdates() == 0 {
		t.Fatal("listener thread processed no reports")
	}
}

// TestClusteredDatabaseEndToEnd exercises clustering through the real
// database wire protocol: identical queries from many clients coalesce into
// repeat-directive accesses.
func TestClusteredDatabaseEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	engine := sqldb.NewEngine()
	if err := sqldb.LoadRecords(engine, 1000); err != nil {
		t.Fatal(err)
	}
	db, err := sqldb.NewServer(engine, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	b, err := broker.New(&backend.SQLConnector{Addr: db.Addr().String()},
		broker.WithThreshold(64, 1),
		broker.WithWorkers(16),
		broker.WithClustering(cluster.RepeatCombiner{}, 8, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 24
	query := "SELECT COUNT(*) FROM records WHERE category = 7"
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := b.Handle(context.Background(), &broker.Request{
				Payload: []byte(query), Class: qos.Class1, NoCache: true,
			})
			if resp.Status != broker.StatusOK {
				t.Errorf("resp = %+v", resp)
				return
			}
			if !strings.Contains(string(resp.Payload), "count") {
				t.Errorf("payload = %q", resp.Payload)
			}
		}()
	}
	wg.Wait()

	// The server saw fewer wire queries than client requests... except the
	// repeat directive re-runs the query server-side; what must shrink is
	// the number of broker→backend accesses, visible as batches > 0 and
	// clustered_requests == n.
	if got := b.Metrics().Counter("clustered_requests").Value(); got != n {
		t.Fatalf("clustered_requests = %d, want %d", got, n)
	}
	batches := b.Metrics().Counter("batches").Value()
	if batches == 0 || batches >= n {
		t.Fatalf("batches = %d, want within (0, %d)", batches, n)
	}
}
