package servicebroker

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/obs"
	"servicebroker/internal/qos"
	"servicebroker/internal/sketch"
	"servicebroker/internal/slo"
)

// TestSLOAlertFlipsUnderClassOverload floods one QoS class through a broker
// with a single slow worker, then scrapes the obs /sloz page: the overloaded
// class must have paged with queue-stage attribution dominating its latency
// budget loss, while the lightly loaded high-priority class stays ok. The
// /hotz page must attribute the flood to its key.
func TestSLOAlertFlipsUnderClassOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}

	fc := &backend.FuncConnector{
		ServiceName: "db",
		DoFn: func(ctx context.Context, p []byte) ([]byte, error) {
			time.Sleep(10 * time.Millisecond)
			return append([]byte("v:"), p...), nil
		},
	}

	var logBuf bytes.Buffer
	b, err := broker.New(fc,
		broker.WithThreshold(128, 3),
		broker.WithWorkers(1),
		broker.WithHotKeys(sketch.Config{TopK: 8}),
		broker.WithSLO(slo.Config{
			Objectives: []slo.Objective{
				// Class 1 has a generous target the light traffic meets.
				{Class: qos.Class1, LatencyTarget: 5 * time.Second, LatencyGoal: 0.9, AvailabilityGoal: 0.5},
				// Class 3's 1ms target is unmeetable once its requests queue
				// behind each other on the single worker.
				{Class: qos.Class3, LatencyTarget: time.Millisecond, LatencyGoal: 0.9, AvailabilityGoal: 0.5},
			},
			FastWindow: time.Second,
			SlowWindow: 4 * time.Second,
			Resolution: 100 * time.Millisecond,
			WarnBurn:   1.5,
			PageBurn:   3,
			Logger:     slog.New(slog.NewTextHandler(&logBuf, nil)),
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Flood class 3 with 30 concurrent requests for one hot key; every one
	// completes OK but waits in the queue far past the 1ms target. Class 1
	// sends a trickle that jumps the QoS queue.
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := b.Handle(context.Background(), &broker.Request{
				Payload: []byte("flood-key"), Class: qos.Class3, NoCache: true,
			})
			if resp.Status != broker.StatusOK {
				t.Errorf("class-3 resp = %+v", resp)
			}
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := b.Handle(context.Background(), &broker.Request{
				Payload: []byte("light-key"), Class: qos.Class1, NoCache: true,
			})
			if resp.Status != broker.StatusOK {
				t.Errorf("class-1 resp = %+v", resp)
			}
		}()
	}
	wg.Wait()

	// Admin plane exactly as cmd/brokerd wires it.
	adminSrv := obs.New()
	adminSrv.MountRegistry("broker.db.", b.Metrics())
	adminSrv.AddSLOSource("db", b.SLOStatus)
	adminSrv.AddHotKeySource("db", b.HotKeySnapshot)
	if err := adminSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer adminSrv.Close()
	base := "http://" + adminSrv.Addr().String()

	sloz := httpGet(t, base+"/sloz")
	if !strings.Contains(sloz, "class=1 state=ok") {
		t.Fatalf("/sloz: healthy class 1 not ok:\n%s", sloz)
	}
	if !strings.Contains(sloz, "class=3 state=page") {
		t.Fatalf("/sloz: overloaded class 3 did not page:\n%s", sloz)
	}

	// Queue time must dominate class 3's stage attribution: its first
	// (largest) stage line after the class header must be the queue stage.
	classIdx := strings.Index(sloz, "class=3")
	stageIdx := strings.Index(sloz[classIdx:], "stage=")
	if stageIdx < 0 {
		t.Fatalf("/sloz: class 3 has no stage attribution:\n%s", sloz)
	}
	topStage := sloz[classIdx+stageIdx:]
	if !strings.HasPrefix(topStage, "stage=queue") {
		t.Fatalf("/sloz: class 3's dominant stage is not queue:\n%s", sloz)
	}

	// The state machine logged the ok → page transition.
	if log := logBuf.String(); !strings.Contains(log, "slo state change") || !strings.Contains(log, "to=page") {
		t.Fatalf("transition log missing page transition:\n%s", log)
	}

	// The flood key leads /hotz.
	hotz := httpGet(t, base+"/hotz")
	first := strings.Index(hotz, "key=")
	if first < 0 || !strings.HasPrefix(hotz[first:], `key="flood-key"`) {
		t.Fatalf("/hotz: flood-key not the top key:\n%s", hotz)
	}

	// The burn-rate gauges landed in the broker registry for /metrics + tsdb.
	metricsPage := httpGet(t, base+"/metrics")
	if !strings.Contains(metricsPage, "broker_db_slo_state_class_3") {
		t.Fatalf("/metrics missing slo state gauge:\n%s", metricsPage)
	}
}
