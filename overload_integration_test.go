package servicebroker

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/frontend"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/obs"
	"servicebroker/internal/overload"
	"servicebroker/internal/qos"
)

// TestAdaptiveOverloadEndToEnd drives the whole chain — HTTP front end →
// UDP gateway → adaptive broker → slot-limited backend — through a
// low-priority flood and checks the overload subsystem edge to edge: the
// AIMD limiter walks the admission limit below the static threshold, shed
// responses surface to HTTP clients with a positive x-retry-after-ms hint,
// premium-class probes still complete at full fidelity, and the /limitz
// admin page reports the live limit.
func TestAdaptiveOverloadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}

	const (
		threshold    = 32
		floodClients = 32
	)

	// A backend with hard concurrency slots: admitted work beyond the slots
	// queues inside the connector, which is exactly the latency signal the
	// limiter feeds on.
	conn := &backend.DelayConnector{
		ServiceName:   "cgi",
		ProcessTime:   5 * time.Millisecond,
		MaxConcurrent: 4,
	}
	b, err := broker.New(conn,
		broker.WithThreshold(threshold, 3),
		broker.WithWorkers(threshold),
		broker.WithAdaptiveLimit(overload.Config{
			Min:           2,
			Max:           threshold,
			LatencyTarget: 6 * time.Millisecond,
			CutWindow:     20 * time.Millisecond,
		}),
		broker.WithSojournBudget(15*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	gw, err := broker.NewGateway("127.0.0.1:0", map[string]*broker.Broker{"cgi": b})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	routes := []frontend.Route{{Pattern: "/cgi", Service: "cgi", DefaultClass: qos.Class2}}
	fe, err := frontend.NewDistributed("127.0.0.1:0", gw.Addr().String(), routes)
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	// Admin plane with the live limiter wired in, as cmd/brokerd does it.
	adminSrv := obs.New()
	adminSrv.AddLimitSource("cgi", b.LimitSnapshot)
	if err := adminSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer adminSrv.Close()

	// The class-3 flood: closed-loop HTTP clients hammering the CGI route.
	var shedWithHint, floodOK atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < floodClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli := httpserver.NewClient(fe.Addr(), httpserver.WithPersistent(1))
			defer cli.Close()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := cli.Get("/cgi", map[string]string{
					"q": "flood-" + strconv.Itoa(c) + "-" + strconv.Itoa(seq), "qos": "3"})
				if err != nil {
					return // front end shutting down under test teardown
				}
				switch resp.Header["x-broker-status"] {
				case "shed":
					if ms, err := strconv.Atoi(resp.Header["x-retry-after-ms"]); err == nil && ms > 0 {
						shedWithHint.Add(1)
						wait := time.Duration(ms) * time.Millisecond
						if wait > 20*time.Millisecond {
							wait = 20 * time.Millisecond
						}
						time.Sleep(wait)
					}
				case "ok":
					if resp.Status == 200 {
						floodOK.Add(1)
					}
				}
			}
		}(c)
	}

	// Let the limiter feel the overload, then probe the premium class.
	time.Sleep(400 * time.Millisecond)
	probeCli := httpserver.NewClient(fe.Addr(), httpserver.WithPersistent(1))
	defer probeCli.Close()
	probeOK := 0
	for i := 0; i < 20; i++ {
		resp, err := probeCli.Get("/cgi", map[string]string{
			"q": "probe-" + strconv.Itoa(i), "qos": "1"})
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		if resp.Status == 200 && resp.Header["x-broker-status"] == "ok" &&
			resp.Header["x-fidelity"] == "full" {
			probeOK++
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Scrape /limitz while the flood is still on, then tear it down.
	limitz := httpGet(t, "http://"+adminSrv.Addr().String()+"/limitz")
	close(stop)
	wg.Wait()

	if shedWithHint.Load() == 0 {
		t.Fatalf("no flood request was shed with a retry-after hint (floodOK=%d)", floodOK.Load())
	}
	if probeOK < 15 {
		t.Fatalf("premium probes OK = %d/20, want the high class mostly unaffected", probeOK)
	}
	sn, ok := b.LimitSnapshot()
	if !ok {
		t.Fatal("adaptive broker reports no limiter snapshot")
	}
	if sn.Limit >= threshold {
		t.Fatalf("limit = %d, want converged below the static threshold %d", sn.Limit, threshold)
	}
	if sn.Cuts == 0 {
		t.Fatalf("limiter never cut under a %d-client flood: %+v", floodClients, sn)
	}
	if !strings.Contains(limitz, "service=cgi limit=") {
		t.Fatalf("/limitz missing live limit line:\n%s", limitz)
	}
	if shed := b.Metrics().Counter("shed_total").Value(); shed == 0 {
		t.Fatal("broker shed_total = 0 under sustained overload")
	}
}
