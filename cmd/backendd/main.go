// Command backendd runs one backend server of the kind the service-broker
// testbed uses: the SQL database, the LDAP-style directory, the mail
// service, a bounded-processing-time CGI web server, or the supply-chain
// effect store (HOLD/RELEASE/PURCHASE/GET with a mutation counter — the
// exactly-once ground truth for transaction-integrity runs, served over
// HTTP at /supply?cmd=...).
//
// Usage:
//
//	backendd -kind db     -addr 127.0.0.1:7001 -records 42000
//	backendd -kind dir    -addr 127.0.0.1:7002
//	backendd -kind mail   -addr 127.0.0.1:7003
//	backendd -kind cgi    -addr 127.0.0.1:7004 -delay 1s -maxclients 5
//	backendd -kind supply -addr 127.0.0.1:7005
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/ldapdir"
	"servicebroker/internal/mailsvc"
	"servicebroker/internal/metrics"
	"servicebroker/internal/obs"
	"servicebroker/internal/sketch"
	"servicebroker/internal/sqldb"
	"servicebroker/internal/tsdb"
)

func main() {
	var (
		kind       = flag.String("kind", "db", "backend kind: db, dir, mail, cgi, supply")
		addr       = flag.String("addr", "127.0.0.1:0", "listen address")
		records    = flag.Int("records", sqldb.PaperRecordCount, "db: fixture row count")
		handshake  = flag.Duration("handshake", 0, "db: artificial connection handshake cost")
		delay      = flag.Duration("delay", time.Second, "cgi: bounded processing time")
		maxClients = flag.Int("maxclients", 5, "cgi: max simultaneous requests")
		admin      = flag.String("admin", "", "admin HTTP address for /metrics, /healthz, pprof (empty disables)")
		drainTO    = flag.Duration("drain-timeout", 5*time.Second, "cgi: how long SIGTERM/SIGINT waits for in-flight requests to finish")
		hotkeys    = flag.Int("hotkeys", 0, "cgi: track the top-N hottest request payloads for /hotz (0 disables)")
	)
	flag.Parse()

	if err := run(*kind, *addr, *records, *handshake, *delay, *maxClients, *admin, *drainTO, *hotkeys); err != nil {
		slog.Error("backendd failed", "err", err)
		os.Exit(1)
	}
}

func run(kind, addr string, records int, handshake, delay time.Duration, maxClients int, admin string, drainTimeout time.Duration, hotkeys int) error {
	reg := metrics.NewRegistry()
	reg.Gauge("up").Set(1)
	served := reg.Counter("cgi_requests")
	// Hot-key tracking is only observable at the CGI server, which sees the
	// request payload; the protocol backends (db/dir/mail) are tracked at
	// their broker instead.
	var hk *sketch.Tracker
	if hotkeys > 0 && kind == "cgi" {
		hk = sketch.NewTracker(sketch.Config{TopK: hotkeys})
	}
	var (
		boundAddr string
		shutdown  func() error
	)
	switch kind {
	case "db":
		engine := sqldb.NewEngine()
		slog.Info("loading fixture records", "count", records)
		if err := sqldb.LoadRecords(engine, records); err != nil {
			return err
		}
		srv, err := sqldb.NewServer(engine, addr, sqldb.WithHandshakeDelay(handshake))
		if err != nil {
			return err
		}
		boundAddr, shutdown = srv.Addr().String(), srv.Close

	case "dir":
		dir := ldapdir.NewDirectory()
		if err := seedDirectory(dir); err != nil {
			return err
		}
		srv, err := ldapdir.NewServer(dir, addr)
		if err != nil {
			return err
		}
		boundAddr, shutdown = srv.Addr().String(), srv.Close

	case "mail":
		srv, err := mailsvc.NewServer(mailsvc.NewStore(), addr)
		if err != nil {
			return err
		}
		boundAddr, shutdown = srv.Addr().String(), srv.Close

	case "cgi":
		srv, err := httpserver.NewServer(addr, httpserver.WithMaxClients(maxClients))
		if err != nil {
			return err
		}
		srv.Handle("/cgi", func(req *httpserver.Request) *httpserver.Response {
			served.Inc()
			start := time.Now()
			time.Sleep(delay)
			if hk != nil {
				hk.RecordAccess(req.Query["q"], false)
				hk.RecordLatency(req.Query["q"], time.Since(start))
			}
			return httpserver.Text(fmt.Sprintf("processed %s after %v", req.Query["q"], delay))
		})
		// Graceful stop: finish in-flight CGI work before closing.
		boundAddr, shutdown = srv.Addr().String(), func() error {
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				slog.Warn("drain deadline passed with requests still in flight", "err", err)
			}
			return srv.Close()
		}

	case "supply":
		// The effect store speaks the EffectConnector command language over
		// HTTP: GET /supply?cmd=HOLD+sku-1+2. Mutations are counted, and
		// /supply?cmd=GET+<sku> reads state without counting, so an external
		// harness can audit exactly-once execution end to end.
		store := &backend.EffectConnector{}
		session, err := store.Connect(context.Background())
		if err != nil {
			return err
		}
		srv, err := httpserver.NewServer(addr, httpserver.WithMaxClients(maxClients))
		if err != nil {
			return err
		}
		srv.Handle("/supply", func(req *httpserver.Request) *httpserver.Response {
			served.Inc()
			out, err := session.Do(context.Background(), []byte(req.Query["cmd"]))
			if err != nil {
				return httpserver.Error(400, err.Error())
			}
			return httpserver.Text(string(out))
		})
		srv.Handle("/supply/mutations", func(*httpserver.Request) *httpserver.Response {
			return httpserver.Text(fmt.Sprintf("mutations=%d holds=%d", store.Mutations(), store.TotalHolds()))
		})
		boundAddr, shutdown = srv.Addr().String(), func() error {
			ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				slog.Warn("drain deadline passed with requests still in flight", "err", err)
			}
			return srv.Close()
		}

	default:
		return fmt.Errorf("unknown kind %q", kind)
	}

	var adminSrv *obs.Server
	if admin != "" {
		adminSrv = obs.New()
		adminSrv.MountRegistry("backend."+kind+".", reg)
		store := tsdb.New(0)
		store.Mount("backend."+kind+".", reg)
		if hk != nil {
			adminSrv.AddHotKeySource("backend."+kind, func() (sketch.Snapshot, bool) { return hk.Snapshot(), true })
		}
		adminSrv.SetTSDB(store)
		store.Start(time.Second)
		defer store.Close()
		if err := adminSrv.Start(admin); err != nil {
			return err
		}
		defer adminSrv.Close()
		slog.Info("admin endpoint up", "addr", adminSrv.Addr().String())
	}

	slog.Info("serving", "kind", kind, "addr", boundAddr)
	wait()
	slog.Info("shutting down")
	if adminSrv != nil {
		// /healthz answers "draining" (503 + Retry-After) while in-flight
		// work finishes, so scrapers see an intentional shutdown.
		adminSrv.SetDraining(true)
	}
	return shutdown()
}

// seedDirectory creates the demo tree brokers and examples expect.
func seedDirectory(dir *ldapdir.Directory) error {
	for _, e := range []struct {
		dn    string
		attrs map[string][]string
	}{
		{"dc=example", map[string][]string{"objectclass": {"domain"}}},
		{"ou=users,dc=example", map[string][]string{"objectclass": {"organizationalUnit"}}},
		{"ou=groups,dc=example", map[string][]string{"objectclass": {"organizationalUnit"}}},
	} {
		dn, err := ldapdir.ParseDN(e.dn)
		if err != nil {
			return err
		}
		if err := dir.Add(dn, e.attrs); err != nil {
			return err
		}
	}
	return nil
}

func wait() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
