// Command loadgen drives a front-end web server the way the paper's
// clients did: ab-style (fixed concurrency, fixed request budget) or
// WebStone-style (per-class best-effort populations for a fixed duration).
//
// Usage:
//
//	loadgen -mode ab -url http://127.0.0.1:8080/db?q=SELECT+1 -n 200 -c 40
//	loadgen -mode webstone -url http://127.0.0.1:8080/db?q=x \
//	        -clients 30 -classes 3 -duration 30s
//
// With -admin the driver serves the obs admin endpoints too, registering
// client-observed latency and error metrics ("client.latency",
// "client.latency_class_N", "client.errors", per-fidelity counters) so the
// driver's view of a run and the broker's view can be compared on one scrape.
//
// With -txn-steps N every virtual client issues N-step transactions instead
// of independent requests: consecutive requests share a "txn" id with "step"
// walking 1..N, and the final (mutating) step carries an "idem" idempotency
// key — so a -txn broker escalates late steps under overload and suppresses
// duplicate effects on retry (DESIGN.md §14).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"servicebroker/internal/httpserver"
	"servicebroker/internal/metrics"
	"servicebroker/internal/obs"
	"servicebroker/internal/qos"
	"servicebroker/internal/sketch"
	"servicebroker/internal/slo"
	"servicebroker/internal/tsdb"
	"servicebroker/internal/workload"
)

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.mode, "mode", "ab", "load model: ab or webstone")
	flag.StringVar(&cfg.url, "url", "", "target URL (http://host:port/path?query)")
	flag.IntVar(&cfg.n, "n", 100, "ab: total requests")
	flag.IntVar(&cfg.c, "c", 10, "ab: concurrency")
	flag.IntVar(&cfg.clients, "clients", 30, "webstone: total clients across classes")
	flag.IntVar(&cfg.classes, "classes", 3, "webstone: QoS classes")
	flag.DurationVar(&cfg.duration, "duration", 30*time.Second, "webstone: run duration")
	flag.DurationVar(&cfg.think, "think", time.Second, "webstone: per-client think time")
	flag.StringVar(&cfg.admin, "admin", "", "admin HTTP address for /metrics, /seriesz, /graphz (empty disables)")
	flag.Float64Var(&cfg.zipf, "zipf", 0, "key-popularity skew s > 0 draws keys Zipf(s)-distributed; the sampled key id replaces every {key} in the URL query")
	flag.IntVar(&cfg.zipfKeys, "zipf-keys", 1000, "zipf: size of the key universe")
	flag.BoolVar(&cfg.slo, "slo", false, "evaluate client-side per-class SLO burn rates, served on -admin /sloz")
	flag.IntVar(&cfg.hotkeys, "hotkeys", 0, "with -zipf: track the top-N hottest sampled keys client-side for -admin /hotz (0 disables)")
	flag.IntVar(&cfg.txnSteps, "txn-steps", 0, "tag requests as N-step transactions (txn/step query params, idem key on the final step; 0 disables)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// runConfig carries every flag; run validates it.
type runConfig struct {
	mode, url        string
	n, c             int
	clients, classes int
	duration, think  time.Duration
	admin            string
	zipf             float64
	zipfKeys         int
	slo              bool
	hotkeys          int
	txnSteps         int
}

// maxBackoff caps how long a retry-after hint can stall one virtual client.
const maxBackoff = 5 * time.Second

// Connection-refused retry policy. During a failover window (the front end
// or a broker restarting) connects fail instantly with ECONNREFUSED; without
// retries every such request counts as an error and inflates failure rates
// in availability ablations. A refused connect is retried with bounded,
// jittered backoff instead; only exhausting the retries scores an error.
const (
	refusedRetries = 4
	refusedBase    = 25 * time.Millisecond
)

// retryableConn reports whether err is a transient connection-level failure
// worth retrying: the peer is not there right now (refused) or dropped the
// connection mid-restart (reset). Application-level failures are not retried.
func retryableConn(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET)
}

// refusedBackoff returns the jittered wait before retry attempt (0-based):
// base<<attempt plus up to half that again, so synchronized clients do not
// reconnect in lockstep the instant a server returns.
func refusedBackoff(attempt int, randInt63n func(int64) int64) time.Duration {
	d := refusedBase << attempt
	return d + time.Duration(randInt63n(int64(d/2)+1))
}

// getWithRetry issues one GET, retrying refused/reset connections with
// jittered backoff. retries counts into reg's "refused_retries".
func getWithRetry(ctx context.Context, cli *httpserver.Client, path string, q map[string]string, reg *metrics.Registry) (*httpserver.Response, error) {
	resp, err := cli.Get(path, q)
	for attempt := 0; err != nil && retryableConn(err) && attempt < refusedRetries; attempt++ {
		reg.Counter("refused_retries").Inc()
		select {
		case <-ctx.Done():
			return nil, err
		case <-time.After(refusedBackoff(attempt, rand.Int63n)):
		}
		resp, err = cli.Get(path, q)
	}
	return resp, err
}

// parseURL splits http://host:port/path?query into pieces.
func parseURL(raw string) (addr, path string, query map[string]string, err error) {
	rest, ok := strings.CutPrefix(raw, "http://")
	if !ok {
		return "", "", nil, fmt.Errorf("url must start with http://, got %q", raw)
	}
	addr, target, ok := strings.Cut(rest, "/")
	if !ok {
		target = ""
	}
	path = "/" + target
	path, rawQuery, _ := strings.Cut(path, "?")
	query = map[string]string{}
	for _, pair := range strings.Split(rawQuery, "&") {
		if pair == "" {
			continue
		}
		k, v, _ := strings.Cut(pair, "=")
		query[k] = unescape(v)
	}
	return addr, path, query, nil
}

// unescape decodes the %XX and + escapes of a query value, so a -url like
// ...?q=SELECT+*+WHERE+id+%3D+{key} carries the decoded text (the client
// re-escapes it on send).
func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '+':
			b.WriteByte(' ')
		case s[i] == '%' && i+2 < len(s):
			if hi, ok1 := unhex(s[i+1]); ok1 {
				if lo, ok2 := unhex(s[i+2]); ok2 {
					b.WriteByte(hi<<4 | lo)
					i += 2
					continue
				}
			}
			b.WriteByte(s[i])
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// keyPlaceholder marks where the Zipf-sampled key id lands in the query.
const keyPlaceholder = "{key}"

// hasKeyPlaceholder reports whether any query value embeds {key}.
func hasKeyPlaceholder(query map[string]string) bool {
	for _, v := range query {
		if strings.Contains(v, keyPlaceholder) {
			return true
		}
	}
	return false
}

func run(cfg runConfig) error {
	mode, url := cfg.mode, cfg.url
	n, c, clients, classes := cfg.n, cfg.c, cfg.clients, cfg.classes
	duration, think, admin := cfg.duration, cfg.think, cfg.admin
	if url == "" {
		return fmt.Errorf("-url is required")
	}
	addr, path, query, err := parseURL(url)
	if err != nil {
		return err
	}

	// Key-popularity skew: each request substitutes a Zipf-sampled key id
	// for {key} in the query, so hot keys emerge at the broker's cache and
	// show up on its /hotz page.
	var keys *workload.ZipfKeys
	if cfg.zipf > 0 {
		if !hasKeyPlaceholder(query) {
			return fmt.Errorf("-zipf requires a %s placeholder in the URL query (e.g. q=SELECT+...+WHERE+id+=+%s)", keyPlaceholder, keyPlaceholder)
		}
		if keys, err = workload.NewZipfKeys(cfg.zipfKeys, cfg.zipf, 20030519); err != nil {
			return err
		}
	}

	// Client-observed metrics: what the driver sees end to end (HTTP +
	// wire + broker + backend), mountable on -admin next to the server-side
	// registries for a same-scrape comparison.
	reg := metrics.NewRegistry()

	// Client-side analytics: the driver scores the latency clients actually
	// observe against the per-class objectives, and (with -zipf) tracks which
	// sampled keys dominate — a cached fidelity counts as a hit, so the
	// client-side /hotz hit ratio approximates the broker cache's.
	var sloEng *slo.Engine
	if cfg.slo {
		sloEng = slo.New(slo.Config{Objectives: slo.DefaultObjectives(), Logger: slog.Default(), Metrics: reg})
	}
	var hk *sketch.Tracker
	if cfg.hotkeys > 0 && keys != nil {
		hk = sketch.NewTracker(sketch.Config{TopK: cfg.hotkeys})
	}

	if admin != "" {
		adminSrv := obs.New()
		adminSrv.MountRegistry("client.", reg)
		if sloEng != nil {
			adminSrv.AddSLOSource("client", func() (slo.Status, bool) { return sloEng.Status(), true })
		}
		if hk != nil {
			adminSrv.AddHotKeySource("client", func() (sketch.Snapshot, bool) { return hk.Snapshot(), true })
		}
		store := tsdb.New(0)
		store.Mount("client.", reg)
		adminSrv.SetTSDB(store)
		store.Start(time.Second)
		defer store.Close()
		if err := adminSrv.Start(admin); err != nil {
			return err
		}
		defer adminSrv.Close()
		slog.Info("admin endpoint up", "addr", adminSrv.Addr().String())
	}

	// target issues one HTTP request with the given class, classifying the
	// response by the front end's x-fidelity header. Each virtual client
	// keeps one persistent connection, like a browser.
	target := func(class qos.Class) workload.Target {
		var (
			mu      sync.Mutex
			clients = map[int]*httpserver.Client{}
		)
		clientFor := func(id int) *httpserver.Client {
			mu.Lock()
			defer mu.Unlock()
			cli, ok := clients[id]
			if !ok {
				cli = httpserver.NewClient(addr, httpserver.WithPersistent(1))
				clients[id] = cli
			}
			return cli
		}
		observe := func(start time.Time, fid qos.Fidelity, err error) {
			elapsed := time.Since(start)
			reg.Counter("requests").Inc()
			reg.Histogram("latency").Observe(elapsed)
			if class >= 1 {
				reg.Histogram(fmt.Sprintf("latency_class_%d", class)).Observe(elapsed)
			}
			if sloEng != nil && class >= 1 {
				ok := err == nil && (fid == qos.FidelityFull || fid == qos.FidelityCached)
				sloEng.Record(class, elapsed, ok)
			}
			if err != nil {
				reg.Counter("errors").Inc()
				return
			}
			reg.Counter("fidelity_" + fid.String()).Inc()
		}
		return func(ctx context.Context, client, seq int) (qos.Fidelity, error) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			cli := clientFor(client)
			q := make(map[string]string, len(query)+1)
			for k, v := range query {
				q[k] = v
			}
			var keyID string
			if keys != nil {
				// Decorrelate the per-class streams so every class does not
				// replay the identical key sequence.
				keyID = strconv.Itoa(keys.Rank(client+int(class)*1000, seq))
				for k, v := range q {
					q[k] = strings.ReplaceAll(v, keyPlaceholder, keyID)
				}
			}
			if class >= 1 {
				q["qos"] = fmt.Sprint(int(class))
			}
			if cfg.txnSteps > 0 {
				// Consecutive requests of one client form one transaction:
				// step walks 1..N, and the final step is the mutation whose
				// idempotency key lets the broker suppress duplicate effects
				// if this client's HTTP retry re-delivers it.
				step := seq%cfg.txnSteps + 1
				q["txn"] = fmt.Sprintf("lg-%d-%d-%d", int(class), client, seq/cfg.txnSteps)
				q["step"] = strconv.Itoa(step)
				if step == cfg.txnSteps {
					q["idem"] = "commit"
				}
				reg.Counter("txn_tagged").Inc()
			}
			start := time.Now()
			resp, err := getWithRetry(ctx, cli, path, q, reg)
			if err != nil {
				observe(start, 0, err)
				return 0, err
			}
			if resp.Status != 200 {
				err := fmt.Errorf("status %d: %s", resp.Status, resp.Body)
				observe(start, 0, err)
				return 0, err
			}
			fid := qos.FidelityFull
			switch resp.Header["x-fidelity"] {
			case "cached":
				fid = qos.FidelityCached
			case "degraded":
				fid = qos.FidelityDegraded
			case "busy":
				fid = qos.FidelityBusy
			}
			observe(start, fid, nil)
			if hk != nil && keyID != "" {
				hk.RecordAccess(keyID, fid == qos.FidelityCached)
				hk.RecordLatency(keyID, time.Since(start))
			}
			// Honor the broker's backpressure hint: a shed response names how
			// long this client should back off before its next request. The
			// hint is capped so a hostile or buggy server cannot stall a run.
			if ms, err := strconv.Atoi(resp.Header["x-retry-after-ms"]); err == nil && ms > 0 {
				backoff := time.Duration(ms) * time.Millisecond
				if backoff > maxBackoff {
					backoff = maxBackoff
				}
				reg.Counter("backoffs").Inc()
				reg.Histogram("backoff_wait").Observe(backoff)
				select {
				case <-ctx.Done():
				case <-time.After(backoff):
				}
			}
			return fid, nil
		}
	}

	switch mode {
	case "ab":
		res, err := workload.ClosedLoop{Concurrency: c, Requests: n}.Run(context.Background(), target(0))
		if err != nil {
			return err
		}
		printResult("ab", res)
		return nil

	case "webstone":
		perClass := clients / classes
		if perClass < 1 {
			perClass = 1
		}
		var groups []workload.Group
		for cl := 1; cl <= classes; cl++ {
			class := qos.Class(cl)
			groups = append(groups, workload.Group{
				Name:      class.String(),
				Class:     class,
				Clients:   perClass,
				Target:    target(class),
				ThinkTime: think,
				Stagger:   duration / 10,
			})
		}
		results, err := workload.Population{Groups: groups, Duration: duration}.Run(context.Background())
		if err != nil {
			return err
		}
		for cl := 1; cl <= classes; cl++ {
			name := qos.Class(cl).String()
			printResult(name, results[name])
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

func printResult(name string, res *workload.Result) {
	fmt.Printf("%-10s issued=%-7d completed=%-7d dropped=%-7d errors=%-5d mean=%-12v p95=%v\n",
		name, res.Issued, res.Completed, res.Dropped, res.Errors,
		res.Latency.Mean(), res.Latency.Quantile(0.95))
}
