package main

import "testing"

func TestParseURL(t *testing.T) {
	addr, path, query, err := parseURL("http://127.0.0.1:8080/db?q=SELECT+1&qos=2")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:8080" || path != "/db" {
		t.Fatalf("addr=%q path=%q", addr, path)
	}
	if query["q"] != "SELECT 1" || query["qos"] != "2" {
		t.Fatalf("query = %v", query)
	}
}

func TestParseURLNoQuery(t *testing.T) {
	addr, path, query, err := parseURL("http://host:1/")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "host:1" || path != "/" || len(query) != 0 {
		t.Fatalf("parsed = %q %q %v", addr, path, query)
	}
}

func TestParseURLBarehost(t *testing.T) {
	addr, path, _, err := parseURL("http://host:1")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "host:1" || path != "/" {
		t.Fatalf("parsed = %q %q", addr, path)
	}
}

func TestParseURLRejectsNonHTTP(t *testing.T) {
	if _, _, _, err := parseURL("ftp://host/x"); err == nil {
		t.Fatal("ftp URL accepted")
	}
	if _, _, _, err := parseURL(""); err == nil {
		t.Fatal("empty URL accepted")
	}
}

func TestRunValidation(t *testing.T) {
	base := runConfig{mode: "ab", n: 1, c: 1, clients: 1, classes: 1, duration: 1}
	if err := run(base); err == nil {
		t.Fatal("missing url accepted")
	}
	warp := base
	warp.mode, warp.url = "warp", "http://h:1/x"
	if err := run(warp); err == nil {
		t.Fatal("unknown mode accepted")
	}
	zipf := base
	zipf.url, zipf.zipf, zipf.zipfKeys = "http://h:1/x?q=SELECT+1", 1.1, 100
	if err := run(zipf); err == nil {
		t.Fatal("-zipf without a {key} placeholder accepted")
	}
}

func TestHasKeyPlaceholder(t *testing.T) {
	if hasKeyPlaceholder(map[string]string{"q": "SELECT 1"}) {
		t.Fatal("false positive")
	}
	if !hasKeyPlaceholder(map[string]string{"q": "WHERE id = {key}"}) {
		t.Fatal("false negative")
	}
}

func TestParseURLUnescapesQuery(t *testing.T) {
	_, _, q, err := parseURL("http://h:1/db?q=SELECT+id+FROM+t+WHERE+id+%3D+{key}&qos=2")
	if err != nil {
		t.Fatal(err)
	}
	if want := "SELECT id FROM t WHERE id = {key}"; q["q"] != want {
		t.Fatalf("q = %q, want %q", q["q"], want)
	}
	// A bare % that is not a valid escape passes through untouched.
	if _, _, q, _ = parseURL("http://h:1/p?v=100%+%zz"); q["v"] != "100% %zz" {
		t.Fatalf("v = %q", q["v"])
	}
}
