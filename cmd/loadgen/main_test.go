package main

import "testing"

func TestParseURL(t *testing.T) {
	addr, path, query, err := parseURL("http://127.0.0.1:8080/db?q=SELECT+1&qos=2")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:8080" || path != "/db" {
		t.Fatalf("addr=%q path=%q", addr, path)
	}
	if query["q"] != "SELECT 1" || query["qos"] != "2" {
		t.Fatalf("query = %v", query)
	}
}

func TestParseURLNoQuery(t *testing.T) {
	addr, path, query, err := parseURL("http://host:1/")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "host:1" || path != "/" || len(query) != 0 {
		t.Fatalf("parsed = %q %q %v", addr, path, query)
	}
}

func TestParseURLBarehost(t *testing.T) {
	addr, path, _, err := parseURL("http://host:1")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "host:1" || path != "/" {
		t.Fatalf("parsed = %q %q", addr, path)
	}
}

func TestParseURLRejectsNonHTTP(t *testing.T) {
	if _, _, _, err := parseURL("ftp://host/x"); err == nil {
		t.Fatal("ftp URL accepted")
	}
	if _, _, _, err := parseURL(""); err == nil {
		t.Fatal("empty URL accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("ab", "", 1, 1, 1, 1, 1, 0, ""); err == nil {
		t.Fatal("missing url accepted")
	}
	if err := run("warp", "http://h:1/x", 1, 1, 1, 1, 1, 0, ""); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
