package main

import (
	"context"
	"fmt"
	"net"
	"syscall"
	"testing"
	"time"

	"servicebroker/internal/httpserver"
	"servicebroker/internal/metrics"
)

func TestParseURL(t *testing.T) {
	addr, path, query, err := parseURL("http://127.0.0.1:8080/db?q=SELECT+1&qos=2")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:8080" || path != "/db" {
		t.Fatalf("addr=%q path=%q", addr, path)
	}
	if query["q"] != "SELECT 1" || query["qos"] != "2" {
		t.Fatalf("query = %v", query)
	}
}

func TestParseURLNoQuery(t *testing.T) {
	addr, path, query, err := parseURL("http://host:1/")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "host:1" || path != "/" || len(query) != 0 {
		t.Fatalf("parsed = %q %q %v", addr, path, query)
	}
}

func TestParseURLBarehost(t *testing.T) {
	addr, path, _, err := parseURL("http://host:1")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "host:1" || path != "/" {
		t.Fatalf("parsed = %q %q", addr, path)
	}
}

func TestParseURLRejectsNonHTTP(t *testing.T) {
	if _, _, _, err := parseURL("ftp://host/x"); err == nil {
		t.Fatal("ftp URL accepted")
	}
	if _, _, _, err := parseURL(""); err == nil {
		t.Fatal("empty URL accepted")
	}
}

func TestRunValidation(t *testing.T) {
	base := runConfig{mode: "ab", n: 1, c: 1, clients: 1, classes: 1, duration: 1}
	if err := run(base); err == nil {
		t.Fatal("missing url accepted")
	}
	warp := base
	warp.mode, warp.url = "warp", "http://h:1/x"
	if err := run(warp); err == nil {
		t.Fatal("unknown mode accepted")
	}
	zipf := base
	zipf.url, zipf.zipf, zipf.zipfKeys = "http://h:1/x?q=SELECT+1", 1.1, 100
	if err := run(zipf); err == nil {
		t.Fatal("-zipf without a {key} placeholder accepted")
	}
}

func TestHasKeyPlaceholder(t *testing.T) {
	if hasKeyPlaceholder(map[string]string{"q": "SELECT 1"}) {
		t.Fatal("false positive")
	}
	if !hasKeyPlaceholder(map[string]string{"q": "WHERE id = {key}"}) {
		t.Fatal("false negative")
	}
}

func TestRetryableConn(t *testing.T) {
	refused := fmt.Errorf("dial: %w", syscall.ECONNREFUSED)
	reset := fmt.Errorf("read: %w", syscall.ECONNRESET)
	timeout := fmt.Errorf("read: %w", syscall.ETIMEDOUT)
	if !retryableConn(refused) || !retryableConn(reset) {
		t.Fatal("refused/reset not classified retryable")
	}
	if retryableConn(timeout) || retryableConn(fmt.Errorf("bad status")) || retryableConn(nil) {
		t.Fatal("non-connection error classified retryable")
	}
}

func TestRefusedBackoffJittered(t *testing.T) {
	// With the RNG pinned to its max draw, each attempt waits base<<attempt
	// plus half that again; with zero draw, exactly base<<attempt.
	maxDraw := func(n int64) int64 { return n - 1 }
	zeroDraw := func(int64) int64 { return 0 }
	for attempt := 0; attempt < refusedRetries; attempt++ {
		lo := refusedBase << attempt
		if got := refusedBackoff(attempt, zeroDraw); got != lo {
			t.Errorf("attempt %d zero-jitter backoff %v, want %v", attempt, got, lo)
		}
		if got := refusedBackoff(attempt, maxDraw); got < lo || got > lo+lo/2 {
			t.Errorf("attempt %d jittered backoff %v outside [%v, %v]", attempt, got, lo, lo+lo/2)
		}
	}
}

func TestGetWithRetryRefusedExhausts(t *testing.T) {
	// Reserve a port with no listener: every connect fails ECONNREFUSED, so
	// the request retries refusedRetries times, counts each, and still errors.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cli := httpserver.NewClient(addr)
	defer cli.Close()
	reg := metrics.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := getWithRetry(ctx, cli, "/x", nil, reg); err == nil {
		t.Fatal("refused connect reported success")
	}
	if got := reg.Counter("refused_retries").Value(); got != refusedRetries {
		t.Fatalf("refused_retries = %d, want %d", got, refusedRetries)
	}
}

func TestGetWithRetryStopsOnCancel(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cli := httpserver.NewClient(addr)
	defer cli.Close()
	reg := metrics.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := getWithRetry(ctx, cli, "/x", nil, reg); err == nil {
		t.Fatal("cancelled retry reported success")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled retry still backed off for %v", elapsed)
	}
}

func TestParseURLUnescapesQuery(t *testing.T) {
	_, _, q, err := parseURL("http://h:1/db?q=SELECT+id+FROM+t+WHERE+id+%3D+{key}&qos=2")
	if err != nil {
		t.Fatal(err)
	}
	if want := "SELECT id FROM t WHERE id = {key}"; q["q"] != want {
		t.Fatalf("q = %q, want %q", q["q"], want)
	}
	// A bare % that is not a valid escape passes through untouched.
	if _, _, q, _ = parseURL("http://h:1/p?v=100%+%zz"); q["v"] != "100% %zz" {
		t.Fatalf("v = %q", q["v"])
	}
}
