// Command sbexp regenerates the paper's evaluation: every figure and table
// of "Using Service Brokers for Accessing Backend Servers for Web
// Applications" (Chen & Mohapatra, ICDCS 2003), plus the ablation studies
// described in DESIGN.md.
//
// Usage:
//
//	sbexp -exp all                      # everything
//	sbexp -exp fig7                     # request clustering (Figure 7)
//	sbexp -exp fig7a                    # adaptive degree vs static, capacity step
//	sbexp -exp fig9|fig10|table1        # service differentiation
//	sbexp -exp table2|table3|table4     # per-broker drop ratios
//	sbexp -exp ablations                # design-choice ablations
//	sbexp -exp obs                      # tracing-overhead benchmark
//	sbexp -exp overload                 # static vs adaptive admission ablation
//	sbexp -exp hotkey                   # hot-key detection under a popularity flip
//	sbexp -exp txn                      # transaction integrity: escalation + idempotency
//	sbexp -exp wire                     # hot-path throughput: batching + coalescing vs baseline
//	sbexp -scale 20ms                   # wall time per paper second
//	sbexp -quick                        # smaller sweeps for a fast pass
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"servicebroker/internal/experiments"
	"servicebroker/internal/metrics"
	"servicebroker/internal/obs"
	"servicebroker/internal/sqldb"
)

// knownExperiments is the single source of truth for -exp values: the flag
// help, the dispatch check, and the unknown-value error all derive from it.
var knownExperiments = []string{
	"all", "fig7", "fig7a", "fig9", "fig10",
	"table1", "table2", "table3", "table4",
	"ablations", "obs", "overload", "hotkey", "failover", "fleet", "txn", "wire",
}

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: "+strings.Join(knownExperiments, ", "))
		scale  = flag.Duration("scale", 20*time.Millisecond, "wall-clock length of one paper second")
		quick  = flag.Bool("quick", false, "smaller sweeps for a fast pass")
		csvDir = flag.String("csv", "", "also write figure/table data as CSV files into this directory")
		admin  = flag.String("admin", "", "admin HTTP address for /metrics and pprof during long sweeps (empty disables)")
	)
	flag.Parse()

	if err := run(*exp, *scale, *quick, *csvDir, *admin); err != nil {
		fmt.Fprintln(os.Stderr, "sbexp:", err)
		os.Exit(1)
	}
}

func run(exp string, scale time.Duration, quick bool, csvDir, admin string) error {
	ctx := context.Background()

	// Long sweeps benefit from live pprof; the progress registry lets an
	// operator watch sections complete from /metrics.
	progress := metrics.NewRegistry()
	sections := progress.Counter("sections_done")
	if admin != "" {
		adminSrv := obs.New()
		adminSrv.MountRegistry("sbexp.", progress)
		if err := adminSrv.Start(admin); err != nil {
			return err
		}
		defer adminSrv.Close()
		fmt.Println("admin endpoint on http://" + adminSrv.Addr().String())
	}
	writeCSV := func(name, content string) error {
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	needDiff := map[string]bool{
		"all": true, "fig9": true, "fig10": true,
		"table1": true, "table2": true, "table3": true, "table4": true,
	}[exp]

	if exp == "all" || exp == "fig7" {
		cfg := experiments.DefaultClusteringConfig()
		if quick {
			cfg.Records = 5000
			cfg.Requests = 60
			cfg.Degrees = []int{1, 2, 5, 10, 20, 40}
		}
		fmt.Printf("running request clustering sweep (records=%d, %d clients, degrees=%v)...\n",
			cfg.Records, cfg.Concurrency, cfg.Degrees)
		series, err := experiments.RunClustering(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Println(experiments.Figure7(series))
		if err := writeCSV("fig7.csv", experiments.Figure7CSV(series)); err != nil {
			return err
		}
		sections.Inc()
	}

	if needDiff {
		cfg := experiments.DefaultDifferentiationConfig(scale)
		if quick {
			cfg.ClientCounts = []int{10, 30, 50, 70, 90}
		}
		fmt.Printf("running service differentiation sweep (scale %v/paper-second, clients=%v)...\n",
			scale, cfg.ClientCounts)
		res, err := experiments.RunDifferentiation(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Println()
		if exp == "all" || exp == "fig9" {
			fmt.Println(experiments.Figure9(res))
		}
		if exp == "all" || exp == "fig10" {
			fmt.Println(experiments.Figure10(res))
		}
		if exp == "all" || exp == "table1" {
			fmt.Println(experiments.Table1(res))
		}
		for i, name := range []string{"table2", "table3", "table4"} {
			if exp == "all" || exp == name {
				fmt.Println(experiments.DropTable(res, i))
			}
		}
		for name, content := range experiments.DiffCSVs(res) {
			if err := writeCSV(name, content); err != nil {
				return err
			}
		}
		sections.Inc()
	}

	if exp == "all" || exp == "ablations" {
		if err := runAblations(ctx, quick); err != nil {
			return err
		}
		sections.Inc()
	}

	if exp == "all" || exp == "obs" {
		if err := runTraceOverhead(ctx, quick); err != nil {
			return err
		}
		sections.Inc()
	}

	if exp == "all" || exp == "overload" {
		if err := runOverload(ctx, quick); err != nil {
			return err
		}
		sections.Inc()
	}

	if exp == "all" || exp == "fig7a" {
		if err := runAdaptiveClustering(ctx, quick); err != nil {
			return err
		}
		sections.Inc()
	}

	if exp == "all" || exp == "hotkey" {
		if err := runHotkeyDetection(ctx, quick); err != nil {
			return err
		}
		sections.Inc()
	}

	if exp == "all" || exp == "failover" {
		if err := runFailover(ctx, quick); err != nil {
			return err
		}
		sections.Inc()
	}

	if exp == "all" || exp == "fleet" {
		if err := runFleetOverhead(ctx, quick); err != nil {
			return err
		}
		sections.Inc()
	}

	if exp == "all" || exp == "txn" {
		if err := runTxnIntegrity(ctx, quick); err != nil {
			return err
		}
		sections.Inc()
	}

	if exp == "all" || exp == "wire" {
		if err := runWireThroughput(ctx, quick); err != nil {
			return err
		}
		sections.Inc()
	}

	for _, known := range knownExperiments {
		if exp == known {
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q; available experiments: %s",
		exp, strings.Join(knownExperiments, ", "))
}

// runAdaptiveClustering runs the fig7a ablation (static clustering degrees vs
// the adaptive controller through a mid-run backend capacity step) and writes
// BENCH_clustering_adaptive.json in the working directory.
func runAdaptiveClustering(ctx context.Context, quick bool) error {
	cfg := experiments.DefaultAdaptiveClusteringConfig(quick)
	fmt.Printf("running adaptive clustering ablation (clients=%d, slots %d→%d, degrees=%v, adaptive max=%d)...\n",
		cfg.Clients, cfg.SlotsA, cfg.SlotsB, cfg.Degrees, cfg.MaxDegree)
	res, err := experiments.RunAdaptiveClustering(ctx, cfg)
	if err != nil {
		return err
	}
	for _, s := range res.Static {
		fmt.Printf("  static degree %-3d phaseA=%7.2fms phaseB=%7.2fms\n",
			s.Degree, s.PhaseAMeanMs, s.PhaseBMeanMs)
	}
	for _, p := range []experiments.AdaptiveClusteringPhase{res.PhaseA, res.PhaseB} {
		fmt.Printf("  slots=%-2d best d=%-3d %7.2fms  worst d=%-3d %7.2fms (%.1fx)  adaptive %7.2fms (%.2fx of best, ended at d=%d)\n",
			p.Slots, p.BestDegree, p.BestMeanMs, p.WorstDegree, p.WorstMeanMs,
			p.WorstVsBest, p.AdaptiveMeanMs, p.AdaptiveVsBest, p.AdaptiveDegreeEnd)
	}
	fmt.Println()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	const benchFile = "BENCH_clustering_adaptive.json"
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", benchFile)
	return nil
}

// runTxnIntegrity runs the transaction-integrity ablation (flat baseline vs
// step escalation + saga compensation + idempotency on the congested
// three-step purchase, plus duplicate-delivery and wire-overhead sections)
// and writes BENCH_txn.json in the working directory.
func runTxnIntegrity(ctx context.Context, quick bool) error {
	cfg := experiments.DefaultTxnIntegrityConfig(quick)
	fmt.Printf("running transaction integrity ablation (%d purchases, vendor slots=%d, %d duplicated mutations)...\n",
		cfg.Purchases, cfg.VendorSlots, cfg.DuplicateMutations)
	res, err := experiments.RunTxnIntegrity(ctx, cfg)
	if err != nil {
		return err
	}
	for _, m := range []experiments.TxnIntegrityMode{res.Baseline, res.Integrity} {
		fmt.Printf("  %-9s late_aborts=%d/%d (rate %.2f) completed=%d compensations=%d orphaned_holds=%d\n",
			m.Name, m.LateAborts, m.Purchases, m.LateAbortRate, m.Completed,
			m.CompensationsRun, m.OrphanedHolds)
		fmt.Printf("  %-9s duplicates: delivered=%d logical=%d backend_mutations=%d suppressed=%d\n",
			m.Name, m.DuplicatesDelivered, m.LogicalMutations, m.BackendMutations, m.DuplicatesSuppressed)
	}
	fmt.Printf("  wire: untagged %dB (v%d, +%.2f%%), tagged %dB (v%d, +%dB), encode %0.fns vs %.0fns\n",
		res.Wire.UntaggedBytes, res.Wire.UntaggedVersion, res.Wire.UntaggedPct,
		res.Wire.TaggedBytes, res.Wire.TaggedVersion, res.Wire.TaggedExtra,
		res.Wire.EncodeUntagged, res.Wire.EncodeTagged)
	fmt.Println()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	const benchFile = "BENCH_txn.json"
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", benchFile)
	return nil
}

// runWireThroughput runs the hot-path throughput benchmark (plain wire path
// vs datagram batching + single-flight coalescing under a duplicate-heavy
// workload) and writes BENCH_wire_throughput.json in the working directory.
func runWireThroughput(ctx context.Context, quick bool) error {
	cfg := experiments.DefaultWireThroughputConfig(quick)
	fmt.Printf("running wire throughput benchmark (%d requests/mode, concurrency=%d, keyspace=%d, backend %v x%d, flush window %v)...\n",
		cfg.Requests, cfg.Concurrency, cfg.Keyspace, cfg.BackendTime, cfg.BackendConcurrent, cfg.FlushWindow)
	res, err := experiments.RunWireThroughput(ctx, cfg)
	if err != nil {
		return err
	}
	for _, m := range []experiments.WireThroughputMode{res.Baseline, res.Optimized} {
		fmt.Printf("  %-17s %8.0f req/s mean=%8.0fµs p95=%8.0fµs backend_trips=%d frames/datagrams out: client %d/%d server %d/%d\n",
			m.Name, m.ReqPerSec, m.MeanMicros, m.P95Micros, m.BackendTrips,
			m.ClientFramesOut, m.ClientDatagramsOut, m.ServerFramesOut, m.ServerDatagramsOut)
	}
	fmt.Printf("  speedup=%.2fx syscalls_saved=%.1f%% coalesced=%d shared=%d decode_allocs/op=%.1f\n\n",
		res.SpeedupX, res.SyscallsSavedPct, res.Optimized.Coalesced, res.Optimized.CoalesceShared,
		res.DecodeAllocsPerOp)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	const benchFile = "BENCH_wire_throughput.json"
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", benchFile)
	return nil
}

// runFailover rolls a deterministic kill/hang/partition schedule through a
// replicated broker pool and through a single-broker baseline, and writes
// BENCH_availability.json in the working directory.
func runFailover(ctx context.Context, quick bool) error {
	cfg := experiments.DefaultFailoverConfig(quick)
	fmt.Printf("running broker failover ablation (%d members, %d kills, %v down each, deadline %v, run %v)...\n",
		cfg.Members, cfg.Kills, cfg.DownFor, cfg.Deadline, cfg.Run)
	res, err := experiments.RunBrokerFailover(ctx, cfg)
	if err != nil {
		return err
	}
	for _, m := range []experiments.FailoverMode{res.Single, res.Pool} {
		fmt.Printf("  %-7s members=%d availability=%6.2f%% issued=%d ok=%d stale=%d errors=%d premium_lost=%d failovers=%d lease_expirations=%d rejoins=%d\n",
			m.Name, m.Members, m.Availability*100, m.Issued, m.OK, m.Stale, m.Errors,
			m.PremiumLost, m.Failovers, m.LeaseExpirations, m.LeaseRejoins)
	}
	fmt.Println()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	const benchFile = "BENCH_availability.json"
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", benchFile)
	return nil
}

// runHotkeyDetection replays a ground-truth Zipf workload with a mid-run
// popularity flip through the hot-key tracker and writes BENCH_hotkey.json
// in the working directory.
func runHotkeyDetection(ctx context.Context, quick bool) error {
	cfg := experiments.DefaultHotkeyConfig(quick)
	fmt.Printf("running hot-key detection benchmark (keys=%d, zipf s=%.1f, %d requests/phase, top-k=%d)...\n",
		cfg.Keys, cfg.Skew, cfg.RequestsPerPhase, cfg.TopK)
	res, err := experiments.RunHotkeyDetection(ctx, cfg)
	if err != nil {
		return err
	}
	for _, p := range []experiments.HotkeyPhase{res.PhaseA, res.PhaseB} {
		fmt.Printf("  %-8s recall=%.2f rank_recall=%.2f skew_est=%.2f\n",
			p.Name, p.Recall, p.RankRecall, p.SkewEstimate)
	}
	fmt.Printf("  flip detected after %d requests (%v); memory=%dB record=%.0fns/op\n",
		res.DetectionRequests, res.DetectionLatency, res.MemoryBytes, res.RecordNsPerOp)
	fmt.Println()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	const benchFile = "BENCH_hotkey.json"
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", benchFile)
	return nil
}

// runOverload runs the step-overload ablation (static threshold vs adaptive
// admission) and writes BENCH_overload.json in the working directory.
func runOverload(ctx context.Context, quick bool) error {
	cfg := experiments.DefaultOverloadConfig(quick)
	fmt.Printf("running overload ablation (backend slots=%d, flood clients=%d, threshold=%d, latency target=%s)...\n",
		cfg.BackendSlots, cfg.FloodClients, cfg.Threshold, cfg.LatencyTarget)
	res, err := experiments.RunOverloadAblation(ctx, cfg)
	if err != nil {
		return err
	}
	for _, m := range []experiments.OverloadMode{res.Static, res.Adaptive} {
		fmt.Printf("  %-8s probe p95 unloaded=%7.0fµs overloaded=%7.0fµs (%.1fx) shed=%d evicted=%d limit=%d\n",
			m.Name, m.UnloadedP95Micros, m.LoadedP95Micros, m.DegradationRatio,
			m.ShedTotal, m.SojournEvictions, m.FinalLimit)
	}
	fmt.Println()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	const benchFile = "BENCH_overload.json"
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", benchFile)
	return nil
}

// runTraceOverhead benchmarks the observability layer's cost on the Figure 9
// access path (tracing off vs on vs on+sampling) and writes the result to
// BENCH_trace_overhead.json in the working directory.
func runTraceOverhead(ctx context.Context, quick bool) error {
	cfg := experiments.DefaultTraceOverheadConfig(quick)
	fmt.Printf("running tracing-overhead benchmark (records=%d, %d requests/mode, concurrency=%d)...\n",
		cfg.Records, cfg.Requests, cfg.Concurrency)
	res, err := experiments.RunTraceOverhead(ctx, cfg)
	if err != nil {
		return err
	}
	for _, m := range []experiments.TraceOverheadMode{res.Off, res.Traced, res.Sampled} {
		fmt.Printf("  %-8s mean=%9.0fµs p95=%9.0fµs overhead=%+5.2f%% spans merged=%d\n",
			m.Name, m.MeanMicros, m.P95Micros, m.OverheadPct, m.SpansMerged)
	}
	fmt.Println()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	const benchFile = "BENCH_trace_overhead.json"
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", benchFile)
	return nil
}

// runFleetOverhead benchmarks the fleet federation plane's cost on the
// Figure 9 access path (no scraper vs a federator sweeping the member's
// admin plane during load) and writes BENCH_fleet_overhead.json in the
// working directory.
func runFleetOverhead(ctx context.Context, quick bool) error {
	cfg := experiments.DefaultFleetOverheadConfig(quick)
	fmt.Printf("running fleet federation overhead benchmark (records=%d, %d requests/mode, concurrency=%d, scrape every %v)...\n",
		cfg.Records, cfg.Requests, cfg.Concurrency, cfg.ScrapeInterval)
	res, err := experiments.RunFleetOverhead(ctx, cfg)
	if err != nil {
		return err
	}
	for _, m := range []experiments.FleetOverheadMode{res.Off, res.Federated} {
		fmt.Printf("  %-10s mean=%9.0fµs p95=%9.0fµs overhead=%+5.2f%%\n",
			m.Name, m.MeanMicros, m.P95Micros, m.OverheadPct)
	}
	fmt.Printf("  federator: scrapes=%d errors=%d federated series=%d\n\n",
		res.Scrapes, res.ScrapeErrors, res.FederatedSeries)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	const benchFile = "BENCH_fleet_overhead.json"
	if err := os.WriteFile(benchFile, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", benchFile)
	return nil
}

func runAblations(ctx context.Context, quick bool) error {
	requests := 200
	if quick {
		requests = 60
	}

	fmt.Println("Ablation — persistent vs per-request connections")
	for _, cost := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond} {
		res, err := experiments.RunConnectionAblation(ctx, cost, requests)
		if err != nil {
			return err
		}
		fmt.Printf("  connect=%-8v API mean=%-12v broker mean=%-12v speedup=%.1fx\n",
			res.ConnectCost, res.APIMean, res.BrokerMean,
			float64(res.APIMean)/float64(res.BrokerMean))
	}
	fmt.Println()

	fmt.Println("Ablation — result caching under a hot-spot workload (movie-schedule scenario)")
	res, err := experiments.RunCacheAblation(ctx, 3*time.Millisecond, requests*2, 10, 0.9)
	if err != nil {
		return err
	}
	fmt.Printf("  uncached: mean=%-12v backend queries=%d\n", res.UncachedMean, res.UncachedBackend)
	fmt.Printf("  cached:   mean=%-12v backend queries=%d hit ratio=%.2f\n\n",
		res.CachedMean, res.CachedBackend, res.HitRatio)

	fmt.Println("Ablation — load balancing policies on heterogeneous replicas")
	lb, err := experiments.RunLoadBalanceComparison(ctx, requests)
	if err != nil {
		return err
	}
	for name, mean := range lb.Mean {
		fmt.Printf("  %-20s mean=%v\n", name, mean)
	}
	fmt.Println()

	fmt.Println("Ablation — prefetching a periodically updated source (news headlines)")
	pf, err := experiments.RunPrefetchAblation(ctx, 8*time.Millisecond, 12, 4)
	if err != nil {
		return err
	}
	fmt.Printf("  without prefetch: mean=%-12v hit ratio=%.2f\n", pf.NoPrefetchMean, pf.NoPrefetchHit)
	fmt.Printf("  with prefetch:    mean=%-12v hit ratio=%.2f (%d prefetches)\n\n",
		pf.PrefetchMean, pf.PrefetchHit, pf.Prefetched)

	fmt.Println("Ablation — centralized vs distributed deployment models")
	mc, err := experiments.RunModelComparison(ctx, requests/2)
	if err != nil {
		return err
	}
	fmt.Printf("  distributed per-request mean: %v\n", mc.DistributedMean)
	fmt.Printf("  centralized per-request mean: %v (admission check included)\n", mc.CentralizedMean)
	fmt.Printf("  centralized aborts under overload: %d; listener updates processed: %d\n\n",
		mc.CentralizedAborts, mc.ListenerUpdates)

	fmt.Println("Ablation — failover: one of three replicas killed mid-run")
	fo, err := experiments.RunFailoverAblation(ctx, requests)
	if err != nil {
		return err
	}
	fmt.Printf("  baseline (no resilience): %d ok, %d errors\n", fo.BaselineOK, fo.BaselineErrors)
	fmt.Printf("  resilient (retry+breaker): %d ok, %d errors (breaker opens: %d)\n\n",
		fo.ResilientOK, fo.ResilientErrors, fo.BreakerOpens)

	fmt.Println("Ablation — transaction-step priority escalation under overload")
	tx, err := experiments.RunTxnAblation(ctx, 30)
	if err != nil {
		return err
	}
	fmt.Printf("  flat class-3 step-3 drops:      %d/30\n", tx.FlatLateDrops)
	fmt.Printf("  escalated class-3 step-3 drops: %d/30\n\n", tx.EscalatedLateDrops)

	// Keep the fixture constant name referenced so readers can find it.
	fmt.Printf("(clustering fixture: %s table, paper size %d rows)\n",
		sqldb.RecordsTable, sqldb.PaperRecordCount)
	return nil
}
