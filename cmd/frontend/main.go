// Command frontend runs the front-end web server in either deployment
// model from the paper's §IV: distributed (brokers decide; Figure 5) or
// centralized (the web server runs admission control against broker load
// reports; Figure 4).
//
// Each -route flag declares one URL route as
//
//	pattern=service
//
// The handler forwards the "q" query parameter as the broker payload and
// reads the QoS class from the "qos" parameter. Example:
//
//	frontend -model distributed -addr 127.0.0.1:8080 \
//	         -gateway 127.0.0.1:6000 -route /db=db -route /dir=dir
//
// In the centralized model, point brokerd's -report-to at the address this
// command prints as its listener.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"servicebroker/internal/frontend"
	"servicebroker/internal/httpserver"
)

type routeFlags []string

func (r *routeFlags) String() string { return strings.Join(*r, ",") }

func (r *routeFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var routes routeFlags
	var (
		model      = flag.String("model", "distributed", "deployment model: distributed or centralized")
		addr       = flag.String("addr", "127.0.0.1:0", "HTTP listen address")
		gateway    = flag.String("gateway", "", "broker gateway UDP address (required)")
		listenAddr = flag.String("load-listen", "127.0.0.1:0", "centralized: UDP address for broker load reports")
		maxClients = flag.Int("maxclients", 0, "cap simultaneous request processing (0 = unlimited)")
	)
	flag.Var(&routes, "route", "route spec pattern=service (repeatable)")
	flag.Parse()

	if err := run(*model, *addr, *gateway, *listenAddr, *maxClients, routes); err != nil {
		fmt.Fprintln(os.Stderr, "frontend:", err)
		os.Exit(1)
	}
}

func run(model, addr, gateway, listenAddr string, maxClients int, routeSpecs routeFlags) error {
	if gateway == "" {
		return fmt.Errorf("-gateway is required")
	}
	if len(routeSpecs) == 0 {
		return fmt.Errorf("at least one -route is required")
	}
	var routes []frontend.Route
	profiles := make(map[string][]frontend.Demand)
	for _, spec := range routeSpecs {
		pattern, service, ok := strings.Cut(spec, "=")
		if !ok || pattern == "" || service == "" {
			return fmt.Errorf("bad -route %q, want pattern=service", spec)
		}
		routes = append(routes, frontend.Route{Pattern: pattern, Service: service})
		profiles[pattern] = []frontend.Demand{{Service: service, Weight: 1}}
	}

	var httpOpts []httpserver.ServerOption
	if maxClients > 0 {
		httpOpts = append(httpOpts, httpserver.WithMaxClients(maxClients))
	}

	switch model {
	case "distributed":
		d, err := frontend.NewDistributed(addr, gateway, routes, httpOpts...)
		if err != nil {
			return err
		}
		defer d.Close()
		d.ServeStatus()
		fmt.Printf("frontend: distributed model on http://%s (gateway %s)\n", d.Addr(), gateway)
		fmt.Printf("frontend: diagnostics at http://%s/broker-status\n", d.Addr())
		wait()
		fmt.Println("frontend: shutting down")
		return nil

	case "centralized":
		c, err := frontend.NewCentralized(addr, gateway, listenAddr, routes, profiles, httpOpts...)
		if err != nil {
			return err
		}
		defer c.Close()
		c.ServeStatus()
		fmt.Printf("frontend: centralized model on http://%s (gateway %s)\n", c.Addr(), gateway)
		fmt.Printf("frontend: diagnostics at http://%s/broker-status\n", c.Addr())
		fmt.Printf("frontend: load-report listener on %s — point brokerd -report-to here\n", c.ListenerAddr())
		wait()
		fmt.Println("frontend: shutting down")
		return nil

	default:
		return fmt.Errorf("unknown model %q", model)
	}
}

func wait() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
