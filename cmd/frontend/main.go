// Command frontend runs the front-end web server in either deployment
// model from the paper's §IV: distributed (brokers decide; Figure 5) or
// centralized (the web server runs admission control against broker load
// reports; Figure 4).
//
// Each -route flag declares one URL route as
//
//	pattern=service
//
// The handler forwards the "q" query parameter as the broker payload and
// reads the QoS class from the "qos" parameter. Multi-step transactions tag
// requests with "txn" and "step" (the broker escalates late steps under
// overload), and a mutating step adds an "idem" idempotency key so a retried
// or failed-over delivery replays the recorded first outcome instead of
// re-executing (DESIGN.md §14). Example:
//
//	frontend -model distributed -addr 127.0.0.1:8080 \
//	         -gateway 127.0.0.1:6000 -route /db=db -route /dir=dir
//
// -gateway accepts several "|"-separated addresses; the front end then
// routes each request across the replicated broker pool with health-weighted
// failover. With -registry the pool additionally discovers members through
// lease registration (brokerd -register-to): the distributed model binds a
// lease listener on -registry-listen, the centralized model accepts lease
// datagrams on its existing -load-listen socket. Pool membership is served
// on /poolz (both the web status plane and, with -admin, the obs plane).
//
// In the centralized model, point brokerd's -report-to at the address this
// command prints as its listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"servicebroker/internal/fleet"
	"servicebroker/internal/frontend"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/metrics"
	"servicebroker/internal/obs"
	"servicebroker/internal/sketch"
	"servicebroker/internal/slo"
	"servicebroker/internal/trace"
	"servicebroker/internal/tsdb"
)

type routeFlags []string

func (r *routeFlags) String() string { return strings.Join(*r, ",") }

func (r *routeFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var routes routeFlags
	var (
		model       = flag.String("model", "distributed", "deployment model: distributed or centralized")
		addr        = flag.String("addr", "127.0.0.1:0", "HTTP listen address")
		gateway     = flag.String("gateway", "", `broker gateway UDP address(es), "|"-separated (required)`)
		listenAddr  = flag.String("load-listen", "127.0.0.1:0", "centralized: UDP address for broker load reports")
		registryOn  = flag.Bool("registry", false, "discover pool members via lease registration (brokerd -register-to)")
		registryLsn = flag.String("registry-listen", "127.0.0.1:0", "distributed: UDP address for the lease listener (centralized reuses -load-listen)")
		maxClients  = flag.Int("maxclients", 0, "cap simultaneous request processing (0 = unlimited)")
		admin       = flag.String("admin", "", "admin HTTP address for /metrics, /tracez (empty disables)")
		traceSample = flag.Float64("trace-sample", 1, "fraction of healthy traces retained in the ring (errors, drops, and slow traces always kept)")
		traceSlow   = flag.Duration("trace-slow", 0, "latency above which a healthy trace is always retained (0 disables)")
		traceSeed   = flag.Uint64("trace-seed", 1, "deterministic tail-sampling seed (share across processes for consistent decisions)")
		sampleEvery = flag.Duration("sample-every", time.Second, "time-series sampling interval for /seriesz and /graphz")
		drainTO     = flag.Duration("drain-timeout", 5*time.Second, "how long SIGTERM/SIGINT waits for in-flight requests to finish")
		hotkeys     = flag.Int("hotkeys", 0, "track the top-N hottest request payloads for /hotz (0 disables)")
		sloOn       = flag.Bool("slo", false, "evaluate per-class SLO burn rates over client-observed latency for /sloz")
		fleetScrape = flag.Duration("fleet-scrape", fleet.DefaultScrapeInterval, "fleet federation scrape interval for lease-discovered member admin planes (with -admin and -registry)")
	)
	flag.Var(&routes, "route", "route spec pattern=service (repeatable)")
	flag.Parse()

	sampler := &trace.Sampler{SlowThreshold: *traceSlow, Fraction: *traceSample, Seed: *traceSeed}
	if err := run(*model, *addr, *gateway, *listenAddr, *registryOn, *registryLsn, *maxClients, routes, *admin, sampler, *sampleEvery, *drainTO, *hotkeys, *sloOn, *fleetScrape); err != nil {
		slog.Error("frontend failed", "err", err)
		os.Exit(1)
	}
}

func run(model, addr, gateway, listenAddr string, registryOn bool, registryListen string, maxClients int, routeSpecs routeFlags, admin string, sampler *trace.Sampler, sampleEvery, drainTimeout time.Duration, hotkeys int, sloOn bool, fleetScrape time.Duration) error {
	if gateway == "" {
		return fmt.Errorf("-gateway is required")
	}
	if len(routeSpecs) == 0 {
		return fmt.Errorf("at least one -route is required")
	}
	var routes []frontend.Route
	profiles := make(map[string][]frontend.Demand)
	for _, spec := range routeSpecs {
		pattern, service, ok := strings.Cut(spec, "=")
		if !ok || pattern == "" || service == "" {
			return fmt.Errorf("bad -route %q, want pattern=service", spec)
		}
		routes = append(routes, frontend.Route{Pattern: pattern, Service: service})
		profiles[pattern] = []frontend.Demand{{Service: service, Weight: 1}}
	}

	var httpOpts []httpserver.ServerOption
	if maxClients > 0 {
		httpOpts = append(httpOpts, httpserver.WithMaxClients(maxClients))
	}

	// Client-side workload analytics: the front end sees every request end to
	// end, so its tracker attributes popularity across all brokered services
	// and its SLO engine scores the latency clients actually observe.
	var hk *sketch.Tracker
	if hotkeys > 0 {
		hk = sketch.NewTracker(sketch.Config{TopK: hotkeys})
	}
	var sloEng *slo.Engine
	anaReg := metrics.NewRegistry()
	if sloOn {
		sloEng = slo.New(slo.Config{
			Objectives: slo.DefaultObjectives(),
			Logger:     slog.Default(),
			Metrics:    anaReg,
		})
	}

	// startAdmin mounts the front end's registry, trace recorder, pool view,
	// and (when available) age-stamped listener loads on an obs server when
	// -admin is set; it returns the server (nil when the admin plane is off,
	// for the shutdown path's SetDraining) and a cleanup (possibly no-op).
	// enableFleet and fleetMembers wire the federation plane: pool and
	// registry events feed /eventz, and lease-discovered members' admin
	// planes are scraped into /fleetz and the federated /metrics section.
	startAdmin := func(reg *metrics.Registry, enableTracing func(*trace.Recorder), poolSrc obs.PoolSource, agedSrc obs.AgedLoadSource, enableFleet func(*fleet.Log), fleetMembers func() []fleet.MemberInfo) (*obs.Server, func(), error) {
		if admin == "" {
			return nil, func() {}, nil
		}
		adminSrv := obs.New()
		adminSrv.AddPoolSource("frontend", poolSrc)
		adminSrv.AddAgedLoadSource(agedSrc)
		traceReg := metrics.NewRegistry()
		rec := trace.NewRecorder(trace.WithMetrics(traceReg), trace.WithSampler(sampler))
		enableTracing(rec)
		adminSrv.SetRecorder(rec)
		adminSrv.MountRegistry("", traceReg)
		adminSrv.MountRegistry("frontend.", reg)
		store := tsdb.New(0)
		store.Mount("", traceReg)
		store.Mount("frontend.", reg)
		adminSrv.MountRegistry("frontend.", anaReg)
		store.Mount("frontend.", anaReg)
		if hk != nil {
			adminSrv.AddHotKeySource("frontend", func() (sketch.Snapshot, bool) { return hk.Snapshot(), true })
			store.AddProbe("frontend.hotkey_skew", func() (float64, bool) {
				snap := hk.Snapshot()
				if snap.TotalAccesses == 0 {
					return 0, false
				}
				return snap.Skew, true
			})
		}
		if sloEng != nil {
			adminSrv.AddSLOSource("frontend", func() (slo.Status, bool) { return sloEng.Status(), true })
			// Evaluating once per tick drives the alert state machine even
			// when nobody scrapes /sloz.
			store.AddProbe("frontend.slo_breach_classes", func() (float64, bool) {
				breaching := 0.0
				for _, c := range sloEng.Status().Classes {
					if c.AlertState() != slo.StateOK {
						breaching++
					}
				}
				return breaching, true
			})
		}
		// Fleet observability: the pool and registry publish failover,
		// breaker, and lease events into a shared timeline, and a federator
		// scrapes every lease-discovered member's admin plane.
		events := fleet.NewLog(0, anaReg)
		enableFleet(events)
		adminSrv.SetEventLog(events)
		var fed *fleet.Federator
		if registryOn {
			fleetReg := metrics.NewRegistry()
			fed = fleet.NewFederator(fleet.FederatorConfig{
				Discover: fleetMembers,
				Interval: fleetScrape,
				Metrics:  fleetReg,
				Events:   events,
			})
			adminSrv.SetFederator(fed)
			adminSrv.MountRegistry("", fleetReg)
			// Federation health on /graphz: pool size as the federator sees
			// it, and cumulative scrape failures.
			members := fleetReg.Gauge("fleet_members")
			scrapeErrs := fleetReg.Counter("fleet_scrape_errors_total")
			store.AddProbe("fleet_members", func() (float64, bool) {
				return float64(members.Value()), true
			})
			store.AddProbe("fleet_scrape_errors_total", func() (float64, bool) {
				return float64(scrapeErrs.Value()), true
			})
			fed.Start()
		}
		adminSrv.SetTSDB(store)
		store.Start(sampleEvery)
		if err := adminSrv.Start(admin); err != nil {
			if fed != nil {
				fed.Close()
			}
			store.Close()
			return nil, nil, err
		}
		slog.Info("admin endpoint up", "addr", adminSrv.Addr().String())
		return adminSrv, func() {
			if fed != nil {
				fed.Close()
			}
			adminSrv.Close()
			store.Close()
		}, nil
	}

	switch model {
	case "distributed":
		d, err := frontend.NewDistributed(addr, gateway, routes, httpOpts...)
		if err != nil {
			return err
		}
		defer d.Close()
		d.EnableAnalytics(hk, sloEng)
		var agedSrc obs.AgedLoadSource
		if registryOn {
			l, err := d.EnableRegistry(registryListen)
			if err != nil {
				return err
			}
			agedSrc = agedLoads(l.Entries)
			slog.Info("lease listener up", "addr", l.Addr())
		}
		adminSrv, stopAdmin, err := startAdmin(d.Metrics(), d.EnableTracing, d.PoolStatus, agedSrc, d.EnableFleet, d.FleetMembers)
		if err != nil {
			return err
		}
		defer stopAdmin()
		d.ServeStatus()
		slog.Info("distributed model up", "http", d.Addr(), "gateway", gateway,
			"status", "http://"+d.Addr()+"/broker-status",
			"pool", "http://"+d.Addr()+"/poolz")
		wait()
		slog.Info("shutting down: draining", "timeout", drainTimeout)
		if adminSrv != nil {
			adminSrv.SetDraining(true)
		}
		drain(d.Drain, drainTimeout)
		return nil

	case "centralized":
		c, err := frontend.NewCentralized(addr, gateway, listenAddr, routes, profiles, httpOpts...)
		if err != nil {
			return err
		}
		defer c.Close()
		c.EnableAnalytics(hk, sloEng)
		if registryOn {
			c.EnableRegistry()
			slog.Info("lease registration enabled on load listener", "addr", c.ListenerAddr())
		}
		adminSrv, stopAdmin, err := startAdmin(c.Metrics(), c.EnableTracing, c.PoolStatus, agedLoads(c.LoadEntries), c.EnableFleet, c.FleetMembers)
		if err != nil {
			return err
		}
		defer stopAdmin()
		c.ServeStatus()
		slog.Info("centralized model up", "http", c.Addr(), "gateway", gateway,
			"status", "http://"+c.Addr()+"/broker-status",
			"pool", "http://"+c.Addr()+"/poolz",
			"load_listener", c.ListenerAddr())
		wait()
		slog.Info("shutting down: draining", "timeout", drainTimeout)
		if adminSrv != nil {
			adminSrv.SetDraining(true)
		}
		drain(c.Drain, drainTimeout)
		return nil

	default:
		return fmt.Errorf("unknown model %q", model)
	}
}

// agedLoads adapts the listener's age-stamped load entries to the obs
// /loadz row type.
func agedLoads(entries func() []frontend.LoadEntry) obs.AgedLoadSource {
	return func() []obs.AgedLoad {
		es := entries()
		out := make([]obs.AgedLoad, len(es))
		for i, e := range es {
			out[i] = obs.AgedLoad{Report: e.Report, Age: e.Age, Stale: e.Stale}
		}
		return out
	}
}

func wait() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}

// drain runs a graceful-stop function with a deadline, logging (but not
// failing on) an overrun — Close still runs afterwards.
func drain(fn func(context.Context) error, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := fn(ctx); err != nil {
		slog.Warn("drain deadline passed with requests still in flight", "err", err)
	}
}
