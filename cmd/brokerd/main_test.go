package main

import (
	"testing"
)

func TestParseSpec(t *testing.T) {
	name, kind, addr, err := parseSpec("db:db:127.0.0.1:7001")
	if err != nil {
		t.Fatal(err)
	}
	if name != "db" || kind != "db" || addr != "127.0.0.1:7001" {
		t.Fatalf("parsed = %q %q %q", name, kind, addr)
	}
	for _, bad := range []string{"", "db", "db:db", ":db:addr", "db::addr", "db:db:"} {
		if _, _, _, err := parseSpec(bad); err == nil {
			t.Errorf("parseSpec(%q) succeeded", bad)
		}
	}
}

func TestMakeConnector(t *testing.T) {
	for kind, wantName := range map[string]string{
		"db": "db", "dir": "dir", "mail": "mail", "web": "portal", "cgi": "portal",
	} {
		c, err := makeConnector("portal", kind, "127.0.0.1:1")
		if err != nil {
			t.Fatalf("makeConnector(%s): %v", kind, err)
		}
		if c.Name() != wantName {
			t.Errorf("kind %s name = %q, want %q", kind, c.Name(), wantName)
		}
	}
	if _, err := makeConnector("x", "ftp", "addr"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunRequiresService(t *testing.T) {
	if err := run(nil, "127.0.0.1:0", 20, 3, 4, 0, 0, "", 0, ""); err == nil {
		t.Fatal("run without services succeeded")
	}
}

func TestServiceFlags(t *testing.T) {
	var s serviceFlags
	s.Set("a:b:c")
	s.Set("d:e:f")
	if s.String() != "a:b:c,d:e:f" {
		t.Fatalf("String = %q", s.String())
	}
}
