package main

import (
	"testing"
)

func TestParseSpec(t *testing.T) {
	name, kind, addrs, err := parseSpec("db:db:127.0.0.1:7001")
	if err != nil {
		t.Fatal(err)
	}
	if name != "db" || kind != "db" || len(addrs) != 1 || addrs[0] != "127.0.0.1:7001" {
		t.Fatalf("parsed = %q %q %q", name, kind, addrs)
	}
	for _, bad := range []string{"", "db", "db:db", ":db:addr", "db::addr", "db:db:", "db:db:a||b"} {
		if _, _, _, err := parseSpec(bad); err == nil {
			t.Errorf("parseSpec(%q) succeeded", bad)
		}
	}
}

func TestParseSpecReplicas(t *testing.T) {
	name, kind, addrs, err := parseSpec("db:db:127.0.0.1:7001|127.0.0.1:7011|127.0.0.1:7021")
	if err != nil {
		t.Fatal(err)
	}
	if name != "db" || kind != "db" {
		t.Fatalf("parsed = %q %q", name, kind)
	}
	want := []string{"127.0.0.1:7001", "127.0.0.1:7011", "127.0.0.1:7021"}
	if len(addrs) != len(want) {
		t.Fatalf("addrs = %q, want %q", addrs, want)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("addrs = %q, want %q", addrs, want)
		}
	}
}

func TestMakeConnector(t *testing.T) {
	for kind, wantName := range map[string]string{
		"db": "db", "dir": "dir", "mail": "mail", "web": "portal", "cgi": "portal",
	} {
		c, err := makeConnector("portal", kind, "127.0.0.1:1")
		if err != nil {
			t.Fatalf("makeConnector(%s): %v", kind, err)
		}
		if c.Name() != wantName {
			t.Errorf("kind %s name = %q, want %q", kind, c.Name(), wantName)
		}
	}
	if _, err := makeConnector("x", "ftp", "addr"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunRequiresService(t *testing.T) {
	if err := run(config{listen: "127.0.0.1:0", threshold: 20, classes: 3, workers: 4}); err == nil {
		t.Fatal("run without services succeeded")
	}
}

func TestResilienceConfigMapsFlags(t *testing.T) {
	rc := resilienceConfig(config{retries: 0, breakerFailures: 3})
	if rc.Retry.MaxAttempts != 1 {
		t.Fatalf("-retries 0: MaxAttempts = %d, want 1", rc.Retry.MaxAttempts)
	}
	if rc.Breaker.FailureThreshold != 3 {
		t.Fatalf("FailureThreshold = %d, want 3", rc.Breaker.FailureThreshold)
	}
	rc = resilienceConfig(config{retries: 2, serveStale: true})
	if rc.Retry.MaxAttempts != 3 || !rc.ServeStale {
		t.Fatalf("-retries 2 -serve-stale: got %+v", rc)
	}
}

func TestServiceFlags(t *testing.T) {
	var s serviceFlags
	s.Set("a:b:c")
	s.Set("d:e:f")
	if s.String() != "a:b:c,d:e:f" {
		t.Fatalf("String = %q", s.String())
	}
}
