// Command brokerd runs one service broker (or several) behind a UDP wire
// gateway — the deployable form of the paper's middleware agent.
//
// Each -service flag declares one broker as
//
//	name:kind:backendAddr
//
// where kind is db, dir, mail, web, cgi, or supply (an in-process
// effect-counting store for the transaction demo), and backendAddr may list
// several replica addresses separated by "|" (the broker then balances
// across them with the least-outstanding policy). Example:
//
//	brokerd -listen 127.0.0.1:6000 \
//	        -service db:db:127.0.0.1:7001|127.0.0.1:7011 \
//	        -service dir:dir:127.0.0.1:7002 \
//	        -threshold 20 -classes 3 -workers 20 -cache 1024
//
// With -report-to the broker pushes load reports to a centralized front
// end's listener thread. With -register-to it additionally self-registers
// each hosted service at a front end's lease listener (DESIGN.md §12): a
// REGISTER datagram on startup, RENEW every third of -lease-ttl with the
// live load piggybacked, DEREGISTER on graceful shutdown — so a replicated
// broker pool assembles itself and a crashed member ages out when its lease
// lapses. With -admin the process serves the obs admin endpoints (/metrics,
// /tracez, /loadz, /breakerz, /healthz, pprof) over HTTP. The -retries, -retry-base, -breaker-failures, -breaker-cooldown,
// and -serve-stale flags configure the fault-tolerance layer (see
// DESIGN.md §8): transient backend errors are retried with capped backoff,
// replicas trip per-replica circuit breakers, and -serve-stale answers
// from expired cache entries at low fidelity when the backend is down.
//
// The overload subsystem (DESIGN.md §9) is configured with -limit-min,
// -limit-max, and -latency-target (AIMD admission limit replacing the
// static -threshold when -limit-max > 0), -sojourn-budget (per-class queue
// wait budgets with CoDel-style eviction), and -drain-timeout (how long
// SIGTERM waits for accepted requests before forcing exit). The live limit
// appears on the admin plane at /limitz.
//
// Request clustering (DESIGN.md §10) is enabled with -cluster N (degree of
// clustering; the combiner follows the backend kind — repeated-query for
// db/cgi, MGET for web) and -cluster-wait (gather window). Adding
// -adaptive-degree M makes the degree self-tuning: a hill-climbing
// controller walks [1, M] tracking the response-time minimum as backend
// capacity shifts, with the live degree on /metrics and /graphz as
// cluster_degree_current.
//
// Workload analytics and SLOs (DESIGN.md §11): -hotkeys N tracks the top-N
// hottest request keys per broker in fixed memory (count-min sketch +
// space-saving), surfaced on the admin plane at /hotz; -slo evaluates
// per-class latency/availability objectives with multi-window burn-rate
// alerting on /sloz (-slo-fast and -slo-slow size the windows).
//
// Transaction integrity (DESIGN.md §14): -txn tracks multi-step transactions
// per broker and escalates late steps' priority; -txn-ttl sweeps abandoned
// transactions (aborting them and running their compensations); -idem N arms
// a bounded idempotency table so retried or failed-over mutating accesses
// replay their recorded first outcome instead of re-executing (-idem-ttl
// bounds how long an outcome is held); -txn-journal makes recorded outcomes
// crash-safe — each service appends to <path>.<service> and a restarted
// brokerd re-arms its idempotency table from the journal before serving.
// Active transactions and idempotency accounting appear on /txnz.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/cluster"
	"servicebroker/internal/fleet"
	"servicebroker/internal/frontend"
	"servicebroker/internal/loadbalance"
	"servicebroker/internal/metrics"
	"servicebroker/internal/obs"
	"servicebroker/internal/overload"
	"servicebroker/internal/registry"
	"servicebroker/internal/resilience"
	"servicebroker/internal/sketch"
	"servicebroker/internal/slo"
	"servicebroker/internal/trace"
	"servicebroker/internal/tsdb"
	"servicebroker/internal/txn"
)

// exportBuffer bounds the recently finished traces held for span export to
// the front end.
const exportBuffer = 1024

// serviceFlags collects repeated -service flags.
type serviceFlags []string

func (s *serviceFlags) String() string { return strings.Join(*s, ",") }

func (s *serviceFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// config carries every run parameter; zero fields mean the feature is off.
type config struct {
	services        serviceFlags
	listen          string
	threshold       int
	classes         int
	workers         int
	cacheSize       int
	cacheTTL        time.Duration
	clusterDegree   int
	clusterWait     time.Duration
	adaptiveDegree  int
	reportTo        string
	reportEvery     time.Duration
	registerTo      string
	leaseTTL        time.Duration
	admin           string
	retries         int
	retryBase       time.Duration
	breakerFailures int
	breakerCooldown time.Duration
	serveStale      bool
	traceSample     float64
	traceSlow       time.Duration
	traceSeed       uint64
	sampleEvery     time.Duration
	seriesPoints    int
	limitMin        int
	limitMax        int
	latencyTarget   time.Duration
	sojournBudget   time.Duration
	drainTimeout    time.Duration
	hotkeys         int
	coalesce        bool
	slo             bool
	sloFast         time.Duration
	sloSlow         time.Duration
	txn             bool
	txnTTL          time.Duration
	idemCap         int
	idemTTL         time.Duration
	txnJournal      string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:0", "UDP gateway listen address")
	flag.IntVar(&cfg.threshold, "threshold", 20, "outstanding-request threshold per broker")
	flag.IntVar(&cfg.classes, "classes", 3, "number of QoS classes")
	flag.IntVar(&cfg.workers, "workers", 20, "persistent backend sessions per broker")
	flag.IntVar(&cfg.cacheSize, "cache", 0, "result cache entries (0 disables caching)")
	flag.DurationVar(&cfg.cacheTTL, "cache-ttl", 30*time.Second, "result cache TTL")
	flag.IntVar(&cfg.clusterDegree, "cluster", 0, "degree of clustering: max compatible requests combined into one backend access (0 disables)")
	flag.DurationVar(&cfg.clusterWait, "cluster-wait", 2*time.Millisecond, "how long a batch waits to fill after its first request (with -cluster)")
	flag.IntVar(&cfg.adaptiveDegree, "adaptive-degree", 0, "self-tune the clustering degree over [1, N] with a hill-climbing controller; 0 keeps -cluster static")
	flag.StringVar(&cfg.reportTo, "report-to", "", "push load reports to this UDP listener address")
	flag.DurationVar(&cfg.reportEvery, "report-every", time.Second, "load report interval")
	flag.StringVar(&cfg.registerTo, "register-to", "", "self-register hosted services at this front-end lease listener (UDP address)")
	flag.DurationVar(&cfg.leaseTTL, "lease-ttl", 3*time.Second, "lease duration requested with -register-to (renewed every ttl/3)")
	flag.StringVar(&cfg.admin, "admin", "", "admin HTTP address for /metrics, /tracez, /loadz, /breakerz (empty disables)")
	flag.IntVar(&cfg.retries, "retries", 2, "retries after a failed backend access (0 disables retrying)")
	flag.DurationVar(&cfg.retryBase, "retry-base", 10*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
	flag.IntVar(&cfg.breakerFailures, "breaker-failures", 5, "consecutive failures that open a replica's circuit breaker")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", time.Second, "how long an open breaker waits before half-open probes")
	flag.BoolVar(&cfg.serveStale, "serve-stale", false, "serve expired cache entries at low fidelity when the backend is unreachable")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 1, "fraction of healthy traces retained in the ring (errors, drops, and slow traces always kept)")
	flag.DurationVar(&cfg.traceSlow, "trace-slow", 0, "latency above which a healthy trace is always retained (0 disables)")
	flag.Uint64Var(&cfg.traceSeed, "trace-seed", 1, "deterministic tail-sampling seed (share across processes for consistent decisions)")
	flag.DurationVar(&cfg.sampleEvery, "sample-every", time.Second, "time-series sampling interval for /seriesz and /graphz")
	flag.IntVar(&cfg.seriesPoints, "series-points", 0, "points retained per time series (0 selects the default)")
	flag.IntVar(&cfg.limitMin, "limit-min", 1, "adaptive admission limit floor (with -limit-max)")
	flag.IntVar(&cfg.limitMax, "limit-max", 0, "adaptive admission limit ceiling; 0 keeps the static -threshold")
	flag.DurationVar(&cfg.latencyTarget, "latency-target", 0, "completion latency the adaptive limiter treats as congestion (0 reacts to failures only)")
	flag.DurationVar(&cfg.sojournBudget, "sojourn-budget", 0, "class-1 queue-wait budget; queued requests over their class budget are shed early (0 disables)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 5*time.Second, "how long SIGTERM/SIGINT waits for in-flight requests to finish")
	flag.IntVar(&cfg.hotkeys, "hotkeys", 0, "track the top-N hottest request keys per broker for /hotz (0 disables)")
	flag.BoolVar(&cfg.coalesce, "coalesce", false, "single-flight identical in-flight cacheable queries so N duplicates cost one backend trip")
	flag.BoolVar(&cfg.slo, "slo", false, "evaluate per-class SLO burn rates for /sloz")
	flag.DurationVar(&cfg.sloFast, "slo-fast", 0, "SLO fast burn window (0 selects the default)")
	flag.DurationVar(&cfg.sloSlow, "slo-slow", 0, "SLO slow burn window (0 selects 12x the fast window)")
	flag.BoolVar(&cfg.txn, "txn", false, "track multi-step transactions and escalate late steps' priority")
	flag.DurationVar(&cfg.txnTTL, "txn-ttl", 0, "abort+compensate transactions idle longer than this (0 disables the abandonment sweep)")
	flag.IntVar(&cfg.idemCap, "idem", 0, "idempotency-table entries per broker; duplicate tagged accesses replay their first outcome (0 disables, requires -txn)")
	flag.DurationVar(&cfg.idemTTL, "idem-ttl", 5*time.Minute, "how long a recorded idempotent outcome is held")
	flag.StringVar(&cfg.txnJournal, "txn-journal", "", "crash-safe outcome journal path prefix; each service appends to <path>.<service> and restores it on startup (requires -idem)")
	flag.Var(&cfg.services, "service", "broker spec name:kind:addr[|addr...] (repeatable)")
	flag.Parse()

	if err := run(cfg); err != nil {
		slog.Error("brokerd failed", "err", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if len(cfg.services) == 0 {
		return fmt.Errorf("at least one -service is required")
	}

	// One trace recorder is shared by every hosted broker so /tracez shows
	// the whole process; its registry's names are already fully qualified
	// ("trace.<service>.<stage>"). The recorder always exists — the gateway
	// needs its export buffer to ship spans back to the front end even when
	// the admin plane is off — and tail sampling gates only ring retention.
	var adminSrv *obs.Server
	var store *tsdb.Store
	traceReg := metrics.NewRegistry()
	tracer := trace.NewRecorder(
		trace.WithMetrics(traceReg),
		trace.WithExport(exportBuffer),
		trace.WithSampler(&trace.Sampler{
			SlowThreshold: cfg.traceSlow,
			Fraction:      cfg.traceSample,
			Seed:          cfg.traceSeed,
		}),
	)
	var events *fleet.Log
	if cfg.admin != "" {
		adminSrv = obs.New()
		adminSrv.SetRecorder(tracer)
		adminSrv.MountRegistry("", traceReg)
		store = tsdb.New(cfg.seriesPoints)
		store.Mount("", traceReg)
		adminSrv.SetTSDB(store)
		// Every hosted broker shares one event timeline: limit cuts, breaker
		// flips, SLO transitions, and drains all land on /eventz.
		events = fleet.NewLog(0, traceReg)
		adminSrv.SetEventLog(events)
	}

	if cfg.idemCap > 0 && !cfg.txn {
		return fmt.Errorf("-idem requires -txn (the table is keyed on transaction id and step)")
	}
	if cfg.txnJournal != "" && cfg.idemCap <= 0 {
		return fmt.Errorf("-txn-journal requires -idem (it persists recorded idempotent outcomes)")
	}

	brokers := make(map[string]*broker.Broker, len(cfg.services))
	var reporters []*frontend.Reporter
	var journals []*txn.Journal
	defer func() {
		for _, r := range reporters {
			r.Close()
		}
		for _, b := range brokers {
			b.Close()
		}
		// Journals close after the brokers: a draining worker may still record
		// an outcome while its broker shuts down.
		for _, j := range journals {
			j.Close()
		}
	}()

	for _, spec := range cfg.services {
		name, kind, addrs, err := parseSpec(spec)
		if err != nil {
			return err
		}
		opts := []broker.Option{
			broker.WithThreshold(cfg.threshold, cfg.classes),
			broker.WithWorkers(cfg.workers),
		}
		var connector backend.Connector
		if len(addrs) == 1 {
			if connector, err = makeConnector(name, kind, addrs[0]); err != nil {
				return err
			}
		} else {
			// Replicated backend: one connector per address behind the
			// least-outstanding balancer (the broker takes a nil connector).
			connectors := make([]backend.Connector, len(addrs))
			for i, addr := range addrs {
				if connectors[i], err = makeConnector(name, kind, addr); err != nil {
					return err
				}
			}
			opts = append(opts, broker.WithReplicas(&loadbalance.LeastOutstanding{}, cfg.workers, connectors...))
		}
		if cfg.cacheSize > 0 {
			opts = append(opts, broker.WithCache(cfg.cacheSize, cfg.cacheTTL))
		}
		if cfg.clusterDegree > 0 {
			if comb := combinerFor(kind); comb != nil {
				opts = append(opts, broker.WithClustering(comb, cfg.clusterDegree, cfg.clusterWait))
				if cfg.adaptiveDegree > 0 {
					opts = append(opts, broker.WithAdaptiveDegree(cluster.AdaptiveConfig{
						MaxDegree: cfg.adaptiveDegree,
					}))
				}
			} else {
				slog.Warn("no combiner for backend kind, clustering disabled",
					"service", name, "kind", kind)
			}
		}
		if cfg.limitMax > 0 {
			opts = append(opts, broker.WithAdaptiveLimit(overload.Config{
				Min:           cfg.limitMin,
				Max:           cfg.limitMax,
				LatencyTarget: cfg.latencyTarget,
			}))
		}
		if cfg.sojournBudget > 0 {
			opts = append(opts, broker.WithSojournBudget(cfg.sojournBudget))
		}
		if cfg.hotkeys > 0 {
			opts = append(opts, broker.WithHotKeys(sketch.Config{TopK: cfg.hotkeys}))
		}
		if cfg.coalesce {
			opts = append(opts, broker.WithCoalescing())
		}
		if cfg.slo {
			objectives := slo.DefaultObjectives()
			if cfg.classes < len(objectives) {
				objectives = objectives[:cfg.classes]
			}
			sloCfg := slo.Config{
				Objectives: objectives,
				FastWindow: cfg.sloFast,
				SlowWindow: cfg.sloSlow,
			}
			if events != nil {
				service := name
				sloCfg.OnTransition = func(class int, from, to string) {
					events.Publish(fleet.Event{
						Kind:    fleet.KindSLOTransition,
						Service: service,
						Detail:  fmt.Sprintf("class %d alert state %s -> %s", class, from, to),
					})
				}
			}
			opts = append(opts, broker.WithSLO(sloCfg))
		}
		if cfg.txn {
			opts = append(opts, broker.WithTransactions())
			if cfg.txnTTL > 0 {
				opts = append(opts, broker.WithTransactionTTL(cfg.txnTTL))
			}
			if cfg.idemCap > 0 {
				if cfg.txnJournal != "" {
					// Crash-safe idempotency: restore the journal into the
					// table first (a restarted broker answers replayed keys
					// without re-executing), then append every newly recorded
					// outcome.
					jpath := cfg.txnJournal + "." + name
					table := txn.NewIdemTable(cfg.idemCap, cfg.idemTTL)
					restored, err := txn.RestoreTable(jpath, table)
					if err != nil {
						return fmt.Errorf("txn journal %s: %w", jpath, err)
					}
					journal, err := txn.OpenJournal(jpath, false)
					if err != nil {
						return fmt.Errorf("txn journal %s: %w", jpath, err)
					}
					journals = append(journals, journal)
					table.OnRecord(func(key string, out txn.Outcome) {
						if err := journal.AppendOutcome(key, out); err != nil {
							slog.Warn("txn journal append failed", "err", err)
						}
					})
					if restored > 0 {
						slog.Info("idempotency journal restored", "service", name, "outcomes", restored)
					}
					opts = append(opts, broker.WithSharedIdempotency(table))
				} else {
					opts = append(opts, broker.WithIdempotency(cfg.idemCap, cfg.idemTTL))
				}
			}
		}
		if events != nil {
			opts = append(opts, broker.WithFleetEvents(events))
		}
		if tracer != nil {
			opts = append(opts, broker.WithTracer(tracer))
		}
		opts = append(opts, broker.WithResilience(resilienceConfig(cfg)))
		b, err := broker.New(connector, opts...)
		if err != nil {
			return fmt.Errorf("broker %s: %w", name, err)
		}
		brokers[name] = b
		if adminSrv != nil {
			adminSrv.MountRegistry("broker."+name+".", b.Metrics())
			adminSrv.AddBreakerSource(name, b.BreakerSnapshots)
			adminSrv.AddLimitSource(name, b.LimitSnapshot)
			if cfg.cacheSize > 0 {
				adminSrv.MountCacheShards("broker."+name+".", b.CacheShardStats)
			}
			if cfg.hotkeys > 0 {
				adminSrv.AddHotKeySource(name, b.HotKeySnapshot)
			}
			if cfg.coalesce {
				adminSrv.AddCoalesceSource(name, func() (obs.CoalesceSnapshot, bool) {
					st, ok := b.CoalesceStats()
					if !ok {
						return obs.CoalesceSnapshot{}, false
					}
					return obs.CoalesceSnapshot{
						Flights:   st.Flights,
						Coalesced: st.Coalesced,
						Shared:    st.Shared,
						Inflight:  int64(st.Inflight),
					}, true
				})
			}
			if cfg.slo {
				adminSrv.AddSLOSource(name, b.SLOStatus)
			}
			if cfg.txn {
				adminSrv.AddTxnSource(name, func() (obs.TxnStatus, bool) {
					tr := b.Tracker()
					if tr == nil {
						return obs.TxnStatus{}, false
					}
					st := obs.TxnStatus{Tracker: tr.Snapshot()}
					if is, ok := b.IdemStats(); ok {
						st.Idem, st.HasIdem = is, true
					}
					return st, true
				})
			}
		}
		if store != nil {
			store.Mount("broker."+name+".", b.Metrics())
			reg := b.Metrics()
			for class := 1; class <= cfg.classes; class++ {
				probeName := fmt.Sprintf("broker.%s.drop_ratio_class_%d", name, class)
				dropped := reg.Counter(fmt.Sprintf("dropped_class_%d", class))
				requests := reg.Counter(fmt.Sprintf("requests_class_%d", class))
				store.AddProbe(probeName, func() (float64, bool) {
					total := requests.Value()
					if total == 0 {
						return 0, false
					}
					return float64(dropped.Value()) / float64(total), true
				})
			}
			if cfg.hotkeys > 0 {
				// Snapshotting also refreshes the hotkey_* gauges already
				// mounted from the broker registry.
				store.AddProbe("broker."+name+".hotkey_skew", func() (float64, bool) {
					snap, ok := b.HotKeySnapshot()
					if !ok || snap.TotalAccesses == 0 {
						return 0, false
					}
					return snap.Skew, true
				})
				store.AddProbe("broker."+name+".hotkey_top10_share", func() (float64, bool) {
					snap, ok := b.HotKeySnapshot()
					if !ok || snap.TotalAccesses == 0 {
						return 0, false
					}
					return snap.TopShare(10), true
				})
			}
			if cfg.slo {
				// Evaluating once per tick drives the alert state machine and
				// refreshes the slo_* gauges even when nobody scrapes /sloz.
				store.AddProbe("broker."+name+".slo_breach_classes", func() (float64, bool) {
					st, ok := b.SLOStatus()
					if !ok {
						return 0, false
					}
					breaching := 0.0
					for _, c := range st.Classes {
						if c.AlertState() != slo.StateOK {
							breaching++
						}
					}
					return breaching, true
				})
			}
		}
		if cfg.reportTo != "" {
			r, err := frontend.NewReporter(b, cfg.reportTo, cfg.reportEvery)
			if err != nil {
				return fmt.Errorf("reporter %s: %w", name, err)
			}
			reporters = append(reporters, r)
		}
	}

	gw, err := broker.NewGateway(cfg.listen, brokers)
	if err != nil {
		return err
	}
	defer gw.Close()

	// The admin plane starts before lease registration so each REGISTER can
	// advertise its admin address for fleet federation scraping.
	var adminAddr string
	if adminSrv != nil {
		adminSrv.AddLoadSource(func() []broker.LoadReport {
			reports := make([]broker.LoadReport, 0, len(brokers))
			for _, b := range brokers {
				reports = append(reports, b.Load())
			}
			return reports
		})
		if err := adminSrv.Start(cfg.admin); err != nil {
			return err
		}
		defer adminSrv.Close()
		adminAddr = adminSrv.Addr().String()
		slog.Info("admin endpoint up", "addr", adminAddr)
	}

	// Lease registration: advertise each hosted service at the front end.
	// The deferred Close runs before the gateway's, so DEREGISTER goes out
	// while the advertised address is still answering.
	if cfg.registerTo != "" {
		var registrars []*registry.Registrar
		defer func() {
			for _, r := range registrars {
				r.Close()
			}
		}()
		for name, b := range brokers {
			r, err := registry.NewRegistrar(registry.RegistrarConfig{
				Service:   name,
				Addr:      gw.Addr().String(),
				Target:    cfg.registerTo,
				TTL:       cfg.leaseTTL,
				Load:      b.Load,
				AdminAddr: adminAddr,
			})
			if err != nil {
				return fmt.Errorf("registrar %s: %w", name, err)
			}
			registrars = append(registrars, r)
		}
		slog.Info("lease registration up", "target", cfg.registerTo, "ttl", cfg.leaseTTL)
	}
	if store != nil {
		store.Start(cfg.sampleEvery)
		defer store.Close()
	}

	slog.Info("gateway up", "addr", gw.Addr().String(), "services", gw.Services())
	if testHookGatewayUp != nil {
		testHookGatewayUp(gw.Addr().String())
	}
	wait()

	// Graceful drain: every broker stops admitting (new requests are shed
	// with a retry-after hint) and runs its accepted work to completion, up
	// to -drain-timeout. The deferred closes then run in reverse order —
	// gateway first, which waits for in-flight wire handlers, so every
	// accepted request's response reaches the client; the reporters push one
	// final load report on the way out.
	slog.Info("shutting down: draining", "timeout", cfg.drainTimeout)
	if adminSrv != nil {
		// /healthz flips to "draining" (503 + Retry-After) so fleet scrapers
		// and load balancers see an intentional shutdown, not a crash.
		adminSrv.SetDraining(true)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	for name, b := range brokers {
		if err := b.Drain(drainCtx); err != nil {
			slog.Warn("drain deadline passed with work still outstanding",
				"service", name, "err", err)
		}
	}
	slog.Info("drained")
	return nil
}

// testHookGatewayUp, when non-nil, receives the gateway address once serving
// begins. The SIGTERM acceptance test runs `run` in-process and needs the
// ephemeral address before it can open fire.
var testHookGatewayUp func(addr string)

// resilienceConfig maps the fault-tolerance flags onto a resilience.Config.
// -retries counts retries after the first attempt, so MaxAttempts is one
// more; -retries 0 pins MaxAttempts to 1 (a zero value would select the
// package default of 3 attempts).
func resilienceConfig(cfg config) resilience.Config {
	return resilience.Config{
		Retry: resilience.RetryConfig{
			MaxAttempts: cfg.retries + 1,
			BaseDelay:   cfg.retryBase,
		},
		Breaker: resilience.BreakerConfig{
			FailureThreshold: cfg.breakerFailures,
			Cooldown:         cfg.breakerCooldown,
		},
		ServeStale: cfg.serveStale,
	}
}

// parseSpec splits "name:kind:addr[|addr...]" — "|" separates replica
// addresses, since the addresses themselves contain ":".
func parseSpec(spec string) (name, kind string, addrs []string, err error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return "", "", nil, fmt.Errorf("bad -service %q, want name:kind:backendAddr", spec)
	}
	for _, addr := range strings.Split(parts[2], "|") {
		if addr == "" {
			return "", "", nil, fmt.Errorf("bad -service %q: empty replica address", spec)
		}
		addrs = append(addrs, addr)
	}
	return parts[0], parts[1], addrs, nil
}

// combinerFor picks the clustering strategy for a backend kind: repeated
// identical queries for db/cgi backends, multipart MGET for web. dir and
// mail accesses have no combining story, so they return nil.
func combinerFor(kind string) cluster.Combiner {
	switch kind {
	case "db", "cgi":
		return cluster.RepeatCombiner{}
	case "web":
		return cluster.MGetCombiner{}
	default:
		return nil
	}
}

// makeConnector builds the backend connector for one broker.
func makeConnector(name, kind, addr string) (backend.Connector, error) {
	switch kind {
	case "db":
		return &backend.SQLConnector{Addr: addr}, nil
	case "dir":
		return &backend.DirConnector{Addr: addr}, nil
	case "mail":
		return &backend.MailConnector{Addr: addr}, nil
	case "web", "cgi":
		return &backend.WebConnector{Addr: addr, ServiceName: name}, nil
	case "supply":
		// The supply-chain effect store lives in the broker process (addr is
		// conventionally "mem"); its mutations are the exactly-once ground
		// truth for the transaction-integrity demo.
		return &backend.EffectConnector{ServiceName: name}, nil
	default:
		return nil, fmt.Errorf("unknown backend kind %q", kind)
	}
}

func wait() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
