// Command brokerd runs one service broker (or several) behind a UDP wire
// gateway — the deployable form of the paper's middleware agent.
//
// Each -service flag declares one broker as
//
//	name:kind:backendAddr
//
// where kind is db, dir, mail, web, or cgi. Example:
//
//	brokerd -listen 127.0.0.1:6000 \
//	        -service db:db:127.0.0.1:7001 \
//	        -service dir:dir:127.0.0.1:7002 \
//	        -threshold 20 -classes 3 -workers 20 -cache 1024
//
// With -report-to the broker pushes load reports to a centralized front
// end's listener thread. With -admin the process serves the obs admin
// endpoints (/metrics, /tracez, /loadz, /healthz, pprof) over HTTP.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/frontend"
	"servicebroker/internal/metrics"
	"servicebroker/internal/obs"
	"servicebroker/internal/trace"
)

// serviceFlags collects repeated -service flags.
type serviceFlags []string

func (s *serviceFlags) String() string { return strings.Join(*s, ",") }

func (s *serviceFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var services serviceFlags
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "UDP gateway listen address")
		threshold = flag.Int("threshold", 20, "outstanding-request threshold per broker")
		classes   = flag.Int("classes", 3, "number of QoS classes")
		workers   = flag.Int("workers", 20, "persistent backend sessions per broker")
		cacheSize = flag.Int("cache", 0, "result cache entries (0 disables caching)")
		cacheTTL  = flag.Duration("cache-ttl", 30*time.Second, "result cache TTL")
		reportTo  = flag.String("report-to", "", "push load reports to this UDP listener address")
		reportEvy = flag.Duration("report-every", time.Second, "load report interval")
		admin     = flag.String("admin", "", "admin HTTP address for /metrics, /tracez, /loadz (empty disables)")
	)
	flag.Var(&services, "service", "broker spec name:kind:backendAddr (repeatable)")
	flag.Parse()

	if err := run(services, *listen, *threshold, *classes, *workers,
		*cacheSize, *cacheTTL, *reportTo, *reportEvy, *admin); err != nil {
		slog.Error("brokerd failed", "err", err)
		os.Exit(1)
	}
}

func run(services serviceFlags, listen string, threshold, classes, workers,
	cacheSize int, cacheTTL time.Duration, reportTo string, reportEvery time.Duration,
	admin string) error {
	if len(services) == 0 {
		return fmt.Errorf("at least one -service is required")
	}

	// One trace recorder is shared by every hosted broker so /tracez shows
	// the whole process; its registry's names are already fully qualified
	// ("trace.<service>.<stage>").
	var (
		adminSrv *obs.Server
		tracer   *trace.Recorder
	)
	if admin != "" {
		adminSrv = obs.New()
		traceReg := metrics.NewRegistry()
		tracer = trace.NewRecorder(trace.WithMetrics(traceReg))
		adminSrv.SetRecorder(tracer)
		adminSrv.MountRegistry("", traceReg)
	}

	brokers := make(map[string]*broker.Broker, len(services))
	var reporters []*frontend.Reporter
	defer func() {
		for _, r := range reporters {
			r.Close()
		}
		for _, b := range brokers {
			b.Close()
		}
	}()

	for _, spec := range services {
		name, kind, addr, err := parseSpec(spec)
		if err != nil {
			return err
		}
		connector, err := makeConnector(name, kind, addr)
		if err != nil {
			return err
		}
		opts := []broker.Option{
			broker.WithThreshold(threshold, classes),
			broker.WithWorkers(workers),
		}
		if cacheSize > 0 {
			opts = append(opts, broker.WithCache(cacheSize, cacheTTL))
		}
		if tracer != nil {
			opts = append(opts, broker.WithTracer(tracer))
		}
		b, err := broker.New(connector, opts...)
		if err != nil {
			return fmt.Errorf("broker %s: %w", name, err)
		}
		brokers[name] = b
		if adminSrv != nil {
			adminSrv.MountRegistry("broker."+name+".", b.Metrics())
		}
		if reportTo != "" {
			r, err := frontend.NewReporter(b, reportTo, reportEvery)
			if err != nil {
				return fmt.Errorf("reporter %s: %w", name, err)
			}
			reporters = append(reporters, r)
		}
	}

	gw, err := broker.NewGateway(listen, brokers)
	if err != nil {
		return err
	}
	defer gw.Close()

	if adminSrv != nil {
		adminSrv.AddLoadSource(func() []broker.LoadReport {
			reports := make([]broker.LoadReport, 0, len(brokers))
			for _, b := range brokers {
				reports = append(reports, b.Load())
			}
			return reports
		})
		if err := adminSrv.Start(admin); err != nil {
			return err
		}
		defer adminSrv.Close()
		slog.Info("admin endpoint up", "addr", adminSrv.Addr().String())
	}

	slog.Info("gateway up", "addr", gw.Addr().String(), "services", gw.Services())
	wait()
	slog.Info("shutting down")
	return nil
}

// parseSpec splits "name:kind:addr".
func parseSpec(spec string) (name, kind, addr string, err error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return "", "", "", fmt.Errorf("bad -service %q, want name:kind:backendAddr", spec)
	}
	return parts[0], parts[1], parts[2], nil
}

// makeConnector builds the backend connector for one broker.
func makeConnector(name, kind, addr string) (backend.Connector, error) {
	switch kind {
	case "db":
		return &backend.SQLConnector{Addr: addr}, nil
	case "dir":
		return &backend.DirConnector{Addr: addr}, nil
	case "mail":
		return &backend.MailConnector{Addr: addr}, nil
	case "web", "cgi":
		return &backend.WebConnector{Addr: addr, ServiceName: name}, nil
	default:
		return nil, fmt.Errorf("unknown backend kind %q", kind)
	}
}

func wait() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
