package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"servicebroker/internal/broker"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/qos"
	"servicebroker/internal/wire"
)

// TestSIGTERMDrainsInFlightRequests is the graceful-shutdown acceptance
// test: a brokerd under SIGTERM must answer every request it has already
// accepted — zero lost — before exiting cleanly. It runs `run` in-process
// against a slow CGI backend, fills the broker with in-flight work, sends
// the process a real SIGTERM, and checks that every accepted request comes
// back with a full-fidelity OK while the daemon exits without error.
func TestSIGTERMDrainsInFlightRequests(t *testing.T) {
	const backendDelay = 120 * time.Millisecond

	// The slow backend: each CGI hit takes backendDelay.
	be, err := httpserver.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	be.Handle("/cgi", func(req *httpserver.Request) *httpserver.Response {
		time.Sleep(backendDelay)
		return httpserver.Text("done " + req.Query["q"])
	})

	gatewayUp := make(chan string, 1)
	testHookGatewayUp = func(addr string) { gatewayUp <- addr }
	defer func() { testHookGatewayUp = nil }()

	daemonDone := make(chan error, 1)
	go func() {
		daemonDone <- run(config{
			services:     serviceFlags{"cgi:cgi:" + be.Addr().String()},
			listen:       "127.0.0.1:0",
			threshold:    8,
			classes:      3,
			workers:      4,
			reportEvery:  time.Second,
			drainTimeout: 5 * time.Second,
		})
	}()

	var gwAddr string
	select {
	case gwAddr = <-gatewayUp:
	case err := <-daemonDone:
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("gateway never came up")
	}

	// A retransmit longer than the whole run keeps the client from sending
	// duplicate datagrams that would race the drain as "new" requests.
	cli, err := broker.DialGateway(gwAddr, wire.WithRetransmit(8*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Fill the broker: 4 executing + 2 queued, all admitted (class 1's
	// limit is the full threshold of 8).
	const inflight = 6
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	type outcome struct {
		resp *broker.Response
		err  error
	}
	results := make(chan outcome, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cli.Do(ctx, "cgi", &broker.Request{
				Payload: []byte(fmt.Sprintf("/cgi?q=req%d", i)),
				Class:   qos.Class1,
				NoCache: true,
			})
			results <- outcome{resp, err}
		}(i)
	}

	// Let every request reach the broker, then pull the trigger.
	time.Sleep(60 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// While accepted work is still draining (the slow batches take several
	// hundred ms), a freshly issued request must be shed immediately with a
	// retry-after hint — the daemon stops taking new work the moment the
	// signal lands.
	time.Sleep(50 * time.Millisecond)
	resp, err := cli.Do(ctx, "cgi", &broker.Request{
		Payload: []byte("/cgi?q=late"), Class: qos.Class1, NoCache: true,
	})
	if err != nil {
		t.Fatalf("post-SIGTERM request errored: %v", err)
	}
	if resp.Status != broker.StatusShed {
		t.Fatalf("post-SIGTERM request = %+v, want shed", resp)
	}
	if resp.RetryAfter <= 0 {
		t.Fatalf("post-SIGTERM shed carries no retry-after: %+v", resp)
	}

	wg.Wait()
	close(results)
	for out := range results {
		if out.err != nil {
			t.Fatalf("accepted request lost in drain: %v", out.err)
		}
		if out.resp.Status != broker.StatusOK || out.resp.Fidelity != qos.FidelityFull {
			t.Fatalf("accepted request degraded in drain: %+v", out.resp)
		}
	}

	select {
	case err := <-daemonDone:
		if err != nil {
			t.Fatalf("daemon exit = %v, want clean shutdown", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
