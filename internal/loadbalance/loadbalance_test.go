package loadbalance

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/resilience"
)

// echoConn is an instant in-process connector for breaker tests.
func echoConn(name string) backend.Connector {
	return &backend.FuncConnector{
		ServiceName: name,
		DoFn: func(_ context.Context, payload []byte) ([]byte, error) {
			return append([]byte("done:"), payload...), nil
		},
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := &RoundRobin{}
	out := []int{0, 0, 0}
	got := []int{rr.Pick(out), rr.Pick(out), rr.Pick(out), rr.Pick(out)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("picks = %v, want %v", got, want)
		}
	}
	if rr.Name() != "round-robin" {
		t.Fatalf("name = %q", rr.Name())
	}
}

func TestLeastOutstanding(t *testing.T) {
	lo := LeastOutstanding{}
	if got := lo.Pick([]int{3, 1, 2}); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	// Ties break on lowest index.
	if got := lo.Pick([]int{2, 2, 2}); got != 0 {
		t.Fatalf("tie pick = %d, want 0", got)
	}
}

func TestRandomWithinBounds(t *testing.T) {
	r := NewRandom(1)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		idx := r.Pick([]int{0, 0, 0, 0})
		if idx < 0 || idx > 3 {
			t.Fatalf("pick = %d out of range", idx)
		}
		seen[idx] = true
	}
	if len(seen) < 3 {
		t.Fatalf("random policy hit only %d replicas in 200 picks", len(seen))
	}
}

func TestWeighted(t *testing.T) {
	w := &Weighted{Weights: []float64{1, 4}}
	// Replica 1 has 4x capacity: with loads (2, 4), scores are 2 and 1.
	if got := w.Pick([]int{2, 4}); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	// Missing/invalid weights default to 1.
	w2 := &Weighted{}
	if got := w2.Pick([]int{5, 3}); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
}

// Property: every policy returns a valid index for any non-empty loads.
func TestPoliciesAlwaysValidProperty(t *testing.T) {
	policies := []Policy{&RoundRobin{}, LeastOutstanding{}, NewRandom(7), &Weighted{Weights: []float64{1, 2, 3}}}
	f := func(loads []uint8) bool {
		if len(loads) == 0 {
			return true
		}
		ints := make([]int, len(loads))
		for i, l := range loads {
			ints[i] = int(l)
		}
		for _, p := range policies {
			idx := p.Pick(ints)
			if idx < 0 || idx >= len(ints) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaSetDistributes(t *testing.T) {
	mk := func(name string) backend.Connector {
		return &backend.DelayConnector{ServiceName: name, ProcessTime: 5 * time.Millisecond}
	}
	rs, err := NewReplicaSet(&RoundRobin{}, 2, mk("r0"), mk("r1"), mk("r2"))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var wg sync.WaitGroup
	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rs.Do(context.Background(), []byte("q")); err != nil {
				t.Errorf("do: %v", err)
			}
		}()
	}
	wg.Wait()
	served := rs.Served()
	total := 0
	for i, n := range served {
		if n == 0 {
			t.Errorf("replica %d served nothing: %v", i, served)
		}
		total += n
	}
	if total != 9 {
		t.Fatalf("total served = %d, want 9", total)
	}
	for i, n := range rs.Outstanding() {
		if n != 0 {
			t.Fatalf("replica %d outstanding = %d after completion", i, n)
		}
	}
}

func TestReplicaSetLeastOutstandingAvoidsBusyReplica(t *testing.T) {
	slow := &backend.DelayConnector{ServiceName: "slow", ProcessTime: 200 * time.Millisecond}
	fast := &backend.DelayConnector{ServiceName: "fast"}
	rs, err := NewReplicaSet(LeastOutstanding{}, 2, slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// Occupy replica 0 (ties break low, so the first request goes there).
	done := make(chan struct{})
	go func() {
		defer close(done)
		rs.Do(context.Background(), []byte("block"))
	}()
	time.Sleep(20 * time.Millisecond)

	// While replica 0 is busy, new work must flow to replica 1.
	for i := 0; i < 5; i++ {
		if _, err := rs.Do(context.Background(), []byte("q")); err != nil {
			t.Fatal(err)
		}
	}
	served := rs.Served()
	if served[1] != 5 {
		t.Fatalf("served = %v, want all 5 on the idle replica", served)
	}
	<-done
}

func TestReplicaSetValidation(t *testing.T) {
	if _, err := NewReplicaSet(nil, 1, &backend.DelayConnector{}); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := NewReplicaSet(&RoundRobin{}, 1); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if _, err := NewReplicaSet(&RoundRobin{}, 0, &backend.DelayConnector{}); err == nil {
		t.Fatal("zero pool capacity accepted")
	}
}

func TestReplicaSetClose(t *testing.T) {
	rs, err := NewReplicaSet(&RoundRobin{}, 1, &backend.DelayConnector{ServiceName: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Do(context.Background(), nil); err == nil {
		t.Fatal("Do succeeded after Close")
	}
	rs.Close() // idempotent
	if rs.Size() != 1 {
		t.Fatalf("size = %d", rs.Size())
	}
}

type fixedPolicy struct{ idx int }

func (f fixedPolicy) Pick([]int) int { return f.idx }
func (f fixedPolicy) Name() string   { return "fixed" }

func TestReplicaSetRejectsInvalidPick(t *testing.T) {
	rs, err := NewReplicaSet(fixedPolicy{idx: 5}, 1, &backend.DelayConnector{ServiceName: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.Do(context.Background(), nil); err == nil {
		t.Fatal("invalid pick not rejected")
	}
}

func TestReplicaSetBreakerEjectsDeadReplica(t *testing.T) {
	dead := &backend.FaultConnector{Inner: echoConn("dead")}
	dead.SetDown(true)
	alive := echoConn("alive")
	rs, err := NewReplicaSet(LeastOutstanding{}, 2, dead, alive)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rs.EnableBreakers(resilience.BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour}, nil)

	// LeastOutstanding ties break to replica 0 (dead); after 3 failures
	// the breaker opens and every access lands on the healthy replica.
	errs := 0
	for i := 0; i < 10; i++ {
		if _, err := rs.Do(context.Background(), []byte("q")); err != nil {
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("errors = %d, want exactly the 3 that tripped the breaker", errs)
	}
	snaps := rs.BreakerSnapshots()
	if snaps[0].State != resilience.StateOpen || snaps[1].State != resilience.StateClosed {
		t.Fatalf("breaker states = %v/%v, want open/closed", snaps[0].State, snaps[1].State)
	}
	if served := rs.Served(); served[1] != 7 {
		t.Fatalf("healthy replica served %d, want 7", served[1])
	}
}

func TestReplicaSetHalfOpenReadmitsRecoveredReplica(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	flaky := &backend.FaultConnector{Inner: echoConn("flaky")}
	flaky.SetDown(true)
	rs, err := NewReplicaSet(LeastOutstanding{}, 2, flaky, echoConn("steady"))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var transitions []resilience.State
	rs.EnableBreakers(resilience.BreakerConfig{
		FailureThreshold: 1, Cooldown: time.Second, SuccessThreshold: 1, Clock: now,
	}, func(replica int, name string, from, to resilience.State) {
		if replica == 0 {
			transitions = append(transitions, to)
		}
	})

	rs.Do(context.Background(), []byte("q")) // trips replica 0's breaker
	if snaps := rs.BreakerSnapshots(); snaps[0].State != resilience.StateOpen {
		t.Fatalf("state = %v, want open", snaps[0].State)
	}

	// Recover the replica and let the cooldown elapse: the next access
	// probes it half-open and the success closes the breaker.
	flaky.SetDown(false)
	advance(time.Second)
	if _, err := rs.Do(context.Background(), []byte("q")); err != nil {
		t.Fatalf("probe access failed: %v", err)
	}
	if snaps := rs.BreakerSnapshots(); snaps[0].State != resilience.StateClosed {
		t.Fatalf("state = %v after successful probe, want closed", snaps[0].State)
	}
	if served := rs.Served(); served[0] != 2 {
		t.Fatalf("recovered replica served %d, want 2 (including the probe)", served[0])
	}
	want := []resilience.State{resilience.StateOpen, resilience.StateHalfOpen, resilience.StateClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

func TestReplicaSetAllBreakersOpen(t *testing.T) {
	a := &backend.FaultConnector{Inner: echoConn("a")}
	b := &backend.FaultConnector{Inner: echoConn("b")}
	a.SetDown(true)
	b.SetDown(true)
	rs, err := NewReplicaSet(LeastOutstanding{}, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rs.EnableBreakers(resilience.BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour}, nil)

	for i := 0; i < 2; i++ { // trip both breakers
		rs.Do(context.Background(), []byte("q"))
	}
	if _, err := rs.Do(context.Background(), []byte("q")); !errors.Is(err, ErrNoHealthyReplica) {
		t.Fatalf("Do with all breakers open = %v, want ErrNoHealthyReplica", err)
	}
}

func TestReplicaSetWithoutBreakersKeepsRoutingToDeadReplica(t *testing.T) {
	dead := &backend.FaultConnector{Inner: echoConn("dead")}
	dead.SetDown(true)
	rs, err := NewReplicaSet(LeastOutstanding{}, 1, dead, echoConn("alive"))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	errs := 0
	for i := 0; i < 10; i++ {
		if _, err := rs.Do(context.Background(), []byte("q")); err != nil {
			errs++
		}
	}
	if errs != 10 {
		t.Fatalf("errors = %d, want 10 (no health awareness without breakers)", errs)
	}
}
