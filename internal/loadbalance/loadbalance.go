// Package loadbalance implements the broker-side load-balancing policies of
// the paper (§III, "Load balancing"). Because a broker sees every request
// for its service and tracks outstanding work per replica, it can "accurately
// distribute the workload among the backend servers", unlike API-based
// access which, sharing no state, "can only work in a speculative manner".
//
// Policies pick a replica index given the per-replica outstanding counts; a
// ReplicaSet maintains those counts and composes a policy with a set of
// backend connectors. With EnableBreakers the set becomes health-aware:
// replicas whose circuit breaker is open are ejected from the candidate set
// until their cooldown elapses, at which point half-open probes decide
// whether they are re-admitted — automatic failover to healthy replicas.
package loadbalance

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"servicebroker/internal/backend"
	"servicebroker/internal/resilience"
)

// Policy selects a replica given per-replica outstanding request counts.
// Implementations must be safe for concurrent use.
type Policy interface {
	// Pick returns an index in [0, len(outstanding)).
	Pick(outstanding []int) int
	// Name identifies the policy in experiment output.
	Name() string
}

// RoundRobin cycles through replicas regardless of load.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Pick implements Policy.
func (r *RoundRobin) Pick(outstanding []int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.next % len(outstanding)
	r.next++
	return idx
}

// Name implements Policy.
func (r *RoundRobin) Name() string { return "round-robin" }

// LeastOutstanding picks the replica with the fewest in-flight requests —
// the accurate, broker-enabled policy. Ties break on the lowest index.
type LeastOutstanding struct{}

// Pick implements Policy.
func (LeastOutstanding) Pick(outstanding []int) int {
	best := 0
	for i, n := range outstanding {
		if n < outstanding[best] {
			best = i
		}
	}
	return best
}

// Name implements Policy.
func (LeastOutstanding) Name() string { return "least-outstanding" }

// Random picks uniformly at random — the speculative policy available to
// API-based access, which shares no load information.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom creates a Random policy with a deterministic seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Policy.
func (r *Random) Pick(outstanding []int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Intn(len(outstanding))
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Weighted picks the replica minimizing outstanding/weight, modelling
// heterogeneous backend capacities.
type Weighted struct {
	// Weights holds one positive relative capacity per replica.
	Weights []float64
}

// Pick implements Policy.
func (w *Weighted) Pick(outstanding []int) int {
	best, bestScore := 0, -1.0
	for i, n := range outstanding {
		weight := 1.0
		if i < len(w.Weights) && w.Weights[i] > 0 {
			weight = w.Weights[i]
		}
		score := float64(n) / weight
		if bestScore < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Name implements Policy.
func (w *Weighted) Name() string { return "weighted" }

// ReplicaSet distributes requests across replicated backends using a
// policy, maintaining accurate outstanding counts and per-replica session
// pools. Use NewReplicaSet; Close releases the pools.
type ReplicaSet struct {
	policy Policy
	pools  []*backend.Pool
	names  []string

	mu          sync.Mutex
	outstanding []int
	served      []int
	breakers    []*resilience.Breaker // nil until EnableBreakers
	closed      bool
}

// NewReplicaSet pools each connector (poolCapacity persistent sessions per
// replica) under the given policy.
func NewReplicaSet(policy Policy, poolCapacity int, connectors ...backend.Connector) (*ReplicaSet, error) {
	if policy == nil {
		return nil, errors.New("loadbalance: nil policy")
	}
	if len(connectors) == 0 {
		return nil, errors.New("loadbalance: no replicas")
	}
	rs := &ReplicaSet{
		policy:      policy,
		outstanding: make([]int, len(connectors)),
		served:      make([]int, len(connectors)),
	}
	for _, c := range connectors {
		pool, err := backend.NewPool(c, poolCapacity)
		if err != nil {
			return nil, fmt.Errorf("loadbalance: pool: %w", err)
		}
		rs.pools = append(rs.pools, pool)
		rs.names = append(rs.names, c.Name())
	}
	return rs, nil
}

// EnableBreakers equips every replica with a circuit breaker so Do ejects
// unhealthy replicas from the candidate set and probes them back in. notify,
// when non-nil, observes every breaker transition (replica index, name, and
// states); it may fire while the set's internal lock is held and must not
// call back into the ReplicaSet. EnableBreakers must be called before the
// first Do; repeated calls are no-ops.
func (rs *ReplicaSet) EnableBreakers(cfg resilience.BreakerConfig,
	notify func(replica int, name string, from, to resilience.State)) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.breakers != nil {
		return
	}
	rs.breakers = make([]*resilience.Breaker, len(rs.pools))
	for i := range rs.pools {
		replica, name := i, rs.names[i]
		c := cfg
		if notify != nil {
			c.OnTransition = func(from, to resilience.State) { notify(replica, name, from, to) }
		}
		rs.breakers[i] = resilience.NewBreaker(fmt.Sprintf("%s#%d", name, replica), c)
	}
}

// Name returns the replicated service's name (the first connector's name —
// replicas of one service share it).
func (rs *ReplicaSet) Name() string { return rs.names[0] }

// BreakerSnapshots returns the per-replica breaker states, or nil when
// EnableBreakers was never called.
func (rs *ReplicaSet) BreakerSnapshots() []resilience.Snapshot {
	rs.mu.Lock()
	breakers := rs.breakers
	rs.mu.Unlock()
	if breakers == nil {
		return nil
	}
	out := make([]resilience.Snapshot, len(breakers))
	for i, b := range breakers {
		out[i] = b.Snapshot()
	}
	return out
}

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("loadbalance: replica set closed")

// ErrNoHealthyReplica is returned by Do when every replica's breaker rejects
// traffic — the caller should degrade (serve stale data) or retry after the
// breaker cooldown. It classifies as retryable.
var ErrNoHealthyReplica = errors.New("loadbalance: no healthy replica (all breakers open)")

// Do routes one request to a replica chosen by the policy. With breakers
// enabled, only replicas whose breaker admits traffic are candidates, and
// the outcome of the access is reported back to the chosen breaker.
func (rs *ReplicaSet) Do(ctx context.Context, payload []byte) ([]byte, error) {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil, ErrClosed
	}
	idx, err := rs.pickLocked()
	if err != nil {
		rs.mu.Unlock()
		return nil, err
	}
	rs.outstanding[idx]++
	rs.served[idx]++
	breaker := rs.breakerLocked(idx)
	rs.mu.Unlock()

	defer func() {
		rs.mu.Lock()
		rs.outstanding[idx]--
		rs.mu.Unlock()
	}()
	out, doErr := rs.pools[idx].Do(ctx, payload)
	if breaker != nil {
		breaker.Done(doErr)
	}
	return out, doErr
}

// pickLocked chooses a replica index, restricting the policy's candidates to
// replicas whose breaker admits traffic. Caller holds rs.mu.
func (rs *ReplicaSet) pickLocked() (int, error) {
	if rs.breakers == nil {
		idx := rs.policy.Pick(append([]int(nil), rs.outstanding...))
		if idx < 0 || idx >= len(rs.pools) {
			return 0, fmt.Errorf("loadbalance: policy %s picked invalid replica %d", rs.policy.Name(), idx)
		}
		return idx, nil
	}
	candidates := make([]int, 0, len(rs.pools))
	for i, b := range rs.breakers {
		if b.Candidate() {
			candidates = append(candidates, i)
		}
	}
	// The policy picks within the healthy subset; a candidate that loses
	// the Acquire race (e.g. another goroutine took the half-open probe
	// slot) is removed and the pick repeated.
	for len(candidates) > 0 {
		sub := make([]int, len(candidates))
		for k, i := range candidates {
			sub[k] = rs.outstanding[i]
		}
		k := rs.policy.Pick(sub)
		if k < 0 || k >= len(sub) {
			return 0, fmt.Errorf("loadbalance: policy %s picked invalid replica %d", rs.policy.Name(), k)
		}
		if idx := candidates[k]; rs.breakers[idx].Acquire() {
			return idx, nil
		}
		candidates = append(candidates[:k], candidates[k+1:]...)
	}
	return 0, ErrNoHealthyReplica
}

// breakerLocked returns replica idx's breaker (nil when breakers are
// disabled). Caller holds rs.mu.
func (rs *ReplicaSet) breakerLocked(idx int) *resilience.Breaker {
	if rs.breakers == nil {
		return nil
	}
	return rs.breakers[idx]
}

// Served returns how many requests each replica has been assigned.
func (rs *ReplicaSet) Served() []int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]int, len(rs.served))
	copy(out, rs.served)
	return out
}

// Outstanding returns the current in-flight counts.
func (rs *ReplicaSet) Outstanding() []int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]int, len(rs.outstanding))
	copy(out, rs.outstanding)
	return out
}

// Size returns the number of replicas.
func (rs *ReplicaSet) Size() int { return len(rs.pools) }

// Close releases every replica pool.
func (rs *ReplicaSet) Close() error {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	rs.mu.Unlock()
	var firstErr error
	for _, p := range rs.pools {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
