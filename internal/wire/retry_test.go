package wire

import (
	"bytes"
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"servicebroker/internal/qos"
)

// A message without a retry hint must keep encoding in the pre-v4 layouts,
// byte for byte, so peers that predate backpressure see unchanged frames.
func TestRetrylessFramesMatchOldLayouts(t *testing.T) {
	plain := &Message{Type: TypeResponse, ID: 5, Service: "db",
		Status: StatusDropped, Payload: []byte("busy")}
	frame, err := Encode(plain)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersion {
		t.Fatalf("untraced retryless frame version = %d, want %d", frame[2], codecVersion)
	}
	if !bytes.Equal(frame, encodeV1(plain)) {
		t.Fatal("untraced retryless frame differs from the hand-built v1 layout")
	}

	traced := &Message{Type: TypeResponse, ID: 6, Service: "db",
		Status: StatusShed, TraceID: 0xdecaf, Payload: []byte("busy")}
	frame, err = Encode(traced)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersionTraced {
		t.Fatalf("traced retryless frame version = %d, want %d", frame[2], codecVersionTraced)
	}
	if !bytes.Equal(frame, encodeV2(traced)) {
		t.Fatal("traced retryless frame differs from the hand-built v2 layout")
	}
}

// A v4 frame is exactly the corresponding v3 frame (span block included)
// with the version byte bumped and a 4-byte trailer appended.
func TestRetryFrameIsV3PlusTrailer(t *testing.T) {
	m := &Message{
		Type: TypeResponse, ID: 9, Service: "db", Status: StatusShed,
		TraceID: 0xfeed, Payload: []byte("busy"),
		Spans: []Span{{Stage: "queue", Note: "sojourn", Start: 5, End: 9}},
	}
	v3, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m.RetryAfterMs = 250
	v4, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if v4[2] != codecVersionRetry {
		t.Fatalf("retry frame version = %d, want %d", v4[2], codecVersionRetry)
	}
	want := append(append([]byte(nil), v3...), 0, 0, 0, 250)
	want[2] = codecVersionRetry
	if !bytes.Equal(v4, want) {
		t.Fatal("v4 frame is not the v3 frame plus a retry trailer")
	}
}

func TestRetryFrameRoundTrip(t *testing.T) {
	for _, m := range []*Message{
		// Retry hint with spans.
		{Type: TypeResponse, ID: 1, Service: "db", Class: qos.Class3,
			Fidelity: qos.FidelityLow, Status: StatusShed, TraceID: 77,
			Payload:      []byte(BusyTestPayload),
			Spans:        []Span{{Stage: "queue", Start: 1, End: 2}},
			RetryAfterMs: 1500},
		// Retry hint without spans (span block count 0) and without trace.
		{Type: TypeResponse, ID: 2, Service: "mail", Status: StatusShed,
			Payload: []byte("busy"), RetryAfterMs: 42},
	} {
		frame, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if frame[2] != codecVersionRetry {
			t.Fatalf("version = %d, want %d", frame[2], codecVersionRetry)
		}
		got, err := Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if got.RetryAfterMs != m.RetryAfterMs || got.Status != m.Status ||
			got.TraceID != m.TraceID || !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
		}
		if !reflect.DeepEqual(got.Spans, m.Spans) && (len(got.Spans) != 0 || len(m.Spans) != 0) {
			t.Fatalf("spans mismatch: got %+v want %+v", got.Spans, m.Spans)
		}
	}
}

// BusyTestPayload keeps the round-trip fixture human-readable.
const BusyTestPayload = "server busy, retry shortly"

func TestRetryFrameTruncation(t *testing.T) {
	m := &Message{
		Type: TypeResponse, ID: 3, Service: "dir", Status: StatusShed,
		TraceID: 42, Payload: []byte("busy"),
		Spans:        []Span{{Stage: "queue", Note: "w=2", Start: 10, End: 20}},
		RetryAfterMs: 900,
	}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := Decode(frame[:cut]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrBadFrame", cut, len(frame), err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), frame...), 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte: err = %v, want ErrBadFrame", err)
	}
}

// Property: any retry hint round-trips exactly, with or without spans, and
// a zero hint re-encodes into a pre-v4 layout.
func TestRetryRoundTripProperty(t *testing.T) {
	f := func(retry uint32, traceID uint64, withSpan bool, payload []byte) bool {
		if len(payload) > 4096 {
			return true
		}
		m := &Message{Type: TypeResponse, ID: 1, Service: "db",
			Status: StatusShed, TraceID: traceID, Payload: payload, RetryAfterMs: retry}
		if withSpan {
			m.Spans = []Span{{Stage: "queue", Start: 1, End: 2}}
		}
		frame, err := Encode(m)
		if err != nil {
			return false
		}
		if retry == 0 && frame[2] == codecVersionRetry {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		return got.RetryAfterMs == retry && got.TraceID == traceID &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A server must never send a v4 frame — or StatusShed, which old peers do
// not know — to a client that did not set FlagBackpressure.
func TestServerBackpressureGating(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, _ net.Addr, req *Message) *Message {
		return &Message{Status: StatusShed, Payload: []byte("busy"), RetryAfterMs: 700}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Without the flag: shed downgrades to dropped, hint stripped.
	resp, err := cli.Call(context.Background(), &Message{Service: "db"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusDropped || resp.RetryAfterMs != 0 {
		t.Fatalf("un-flagged call got status=%v retry=%d, want dropped/0", resp.Status, resp.RetryAfterMs)
	}

	// With the flag: shed status and hint delivered.
	resp, err = cli.Call(context.Background(), &Message{Service: "db", Flags: FlagBackpressure})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusShed || resp.RetryAfterMs != 700 {
		t.Fatalf("flagged call got status=%v retry=%d, want shed/700", resp.Status, resp.RetryAfterMs)
	}
	if !bytes.Equal(resp.Payload, []byte("busy")) {
		t.Fatal("payload corrupted by backpressure path")
	}
}

// FuzzDecode drives the codec with arbitrary frames: Decode must never
// panic, and any frame it accepts must re-encode and re-decode to the same
// message (payload, spans, trace, and retry hint included).
func FuzzDecode(f *testing.F) {
	seed := []*Message{
		{Type: TypeRequest, ID: 1, Service: "db", Class: qos.Class1, Payload: []byte("SELECT 1")},
		{Type: TypeResponse, ID: 2, Service: "db", Status: StatusOK, TraceID: 99, Payload: []byte("row")},
		{Type: TypeResponse, ID: 3, Service: "dir", Status: StatusOK, TraceID: 7,
			Spans: []Span{{Stage: "queue", Note: "w=1", Start: 1, End: 2}}},
		{Type: TypeResponse, ID: 4, Service: "mail", Status: StatusShed,
			TraceID: 8, Payload: []byte("busy"), RetryAfterMs: 350},
		{Type: TypeResponse, ID: 5, Service: "cgi", Status: StatusShed, RetryAfterMs: 1},
	}
	for _, m := range seed {
		frame, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, codecVersionRetry})

	f.Fuzz(func(t *testing.T, frame []byte) {
		m, err := Decode(frame)
		if err != nil {
			return
		}
		re, err := Encode(m)
		if err != nil {
			// Decoded messages always fit the bounds Encode enforces.
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m.ID != m2.ID || m.Service != m2.Service || m.TxnID != m2.TxnID ||
			m.Status != m2.Status || m.TraceID != m2.TraceID ||
			m.RetryAfterMs != m2.RetryAfterMs ||
			!bytes.Equal(m.Payload, m2.Payload) ||
			!reflect.DeepEqual(m.Spans, m2.Spans) {
			t.Fatalf("re-encode round trip mismatch:\n in  %+v\n out %+v", m, m2)
		}
	})
}
