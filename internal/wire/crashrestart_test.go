package wire

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestClientSurvivesServerCrashRestart pins the failover-critical property
// of the client socket: a server crash (socket closed → ICMP port
// unreachable → ECONNREFUSED surfacing on the connected client socket) must
// not kill the reader goroutine. The same client must work again, without
// re-dialing, once a server rebinds the port.
func TestClientSurvivesServerCrashRestart(t *testing.T) {
	echo := func(_ context.Context, _ net.Addr, req *Message) *Message {
		return &Message{Status: StatusOK, Payload: req.Payload}
	}
	srv, err := NewServer("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	cli, err := Dial(addr, WithRetransmit(30*time.Millisecond), WithAttempts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cli.Call(ctx, &Message{Service: "s", Payload: []byte("a")}); err != nil {
		t.Fatalf("call before crash: %v", err)
	}

	// Crash: close the server socket. Calls while down must fail (send
	// refused or timeout) but must not wedge the client.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	downCtx, downCancel := context.WithTimeout(context.Background(), time.Second)
	if _, err := cli.Call(downCtx, &Message{Service: "s", Payload: []byte("b")}); err == nil {
		t.Fatal("call succeeded against a dead server")
	}
	downCancel()

	// Restart on the same port. Rebinding can briefly race the just-closed
	// socket, so retry the bind for a moment.
	var srv2 *Server
	for deadline := time.Now().Add(2 * time.Second); ; {
		srv2, err = NewServer(addr, echo)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()

	// The original client — same socket, no re-dial — must recover. Allow a
	// few calls in case stale ICMP errors are still queued on the socket.
	var lastErr error
	for i := 0; i < 20; i++ {
		callCtx, callCancel := context.WithTimeout(context.Background(), time.Second)
		resp, err := cli.Call(callCtx, &Message{Service: "s", Payload: []byte("c")})
		callCancel()
		if err == nil {
			if string(resp.Payload) != "c" {
				t.Fatalf("bad echo after restart: %q", resp.Payload)
			}
			return
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("client never recovered after server restart: %v", lastErr)
}
