package wire

import (
	"encoding/binary"
	"fmt"
)

// Version-7 frames are containers, not messages: a datagram that packs
// several independently encoded v1–v6 frames so one syscall and one UDP
// header amortize over a burst of requests or replies.
//
// Container layout (all integers big-endian):
//
//	magic[2] version=7[1] marker=0[1] count[2] (frameLen[4] frame[...])*
//
// The marker byte occupies the slot a v1–v6 frame uses for its message type
// and is always zero — not a valid MsgType — so a container can never be
// mistaken for a plain frame even by a parser that ignores the version.
// Interoperability is by construction: peers that predate v7 reject the
// version byte (Decode accepts only v1–v6) and drop the datagram exactly as
// they drop garbage, and batching peers only emit containers when two or
// more frames share a flush window — a lone frame always goes out bare,
// byte-identical to an unbatched sender. Contained frames are themselves
// complete v1–v6 frames; nesting a container inside a container is rejected
// by the per-frame Decode, so depth is bounded at one.
const (
	codecVersionBatch = 7
	batchMarker       = 0
	// batchHeaderSize is the fixed container prefix before the first frame.
	batchHeaderSize = 2 + 1 + 1 + 2
	// batchFrameOverhead is the per-frame cost inside a container.
	batchFrameOverhead = 4
	// MaxBatchFrames bounds the frames packed into one container.
	MaxBatchFrames = 256
)

// IsBatch reports whether buf begins like a v7 multi-frame container. A true
// result only validates the prefix; DecodeBatch still fully checks bounds.
func IsBatch(buf []byte) bool {
	return len(buf) >= batchHeaderSize && buf[0] == magic0 && buf[1] == magic1 &&
		buf[2] == codecVersionBatch && buf[3] == batchMarker
}

// AppendBatch appends a v7 container holding frames (each a complete encoded
// v1–v6 frame) to dst and returns the extended slice. Like AppendEncode it
// performs no allocation when dst has enough spare capacity. The container
// must fit a datagram: total size is bounded by MaxFrame.
func AppendBatch(dst []byte, frames [][]byte) ([]byte, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadFrame)
	}
	if len(frames) > MaxBatchFrames {
		return nil, fmt.Errorf("%w: %d frames in batch", ErrFrameTooLarge, len(frames))
	}
	total := batchHeaderSize
	for _, f := range frames {
		total += batchFrameOverhead + len(f)
	}
	if total > MaxFrame {
		return nil, fmt.Errorf("%w: %d-byte batch", ErrFrameTooLarge, total)
	}
	buf := dst
	if cap(buf)-len(buf) < total {
		grown := make([]byte, len(buf), len(buf)+total)
		copy(grown, buf)
		buf = grown
	}
	buf = append(buf, magic0, magic1, codecVersionBatch, batchMarker)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(frames)))
	for _, f := range frames {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f)))
		buf = append(buf, f...)
	}
	return buf, nil
}

// DecodeBatch walks a v7 container, invoking fn for each contained frame in
// order. The frame slices alias buf and are only valid inside fn. A non-nil
// error from fn stops the walk and is returned. Iterating with a callback
// keeps the server's batched receive path allocation-free.
func DecodeBatch(buf []byte, fn func(frame []byte) error) error {
	if len(buf) < batchHeaderSize {
		return fmt.Errorf("%w: %d-byte batch", ErrBadFrame, len(buf))
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if buf[2] != codecVersionBatch || buf[3] != batchMarker {
		return fmt.Errorf("%w: not a batch container", ErrBadFrame)
	}
	count := int(binary.BigEndian.Uint16(buf[4:6]))
	if count == 0 || count > MaxBatchFrames {
		return fmt.Errorf("%w: batch count %d", ErrBadFrame, count)
	}
	rest := buf[batchHeaderSize:]
	for i := 0; i < count; i++ {
		if len(rest) < batchFrameOverhead {
			return fmt.Errorf("%w: truncated frame length", ErrBadFrame)
		}
		n := binary.BigEndian.Uint32(rest)
		rest = rest[batchFrameOverhead:]
		if uint64(n) > uint64(len(rest)) {
			return fmt.Errorf("%w: frame length %d, have %d", ErrBadFrame, n, len(rest))
		}
		if err := fn(rest[:n]); err != nil {
			return err
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return nil
}
