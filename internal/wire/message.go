// Package wire implements the lightweight UDP messaging used between
// front-end web applications and service brokers. The paper's prototype has
// "the brokers and the front-end Web server exchange request and response
// messages through lightweight UDP" (§V-B); this package provides the framed
// message codec, a request/response client with retransmission, and a
// datagram server that demultiplexes requests to a handler.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"servicebroker/internal/qos"
)

// MsgType distinguishes requests from responses.
type MsgType uint8

const (
	// TypeRequest is a broker-bound query message.
	TypeRequest MsgType = iota + 1
	// TypeResponse is a broker reply.
	TypeResponse
)

// Status codes carried by responses.
type Status uint8

const (
	// StatusOK marks a successful full- or cached-fidelity response.
	StatusOK Status = iota + 1
	// StatusDropped marks a request shed by the broker's QoS policy; the
	// payload carries the adaptive (low-fidelity) message.
	StatusDropped
	// StatusError marks a backend or broker failure; the payload carries
	// the error text.
	StatusError
	// StatusShed marks a request shed by overload control (adaptive limit
	// exceeded, sojourn budget expired, or broker draining) rather than by
	// QoS policy: the condition is transient and the response usually
	// carries a retry-after hint. Servers downgrade it to StatusDropped for
	// clients that did not set FlagBackpressure, so old peers never see it.
	StatusShed
)

// String names the status code.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDropped:
		return "dropped"
	case StatusError:
		return "error"
	case StatusShed:
		return "shed"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Message is one datagram exchanged between an application and a broker.
type Message struct {
	Type MsgType
	// ID correlates a response with its request. Assigned by the client.
	ID uint64
	// Service names the broker-managed backend service ("db", "dir", ...).
	Service string
	// Class is the request's QoS class (requests only).
	Class qos.Class
	// TxnID tags the enclosing multi-server transaction; empty when the
	// request is not transactional (paper §III, transaction integrity).
	TxnID string
	// TxnStep is the 1-based step within the transaction; later steps get
	// escalated priority at the broker.
	TxnStep uint16
	// Fidelity grades a response (responses only).
	Fidelity qos.Fidelity
	// Status is the response disposition (responses only).
	Status Status
	// Flags carries request options (FlagNoCache).
	Flags uint8
	// TraceID propagates the end-to-end request trace across the wire
	// (package trace assigns it at the front end). Zero means untraced; a
	// zero TraceID encodes in the original frame layout, so old peers and
	// previously captured frames remain fully interoperable. The field is a
	// raw uint64 rather than trace.ID to keep the codec dependency-free.
	TraceID uint64
	// Spans carries the broker-side trace spans home on a response (responses
	// only, version-3 frames). Empty for requests and for peers that did not
	// set FlagSpanExport.
	Spans []Span
	// RetryAfterMs is the broker's backpressure hint on shed responses: the
	// client should wait this many milliseconds before retrying. Zero means
	// no hint and encodes in the pre-existing frame layouts, so old peers
	// and previously captured frames remain fully interoperable; nonzero
	// selects a version-4 frame, which a server only sends to clients that
	// set FlagBackpressure.
	RetryAfterMs uint32
	// BrokerID identifies the gateway that produced a response (responses
	// only, normally its UDP listen address) so a frontend pool that failed
	// over can stitch span exports from several brokers into one trace.
	// Empty means unidentified and encodes in the pre-existing frame
	// layouts; nonempty selects a version-5 frame, which a server only
	// sends to clients that set FlagBrokerIdentity.
	BrokerID string
	// IdemKey is the per-access idempotency key of a mutating transactional
	// request (requests only): together with TxnID and TxnStep it names one
	// logical effect, so a broker that sees the same triple again — a wire
	// retransmission or a pool failover re-send — answers with the recorded
	// first outcome instead of re-executing. Empty means the access carries
	// no idempotency protection and encodes in the pre-existing frame
	// layouts, keeping untagged traffic byte-identical to older versions;
	// nonempty selects a version-6 frame. Like TxnID/TxnStep (and unlike
	// the response-escalation fields gated by flags), it is a request-side
	// field and needs no capability flag.
	IdemKey string
	// Payload is the service-specific query or result body.
	Payload []byte
}

// Span is one broker-recorded trace stage shipped back on a response frame so
// the caller's trace collector can merge it into the end-to-end tree. Times
// are Unix nanoseconds; the mirror of trace.Span without the import cycle.
type Span struct {
	Stage string
	Note  string
	Start int64
	End   int64
}

// FlagNoCache asks the broker to bypass its result cache for this request.
const FlagNoCache uint8 = 1 << 0

// FlagSpanExport asks the broker to attach its recorded trace spans to the
// response (a version-3 frame). Clients set it only alongside a nonzero
// TraceID; a server that predates span export simply ignores the bit, and a
// server never sends a v3 frame to a client that did not ask for one — which
// is how old and new peers keep interoperating.
const FlagSpanExport uint8 = 1 << 1

// FlagBackpressure declares that the client understands overload shedding:
// the server may answer with StatusShed and attach a retry-after hint (a
// version-4 frame). Servers strip both for clients without the flag —
// StatusShed downgrades to StatusDropped and the hint is dropped — which is
// how old and new peers keep interoperating.
const FlagBackpressure uint8 = 1 << 2

// FlagBrokerIdentity asks the server to stamp its identity on the response
// (a version-5 frame) so the caller can attribute merged spans to the pool
// member that produced them. A server that predates identity stamping
// simply ignores the bit, and a server never sends a v5 frame to a client
// that did not ask for one — which is how old and new peers keep
// interoperating.
const FlagBrokerIdentity uint8 = 1 << 3

const (
	magic0 = 'S'
	magic1 = 'B'
	// codecVersion is the original frame layout, still emitted for untraced
	// messages (TraceID == 0) so old peers keep interoperating.
	codecVersion = 1
	// codecVersionTraced extends the fixed header with an 8-byte trace ID.
	codecVersionTraced = 2
	// codecVersionSpans appends a span block after the payload (and keeps the
	// version-2 traced header). Only emitted when the message carries spans,
	// which a server only does for clients that set FlagSpanExport.
	codecVersionSpans = 3
	// codecVersionRetry appends a 4-byte retry-after trailer after the span
	// block (which it always carries, possibly with count 0) and keeps the
	// version-2 traced header. Only emitted when the message carries a
	// nonzero RetryAfterMs, which a server only does for clients that set
	// FlagBackpressure.
	codecVersionRetry = 4
	// codecVersionIdentity appends a length-prefixed broker identity string
	// after the retry-after trailer (and always carries both the span block
	// and the trailer, possibly count 0 / value 0). Only emitted when the
	// message carries a nonempty BrokerID, which a server only does for
	// clients that set FlagBrokerIdentity.
	codecVersionIdentity = 5
	// codecVersionTxn appends a length-prefixed idempotency key after the
	// broker identity section (and always carries the span block, retry
	// trailer, and identity section, possibly empty/zero). Only emitted when
	// the message carries a nonempty IdemKey — a mutating transactional
	// request — so untagged traffic still encodes as v1/v2 frames.
	codecVersionTxn = 6
	// headerSize is the fixed-size version-1 prefix before variable-length
	// fields.
	headerSize = 2 + 1 + 1 + 8 + 1 + 2 + 1 + 1 + 1
	// headerSizeTraced is the version-2 prefix: headerSize plus the trace ID.
	headerSizeTraced = headerSize + 8
	// MaxFrame bounds an encoded message so it fits in a UDP datagram.
	MaxFrame = 60 * 1024
	// maxStringLen bounds each variable-length string field.
	maxStringLen = 1024
	// MaxSpans bounds the span block of a version-3 frame; gateways truncate
	// rather than fail when a trace somehow exceeds it.
	MaxSpans = 64
)

// Frame layout (all integers big-endian):
//
//	magic[2] version[1] type[1] id[8] class[1] txnStep[2] fidelity[1] status[1]
//	flags[1] {traceID[8] when version >= 2} serviceLen[2] service[...]
//	txnIDLen[2] txnID[...] payloadLen[4] payload[...]
//	{spanCount[2] (stageLen[2] stage[...] noteLen[2] note[...]
//	 start[8] end[8])* when version >= 3}
//	{retryAfterMs[4] when version >= 4}
//	{brokerIDLen[2] brokerID[...] when version >= 5}
//	{idemKeyLen[2] idemKey[...] when version >= 6}
//
// Version 1 frames carry no trace ID and decode with TraceID == 0; version 2
// frames append the 8-byte trace ID to the fixed header; version 3 frames
// additionally append a span block after the payload; version 4 frames
// append a retry-after trailer after the span block (always present in v4,
// count 0 when there are no spans); version 5 frames append a broker
// identity string after the retry-after trailer (both span block and
// trailer always present in v5, possibly empty/zero); version 6 frames
// append an idempotency key after the identity section (span block, trailer,
// and identity section always present in v6, possibly empty/zero). Encode
// picks the layout from the message: no trace ID → v1, trace ID → v2, spans
// → v3, retry-after → v4, broker identity → v5, idempotency key → v6. A
// message without spans, a retry hint, an identity, or an idempotency key
// therefore round-trips byte-for-byte through the layouts old peers
// understand; v3/v4/v5 frames only ever reach peers that asked for them via
// FlagSpanExport/FlagBackpressure/FlagBrokerIdentity, and v6 frames — being
// request-side, like TxnID — only reach brokers the deployment already
// upgraded.

// Encoding and decoding errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

// Encode serializes m into a datagram-sized frame.
func Encode(m *Message) ([]byte, error) {
	return AppendEncode(nil, m)
}

// AppendEncode serializes m exactly as Encode and appends the frame to dst,
// returning the extended slice. When dst has enough spare capacity the call
// performs no allocation — the hot-path contract the client's pooled send
// buffers rely on. dst's existing contents are preserved; the frame occupies
// the appended tail.
func AppendEncode(dst []byte, m *Message) ([]byte, error) {
	if len(m.Service) > maxStringLen {
		return nil, fmt.Errorf("%w: service name %d bytes", ErrFrameTooLarge, len(m.Service))
	}
	if len(m.TxnID) > maxStringLen {
		return nil, fmt.Errorf("%w: txn id %d bytes", ErrFrameTooLarge, len(m.TxnID))
	}
	if len(m.Spans) > MaxSpans {
		return nil, fmt.Errorf("%w: %d spans", ErrFrameTooLarge, len(m.Spans))
	}
	version, fixed := byte(codecVersion), headerSize
	if m.TraceID != 0 {
		version, fixed = codecVersionTraced, headerSizeTraced
	}
	spanBytes := 0
	if len(m.Spans) > 0 {
		version, fixed = codecVersionSpans, headerSizeTraced
		spanBytes = 2
		for _, sp := range m.Spans {
			if len(sp.Stage) > maxStringLen {
				return nil, fmt.Errorf("%w: span stage %d bytes", ErrFrameTooLarge, len(sp.Stage))
			}
			if len(sp.Note) > maxStringLen {
				return nil, fmt.Errorf("%w: span note %d bytes", ErrFrameTooLarge, len(sp.Note))
			}
			spanBytes += 2 + len(sp.Stage) + 2 + len(sp.Note) + 8 + 8
		}
	}
	tailBytes := 0
	if m.RetryAfterMs != 0 {
		version, fixed = codecVersionRetry, headerSizeTraced
		if spanBytes == 0 {
			spanBytes = 2 // v4 always carries the span block, count 0 here
		}
		tailBytes = 4
	}
	idBytes := 0
	if m.BrokerID != "" {
		if len(m.BrokerID) > maxStringLen {
			return nil, fmt.Errorf("%w: broker id %d bytes", ErrFrameTooLarge, len(m.BrokerID))
		}
		version, fixed = codecVersionIdentity, headerSizeTraced
		if spanBytes == 0 {
			spanBytes = 2 // v5 always carries the span block, count 0 here
		}
		tailBytes = 4 // v5 always carries the retry-after trailer, 0 here
		idBytes = 2 + len(m.BrokerID)
	}
	idemBytes := 0
	if m.IdemKey != "" {
		if len(m.IdemKey) > maxStringLen {
			return nil, fmt.Errorf("%w: idempotency key %d bytes", ErrFrameTooLarge, len(m.IdemKey))
		}
		version, fixed = codecVersionTxn, headerSizeTraced
		if spanBytes == 0 {
			spanBytes = 2 // v6 always carries the span block, count 0 here
		}
		tailBytes = 4 // v6 always carries the retry-after trailer, 0 here
		if idBytes == 0 {
			idBytes = 2 // v6 always carries the identity section, empty here
		}
		idemBytes = 2 + len(m.IdemKey)
	}
	total := fixed + 2 + len(m.Service) + 2 + len(m.TxnID) + 4 + len(m.Payload) + spanBytes + tailBytes + idBytes + idemBytes
	if total > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, total)
	}
	// Reserve the full frame up front so the appends below never reallocate;
	// a dst with spare capacity (a pooled buffer) makes this a no-op.
	buf := dst
	if cap(buf)-len(buf) < total {
		grown := make([]byte, len(buf), len(buf)+total)
		copy(grown, buf)
		buf = grown
	}
	buf = append(buf, magic0, magic1, version, byte(m.Type))
	buf = binary.BigEndian.AppendUint64(buf, m.ID)
	buf = append(buf, byte(m.Class))
	buf = binary.BigEndian.AppendUint16(buf, m.TxnStep)
	buf = append(buf, byte(m.Fidelity), byte(m.Status), m.Flags)
	if version >= codecVersionTraced {
		buf = binary.BigEndian.AppendUint64(buf, m.TraceID)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Service)))
	buf = append(buf, m.Service...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.TxnID)))
	buf = append(buf, m.TxnID...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	if version >= codecVersionSpans {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Spans)))
		for _, sp := range m.Spans {
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(sp.Stage)))
			buf = append(buf, sp.Stage...)
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(sp.Note)))
			buf = append(buf, sp.Note...)
			buf = binary.BigEndian.AppendUint64(buf, uint64(sp.Start))
			buf = binary.BigEndian.AppendUint64(buf, uint64(sp.End))
		}
	}
	if version >= codecVersionRetry {
		buf = binary.BigEndian.AppendUint32(buf, m.RetryAfterMs)
	}
	if version >= codecVersionIdentity {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.BrokerID)))
		buf = append(buf, m.BrokerID...)
	}
	if version >= codecVersionTxn {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.IdemKey)))
		buf = append(buf, m.IdemKey...)
	}
	return buf, nil
}

// Decode parses a frame produced by Encode. The returned message's Payload
// is a copy, so the caller may reuse buf.
func Decode(buf []byte) (*Message, error) {
	m := &Message{}
	if err := DecodeInto(m, buf); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses a frame produced by Encode into m, reusing m's Payload
// and Spans backing arrays when they have capacity — the decode-side mirror
// of AppendEncode. With a recycled Message (see GetMessage) the steady-state
// server request path decodes without allocating: the payload is copied into
// the retained buffer and the service name is interned. On error m is left
// in an unspecified state. Any previous contents of m are discarded.
func DecodeInto(m *Message, buf []byte) error {
	payload := m.Payload[:0]
	spans := m.Spans[:0]
	*m = Message{Payload: payload, Spans: spans}
	if len(buf) < headerSize {
		return fmt.Errorf("%w: %d bytes", ErrBadFrame, len(buf))
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if buf[2] < codecVersion || buf[2] > codecVersionTxn {
		return fmt.Errorf("%w: unsupported version %d", ErrBadFrame, buf[2])
	}
	m.Type = MsgType(buf[3])
	m.ID = binary.BigEndian.Uint64(buf[4:12])
	m.Class = qos.Class(buf[12])
	m.TxnStep = binary.BigEndian.Uint16(buf[13:15])
	m.Fidelity = qos.Fidelity(buf[15])
	m.Status = Status(buf[16])
	m.Flags = buf[17]
	if m.Type != TypeRequest && m.Type != TypeResponse {
		return fmt.Errorf("%w: unknown type %d", ErrBadFrame, buf[3])
	}
	rest := buf[headerSize:]
	if buf[2] >= codecVersionTraced {
		if len(buf) < headerSizeTraced {
			return fmt.Errorf("%w: truncated trace id", ErrBadFrame)
		}
		m.TraceID = binary.BigEndian.Uint64(buf[headerSize:headerSizeTraced])
		rest = buf[headerSizeTraced:]
	}

	// Service names are a small fixed vocabulary, so intern rather than
	// allocate a fresh string per frame.
	if len(rest) < 2 {
		return fmt.Errorf("%w: truncated string length", ErrBadFrame)
	}
	sn := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if sn > maxStringLen {
		return fmt.Errorf("%w: string length %d", ErrBadFrame, sn)
	}
	if len(rest) < sn {
		return fmt.Errorf("%w: string length %d, have %d", ErrBadFrame, sn, len(rest))
	}
	m.Service = internService(rest[:sn])
	rest = rest[sn:]

	txnID, rest, err := readString(rest)
	if err != nil {
		return err
	}
	m.TxnID = txnID

	if len(rest) < 4 {
		return fmt.Errorf("%w: truncated payload length", ErrBadFrame)
	}
	n := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if buf[2] >= codecVersionSpans {
		if uint32(len(rest)) < n {
			return fmt.Errorf("%w: payload length %d, have %d", ErrBadFrame, n, len(rest))
		}
	} else if uint32(len(rest)) != n {
		return fmt.Errorf("%w: payload length %d, have %d", ErrBadFrame, n, len(rest))
	}
	if n > 0 {
		m.Payload = append(m.Payload, rest[:n]...)
	}
	rest = rest[n:]

	if buf[2] >= codecVersionSpans {
		spans, tail, err := readSpans(m.Spans, rest)
		if err != nil {
			return err
		}
		if buf[2] >= codecVersionRetry {
			if len(tail) < 4 {
				return fmt.Errorf("%w: truncated retry-after trailer", ErrBadFrame)
			}
			m.RetryAfterMs = binary.BigEndian.Uint32(tail)
			tail = tail[4:]
		}
		if buf[2] >= codecVersionIdentity {
			id, rest, err := readString(tail)
			if err != nil {
				return err
			}
			m.BrokerID = id
			tail = rest
		}
		if buf[2] >= codecVersionTxn {
			key, rest, err := readString(tail)
			if err != nil {
				return err
			}
			m.IdemKey = key
			tail = rest
		}
		if len(tail) != 0 {
			return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(tail))
		}
		m.Spans = spans
	}
	return nil
}

// Reset clears m for reuse, retaining the Payload and Spans backing arrays
// so a recycled message decodes without reallocating them.
func (m *Message) Reset() {
	payload := m.Payload[:0]
	spans := m.Spans[:0]
	*m = Message{Payload: payload, Spans: spans}
}

// msgPool recycles Messages for the server request path: every datagram
// decodes into a pooled Message instead of allocating one, and the message
// returns to the pool after the handler's response is encoded.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// GetMessage checks a cleared Message out of the free list. Pair with
// PutMessage once every field (including Payload) is dead.
func GetMessage() *Message { return msgPool.Get().(*Message) }

// PutMessage resets m and returns it to the free list. The caller must not
// retain m, m.Payload, or m.Spans afterwards.
func PutMessage(m *Message) {
	if m == nil {
		return
	}
	m.Reset()
	msgPool.Put(m)
}

// internLimit bounds the service intern table; frames beyond the limit fall
// back to a per-frame allocation so hostile traffic cannot grow the table
// without bound.
const internLimit = 4096

var (
	internMu  sync.RWMutex
	internTab = make(map[string]string)
)

// internService returns a canonical string for a service-name byte slice.
// The read-path map lookup with a string(b) key compiles without allocating,
// so repeat services — the overwhelmingly common case — cost zero allocs.
func internService(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	internMu.RLock()
	s, ok := internTab[string(b)]
	internMu.RUnlock()
	if ok {
		return s
	}
	internMu.Lock()
	if s, ok = internTab[string(b)]; !ok {
		s = string(b)
		if len(internTab) < internLimit {
			internTab[s] = s
		}
	}
	internMu.Unlock()
	return s
}

// readSpans decodes a version-3 span block, appending to dst (which may be a
// recycled message's retained spans array).
func readSpans(dst []Span, buf []byte) ([]Span, []byte, error) {
	if len(buf) < 2 {
		return nil, nil, fmt.Errorf("%w: truncated span count", ErrBadFrame)
	}
	count := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if count > MaxSpans {
		return nil, nil, fmt.Errorf("%w: span count %d", ErrBadFrame, count)
	}
	spans := dst
	if count > 0 && spans == nil {
		spans = make([]Span, 0, count)
	}
	for i := 0; i < count; i++ {
		stage, rest, err := readString(buf)
		if err != nil {
			return nil, nil, err
		}
		note, rest, err := readString(rest)
		if err != nil {
			return nil, nil, err
		}
		if len(rest) < 16 {
			return nil, nil, fmt.Errorf("%w: truncated span times", ErrBadFrame)
		}
		spans = append(spans, Span{
			Stage: stage,
			Note:  note,
			Start: int64(binary.BigEndian.Uint64(rest[:8])),
			End:   int64(binary.BigEndian.Uint64(rest[8:16])),
		})
		buf = rest[16:]
	}
	return spans, buf, nil
}

// readString decodes a 2-byte length-prefixed string.
func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, fmt.Errorf("%w: truncated string length", ErrBadFrame)
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if n > maxStringLen {
		return "", nil, fmt.Errorf("%w: string length %d", ErrBadFrame, n)
	}
	if len(buf) < n {
		return "", nil, fmt.Errorf("%w: string length %d, have %d", ErrBadFrame, n, len(buf))
	}
	return string(buf[:n]), buf[n:], nil
}
