//go:build !race

package wire

// raceEnabled reports whether the race detector is on. Alloc gates that
// depend on sync.Pool recycling skip under race: the detector deliberately
// drops a fraction of Pool puts, so pooled paths allocate by design there.
const raceEnabled = false
