package wire

import "sync"

// bufPool recycles MaxFrame-sized buffers between the client's encode path
// and the server's receive path. Encode never produces more than MaxFrame
// bytes and a datagram never carries more, so a pooled buffer always has
// enough capacity and AppendEncode into one is allocation-free. The pool
// stores *[]byte rather than []byte so checking a buffer in and out does
// not itself allocate (a bare slice would be boxed into the interface).
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, MaxFrame)
		return &b
	},
}

// getBuf checks a MaxFrame-capacity buffer out of the pool.
func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

// putBuf returns a buffer. Callers must not retain any slice of it. The
// length is restored to the full capacity so the server's ReadFrom — which
// reads into the pooled buffer as-is — always sees a MaxFrame-sized window,
// even after a holder shortened the slice to carry an encoded frame.
func putBuf(b *[]byte) {
	*b = (*b)[:cap(*b)]
	bufPool.Put(b)
}
