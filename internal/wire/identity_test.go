package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestIdentityFrameRoundTrip(t *testing.T) {
	m := &Message{
		Type:     TypeResponse,
		ID:       44,
		Service:  "db",
		Status:   StatusOK,
		TraceID:  0xdecafbad,
		Payload:  []byte("row-1"),
		BrokerID: "127.0.0.1:9001",
		Spans: []Span{
			{Stage: "queue", Start: 1, End: 2},
			{Stage: "backend", Note: "replica 0", Start: 2, End: 9},
		},
		RetryAfterMs: 250,
	}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersionIdentity {
		t.Fatalf("identity frame version = %d, want %d", frame[2], codecVersionIdentity)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.BrokerID != m.BrokerID {
		t.Fatalf("BrokerID = %q, want %q", got.BrokerID, m.BrokerID)
	}
	if got.RetryAfterMs != m.RetryAfterMs || len(got.Spans) != 2 || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("identity frame round trip mismatch: %+v", got)
	}
}

// A message without a broker identity must never pay for the v5 layout:
// older peers only understand the version their decoder was built for.
func TestEmptyBrokerIDKeepsLowerVersion(t *testing.T) {
	m := &Message{Type: TypeResponse, ID: 1, Service: "db", TraceID: 3}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] >= codecVersionIdentity {
		t.Fatalf("identity-less frame version = %d, want < %d", frame[2], codecVersionIdentity)
	}
}

func TestEncodeRejectsOversizedBrokerID(t *testing.T) {
	m := &Message{Type: TypeResponse, TraceID: 1, BrokerID: strings.Repeat("x", maxStringLen+1)}
	if _, err := Encode(m); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestIdentityFrameTruncation(t *testing.T) {
	m := &Message{
		Type:     TypeResponse,
		ID:       3,
		Service:  "mail",
		TraceID:  42,
		Payload:  []byte("LIST"),
		BrokerID: "10.0.0.2:7411",
		Spans:    []Span{{Stage: "backend", Start: 20, End: 400}},
	}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := Decode(frame[:cut]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrBadFrame", cut, len(frame), err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), frame...), 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte: err = %v, want ErrBadFrame", err)
	}
}

// Property: any broker identity round-trips exactly, alongside spans and the
// retry trailer it shares the v5 tail with.
func TestIdentityRoundTripProperty(t *testing.T) {
	f := func(traceID uint64, brokerID string, retryMs uint32, payload []byte) bool {
		if len(brokerID) > 256 || len(payload) > 4096 {
			return true
		}
		m := &Message{Type: TypeResponse, ID: 1, Service: "db",
			TraceID: traceID, Payload: payload,
			BrokerID: brokerID, RetryAfterMs: retryMs}
		frame, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		return got.BrokerID == brokerID && got.RetryAfterMs == retryMs &&
			got.TraceID == traceID && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
