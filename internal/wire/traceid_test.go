package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"servicebroker/internal/qos"
)

// encodeV1 builds an old-layout (pre-TraceID, version 1) frame by hand, the
// way a pre-upgrade peer would.
func encodeV1(m *Message) []byte {
	buf := []byte{magic0, magic1, codecVersion, byte(m.Type)}
	buf = binary.BigEndian.AppendUint64(buf, m.ID)
	buf = append(buf, byte(m.Class))
	buf = binary.BigEndian.AppendUint16(buf, m.TxnStep)
	buf = append(buf, byte(m.Fidelity), byte(m.Status), m.Flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Service)))
	buf = append(buf, m.Service...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.TxnID)))
	buf = append(buf, m.TxnID...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Payload)))
	return append(buf, m.Payload...)
}

func TestDecodeOldLayoutFrames(t *testing.T) {
	m := &Message{
		Type:    TypeRequest,
		ID:      77,
		Service: "db",
		Class:   qos.Class1,
		TxnID:   "t-1",
		TxnStep: 2,
		Flags:   FlagNoCache,
		Payload: []byte("SELECT 1"),
	}
	frame := encodeV1(m)
	got, err := Decode(frame)
	if err != nil {
		t.Fatalf("old layout did not decode: %v", err)
	}
	if got.TraceID != 0 {
		t.Fatalf("old layout decoded TraceID = %d, want 0", got.TraceID)
	}
	if got.ID != m.ID || got.Service != m.Service || got.TxnID != m.TxnID ||
		!bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("old layout mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestZeroTraceIDEncodesOldLayout(t *testing.T) {
	m := &Message{Type: TypeRequest, ID: 5, Service: "db", Payload: []byte("q")}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersion {
		t.Fatalf("zero TraceID emitted version %d, want %d (old layout)", frame[2], codecVersion)
	}
	if !bytes.Equal(frame, encodeV1(m)) {
		t.Fatal("zero-TraceID frame differs from the hand-built old layout")
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	m := &Message{
		Type:    TypeRequest,
		ID:      9,
		Service: "dir",
		Class:   qos.Class2,
		TraceID: 0xdeadbeefcafef00d,
		Payload: []byte("SEARCH dc=example sub"),
	}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersionTraced {
		t.Fatalf("traced frame version = %d, want %d", frame[2], codecVersionTraced)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != m.TraceID {
		t.Fatalf("TraceID = %#x, want %#x", got.TraceID, m.TraceID)
	}
	if got.Service != m.Service || got.Class != m.Class || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("traced round trip mismatch: %+v", got)
	}
}

// TestDecodeTruncatedFrames is the fuzz-style table: both layouts, cut at
// every byte boundary, must error (never panic, never succeed).
func TestDecodeTruncatedFrames(t *testing.T) {
	traced := &Message{Type: TypeRequest, ID: 3, Service: "mail", TxnID: "tx",
		TraceID: 42, Payload: []byte("LIST a@x.com")}
	untraced := &Message{Type: TypeResponse, ID: 4, Service: "db", Payload: []byte("ok")}

	tracedFrame, err := Encode(traced)
	if err != nil {
		t.Fatal(err)
	}
	untracedFrame, err := Encode(untraced)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		frame []byte
	}{
		{"v2-traced", tracedFrame},
		{"v1-untraced", untracedFrame},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for cut := 0; cut < len(c.frame); cut++ {
				if _, err := Decode(c.frame[:cut]); !errors.Is(err, ErrBadFrame) {
					t.Fatalf("truncation at %d/%d: err = %v, want ErrBadFrame",
						cut, len(c.frame), err)
				}
			}
			// Extra trailing bytes are also malformed (payload length must
			// consume the rest exactly).
			if _, err := Decode(append(append([]byte(nil), c.frame...), 0)); !errors.Is(err, ErrBadFrame) {
				t.Fatalf("trailing byte: err = %v, want ErrBadFrame", err)
			}
		})
	}

	// A version-2 header cut exactly at the old header size lacks its trace
	// ID — the specific boundary the traced layout adds.
	if _, err := Decode(tracedFrame[:headerSize]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("v2 frame without trace id: err = %v, want ErrBadFrame", err)
	}
}

// Property: any TraceID (zero or not) round-trips exactly.
func TestTraceIDRoundTripProperty(t *testing.T) {
	f := func(traceID, id uint64, service string, payload []byte) bool {
		if len(service) > 64 || len(payload) > 4096 {
			return true
		}
		m := &Message{Type: TypeRequest, ID: id, Service: service,
			TraceID: traceID, Payload: payload}
		frame, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		return got.TraceID == traceID && got.Service == service &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
