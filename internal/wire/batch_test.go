package wire

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// batchMessages returns a few distinct messages to pack into containers.
func batchMessages() []*Message {
	return []*Message{
		{Type: TypeRequest, ID: 1, Service: "db", Payload: []byte("q1")},
		{Type: TypeRequest, ID: 2, Service: "db", TraceID: 0xabc, Payload: []byte("q2")},
		{Type: TypeResponse, ID: 3, Service: "dir", Status: StatusOK, Payload: []byte("r3")},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	var frames [][]byte
	for _, m := range batchMessages() {
		f, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	container, err := AppendBatch(nil, frames)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if !IsBatch(container) {
		t.Fatal("IsBatch(container) = false")
	}
	var got [][]byte
	if err := DecodeBatch(container, func(f []byte) error {
		got = append(got, append([]byte(nil), f...))
		return nil
	}); err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(frames) {
		t.Fatalf("DecodeBatch yielded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Errorf("frame %d differs after container round trip", i)
		}
		if _, err := Decode(got[i]); err != nil {
			t.Errorf("frame %d no longer decodes: %v", i, err)
		}
	}
}

// TestBatchCompatSingleFrames pins the v7 compatibility contract: plain
// messages never encode as version 7, IsBatch never matches them, and a
// container is rejected by the v1–v6 decoder exactly like garbage — which is
// how peers that predate batching stay safe.
func TestBatchCompatSingleFrames(t *testing.T) {
	for i, m := range allocMessages() {
		f, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if f[2] >= codecVersionBatch {
			t.Errorf("msg %d encodes as version %d; single frames must stay v1–v6", i, f[2])
		}
		if IsBatch(f) {
			t.Errorf("msg %d: IsBatch = true for a plain frame", i)
		}
	}
	frames := [][]byte{mustEncode(t, batchMessages()[0]), mustEncode(t, batchMessages()[1])}
	container, err := AppendBatch(nil, frames)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(container); !errors.Is(err, ErrBadFrame) {
		t.Errorf("old-peer Decode(container) = %v, want ErrBadFrame", err)
	}
}

func mustEncode(t *testing.T, m *Message) []byte {
	t.Helper()
	f, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBatchMalformed(t *testing.T) {
	frames := [][]byte{mustEncode(t, batchMessages()[0]), mustEncode(t, batchMessages()[1])}
	good, err := AppendBatch(nil, frames)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"header only":      good[:batchHeaderSize],
		"truncated length": good[:batchHeaderSize+2],
		"truncated frame":  good[:len(good)-3],
		"trailing bytes":   append(append([]byte(nil), good...), 0xff),
		"bad magic":        append([]byte{'X', 'B'}, good[2:]...),
		"zero count":       {magic0, magic1, codecVersionBatch, batchMarker, 0, 0},
		"bad marker":       {magic0, magic1, codecVersionBatch, 9, 0, 1},
	}
	for name, buf := range cases {
		if err := DecodeBatch(buf, func([]byte) error { return nil }); err == nil {
			t.Errorf("DecodeBatch(%s) = nil error, want ErrBadFrame", name)
		}
	}
	if _, err := AppendBatch(nil, nil); err == nil {
		t.Error("AppendBatch(no frames) succeeded")
	}
	big := make([]byte, MaxFrame/2)
	if _, err := AppendBatch(nil, [][]byte{big, big, big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized AppendBatch = %v, want ErrFrameTooLarge", err)
	}
}

// oldStyleServer is a minimal pre-v7 responder: it decodes only bare v1–v6
// frames and answers each with a bare frame, dropping anything else — the
// observable behavior of a server from before this change. Interop tests run
// the new client against it.
func oldStyleServer(t *testing.T) (net.Addr, func()) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, MaxFrame)
		for {
			n, from, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			m, err := Decode(buf[:n])
			if err != nil || m.Type != TypeRequest {
				continue // an old peer drops v7 containers as garbage
			}
			out, err := Encode(&Message{Type: TypeResponse, ID: m.ID, Status: StatusOK, Payload: m.Payload})
			if err != nil {
				continue
			}
			_, _ = pc.WriteTo(out, from)
		}
	}()
	return pc.LocalAddr(), func() {
		pc.Close()
		<-done
	}
}

// TestInteropNewClientOldServer: a batching client whose calls do not share
// a flush window emits only bare frames, so it keeps working against a
// server that predates the v7 container.
func TestInteropNewClientOldServer(t *testing.T) {
	addr, stop := oldStyleServer(t)
	defer stop()
	cli, err := Dial(addr.String(), WithBatching(time.Millisecond), WithRetransmit(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 8; i++ {
		resp, err := cli.Call(context.Background(), &Message{Service: "db", Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(resp.Payload) != 1 || resp.Payload[0] != byte(i) {
			t.Fatalf("call %d: wrong payload %q", i, resp.Payload)
		}
	}
	st := cli.IOStats()
	if st.FramesOut != st.DatagramsOut {
		t.Errorf("sequential batching client sent %d frames in %d datagrams; lone frames must go out bare",
			st.FramesOut, st.DatagramsOut)
	}
}

// TestInteropOldClientNewServer: a raw socket speaking bare v1 frames — the
// old client's entire wire behavior — works against the new server and gets
// bare replies back.
func TestInteropOldClientNewServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, _ net.Addr, req *Message) *Message {
		return &Message{Status: StatusOK, Payload: append([]byte("ok:"), req.Payload...)}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame := mustEncode(t, &Message{Type: TypeRequest, ID: 42, Service: "db", Payload: []byte("hi")})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, MaxFrame)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("old client got no reply: %v", err)
	}
	if IsBatch(buf[:n]) {
		t.Fatal("server sent a v7 container to a bare-frame client")
	}
	resp, err := Decode(buf[:n])
	if err != nil {
		t.Fatalf("reply does not decode as v1–v6: %v", err)
	}
	if resp.ID != 42 || string(resp.Payload) != "ok:hi" {
		t.Fatalf("unexpected reply %d %q", resp.ID, resp.Payload)
	}
}

// TestBatchedCallsEndToEnd drives a batching client hard enough that flush
// windows are shared, and checks both correctness (every call gets its own
// answer) and that containers actually formed in both directions.
func TestBatchedCallsEndToEnd(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, _ net.Addr, req *Message) *Message {
		req.Status = StatusOK
		return req // echo in place: payload identifies the call
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr().String(), WithBatching(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const goroutines, rounds = 16, 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				payload := []byte{byte(g), byte(i)}
				resp, err := cli.Call(context.Background(), &Message{Service: "db", Payload: payload})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp.Payload, payload) {
					errs <- errTestMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	st := cli.IOStats()
	if st.FramesOut <= st.DatagramsOut {
		t.Errorf("no request containers formed: %d frames in %d datagrams", st.FramesOut, st.DatagramsOut)
	}
	sst := srv.IOStats()
	if sst.FramesOut <= sst.DatagramsOut {
		t.Errorf("no reply containers formed: %d frames in %d datagrams", sst.FramesOut, sst.DatagramsOut)
	}
}

// FuzzDecodeBatch mirrors FuzzDecode for the v7 container: whatever the
// walker accepts must survive a re-batch round trip, and malformed input
// must error rather than panic or over-read.
func FuzzDecodeBatch(f *testing.F) {
	var frames [][]byte
	for _, m := range batchMessages() {
		enc, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		frames = append(frames, enc)
	}
	if seed, err := AppendBatch(nil, frames); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)-1])
		f.Add(seed[:batchHeaderSize])
	}
	if lone, err := AppendBatch(nil, frames[:1]); err == nil {
		f.Add(lone)
	}
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1, codecVersionBatch, batchMarker, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var got [][]byte
		if err := DecodeBatch(data, func(fr []byte) error {
			got = append(got, append([]byte(nil), fr...))
			return nil
		}); err != nil {
			return
		}
		if len(got) == 0 {
			t.Fatal("DecodeBatch succeeded with zero frames")
		}
		if len(data) > MaxFrame {
			// The walker tolerates oversized input (the socket layer already
			// bounds datagrams); AppendBatch would rightly refuse to rebuild.
			return
		}
		rebuilt, err := AppendBatch(nil, got)
		if err != nil {
			t.Fatalf("re-batching %d accepted frames: %v", len(got), err)
		}
		var again [][]byte
		if err := DecodeBatch(rebuilt, func(fr []byte) error {
			again = append(again, append([]byte(nil), fr...))
			return nil
		}); err != nil {
			t.Fatalf("rebuilt container does not decode: %v", err)
		}
		if len(again) != len(got) {
			t.Fatalf("frame count changed across round trip: %d != %d", len(again), len(got))
		}
		for i := range got {
			if !bytes.Equal(again[i], got[i]) {
				t.Fatalf("frame %d changed across round trip", i)
			}
		}
	})
}
