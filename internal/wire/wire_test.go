package wire

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"servicebroker/internal/qos"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := &Message{
		Type:     TypeRequest,
		ID:       12345,
		Service:  "db",
		Class:    qos.Class2,
		TxnID:    "txn-7",
		TxnStep:  3,
		Fidelity: qos.FidelityCached,
		Status:   StatusOK,
		Flags:    FlagNoCache,
		Payload:  []byte("SELECT * FROM records"),
	}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.ID != m.ID || got.Service != m.Service ||
		got.Class != m.Class || got.TxnID != m.TxnID || got.TxnStep != m.TxnStep ||
		got.Fidelity != m.Fidelity || got.Status != m.Status || got.Flags != m.Flags ||
		!bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodeEmptyFields(t *testing.T) {
	m := &Message{Type: TypeResponse, ID: 1}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != "" || got.TxnID != "" || got.Payload != nil {
		t.Fatalf("empty fields mangled: %+v", got)
	}
}

func TestEncodeRejectsOversize(t *testing.T) {
	m := &Message{Type: TypeRequest, Payload: make([]byte, MaxFrame)}
	if _, err := Encode(m); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	m = &Message{Type: TypeRequest, Service: strings.Repeat("s", maxStringLen+1)}
	if _, err := Encode(m); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"short":       {magic0, magic1, codecVersion},
		"bad magic":   append([]byte{'X', 'Y'}, make([]byte, headerSize)...),
		"bad version": append([]byte{magic0, magic1, 99}, make([]byte, headerSize)...),
	}
	for name, frame := range cases {
		if _, err := Decode(frame); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

func TestDecodeRejectsBadType(t *testing.T) {
	m := &Message{Type: TypeRequest, ID: 9}
	frame, _ := Encode(m)
	frame[3] = 77 // corrupt the type byte
	if _, err := Decode(frame); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	m := &Message{Type: TypeRequest, Service: "db", Payload: []byte("hello")}
	frame, _ := Encode(m)
	for cut := headerSize; cut < len(frame); cut++ {
		if _, err := Decode(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

// Property: any message with bounded field sizes round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(id uint64, class uint8, step uint16, service, txn string, payload []byte) bool {
		if len(service) > 64 || len(txn) > 64 || len(payload) > 4096 {
			return true
		}
		m := &Message{
			Type:    TypeRequest,
			ID:      id,
			Service: service,
			Class:   qos.Class(class),
			TxnID:   txn,
			TxnStep: step,
			Payload: payload,
		}
		frame, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		return got.ID == id && got.Service == service && got.TxnID == txn &&
			got.TxnStep == step && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary input.
func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(frame []byte) bool {
		_, _ = Decode(frame)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{StatusOK, "ok"}, {StatusDropped, "dropped"}, {StatusError, "error"},
		{StatusShed, "shed"}, {Status(9), "status(9)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

// echoServer starts a server whose handler echoes the payload back with
// StatusOK, and returns it with a client connected to it.
func echoServer(t *testing.T, opts ...ClientOption) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, _ net.Addr, req *Message) *Message {
		return &Message{Status: StatusOK, Fidelity: qos.FidelityFull, Payload: req.Payload}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr().String(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestClientServerRoundTrip(t *testing.T) {
	_, cli := echoServer(t)
	resp, err := cli.Call(context.Background(), &Message{Service: "echo", Payload: []byte("ping")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || string(resp.Payload) != "ping" {
		t.Fatalf("resp = %v %q", resp.Status, resp.Payload)
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	_, cli := echoServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte{byte(i)}
			resp, err := cli.Call(context.Background(), &Message{Payload: payload})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if !bytes.Equal(resp.Payload, payload) {
				t.Errorf("call %d: response %v, want %v (cross-talk)", i, resp.Payload, payload)
			}
		}(i)
	}
	wg.Wait()
}

func TestClientContextCancel(t *testing.T) {
	// Handler that never answers in time.
	srv, err := NewServer("127.0.0.1:0", func(ctx context.Context, _ net.Addr, _ *Message) *Message {
		select {
		case <-time.After(10 * time.Second):
		case <-ctx.Done():
		}
		return &Message{Status: StatusOK}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = cli.Call(ctx, &Message{Payload: []byte("x")})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestClientTimeoutAfterAttempts(t *testing.T) {
	// A server socket that never replies: listen and discard.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		buf := make([]byte, MaxFrame)
		for {
			if _, _, err := conn.ReadFrom(buf); err != nil {
				return
			}
		}
	}()

	cli, err := Dial(conn.LocalAddr().String(), WithRetransmit(20*time.Millisecond), WithAttempts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	_, err = cli.Call(context.Background(), &Message{Payload: []byte("x")})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("gave up after %v, want ≥ 2 × 20ms", elapsed)
	}
}

func TestServerDedupSuppressesReexecution(t *testing.T) {
	var executions atomic.Int64
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, _ net.Addr, req *Message) *Message {
		executions.Add(1)
		return &Message{Status: StatusOK, Payload: req.Payload}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Send the same request frame twice from one socket, read two replies.
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame, _ := Encode(&Message{Type: TypeRequest, ID: 42, Payload: []byte("q")})
	buf := make([]byte, MaxFrame)
	for i := 0; i < 2; i++ {
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		resp, err := Decode(buf[:n])
		if err != nil || resp.ID != 42 {
			t.Fatalf("read %d: resp %+v err %v", i, resp, err)
		}
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("handler executed %d times, want 1 (dedup)", got)
	}
}

func TestServerIgnoresGarbageDatagrams(t *testing.T) {
	_, cli := echoServer(t)
	// Blast garbage at the server, then verify it still works.
	raw, err := net.Dial("udp", cli.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	for i := 0; i < 10; i++ {
		raw.Write([]byte("not a frame"))
	}
	resp, err := cli.Call(context.Background(), &Message{Payload: []byte("still alive")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "still alive" {
		t.Fatalf("resp = %q", resp.Payload)
	}
}

func TestServerNilHandlerResponse(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, _ net.Addr, _ *Message) *Message {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.Call(context.Background(), &Message{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusError {
		t.Fatalf("status = %v, want StatusError", resp.Status)
	}
}

func TestNewServerRejectsNilHandler(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", nil); err == nil {
		t.Fatal("NewServer(nil handler) succeeded")
	}
}

func TestClientCloseFailsPendingCalls(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(ctx context.Context, _ net.Addr, _ *Message) *Message {
		<-ctx.Done()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr().String(), WithRetransmit(time.Second), WithAttempts(1))
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), &Message{})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cli.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("pending call succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call did not fail after Close")
	}
	if _, err := cli.Call(context.Background(), &Message{}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after close = %v, want ErrClientClosed", err)
	}
	cli.Close() // double close is a no-op
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, _ net.Addr, req *Message) *Message {
		return &Message{Status: StatusOK}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCallRoundTrip(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, _ net.Addr, req *Message) *Message {
		return &Message{Status: StatusOK, Payload: req.Payload}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	req := &Message{Service: "db", Payload: []byte("SELECT 1")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
