package wire

import (
	"bytes"
	"context"
	"net"
	"testing"

	"servicebroker/internal/qos"
)

// allocMessages covers all four frame layouts the codec can emit.
func allocMessages() []*Message {
	return []*Message{
		{ // v1: untraced
			Type: TypeRequest, ID: 7, Service: "db", Class: qos.Class1,
			TxnID: "txn-1", TxnStep: 2, Flags: FlagNoCache,
			Payload: []byte("select * from shows"),
		},
		{ // v2: traced
			Type: TypeRequest, ID: 8, Service: "web", TraceID: 0xfeedbeef,
			Payload: []byte("/movies/today"),
		},
		{ // v3: spans
			Type: TypeResponse, ID: 9, Service: "db", TraceID: 0xabc,
			Status:  StatusOK,
			Spans:   []Span{{Stage: "backend", Note: "q", Start: 100, End: 200}},
			Payload: []byte("result"),
		},
		{ // v4: retry-after trailer
			Type: TypeResponse, ID: 10, Service: "db", TraceID: 0xdef,
			Status: StatusShed, RetryAfterMs: 25, Payload: []byte("shed"),
		},
	}
}

// TestAppendEncodeMatchesEncode: the append-into path must produce exactly
// the bytes Encode does, for every frame version, including when appending
// after existing content.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	for i, m := range allocMessages() {
		want, err := Encode(m)
		if err != nil {
			t.Fatalf("msg %d: Encode: %v", i, err)
		}
		got, err := AppendEncode(nil, m)
		if err != nil {
			t.Fatalf("msg %d: AppendEncode: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("msg %d: AppendEncode(nil) differs from Encode", i)
		}
		prefix := []byte("prefix-")
		got, err = AppendEncode(append([]byte(nil), prefix...), m)
		if err != nil {
			t.Fatalf("msg %d: AppendEncode with prefix: %v", i, err)
		}
		if !bytes.HasPrefix(got, prefix) || !bytes.Equal(got[len(prefix):], want) {
			t.Fatalf("msg %d: AppendEncode did not append after existing content", i)
		}
	}
}

// TestAppendEncodeZeroAllocs is the ISSUE's hot-path gate: encoding into a
// buffer with spare capacity must not allocate, for any frame version.
func TestAppendEncodeZeroAllocs(t *testing.T) {
	buf := make([]byte, 0, MaxFrame)
	for i, m := range allocMessages() {
		allocs := testing.AllocsPerRun(1000, func() {
			var err error
			if _, err = AppendEncode(buf[:0], m); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("msg %d (v%d layout): AppendEncode = %.1f allocs/op, want 0", i, i+1, allocs)
		}
	}
}

// TestEncodeDecodeAllocBudget bounds the full round trip. Encode costs one
// allocation (the frame). Decode builds an independent message — the struct,
// a payload copy, the string fields, and any span block — so its budget is
// fixed per layout rather than zero; the gate is that neither side regresses.
func TestEncodeDecodeAllocBudget(t *testing.T) {
	budgets := []float64{5, 5, 8, 5} // per-layout: v1, v2, v3, v4
	for i, m := range allocMessages() {
		budget := budgets[i]
		allocs := testing.AllocsPerRun(1000, func() {
			frame, err := Encode(m)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Decode(frame); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > budget {
			t.Errorf("msg %d (v%d layout): round trip = %.1f allocs/op, budget %.0f", i, i+1, allocs, budget)
		}
	}
}

// TestPooledCallPath exercises the client's pooled encode and the server's
// pooled receive end to end, checking correctness is unchanged when buffers
// recycle under concurrency.
func TestPooledCallPath(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(ctx context.Context, from net.Addr, req *Message) *Message {
		return &Message{Status: StatusOK, Service: req.Service, Payload: append([]byte("echo:"), req.Payload...)}
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()

	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				payload := []byte{byte('a' + g), byte(i)}
				resp, err := cli.Call(context.Background(), &Message{Service: "db", Payload: payload})
				if err != nil {
					done <- err
					return
				}
				if want := append([]byte("echo:"), payload...); !bytes.Equal(resp.Payload, want) {
					done <- errTestMismatch
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatalf("pooled call path: %v", err)
		}
	}
}

// TestDecodeIntoZeroAllocs is the decode-side mirror of the AppendEncode
// gate: decoding a plain request (interned service, no txn strings, no
// spans) into a recycled Message must not allocate once the payload buffer
// is warm.
func TestDecodeIntoZeroAllocs(t *testing.T) {
	msgs := []*Message{
		{Type: TypeRequest, ID: 7, Service: "db", Class: qos.Class1, Payload: []byte("select * from shows")},
		{Type: TypeRequest, ID: 8, Service: "db", TraceID: 0xfeedbeef, Payload: []byte("/movies/today")},
	}
	for i, m := range msgs {
		frame, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		dst := &Message{}
		if err := DecodeInto(dst, frame); err != nil { // warm payload capacity + intern
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if err := DecodeInto(dst, frame); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("msg %d: DecodeInto = %.1f allocs/op, want 0", i, allocs)
		}
		if dst.ID != m.ID || string(dst.Payload) != string(m.Payload) || dst.Service != m.Service {
			t.Errorf("msg %d: DecodeInto corrupted the message", i)
		}
	}
}

// TestDecodeIntoMatchesDecode: the in-place path must produce the same
// message as Decode for every layout, including when the destination is
// dirty from a previous, larger message.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	dirty := &Message{
		Payload: []byte("previous payload that was much longer than the next one"),
		Spans:   []Span{{Stage: "old", Note: "old", Start: 1, End: 2}},
		TxnID:   "stale", BrokerID: "stale", IdemKey: "stale", RetryAfterMs: 99,
	}
	for i, m := range allocMessages() {
		frame, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(dirty, frame); err != nil {
			t.Fatalf("msg %d: DecodeInto: %v", i, err)
		}
		if dirty.ID != want.ID || dirty.Service != want.Service || dirty.TxnID != want.TxnID ||
			dirty.Status != want.Status || dirty.TraceID != want.TraceID ||
			dirty.RetryAfterMs != want.RetryAfterMs || dirty.BrokerID != want.BrokerID ||
			dirty.IdemKey != want.IdemKey || !bytes.Equal(dirty.Payload, want.Payload) ||
			len(dirty.Spans) != len(want.Spans) {
			t.Errorf("msg %d: DecodeInto result differs from Decode", i)
		}
		for j := range want.Spans {
			if dirty.Spans[j] != want.Spans[j] {
				t.Errorf("msg %d span %d: %+v != %+v", i, j, dirty.Spans[j], want.Spans[j])
			}
		}
	}
}

// TestServerPathZeroAllocs pins the ISSUE's acceptance criterion: the
// server's decode→dedup→encode path runs without allocating once warm, on
// both the execute path (handler mutates the pooled request in place) and
// the duplicate path (answered from the dedup ring).
func TestServerPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool puts by design; pooled paths allocate under -race")
	}
	s := &Server{
		handler: func(_ context.Context, _ net.Addr, req *Message) *Message {
			req.Status = StatusOK
			return req
		},
		index: make(map[dedupKey]int),
	}
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4242}
	ctx := context.Background()
	req := &Message{Type: TypeRequest, Service: "db", Class: qos.Class1, Payload: []byte("select * from shows")}

	// Fill the dedup ring past its window so steady-state inserts recycle
	// slots (and the index map reaches its final size) before measuring.
	id := uint64(0)
	fb := make([]byte, 0, MaxFrame)
	sendOne := func() {
		id++
		req.ID = id
		frame, err := AppendEncode(fb[:0], req)
		if err != nil {
			t.Fatal(err)
		}
		bp := s.processFrame(ctx, frame, from)
		if bp == nil {
			t.Fatal("processFrame dropped a valid request")
		}
		putBuf(bp)
	}
	for i := 0; i < dedupWindow+64; i++ {
		sendOne()
	}

	allocs := testing.AllocsPerRun(1000, sendOne)
	if allocs != 0 {
		t.Errorf("execute path = %.1f allocs/op, want 0", allocs)
	}

	// Duplicate path: same frame again must be served from the ring.
	req.ID = id
	dupFrame, err := AppendEncode(fb[:0], req)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		bp := s.processFrame(ctx, dupFrame, from)
		if bp == nil {
			t.Fatal("duplicate dropped")
		}
		putBuf(bp)
	})
	if allocs != 0 {
		t.Errorf("duplicate path = %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkServerProcessFrame(b *testing.B) {
	s := &Server{
		handler: func(_ context.Context, _ net.Addr, req *Message) *Message {
			req.Status = StatusOK
			return req
		},
		index: make(map[dedupKey]int),
	}
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4242}
	ctx := context.Background()
	req := &Message{Type: TypeRequest, Service: "db", Class: qos.Class1, Payload: []byte("select * from shows")}
	fb := make([]byte, 0, MaxFrame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.ID = uint64(i + 1)
		frame, err := AppendEncode(fb[:0], req)
		if err != nil {
			b.Fatal(err)
		}
		bp := s.processFrame(ctx, frame, from)
		if bp == nil {
			b.Fatal("dropped")
		}
		putBuf(bp)
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	frame, err := Encode(&Message{Type: TypeRequest, ID: 7, Service: "db", Payload: []byte("select * from shows")})
	if err != nil {
		b.Fatal(err)
	}
	m := &Message{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(m, frame); err != nil {
			b.Fatal(err)
		}
	}
}

var errTestMismatch = errTest("response payload mismatch")

type errTest string

func (e errTest) Error() string { return string(e) }
