package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"servicebroker/internal/qos"
)

// encodeV2 builds a traced (version 2, pre-span) frame by hand, the way a
// pre-span-export peer would.
func encodeV2(m *Message) []byte {
	buf := []byte{magic0, magic1, codecVersionTraced, byte(m.Type)}
	buf = binary.BigEndian.AppendUint64(buf, m.ID)
	buf = append(buf, byte(m.Class))
	buf = binary.BigEndian.AppendUint16(buf, m.TxnStep)
	buf = append(buf, byte(m.Fidelity), byte(m.Status), m.Flags)
	buf = binary.BigEndian.AppendUint64(buf, m.TraceID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Service)))
	buf = append(buf, m.Service...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.TxnID)))
	buf = append(buf, m.TxnID...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Payload)))
	return append(buf, m.Payload...)
}

func TestSpanlessTracedFrameMatchesV2Layout(t *testing.T) {
	m := &Message{
		Type:    TypeResponse,
		ID:      12,
		Service: "db",
		Status:  StatusOK,
		TraceID: 0xfeedface,
		Payload: []byte("row"),
	}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersionTraced {
		t.Fatalf("span-less traced frame version = %d, want %d", frame[2], codecVersionTraced)
	}
	if !bytes.Equal(frame, encodeV2(m)) {
		t.Fatal("span-less traced frame differs from the hand-built v2 layout")
	}
}

func TestSpanFrameRoundTrip(t *testing.T) {
	m := &Message{
		Type:     TypeResponse,
		ID:       31,
		Service:  "db",
		Class:    qos.Class1,
		Fidelity: qos.FidelityFull,
		Status:   StatusOK,
		TraceID:  0xabad1dea,
		Payload:  []byte("result set"),
		Spans: []Span{
			{Stage: "queue", Note: "", Start: 1_000_000, End: 1_500_000},
			{Stage: "cache", Note: "miss", Start: 1_500_000, End: 1_510_000},
			{Stage: "backend", Note: "", Start: 1_510_000, End: 9_000_000},
		},
	}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersionSpans {
		t.Fatalf("span frame version = %d, want %d", frame[2], codecVersionSpans)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != m.TraceID || got.Service != m.Service || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("span frame round trip mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Spans, m.Spans) {
		t.Fatalf("spans mismatch:\n got %+v\nwant %+v", got.Spans, m.Spans)
	}
}

// A version-3 frame with an empty span block is still valid and decodes with
// nil Spans.
func TestSpanFrameZeroSpans(t *testing.T) {
	m := &Message{Type: TypeResponse, ID: 1, Service: "db", TraceID: 7,
		Spans: []Span{{Stage: "queue"}}}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the span count to zero and truncate the span bodies.
	base := len(frame) - (2 + 2 + len("queue") + 2 + 0 + 16)
	frame = frame[:base]
	frame = append(frame, 0, 0)
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != 0 {
		t.Fatalf("got %d spans, want 0", len(got.Spans))
	}
}

func TestSpanFrameTruncation(t *testing.T) {
	m := &Message{
		Type:    TypeResponse,
		ID:      3,
		Service: "mail",
		TraceID: 42,
		Payload: []byte("LIST"),
		Spans: []Span{
			{Stage: "queue", Note: "w=2", Start: 10, End: 20},
			{Stage: "backend", Start: 20, End: 400},
		},
	}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := Decode(frame[:cut]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrBadFrame", cut, len(frame), err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), frame...), 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte: err = %v, want ErrBadFrame", err)
	}
}

func TestEncodeRejectsOversizedSpanBlock(t *testing.T) {
	spans := make([]Span, MaxSpans+1)
	for i := range spans {
		spans[i] = Span{Stage: "backend"}
	}
	m := &Message{Type: TypeResponse, TraceID: 1, Spans: spans}
	if _, err := Encode(m); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// Property: spans of any content round-trip exactly alongside the payload.
func TestSpanRoundTripProperty(t *testing.T) {
	f := func(traceID uint64, stage, note string, start, end int64, payload []byte) bool {
		if len(stage) > 256 || len(note) > 256 || len(payload) > 4096 {
			return true
		}
		m := &Message{Type: TypeResponse, ID: 1, Service: "db",
			TraceID: traceID, Payload: payload,
			Spans: []Span{{Stage: stage, Note: note, Start: start, End: end}}}
		frame, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		return got.TraceID == traceID && bytes.Equal(got.Payload, payload) &&
			len(got.Spans) == 1 && got.Spans[0] == m.Spans[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A server must never send a v3 frame to a client that did not set
// FlagSpanExport, and must strip spans rather than fail when the block is
// oversized.
func TestServerSpanGating(t *testing.T) {
	spans := []Span{{Stage: "queue", Start: 1, End: 2}}
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, _ net.Addr, req *Message) *Message {
		return &Message{Status: StatusOK, TraceID: req.TraceID, Spans: spans, Payload: []byte("ok")}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Without the flag: spans stripped, old-style frame.
	resp, err := cli.Call(context.Background(), &Message{Service: "db", TraceID: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Spans) != 0 {
		t.Fatalf("un-flagged call received %d spans, want 0", len(resp.Spans))
	}

	// With the flag: spans delivered.
	resp, err = cli.Call(context.Background(), &Message{Service: "db", TraceID: 9, Flags: FlagSpanExport})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Spans, spans) {
		t.Fatalf("flagged call spans = %+v, want %+v", resp.Spans, spans)
	}
}

func TestServerDropsSpansWhenFrameTooLarge(t *testing.T) {
	// A payload near MaxFrame leaves no room for a span block; the server
	// must deliver the payload anyway.
	payload := bytes.Repeat([]byte("x"), MaxFrame-128)
	spans := make([]Span, MaxSpans)
	for i := range spans {
		spans[i] = Span{Stage: "backend", Note: "attempt"}
	}
	srv, err := NewServer("127.0.0.1:0", func(_ context.Context, _ net.Addr, req *Message) *Message {
		return &Message{Status: StatusOK, TraceID: req.TraceID, Spans: spans, Payload: payload}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	resp, err := cli.Call(context.Background(), &Message{Service: "db", TraceID: 5, Flags: FlagSpanExport})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("status = %v, want ok (span overflow must not fail the response)", resp.Status)
	}
	if !bytes.Equal(resp.Payload, payload) {
		t.Fatal("payload corrupted by span fallback")
	}
	if len(resp.Spans) != 0 {
		t.Fatalf("oversized span block delivered %d spans, want 0", len(resp.Spans))
	}
}
