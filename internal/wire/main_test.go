package wire

import (
	"testing"

	"servicebroker/internal/testutil"
)

// TestMain fails the package if any test leaks a goroutine — the package's
// Close/drain contracts promise everything it starts is stopped.
func TestMain(m *testing.M) { testutil.VerifyMain(m) }
