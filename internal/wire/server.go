package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// Handler processes one request message and returns the response. The
// request's ID is echoed onto the returned response automatically; handlers
// may leave it zero. A nil return sends a StatusError response.
//
// The request message and everything it references (Payload, Spans) belong
// to the server and are recycled as soon as the handler returns: a handler
// that retains request data past its return must copy it. A handler may
// return req itself, mutated in place into the response — the server
// recognizes the aliasing and recycles the message exactly once.
type Handler func(ctx context.Context, from net.Addr, req *Message) *Message

// IOStats counts frames and datagrams crossing one endpoint. With batching,
// frames outnumber datagrams; the gap is the syscalls (and UDP headers)
// saved.
type IOStats struct {
	FramesIn     uint64
	DatagramsIn  uint64
	FramesOut    uint64
	DatagramsOut uint64
}

// dedupKey names one request for retransmission suppression: the sender plus
// the client-assigned request ID. For UDP senders — every real deployment —
// the key is built from the comparable netip.AddrPort value without
// allocating; other PacketConn address types fall back to the String form.
type dedupKey struct {
	ap   netip.AddrPort
	addr string
	id   uint64
}

func makeDedupKey(from net.Addr, id uint64) dedupKey {
	if ua, ok := from.(*net.UDPAddr); ok {
		return dedupKey{ap: ua.AddrPort(), id: id}
	}
	return dedupKey{addr: from.String(), id: id}
}

// dedupSlot is one ring entry: the key it answers for and the encoded
// response, kept in a buffer that is overwritten in place when the ring
// wraps so the steady-state insert allocates nothing.
type dedupSlot struct {
	key  dedupKey
	used bool
	buf  []byte
}

// Server receives request datagrams, invokes a handler, and sends the
// response back to the originating address. Duplicate requests (client
// retransmissions) are answered from a small response cache without
// re-invoking the handler, giving at-most-once handler execution for the
// idempotent window. Requests that arrive packed in a v7 container are
// handled concurrently and their replies are packed back into containers.
type Server struct {
	conn    net.PacketConn
	handler Handler

	// The dedup cache is a fixed ring of dedupWindow slots indexed by a map:
	// insertion overwrites the oldest slot in place (reusing its buffer), so
	// neither the ring nor its backing array grows, and lookups never build
	// a string key on the UDP path.
	mu     sync.Mutex
	index  map[dedupKey]int
	slots  []dedupSlot
	next   int
	closed bool

	framesIn     atomic.Uint64
	datagramsIn  atomic.Uint64
	framesOut    atomic.Uint64
	datagramsOut atomic.Uint64

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// dedupWindow bounds the retransmission-suppression cache.
const dedupWindow = 4096

// NewServer starts a datagram server on addr ("127.0.0.1:0" for an ephemeral
// port). Close must be called to release the socket and stop the serving
// goroutines.
func NewServer(addr string, handler Handler) (*Server, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s, err := NewServerConn(conn, handler)
	if err != nil {
		conn.Close()
	}
	return s, err
}

// NewServerConn starts a datagram server on an already-bound PacketConn.
// The chaos harness uses this to interpose netsim.PacketConn fault gates
// between the server and the real socket; Close closes pc.
func NewServerConn(pc net.PacketConn, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("wire: nil handler")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		conn:    pc,
		handler: handler,
		index:   make(map[dedupKey]int),
		cancel:  cancel,
	}
	s.wg.Add(1)
	go s.serve(ctx)
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// IOStats returns the server's frame/datagram counters.
func (s *Server) IOStats() IOStats {
	return IOStats{
		FramesIn:     s.framesIn.Load(),
		DatagramsIn:  s.datagramsIn.Load(),
		FramesOut:    s.framesOut.Load(),
		DatagramsOut: s.datagramsOut.Load(),
	}
}

// Close stops the server and waits for in-flight handlers to finish. The
// socket stays open until they do: a handler that is mid-response gets to
// send it, so requests accepted before Close are answered, not lost.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	// Expire the read so the receive loop stops accepting without closing
	// the socket out from under in-flight handlers' WriteTo calls.
	_ = s.conn.SetReadDeadline(time.Now())
	s.wg.Wait()
	return s.conn.Close()
}

// serve is the receive loop. Each datagram is handled on its own goroutine
// so a slow backend does not head-of-line-block the socket. Receive buffers
// come from the frame pool instead of being copied per datagram: DecodeInto
// copies everything it keeps, so the frame never escapes handleDatagram and
// the buffer can go straight back to the pool.
func (s *Server) serve(ctx context.Context) {
	defer s.wg.Done()
	for {
		bp := getBuf()
		n, from, err := s.conn.ReadFrom(*bp)
		if err != nil {
			putBuf(bp)
			return // socket closed
		}
		s.datagramsIn.Add(1)
		s.wg.Add(1)
		go func(bp *[]byte, n int, from net.Addr) {
			defer s.wg.Done()
			defer putBuf(bp)
			s.handleDatagram(ctx, (*bp)[:n], from)
		}(bp, n, from)
	}
}

func (s *Server) handleDatagram(ctx context.Context, data []byte, from net.Addr) {
	if IsBatch(data) {
		s.handleBatch(ctx, data, from)
		return
	}
	s.framesIn.Add(1)
	bp := s.processFrame(ctx, data, from)
	if bp == nil {
		return // drop garbage silently, as a datagram service must
	}
	s.framesOut.Add(1)
	s.datagramsOut.Add(1)
	_, _ = s.conn.WriteTo(*bp, from)
	putBuf(bp)
}

// handleBatch unpacks a v7 container, runs every contained request on its
// own goroutine (a container must not serialize the handlers it carries),
// and packs the replies back into as few datagrams as they fit.
func (s *Server) handleBatch(ctx context.Context, data []byte, from net.Addr) {
	var frames [][]byte
	if err := DecodeBatch(data, func(f []byte) error {
		frames = append(frames, f)
		return nil
	}); err != nil {
		return
	}
	s.framesIn.Add(uint64(len(frames)))
	outs := make([]*[]byte, len(frames))
	if len(frames) == 1 {
		outs[0] = s.processFrame(ctx, frames[0], from)
	} else {
		var wg sync.WaitGroup
		for i := range frames {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i] = s.processFrame(ctx, frames[i], from)
			}(i)
		}
		wg.Wait()
	}
	s.writeBatched(outs, from)
}

// writeBatched sends the encoded responses in outs (nil entries are dropped
// frames) back to from, packing consecutive responses into v7 containers up
// to the datagram size. A response that ends up alone in its window goes out
// bare. Consumes and recycles the out buffers.
func (s *Server) writeBatched(outs []*[]byte, from net.Addr) {
	cp := getBuf()
	container := (*cp)[:0]
	count := 0
	flush := func() {
		if count == 0 {
			return
		}
		if count == 1 {
			// A lone reply goes out bare: batching must never change the
			// bytes a single-frame exchange produces.
			_, _ = s.conn.WriteTo(container[batchHeaderSize+batchFrameOverhead:], from)
		} else {
			binary.BigEndian.PutUint16(container[4:6], uint16(count))
			_, _ = s.conn.WriteTo(container, from)
		}
		s.framesOut.Add(uint64(count))
		s.datagramsOut.Add(1)
		container = container[:0]
		count = 0
	}
	for _, bp := range outs {
		if bp == nil {
			continue
		}
		f := *bp
		need := batchFrameOverhead + len(f)
		if count > 0 && (len(container)+need > MaxFrame || count >= MaxBatchFrames) {
			flush()
		}
		if batchHeaderSize+need > MaxFrame {
			// Too large to containerize even alone; send it bare.
			flush()
			s.framesOut.Add(1)
			s.datagramsOut.Add(1)
			_, _ = s.conn.WriteTo(f, from)
			putBuf(bp)
			continue
		}
		if count == 0 {
			container = append(container, magic0, magic1, codecVersionBatch, batchMarker, 0, 0)
		}
		container = binary.BigEndian.AppendUint32(container, uint32(len(f)))
		container = append(container, f...)
		count++
		putBuf(bp)
	}
	flush()
	putBuf(cp)
}

// processFrame decodes one request frame, answers duplicates from the dedup
// ring, and otherwise runs the handler and encodes its response. The encoded
// response is returned in a pooled buffer the caller must send and putBuf;
// nil means the frame was garbage and produced no reply. The path from
// decode through dedup to encode allocates nothing in steady state: the
// request comes from the Message free list, the dedup key is a comparable
// value, and both the ring slot and the reply buffer are recycled.
func (s *Server) processFrame(ctx context.Context, frame []byte, from net.Addr) *[]byte {
	req := GetMessage()
	if err := DecodeInto(req, frame); err != nil || req.Type != TypeRequest {
		PutMessage(req)
		return nil
	}

	key := makeDedupKey(from, req.ID)
	s.mu.Lock()
	if i, ok := s.index[key]; ok {
		bp := getBuf()
		*bp = append((*bp)[:0], s.slots[i].buf...)
		s.mu.Unlock()
		PutMessage(req)
		return bp
	}
	s.mu.Unlock()

	id, flags := req.ID, req.Flags
	resp := s.handler(ctx, from, req)
	if resp == nil {
		resp = &Message{Status: StatusError, Payload: []byte("wire: handler returned no response")}
	}
	resp.Type = TypeResponse
	resp.ID = id
	if flags&FlagSpanExport == 0 {
		// The client did not ask for spans (or predates them); never send a
		// v3 frame it would reject.
		resp.Spans = resp.Spans[:0]
	}
	if flags&FlagBackpressure == 0 {
		// The client does not understand shedding (or predates it); never
		// send a v4 frame or a status code it would misread.
		resp.RetryAfterMs = 0
		if resp.Status == StatusShed {
			resp.Status = StatusDropped
		}
	}
	bp := getBuf()
	out, err := AppendEncode((*bp)[:0], resp)
	if err != nil && len(resp.Spans) > 0 {
		// Span export is best-effort: an oversized span block must not turn a
		// good response into an error.
		resp.Spans = resp.Spans[:0]
		out, err = AppendEncode((*bp)[:0], resp)
	}
	if err != nil {
		resp = &Message{Type: TypeResponse, ID: id, Status: StatusError, Payload: []byte(err.Error())}
		out, _ = AppendEncode((*bp)[:0], resp)
	}
	// The response may alias the request's payload (echo handlers, in-place
	// mutation), so the request is recycled only now, after encoding.
	PutMessage(req)

	s.insertDedup(key, out)
	*bp = out
	return bp
}

// insertDedup records an encoded response in the ring, evicting the oldest
// entry in place once the window is full. Concurrent executions of the same
// key keep the first recorded response, matching the map-based predecessor.
func (s *Server) insertDedup(key dedupKey, out []byte) {
	s.mu.Lock()
	if _, dup := s.index[key]; !dup {
		if len(s.slots) < dedupWindow {
			s.slots = append(s.slots, dedupSlot{key: key, used: true, buf: append([]byte(nil), out...)})
			s.index[key] = len(s.slots) - 1
		} else {
			slot := &s.slots[s.next]
			if slot.used {
				delete(s.index, slot.key)
			}
			slot.key = key
			slot.used = true
			slot.buf = append(slot.buf[:0], out...)
			s.index[key] = s.next
			s.next++
			if s.next == dedupWindow {
				s.next = 0
			}
		}
	}
	s.mu.Unlock()
}

// Client issues requests to a wire server and matches responses by ID,
// retransmitting on loss. A single UDP socket is shared by all calls; a
// reader goroutine demultiplexes responses to waiting callers. With
// WithBatching, requests that fall within a flush window leave in one
// datagram as a v7 container.
type Client struct {
	conn net.Conn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Message
	closed  bool

	retransmit  time.Duration
	attempts    int
	batchWindow time.Duration
	batch       *clientBatcher

	framesOut    atomic.Uint64
	datagramsOut atomic.Uint64
	framesIn     atomic.Uint64
	datagramsIn  atomic.Uint64

	wg    sync.WaitGroup // reader goroutine
	calls sync.WaitGroup // in-flight Call invocations
}

// ClientOption configures a Client.
type ClientOption interface {
	apply(*Client)
}

type clientOptionFunc func(*Client)

func (f clientOptionFunc) apply(c *Client) { f(c) }

// WithRetransmit sets the per-attempt timeout before a request datagram is
// re-sent (default 200 ms).
func WithRetransmit(d time.Duration) ClientOption {
	return clientOptionFunc(func(c *Client) { c.retransmit = d })
}

// WithAttempts sets the total number of transmissions per call (default 3).
func WithAttempts(n int) ClientOption {
	return clientOptionFunc(func(c *Client) { c.attempts = n })
}

// WithBatching holds each outgoing request for up to window, packing every
// request that accumulates meanwhile into one v7 container datagram. Off by
// default: an unbatched client is byte-identical on the wire to every prior
// release. A lone request in its window still goes out bare, so enabling
// batching never changes single-frame traffic either — only the server must
// understand v7, and only when two calls actually share a window. Batched
// send errors surface through the retransmit/timeout path rather than the
// sending Call.
func WithBatching(window time.Duration) ClientOption {
	return clientOptionFunc(func(c *Client) { c.batchWindow = window })
}

// Dial connects a client to the wire server at addr.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:       conn,
		pending:    make(map[uint64]chan *Message),
		retransmit: 200 * time.Millisecond,
		attempts:   3,
	}
	for _, o := range opts {
		o.apply(c)
	}
	if c.batchWindow > 0 {
		c.batch = newClientBatcher(c, c.batchWindow)
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// IOStats returns the client's frame/datagram counters.
func (c *Client) IOStats() IOStats {
	return IOStats{
		FramesIn:     c.framesIn.Load(),
		DatagramsIn:  c.datagramsIn.Load(),
		FramesOut:    c.framesOut.Load(),
		DatagramsOut: c.datagramsOut.Load(),
	}
}

// Close fails outstanding calls with ErrClientClosed, waits for them to
// return, then releases the socket and stops the reader goroutine. Waiting
// before closing the socket keeps teardown from racing active sends (a Call
// mid-Write would otherwise see a closed-connection error instead).
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- nil // closed sentinel; buffered and sole sender under mu
	}
	c.mu.Unlock()
	if c.batch != nil {
		c.batch.stop()
	}
	c.calls.Wait()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// ErrClientClosed is returned by Call after Close.
var ErrClientClosed = errors.New("wire: client closed")

// ErrTimeout is returned by Call when every transmission attempt expires
// without a response.
var ErrTimeout = errors.New("wire: request timed out")

func (c *Client) readLoop() {
	defer c.wg.Done()
	buf := make([]byte, MaxFrame)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient read errors must not kill the reader. On Linux a
			// connected UDP socket surfaces ICMP port-unreachable as
			// ECONNREFUSED on Read after the peer dies; one such error per
			// lost datagram is expected while a broker is down, and the same
			// socket works again once the peer rebinds its port. Exiting here
			// would leave every future Call waiting on a response nobody
			// reads.
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		c.datagramsIn.Add(1)
		data := buf[:n]
		if IsBatch(data) {
			_ = DecodeBatch(data, func(f []byte) error {
				c.dispatch(f)
				return nil
			})
			continue
		}
		c.dispatch(data)
	}
}

// dispatch decodes one response frame and delivers it to the waiting Call.
// The send happens under mu while the pending entry exists: the channel is
// buffered and each entry sees at most one send in its lifetime, so the
// send cannot block and a recycled channel is always drained-or-empty.
func (c *Client) dispatch(frame []byte) {
	m, err := Decode(frame)
	if err != nil || m.Type != TypeResponse {
		return
	}
	c.framesIn.Add(1)
	c.mu.Lock()
	if ch, ok := c.pending[m.ID]; ok {
		delete(c.pending, m.ID)
		ch <- m
	}
	c.mu.Unlock()
}

// respChanPool recycles the per-Call response channels. A channel is only
// returned after being drained, so a recycled channel is always empty.
var respChanPool = sync.Pool{New: func() any { return make(chan *Message, 1) }}

// reclaimChan drains at most one stranded value and pools the channel.
func reclaimChan(ch chan *Message) {
	select {
	case <-ch:
	default:
	}
	respChanPool.Put(ch)
}

// timerPool recycles retransmit timers across Calls. Pooled timers are
// always stopped with their channel drained, so Reset is safe immediately.
var timerPool sync.Pool

func getTimer() *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		return t
	}
	t := time.NewTimer(time.Hour)
	stopTimer(t)
	return t
}

// stopTimer stops a running timer and consumes an in-flight fire. Only
// sound when the caller is the sole reader of t.C and has not received from
// it since the last Reset — then Stop()==false implies exactly one value is
// (or will be) in the channel, so the blocking drain is bounded.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		<-t.C
	}
}

func putTimer(t *time.Timer) { timerPool.Put(t) }

// Call sends req and waits for the matching response, retransmitting up to
// the configured number of attempts. The req.ID field is assigned by the
// client. Call honors ctx cancellation.
func (c *Client) Call(ctx context.Context, req *Message) (*Message, error) {
	req.Type = TypeRequest

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.calls.Add(1) // under mu with closed checked, so Close cannot miss us
	defer c.calls.Done()
	c.nextID++
	req.ID = c.nextID
	ch := respChanPool.Get().(chan *Message)
	c.pending[req.ID] = ch
	c.mu.Unlock()

	// Encode into a pooled buffer: the frame is only referenced for the
	// duration of the Call's send attempts, so the buffer recycles and the
	// steady-state send path allocates nothing.
	bp := getBuf()
	defer putBuf(bp)
	frame, err := AppendEncode((*bp)[:0], req)
	if err != nil {
		c.abandon(req.ID, ch)
		return nil, err
	}

	timer := getTimer()
	defer putTimer(timer)
	for attempt := 0; attempt < c.attempts; attempt++ {
		if err := c.send(frame); err != nil {
			c.abandon(req.ID, ch)
			return nil, fmt.Errorf("wire: send: %w", err)
		}
		timer.Reset(c.retransmit)
		select {
		case m := <-ch:
			stopTimer(timer)
			reclaimChan(ch)
			if m == nil {
				return nil, ErrClientClosed
			}
			return m, nil
		case <-ctx.Done():
			stopTimer(timer)
			c.abandon(req.ID, ch)
			return nil, ctx.Err()
		case <-timer.C:
			// retransmit
		}
	}
	c.abandon(req.ID, ch)
	return nil, fmt.Errorf("%w after %d attempts", ErrTimeout, c.attempts)
}

// send transmits one encoded frame, via the batcher when configured.
func (c *Client) send(frame []byte) error {
	if c.batch != nil {
		return c.batch.enqueue(frame)
	}
	_, err := c.conn.Write(frame)
	if err == nil {
		c.framesOut.Add(1)
		c.datagramsOut.Add(1)
	}
	return err
}

// abandon forgets a pending request and recycles its channel. Senders only
// send under mu while the entry exists, so once the entry is gone any sent
// value is already buffered and the drain in reclaimChan catches it.
func (c *Client) abandon(id uint64, ch chan *Message) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
	reclaimChan(ch)
}

// clientBatcher accumulates encoded request frames into a v7 container and
// flushes when the window expires, the container fills, or the client
// closes. The container is built in place with the per-frame length prefix,
// so flushing is a single Write with no assembly copy.
type clientBatcher struct {
	c       *Client
	window  time.Duration
	mu      sync.Mutex
	buf     []byte
	count   int
	timer   *time.Timer
	stopped bool
}

func newClientBatcher(c *Client, window time.Duration) *clientBatcher {
	b := &clientBatcher{
		c:      c,
		window: window,
		buf:    make([]byte, batchHeaderSize, MaxFrame),
	}
	b.timer = time.AfterFunc(time.Hour, b.flush)
	b.timer.Stop()
	return b
}

func (b *clientBatcher) enqueue(frame []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		return ErrClientClosed
	}
	if b.count >= MaxBatchFrames || len(b.buf)+batchFrameOverhead+len(frame) > MaxFrame {
		if err := b.flushLocked(); err != nil {
			return err
		}
	}
	b.buf = binary.BigEndian.AppendUint32(b.buf, uint32(len(frame)))
	b.buf = append(b.buf, frame...)
	b.count++
	if b.count == 1 {
		b.timer.Reset(b.window)
	}
	return nil
}

func (b *clientBatcher) flush() {
	b.mu.Lock()
	_ = b.flushLocked()
	b.mu.Unlock()
}

func (b *clientBatcher) flushLocked() error {
	if b.count == 0 {
		return nil
	}
	var err error
	if b.count == 1 {
		// A lone frame goes out bare — byte-identical to an unbatched
		// client, so v1–v6 servers interoperate even with batching on.
		_, err = b.c.conn.Write(b.buf[batchHeaderSize+batchFrameOverhead:])
	} else {
		b.buf[0], b.buf[1], b.buf[2], b.buf[3] = magic0, magic1, codecVersionBatch, batchMarker
		binary.BigEndian.PutUint16(b.buf[4:6], uint16(b.count))
		_, err = b.c.conn.Write(b.buf)
	}
	if err == nil {
		b.c.framesOut.Add(uint64(b.count))
		b.c.datagramsOut.Add(1)
	}
	b.buf = b.buf[:batchHeaderSize]
	b.count = 0
	return err
}

// stop flushes anything pending and rejects further enqueues.
func (b *clientBatcher) stop() {
	b.mu.Lock()
	b.stopped = true
	b.timer.Stop()
	_ = b.flushLocked()
	b.mu.Unlock()
}
