package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler processes one request message and returns the response. The
// request's ID is echoed onto the returned response automatically; handlers
// may leave it zero. A nil return sends a StatusError response.
type Handler func(ctx context.Context, from net.Addr, req *Message) *Message

// Server receives request datagrams, invokes a handler, and sends the
// response back to the originating address. Duplicate requests (client
// retransmissions) are answered from a small response cache without
// re-invoking the handler, giving at-most-once handler execution for the
// idempotent window.
type Server struct {
	conn    net.PacketConn
	handler Handler

	// dedup maps "addr|id" to the encoded response most recently sent.
	mu     sync.Mutex
	dedup  map[string][]byte
	order  []string // FIFO of dedup keys for bounded memory
	closed bool

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// dedupWindow bounds the retransmission-suppression cache.
const dedupWindow = 4096

// NewServer starts a datagram server on addr ("127.0.0.1:0" for an ephemeral
// port). Close must be called to release the socket and stop the serving
// goroutines.
func NewServer(addr string, handler Handler) (*Server, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s, err := NewServerConn(conn, handler)
	if err != nil {
		conn.Close()
	}
	return s, err
}

// NewServerConn starts a datagram server on an already-bound PacketConn.
// The chaos harness uses this to interpose netsim.PacketConn fault gates
// between the server and the real socket; Close closes pc.
func NewServerConn(pc net.PacketConn, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("wire: nil handler")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		conn:    pc,
		handler: handler,
		dedup:   make(map[string][]byte),
		cancel:  cancel,
	}
	s.wg.Add(1)
	go s.serve(ctx)
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Close stops the server and waits for in-flight handlers to finish. The
// socket stays open until they do: a handler that is mid-response gets to
// send it, so requests accepted before Close are answered, not lost.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	// Expire the read so the receive loop stops accepting without closing
	// the socket out from under in-flight handlers' WriteTo calls.
	_ = s.conn.SetReadDeadline(time.Now())
	s.wg.Wait()
	return s.conn.Close()
}

// serve is the receive loop. Each request is handled on its own goroutine so
// a slow backend does not head-of-line-block the socket. Receive buffers
// come from the frame pool instead of being copied per datagram: Decode
// copies everything it keeps, so the frame never escapes handleFrame and
// the buffer can go straight back to the pool.
func (s *Server) serve(ctx context.Context) {
	defer s.wg.Done()
	for {
		bp := getBuf()
		n, from, err := s.conn.ReadFrom(*bp)
		if err != nil {
			putBuf(bp)
			return // socket closed
		}
		s.wg.Add(1)
		go func(bp *[]byte, n int, from net.Addr) {
			defer s.wg.Done()
			defer putBuf(bp)
			s.handleFrame(ctx, (*bp)[:n], from)
		}(bp, n, from)
	}
}

func (s *Server) handleFrame(ctx context.Context, frame []byte, from net.Addr) {
	req, err := Decode(frame)
	if err != nil || req.Type != TypeRequest {
		return // drop garbage silently, as a datagram service must
	}

	key := from.String() + "|" + fmt.Sprint(req.ID)
	s.mu.Lock()
	if cached, ok := s.dedup[key]; ok {
		s.mu.Unlock()
		_, _ = s.conn.WriteTo(cached, from)
		return
	}
	s.mu.Unlock()

	resp := s.handler(ctx, from, req)
	if resp == nil {
		resp = &Message{Status: StatusError, Payload: []byte("wire: handler returned no response")}
	}
	resp.Type = TypeResponse
	resp.ID = req.ID
	if req.Flags&FlagSpanExport == 0 {
		// The client did not ask for spans (or predates them); never send a
		// v3 frame it would reject.
		resp.Spans = nil
	}
	if req.Flags&FlagBackpressure == 0 {
		// The client does not understand shedding (or predates it); never
		// send a v4 frame or a status code it would misread.
		resp.RetryAfterMs = 0
		if resp.Status == StatusShed {
			resp.Status = StatusDropped
		}
	}
	out, err := Encode(resp)
	if err != nil && len(resp.Spans) > 0 {
		// Span export is best-effort: an oversized span block must not turn a
		// good response into an error.
		resp.Spans = nil
		out, err = Encode(resp)
	}
	if err != nil {
		resp = &Message{Type: TypeResponse, ID: req.ID, Status: StatusError, Payload: []byte(err.Error())}
		out, _ = Encode(resp)
	}

	s.mu.Lock()
	if _, dup := s.dedup[key]; !dup {
		s.dedup[key] = out
		s.order = append(s.order, key)
		for len(s.order) > dedupWindow {
			delete(s.dedup, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.mu.Unlock()

	_, _ = s.conn.WriteTo(out, from)
}

// Client issues requests to a wire server and matches responses by ID,
// retransmitting on loss. A single UDP socket is shared by all calls; a
// reader goroutine demultiplexes responses to waiting callers.
type Client struct {
	conn net.Conn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Message
	closed  bool

	retransmit time.Duration
	attempts   int

	wg    sync.WaitGroup // reader goroutine
	calls sync.WaitGroup // in-flight Call invocations
}

// ClientOption configures a Client.
type ClientOption interface {
	apply(*Client)
}

type clientOptionFunc func(*Client)

func (f clientOptionFunc) apply(c *Client) { f(c) }

// WithRetransmit sets the per-attempt timeout before a request datagram is
// re-sent (default 200 ms).
func WithRetransmit(d time.Duration) ClientOption {
	return clientOptionFunc(func(c *Client) { c.retransmit = d })
}

// WithAttempts sets the total number of transmissions per call (default 3).
func WithAttempts(n int) ClientOption {
	return clientOptionFunc(func(c *Client) { c.attempts = n })
}

// Dial connects a client to the wire server at addr.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:       conn,
		pending:    make(map[uint64]chan *Message),
		retransmit: 200 * time.Millisecond,
		attempts:   3,
	}
	for _, o := range opts {
		o.apply(c)
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Close fails outstanding calls with ErrClientClosed, waits for them to
// return, then releases the socket and stops the reader goroutine. Waiting
// before closing the socket keeps teardown from racing active sends (a Call
// mid-Write would otherwise see a closed-connection error instead).
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	c.calls.Wait()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// ErrClientClosed is returned by Call after Close.
var ErrClientClosed = errors.New("wire: client closed")

// ErrTimeout is returned by Call when every transmission attempt expires
// without a response.
var ErrTimeout = errors.New("wire: request timed out")

func (c *Client) readLoop() {
	defer c.wg.Done()
	buf := make([]byte, MaxFrame)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient read errors must not kill the reader. On Linux a
			// connected UDP socket surfaces ICMP port-unreachable as
			// ECONNREFUSED on Read after the peer dies; one such error per
			// lost datagram is expected while a broker is down, and the same
			// socket works again once the peer rebinds its port. Exiting here
			// would leave every future Call waiting on a response nobody
			// reads.
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		m, err := Decode(buf[:n])
		if err != nil || m.Type != TypeResponse {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
			close(ch)
		}
	}
}

// Call sends req and waits for the matching response, retransmitting up to
// the configured number of attempts. The req.ID field is assigned by the
// client. Call honors ctx cancellation.
func (c *Client) Call(ctx context.Context, req *Message) (*Message, error) {
	req.Type = TypeRequest

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.calls.Add(1) // under mu with closed checked, so Close cannot miss us
	defer c.calls.Done()
	c.nextID++
	req.ID = c.nextID
	ch := make(chan *Message, 1)
	c.pending[req.ID] = ch
	c.mu.Unlock()

	// Encode into a pooled buffer: the frame is only referenced for the
	// duration of the Call's send attempts, so the buffer recycles and the
	// steady-state send path allocates nothing.
	bp := getBuf()
	defer putBuf(bp)
	frame, err := AppendEncode((*bp)[:0], req)
	if err != nil {
		c.abandon(req.ID)
		return nil, err
	}

	for attempt := 0; attempt < c.attempts; attempt++ {
		if _, err := c.conn.Write(frame); err != nil {
			c.abandon(req.ID)
			return nil, fmt.Errorf("wire: send: %w", err)
		}
		timer := time.NewTimer(c.retransmit)
		select {
		case m, ok := <-ch:
			timer.Stop()
			if !ok {
				return nil, ErrClientClosed
			}
			return m, nil
		case <-ctx.Done():
			timer.Stop()
			c.abandon(req.ID)
			return nil, ctx.Err()
		case <-timer.C:
			// retransmit
		}
	}
	c.abandon(req.ID)
	return nil, fmt.Errorf("%w after %d attempts", ErrTimeout, c.attempts)
}

// abandon forgets a pending request.
func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, id)
}
