package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestTxnFrameRoundTrip(t *testing.T) {
	m := &Message{
		Type:    TypeRequest,
		ID:      77,
		Service: "db",
		Class:   1,
		TxnID:   "order-1839",
		TxnStep: 2,
		IdemKey: "hold:card-42",
		TraceID: 0xfeedface,
		Payload: []byte("UPDATE holds SET ..."),
	}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersionTxn {
		t.Fatalf("txn frame version = %d, want %d", frame[2], codecVersionTxn)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.IdemKey != m.IdemKey || got.TxnID != m.TxnID || got.TxnStep != m.TxnStep {
		t.Fatalf("txn block mismatch: %+v", got)
	}
	if got.TraceID != m.TraceID || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("txn frame round trip mismatch: %+v", got)
	}
}

// A v6 request without a trace ID, spans, retry hint, or broker identity must
// still round-trip: v6 forces those sections present-but-empty.
func TestTxnFrameMinimal(t *testing.T) {
	m := &Message{Type: TypeRequest, ID: 2, Service: "db",
		TxnID: "t", TxnStep: 1, IdemKey: "k"}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersionTxn {
		t.Fatalf("version = %d, want %d", frame[2], codecVersionTxn)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.IdemKey != "k" || got.TraceID != 0 || got.BrokerID != "" ||
		got.RetryAfterMs != 0 || len(got.Spans) != 0 {
		t.Fatalf("minimal txn frame decoded as %+v", got)
	}
}

// The acceptance criterion's untagged-overhead bound is structural: a message
// with no idempotency key encodes in the same v1/v2 layouts as before this
// change — zero extra bytes on the untagged wire path.
func TestUntaggedFrameUnchangedByTxnCodec(t *testing.T) {
	plain := &Message{Type: TypeRequest, ID: 9, Service: "db",
		Class: 2, Payload: []byte("SELECT 1")}
	frame, err := Encode(plain)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersion {
		t.Fatalf("untagged frame version = %d, want %d", frame[2], codecVersion)
	}
	// Even a transactional-but-unkeyed request (read step) stays below v6.
	traced := &Message{Type: TypeRequest, ID: 9, Service: "db",
		TxnID: "t1", TxnStep: 3, TraceID: 5, Payload: []byte("SELECT 1")}
	frame, err = Encode(traced)
	if err != nil {
		t.Fatal(err)
	}
	if frame[2] != codecVersionTraced {
		t.Fatalf("keyless txn frame version = %d, want %d", frame[2], codecVersionTraced)
	}
}

func TestEncodeRejectsOversizedIdemKey(t *testing.T) {
	m := &Message{Type: TypeRequest, Service: "db",
		IdemKey: strings.Repeat("x", maxStringLen+1)}
	if _, err := Encode(m); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestTxnFrameTruncation(t *testing.T) {
	m := &Message{
		Type:     TypeResponse,
		ID:       3,
		Service:  "mail",
		TxnID:    "t-3",
		TxnStep:  2,
		IdemKey:  "send:receipt",
		TraceID:  42,
		Payload:  []byte("OK"),
		BrokerID: "10.0.0.2:7411",
		Spans:    []Span{{Stage: "backend", Start: 20, End: 400}},
	}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := Decode(frame[:cut]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrBadFrame", cut, len(frame), err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), frame...), 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte: err = %v, want ErrBadFrame", err)
	}
}

// Property: any idempotency key round-trips exactly alongside the rest of the
// transaction block and the v5 tail sections it rides behind.
func TestTxnRoundTripProperty(t *testing.T) {
	f := func(txnID, idemKey string, step uint16, traceID uint64, payload []byte) bool {
		if len(txnID) > 256 || len(idemKey) > 256 || len(payload) > 4096 {
			return true
		}
		m := &Message{Type: TypeRequest, ID: 1, Service: "db",
			TxnID: txnID, TxnStep: step, IdemKey: idemKey,
			TraceID: traceID, Payload: payload}
		frame, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		return got.TxnID == txnID && got.IdemKey == idemKey &&
			got.TxnStep == step && got.TraceID == traceID &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
