package httpserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client is an HTTP/1.1 client with an optional persistent-connection pool.
// With pooling disabled it behaves like the paper's API model: every request
// pays TCP connection setup and tear-down. With pooling enabled it behaves
// like a broker's multiplexed persistent channel.
type Client struct {
	addr string

	persistent bool
	maxIdle    int
	timeout    time.Duration
	dial       func(network, address string) (net.Conn, error)

	mu     sync.Mutex
	idle   []*clientConn
	closed bool
}

type clientConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// ClientOption configures a Client.
type ClientOption interface {
	apply(*Client)
}

type clientOptionFunc func(*Client)

func (f clientOptionFunc) apply(c *Client) { f(c) }

// WithPersistent enables connection reuse with up to maxIdle pooled
// connections.
func WithPersistent(maxIdle int) ClientOption {
	return clientOptionFunc(func(c *Client) {
		c.persistent = true
		if maxIdle > 0 {
			c.maxIdle = maxIdle
		}
	})
}

// WithTimeout bounds dialing and each round trip.
func WithTimeout(d time.Duration) ClientOption {
	return clientOptionFunc(func(c *Client) { c.timeout = d })
}

// WithDial substitutes the dialer (e.g. netsim's).
func WithDial(dial func(network, address string) (net.Conn, error)) ClientOption {
	return clientOptionFunc(func(c *Client) { c.dial = dial })
}

// ErrClientClosed is returned after Close.
var ErrClientClosed = errors.New("httpserver: client closed")

// NewClient creates a client for the server at addr ("host:port").
func NewClient(addr string, opts ...ClientOption) *Client {
	c := &Client{addr: addr, maxIdle: 2, dial: net.Dial}
	for _, o := range opts {
		o.apply(c)
	}
	return c
}

// get borrows a pooled connection or dials a new one.
func (c *Client) get() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()

	dial := c.dial
	if c.timeout > 0 && isDefaultDial(dial) {
		dial = func(network, address string) (net.Conn, error) {
			return net.DialTimeout(network, address, c.timeout)
		}
	}
	conn, err := dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("httpserver: dial %s: %w", c.addr, err)
	}
	return &clientConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// isDefaultDial reports whether dial is the package default; custom dialers
// manage their own timeouts.
func isDefaultDial(dial func(string, string) (net.Conn, error)) bool {
	return fmt.Sprintf("%p", dial) == fmt.Sprintf("%p", net.Dial)
}

// put returns a connection to the pool or closes it.
func (c *Client) put(cc *clientConn, reusable bool) {
	if !c.persistent || !reusable {
		cc.conn.Close()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= c.maxIdle {
		cc.conn.Close()
		return
	}
	c.idle = append(c.idle, cc)
}

// Close drops pooled connections; in-flight requests finish on their own
// connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, cc := range c.idle {
		cc.conn.Close()
	}
	c.idle = nil
	return nil
}

// Get issues GET path?query and returns the response.
func (c *Client) Get(path string, query map[string]string) (*Response, error) {
	target := path
	if q := encodeQuery(query); q != "" {
		target += "?" + q
	}
	return c.roundTrip("GET "+target, nil)
}

// Post issues POST path with a body.
func (c *Client) Post(path string, body []byte) (*Response, error) {
	return c.roundTrip("POST "+path, body)
}

// MGet issues one MGET request for several URIs and returns the per-URI
// parts in order.
func (c *Client) MGet(uris []string) ([]MGetPart, error) {
	if len(uris) == 0 {
		return nil, errors.New("httpserver: MGet with no URIs")
	}
	targets := make([]string, len(uris))
	for i, u := range uris {
		targets[i] = "URI:" + u
	}
	resp, err := c.roundTrip("MGET "+strings.Join(targets, " "), nil)
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("httpserver: MGET status %d: %s", resp.Status, resp.Body)
	}
	parts, err := DecodeMGetParts(resp.Body)
	if err != nil {
		return nil, err
	}
	if len(parts) != len(uris) {
		return nil, fmt.Errorf("httpserver: MGET returned %d parts for %d URIs", len(parts), len(uris))
	}
	return parts, nil
}

// roundTrip sends "<METHOD> <target>" plus body and reads the response,
// retrying once on a stale pooled connection.
func (c *Client) roundTrip(methodAndTarget string, body []byte) (*Response, error) {
	for attempt := 0; ; attempt++ {
		cc, err := c.get()
		if err != nil {
			return nil, err
		}
		resp, reusable, err := c.exchange(cc, methodAndTarget, body)
		if err != nil {
			cc.conn.Close()
			// A pooled connection may have been closed server-side between
			// requests; retry once on a fresh connection.
			if attempt == 0 && c.persistent {
				continue
			}
			return nil, err
		}
		c.put(cc, reusable)
		return resp, nil
	}
}

func (c *Client) exchange(cc *clientConn, methodAndTarget string, body []byte) (*Response, bool, error) {
	if c.timeout > 0 {
		cc.conn.SetDeadline(time.Now().Add(c.timeout))
		defer cc.conn.SetDeadline(time.Time{})
	}
	fmt.Fprintf(cc.w, "%s HTTP/1.1\r\n", methodAndTarget)
	fmt.Fprintf(cc.w, "host: %s\r\n", c.addr)
	if len(body) > 0 {
		fmt.Fprintf(cc.w, "content-length: %d\r\n", len(body))
	}
	if !c.persistent {
		io.WriteString(cc.w, "connection: close\r\n")
	}
	io.WriteString(cc.w, "\r\n")
	if len(body) > 0 {
		cc.w.Write(body)
	}
	if err := cc.w.Flush(); err != nil {
		return nil, false, fmt.Errorf("httpserver: write: %w", err)
	}
	resp, reusable, err := readResponse(cc.r)
	if err != nil {
		return nil, false, err
	}
	return resp, reusable, nil
}

// readResponse parses a response, reporting whether the connection may be
// reused.
func readResponse(r *bufio.Reader) (*Response, bool, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, false, fmt.Errorf("httpserver: read status: %w", err)
	}
	line = strings.TrimRight(line, "\r\n")
	fields := strings.SplitN(line, " ", 3)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "HTTP/") {
		return nil, false, fmt.Errorf("httpserver: bad status line %q", line)
	}
	status, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, false, fmt.Errorf("httpserver: bad status %q", fields[1])
	}
	resp := &Response{Status: status, Header: map[string]string{}}
	for {
		hline, err := r.ReadString('\n')
		if err != nil {
			return nil, false, fmt.Errorf("httpserver: read header: %w", err)
		}
		hline = strings.TrimRight(hline, "\r\n")
		if hline == "" {
			break
		}
		name, value, ok := strings.Cut(hline, ":")
		if !ok {
			return nil, false, fmt.Errorf("httpserver: bad header %q", hline)
		}
		resp.Header[strings.ToLower(strings.TrimSpace(name))] = strings.TrimSpace(value)
	}
	n := 0
	if cl := resp.Header["content-length"]; cl != "" {
		n, err = strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, false, fmt.Errorf("httpserver: bad content-length %q", cl)
		}
	}
	resp.Body = make([]byte, n)
	if _, err := io.ReadFull(r, resp.Body); err != nil {
		return nil, false, fmt.Errorf("httpserver: read body: %w", err)
	}
	reusable := !strings.EqualFold(resp.Header["connection"], "close")
	return resp, reusable, nil
}
