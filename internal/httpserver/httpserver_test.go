package httpserver

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// startServer builds a server with a few standard handlers.
func startServer(t *testing.T, opts ...ServerOption) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Handle("/hello", func(req *Request) *Response {
		return Text("hello " + req.Query["name"])
	})
	srv.Handle("/echo", func(req *Request) *Response {
		return NewResponse(200, req.Body)
	})
	srv.Handle("/static/", func(req *Request) *Response {
		return Text("file:" + req.Path)
	})
	return srv
}

func TestGetWithQuery(t *testing.T) {
	srv := startServer(t)
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	resp, err := cli.Get("/hello", map[string]string{"name": "world of brokers"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "hello world of brokers" {
		t.Fatalf("resp = %d %q", resp.Status, resp.Body)
	}
}

func TestPostBody(t *testing.T) {
	srv := startServer(t)
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	payload := bytes.Repeat([]byte("x"), 10000)
	resp, err := cli.Post("/echo", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, payload) {
		t.Fatalf("echo body %d bytes, want %d", len(resp.Body), len(payload))
	}
}

func TestNotFound(t *testing.T) {
	srv := startServer(t)
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	resp, err := cli.Get("/nowhere", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("status = %d, want 404", resp.Status)
	}
}

func TestPrefixRouting(t *testing.T) {
	srv := startServer(t)
	srv.Handle("/static/deep/", func(req *Request) *Response { return Text("deep") })
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	resp, _ := cli.Get("/static/a.html", nil)
	if string(resp.Body) != "file:/static/a.html" {
		t.Fatalf("prefix route body = %q", resp.Body)
	}
	resp, _ = cli.Get("/static/deep/b.html", nil)
	if string(resp.Body) != "deep" {
		t.Fatalf("longest-prefix route body = %q", resp.Body)
	}
}

func TestHandlerPanicIs500(t *testing.T) {
	srv := startServer(t)
	srv.Handle("/boom", func(req *Request) *Response { panic("kaboom") })
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	resp, err := cli.Get("/boom", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 500 || !strings.Contains(string(resp.Body), "kaboom") {
		t.Fatalf("resp = %d %q", resp.Status, resp.Body)
	}
	if srv.Metrics().Counter("panics").Value() != 1 {
		t.Fatal("panic not counted")
	}
}

func TestNilHandlerResponseIs500(t *testing.T) {
	srv := startServer(t)
	srv.Handle("/nil", func(req *Request) *Response { return nil })
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	resp, err := cli.Get("/nil", nil)
	if err != nil || resp.Status != 500 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
}

func TestKeepAliveReusesConnection(t *testing.T) {
	srv := startServer(t)
	cli := NewClient(srv.Addr().String(), WithPersistent(2))
	defer cli.Close()
	for i := 0; i < 5; i++ {
		if _, err := cli.Get("/hello", nil); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// All five requests should ride one connection. The server counts
	// sessions via the "requests" counter vs... count connections through a
	// second client with keep-alive off for contrast.
	cli2 := NewClient(srv.Addr().String())
	defer cli2.Close()
	for i := 0; i < 5; i++ {
		if _, err := cli2.Get("/hello", nil); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := srv.Metrics().Counter("requests").Value(); got != 10 {
		t.Fatalf("requests = %d, want 10", got)
	}
}

func TestMaxClientsSerializes(t *testing.T) {
	const delay = 30 * time.Millisecond
	srv, err := NewServer("127.0.0.1:0", WithMaxClients(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/slow", func(req *Request) *Response {
		time.Sleep(delay)
		return Text("done")
	})

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := NewClient(srv.Addr().String())
			defer cli.Close()
			if _, err := cli.Get("/slow", nil); err != nil {
				t.Errorf("get: %v", err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 3*delay {
		t.Fatalf("3 requests with MaxClients=1 took %v, want ≥ %v", elapsed, 3*delay)
	}
}

func TestMaxClientsAllowsParallelism(t *testing.T) {
	const delay = 50 * time.Millisecond
	srv, err := NewServer("127.0.0.1:0", WithMaxClients(4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/slow", func(req *Request) *Response {
		time.Sleep(delay)
		return Text("done")
	})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := NewClient(srv.Addr().String())
			defer cli.Close()
			cli.Get("/slow", nil)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 3*delay {
		t.Fatalf("4 parallel requests with MaxClients=4 took %v, want ≈ %v", elapsed, delay)
	}
}

func TestMGet(t *testing.T) {
	srv := startServer(t)
	var calls atomic.Int64
	srv.Handle("/page/", func(req *Request) *Response {
		calls.Add(1)
		return Text("body of " + req.Path)
	})
	cli := NewClient(srv.Addr().String(), WithPersistent(1))
	defer cli.Close()
	parts, err := cli.MGet([]string{"/page/1.html", "/page/2.html", "/missing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[0].Status != 200 || string(parts[0].Body) != "body of /page/1.html" {
		t.Fatalf("part 0 = %+v", parts[0])
	}
	if parts[1].URI != "/page/2.html" {
		t.Fatalf("part 1 URI = %s", parts[1].URI)
	}
	if parts[2].Status != 404 {
		t.Fatalf("part 2 status = %d, want 404", parts[2].Status)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler calls = %d, want 2", calls.Load())
	}
}

func TestMGetWithQueryParams(t *testing.T) {
	srv := startServer(t)
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	parts, err := cli.MGet([]string{"/hello?name=a", "/hello?name=b"})
	if err != nil {
		t.Fatal(err)
	}
	if string(parts[0].Body) != "hello a" || string(parts[1].Body) != "hello b" {
		t.Fatalf("parts = %q, %q", parts[0].Body, parts[1].Body)
	}
}

func TestMGetCountsAsOneRequestUnderMaxClients(t *testing.T) {
	// An MGET of N URIs occupies one MaxClients slot — that is exactly the
	// paper's point: clustering reduces simultaneous backend requests.
	srv, err := NewServer("127.0.0.1:0", WithMaxClients(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/p/", func(req *Request) *Response {
		time.Sleep(10 * time.Millisecond)
		return Text("x")
	})
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	start := time.Now()
	if _, err := cli.MGet([]string{"/p/1", "/p/2", "/p/3"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("MGET of 3 took %v; parts should run sequentially in one slot", elapsed)
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	srv, err := NewServer("127.0.0.1:0", WithAccessLog(logW))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/x", func(req *Request) *Response { return Text("ok") })
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	cli.Get("/x", nil)
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "GET /x 200") {
		t.Fatalf("access log = %q", buf.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestBadRequestLine(t *testing.T) {
	srv := startServer(t)
	// Speak raw TCP garbage to the server.
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	cc, err := cli.get()
	if err != nil {
		t.Fatal(err)
	}
	defer cc.conn.Close()
	fmt.Fprintf(cc.w, "WHAT\r\n\r\n")
	cc.w.Flush()
	resp, _, err := readResponse(cc.r)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 400 {
		t.Fatalf("status = %d, want 400", resp.Status)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := startServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli := NewClient(srv.Addr().String(), WithPersistent(1))
			defer cli.Close()
			for j := 0; j < 20; j++ {
				name := fmt.Sprintf("c%d-%d", i, j)
				resp, err := cli.Get("/hello", map[string]string{"name": name})
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if string(resp.Body) != "hello "+name {
					t.Errorf("body = %q, want hello %s", resp.Body, name)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestServerCloseStopsSessions(t *testing.T) {
	srv := startServer(t)
	cli := NewClient(srv.Addr().String(), WithPersistent(1))
	defer cli.Close()
	if _, err := cli.Get("/hello", nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Close() // idempotent
}

func TestHandleValidation(t *testing.T) {
	srv := startServer(t)
	for _, tc := range []struct {
		pattern string
		h       Handler
	}{
		{"nope", func(*Request) *Response { return nil }},
		{"/ok", nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Handle(%q) did not panic", tc.pattern)
				}
			}()
			srv.Handle(tc.pattern, tc.h)
		}()
	}
}

func TestQueryCodecRoundTrip(t *testing.T) {
	q := map[string]string{"a": "1", "name": "hello world", "sym": "x=y&z"}
	enc := encodeQuery(q)
	got := parseQuery(enc)
	for k, v := range q {
		if got[k] != v {
			t.Errorf("key %q = %q, want %q (enc %q)", k, got[k], v, enc)
		}
	}
}

// Property: query encode/decode round-trips for printable-safe keys.
func TestQueryRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		q := map[string]string{}
		for i, v := range vals {
			if len(v) > 100 {
				continue
			}
			q[fmt.Sprintf("k%d", i)] = v
		}
		got := parseQuery(encodeQuery(q))
		if len(got) != len(q) {
			return false
		}
		for k, v := range q {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MGET part codec round-trips.
func TestMGetCodecProperty(t *testing.T) {
	f := func(bodies [][]byte, statuses []uint8) bool {
		n := len(bodies)
		if len(statuses) < n {
			n = len(statuses)
		}
		if n == 0 || n > 20 {
			return true
		}
		uris := make([]string, n)
		parts := make([]*Response, n)
		for i := 0; i < n; i++ {
			uris[i] = fmt.Sprintf("/u/%d", i)
			parts[i] = NewResponse(200+int(statuses[i])%300, bodies[i])
		}
		decoded, err := DecodeMGetParts(EncodeMGetParts(uris, parts))
		if err != nil || len(decoded) != n {
			return false
		}
		for i := range decoded {
			if decoded[i].URI != uris[i] || decoded[i].Status != parts[i].Status ||
				!bytes.Equal(decoded[i].Body, parts[i].Body) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeMGetParts never panics on arbitrary input.
func TestMGetDecodeNeverPanicsProperty(t *testing.T) {
	f := func(body []byte) bool {
		_, _ = DecodeMGetParts(body)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatusText(t *testing.T) {
	if StatusText(200) != "OK" || StatusText(404) != "Not Found" {
		t.Fatal("standard texts wrong")
	}
	if StatusText(299) != "Status 299" {
		t.Fatalf("fallback = %q", StatusText(299))
	}
}

func BenchmarkRoundTripKeepAlive(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/bench", func(req *Request) *Response { return Text("ok") })
	cli := NewClient(srv.Addr().String(), WithPersistent(1))
	defer cli.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Get("/bench", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripPerRequestConnection(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/bench", func(req *Request) *Response { return Text("ok") })
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Get("/bench", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMGetTenURIs(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/p/", func(req *Request) *Response { return Text("part") })
	cli := NewClient(srv.Addr().String(), WithPersistent(1))
	defer cli.Close()
	uris := make([]string, 10)
	for i := range uris {
		uris[i] = fmt.Sprintf("/p/%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.MGet(uris); err != nil {
			b.Fatal(err)
		}
	}
}
