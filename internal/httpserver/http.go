// Package httpserver is a small HTTP/1.1 server and client implemented
// directly on net, standing in for the Apache and boa web servers of the
// paper's testbed. It deliberately reproduces the two features the
// experiments depend on:
//
//   - a MaxClients-style cap on simultaneously processed requests (the
//     paper's backend web servers allow at most 5; excess requests queue),
//     and
//   - the MGET extension (paper §III, citing the www-talk MGET proposal)
//     that lets a service broker fetch several URIs over one connection in
//     a single round trip.
//
// The types are intentionally independent of net/http: this package is one
// of the substrates the reproduction builds from scratch.
package httpserver

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Request is one parsed HTTP request.
type Request struct {
	Method string
	// Path is the request target without the query string.
	Path string
	// Query holds decoded query parameters (last value wins).
	Query map[string]string
	Proto string
	// Header holds canonicalized (lowercase) header names.
	Header map[string]string
	Body   []byte
	// MGetTargets carries the URI list of an MGET request.
	MGetTargets []string
}

// Response is one HTTP response.
type Response struct {
	Status int
	Header map[string]string
	Body   []byte
}

// StatusText returns the reason phrase for the handful of codes the server
// uses.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// NewResponse builds a response with a body and default headers.
func NewResponse(status int, body []byte) *Response {
	return &Response{Status: status, Header: map[string]string{}, Body: body}
}

// Text builds a 200 text/plain response.
func Text(body string) *Response {
	r := NewResponse(200, []byte(body))
	r.Header["content-type"] = "text/plain"
	return r
}

// Error builds an error response with a plain-text body.
func Error(status int, msg string) *Response {
	r := NewResponse(status, []byte(msg))
	r.Header["content-type"] = "text/plain"
	return r
}

// parseQuery decodes "a=1&b=2" (minimal %XX and + decoding).
func parseQuery(raw string) map[string]string {
	q := map[string]string{}
	if raw == "" {
		return q
	}
	for _, pair := range strings.Split(raw, "&") {
		if pair == "" {
			continue
		}
		k, v, _ := strings.Cut(pair, "=")
		q[unescape(k)] = unescape(v)
	}
	return q
}

// encodeQuery is the inverse of parseQuery, with deterministic key order.
func encodeQuery(q map[string]string) string {
	if len(q) == 0 {
		return ""
	}
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, escape(k)+"="+escape(q[k]))
	}
	return strings.Join(parts, "&")
}

func unescape(s string) string {
	if !strings.ContainsAny(s, "%+") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '+':
			b.WriteByte(' ')
		case s[i] == '%' && i+2 < len(s) && isHex(s[i+1]) && isHex(s[i+2]):
			b.WriteByte(unhex(s[i+1])<<4 | unhex(s[i+2]))
			i += 2
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func escape(s string) string {
	const safe = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.~*()/:,"
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if strings.IndexByte(safe, c) >= 0 {
			b.WriteByte(c)
			continue
		}
		fmt.Fprintf(&b, "%%%02X", c)
	}
	return b.String()
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func unhex(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}

// mgetBoundary separates part blocks in an MGET response body. Each part is
//
//	--MGETPART <uri> <status> <length>\n
//	<length body bytes>\n
const mgetBoundary = "--MGETPART"

// EncodeMGetParts renders per-URI responses into one MGET response body.
func EncodeMGetParts(uris []string, parts []*Response) []byte {
	var b strings.Builder
	for i, uri := range uris {
		p := parts[i]
		fmt.Fprintf(&b, "%s %s %d %d\n", mgetBoundary, uri, p.Status, len(p.Body))
		b.Write(p.Body)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// MGetPart is one decoded part of an MGET response.
type MGetPart struct {
	URI    string
	Status int
	Body   []byte
}

// DecodeMGetParts splits an MGET response body back into parts.
func DecodeMGetParts(body []byte) ([]MGetPart, error) {
	var parts []MGetPart
	rest := string(body)
	for len(rest) > 0 {
		if !strings.HasPrefix(rest, mgetBoundary+" ") {
			return nil, fmt.Errorf("httpserver: malformed MGET body near %.20q", rest)
		}
		line, tail, ok := strings.Cut(rest, "\n")
		if !ok {
			return nil, fmt.Errorf("httpserver: truncated MGET header")
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("httpserver: bad MGET header %q", line)
		}
		status, err1 := strconv.Atoi(fields[2])
		n, err2 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil || n < 0 {
			return nil, fmt.Errorf("httpserver: bad MGET header %q", line)
		}
		if len(tail) < n+1 {
			return nil, fmt.Errorf("httpserver: truncated MGET part for %s", fields[1])
		}
		parts = append(parts, MGetPart{URI: fields[1], Status: status, Body: []byte(tail[:n])})
		rest = tail[n+1:]
	}
	return parts, nil
}
