package httpserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"servicebroker/internal/metrics"
)

// Handler produces a response for one request. Returning nil yields a 500.
type Handler func(req *Request) *Response

// ServerOption configures a Server.
type ServerOption interface {
	apply(*Server)
}

type serverOptionFunc func(*Server)

func (f serverOptionFunc) apply(s *Server) { f(s) }

// WithMaxClients caps simultaneously processed requests, like Apache's
// MaxClients; excess requests wait. The paper's backend servers use 5.
func WithMaxClients(n int) ServerOption {
	return serverOptionFunc(func(s *Server) {
		if n > 0 {
			s.slots = make(chan struct{}, n)
		}
	})
}

// WithAccessLog writes one line per request to w.
func WithAccessLog(w io.Writer) ServerOption {
	return serverOptionFunc(func(s *Server) { s.accessLog = w })
}

// WithHTTPMetrics directs server counters into reg.
func WithHTTPMetrics(reg *metrics.Registry) ServerOption {
	return serverOptionFunc(func(s *Server) { s.reg = reg })
}

// WithReadTimeout bounds how long the server waits for the next request on
// a keep-alive connection.
func WithReadTimeout(d time.Duration) ServerOption {
	return serverOptionFunc(func(s *Server) { s.readTimeout = d })
}

// Server is a minimal HTTP/1.1 server with path-prefix routing and MGET
// support. Use NewServer, register handlers with Handle, and Close when
// done.
type Server struct {
	ln          net.Listener
	slots       chan struct{}
	accessLog   io.Writer
	reg         *metrics.Registry
	readTimeout time.Duration

	mu       sync.Mutex
	handlers map[string]Handler // exact path or prefix ending in '/'
	closed   bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	logMu    sync.Mutex
}

// NewServer listens on addr and begins serving. Handlers may be registered
// before or after start.
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpserver: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:       ln,
		reg:      metrics.NewRegistry(),
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o.apply(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Metrics returns the server's registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Handle registers a handler. A pattern ending in "/" matches by prefix;
// otherwise the match is exact. Longest pattern wins.
func (s *Server) Handle(pattern string, h Handler) {
	if pattern == "" || pattern[0] != '/' {
		panic("httpserver: pattern must begin with '/'")
	}
	if h == nil {
		panic("httpserver: nil handler")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[pattern] = h
}

// lookup finds the handler for a path.
func (s *Server) lookup(path string) Handler {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.handlers[path]; ok {
		return h
	}
	var (
		best    Handler
		bestLen = -1
	)
	for pattern, h := range s.handlers {
		if strings.HasSuffix(pattern, "/") && strings.HasPrefix(path, pattern) && len(pattern) > bestLen {
			best, bestLen = h, len(pattern)
		}
	}
	return best
}

// Drain gracefully shuts the server down: it stops accepting connections,
// lets every session finish the request it is processing, and nudges idle
// keep-alive connections awake with an expired read deadline so they close
// instead of lingering. If ctx expires first, remaining connections are
// force-closed; Drain then still waits for their session goroutines and
// returns the context error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	err := s.ln.Close()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		if err == nil {
			err = ctx.Err()
		}
		return err
	}
}

// Close stops the server and waits for in-flight sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.session(conn)
		}()
	}
}

// errBadRequest distinguishes protocol errors from io errors during parse.
var errBadRequest = errors.New("httpserver: bad request")

// session serves requests on one connection until close or protocol error.
func (s *Server) session(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			// Draining: the response for the last request has been flushed;
			// do not start reading another.
			return
		}
		if s.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		req, err := ReadRequest(r)
		if err != nil {
			if errors.Is(err, errBadRequest) {
				writeResponse(w, Error(400, err.Error()), true)
				w.Flush()
			}
			return
		}
		if s.readTimeout > 0 {
			conn.SetReadDeadline(time.Time{})
		}

		resp, keepAlive := s.dispatch(req)
		s.logRequest(conn, req, resp)
		wantClose := strings.EqualFold(req.Header["connection"], "close") || !keepAlive
		if err := writeResponse(w, resp, wantClose); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if wantClose {
			return
		}
	}
}

// dispatch routes one request (including MGET fan-out) under the MaxClients
// cap, reporting the response and whether keep-alive may continue.
func (s *Server) dispatch(req *Request) (*Response, bool) {
	if s.slots != nil {
		s.slots <- struct{}{}
		defer func() { <-s.slots }()
	}
	s.reg.Counter("requests").Inc()
	s.reg.Gauge("active").Inc()
	defer s.reg.Gauge("active").Dec()
	timer := metrics.StartTimer(s.reg.Histogram("request_time"))
	defer timer.ObserveDuration()

	if req.Method == "MGET" {
		parts := make([]*Response, len(req.MGetTargets))
		for i, uri := range req.MGetTargets {
			path, rawQuery, _ := strings.Cut(uri, "?")
			sub := &Request{
				Method: "GET",
				Path:   path,
				Query:  parseQuery(rawQuery),
				Proto:  req.Proto,
				Header: req.Header,
			}
			parts[i] = s.serveOne(sub)
		}
		resp := NewResponse(200, EncodeMGetParts(req.MGetTargets, parts))
		resp.Header["content-type"] = "multipart/mget"
		return resp, true
	}
	return s.serveOne(req), true
}

// serveOne runs the matched handler with panic containment.
func (s *Server) serveOne(req *Request) (resp *Response) {
	h := s.lookup(req.Path)
	if h == nil {
		s.reg.Counter("not_found").Inc()
		return Error(404, "no handler for "+req.Path)
	}
	defer func() {
		if p := recover(); p != nil {
			s.reg.Counter("panics").Inc()
			resp = Error(500, fmt.Sprintf("handler panic: %v", p))
		}
	}()
	resp = h(req)
	if resp == nil {
		resp = Error(500, "handler returned nil")
	}
	return resp
}

func (s *Server) logRequest(conn net.Conn, req *Request, resp *Response) {
	if s.accessLog == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.accessLog, "%s %s %s %d %d\n",
		conn.RemoteAddr(), req.Method, req.Path, resp.Status, len(resp.Body))
}

// ReadRequest parses one request from r.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	line = strings.TrimRight(line, "\r\n")
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return nil, fmt.Errorf("%w: request line %q", errBadRequest, line)
	}
	method := fields[0]
	proto := fields[len(fields)-1]
	if !strings.HasPrefix(proto, "HTTP/") {
		return nil, fmt.Errorf("%w: protocol %q", errBadRequest, proto)
	}
	req := &Request{Method: method, Proto: proto, Header: map[string]string{}}

	if method == "MGET" {
		// MGET URI:/a URI:/b HTTP/1.1  (paper §III / www-talk proposal)
		for _, f := range fields[1 : len(fields)-1] {
			uri := strings.TrimPrefix(f, "URI:")
			if uri == "" || uri[0] != '/' {
				return nil, fmt.Errorf("%w: MGET target %q", errBadRequest, f)
			}
			req.MGetTargets = append(req.MGetTargets, uri)
		}
		if len(req.MGetTargets) == 0 {
			return nil, fmt.Errorf("%w: MGET without targets", errBadRequest)
		}
	} else {
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: request line %q", errBadRequest, line)
		}
		target := fields[1]
		if target == "" || target[0] != '/' {
			return nil, fmt.Errorf("%w: target %q", errBadRequest, target)
		}
		path, rawQuery, _ := strings.Cut(target, "?")
		req.Path = path
		req.Query = parseQuery(rawQuery)
	}

	for {
		hline, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		hline = strings.TrimRight(hline, "\r\n")
		if hline == "" {
			break
		}
		name, value, ok := strings.Cut(hline, ":")
		if !ok {
			return nil, fmt.Errorf("%w: header %q", errBadRequest, hline)
		}
		req.Header[strings.ToLower(strings.TrimSpace(name))] = strings.TrimSpace(value)
	}

	if cl := req.Header["content-length"]; cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 || n > 16<<20 {
			return nil, fmt.Errorf("%w: content-length %q", errBadRequest, cl)
		}
		req.Body = make([]byte, n)
		if _, err := io.ReadFull(r, req.Body); err != nil {
			return nil, err
		}
	}
	return req, nil
}

// writeResponse serializes one response. close adds "Connection: close".
func writeResponse(w io.Writer, resp *Response, close bool) error {
	if _, err := fmt.Fprintf(w, "HTTP/1.1 %d %s\r\n", resp.Status, StatusText(resp.Status)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "content-length: %d\r\n", len(resp.Body)); err != nil {
		return err
	}
	for name, value := range resp.Header {
		lname := strings.ToLower(name)
		if lname == "content-length" || lname == "connection" {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s: %s\r\n", lname, value); err != nil {
			return err
		}
	}
	if close {
		if _, err := io.WriteString(w, "connection: close\r\n"); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\r\n"); err != nil {
		return err
	}
	_, err := w.Write(resp.Body)
	return err
}
