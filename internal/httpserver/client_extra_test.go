package httpserver

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"servicebroker/internal/metrics"
	"servicebroker/internal/netsim"
)

func TestClientTimeoutOnSlowServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/slow", func(req *Request) *Response {
		time.Sleep(500 * time.Millisecond)
		return Text("late")
	})
	cli := NewClient(srv.Addr().String(), WithTimeout(50*time.Millisecond))
	defer cli.Close()
	if _, err := cli.Get("/slow", nil); err == nil {
		t.Fatal("slow response did not time out")
	}
}

func TestClientTimeoutOnDial(t *testing.T) {
	cli := NewClient("127.0.0.1:1", WithTimeout(100*time.Millisecond))
	defer cli.Close()
	if _, err := cli.Get("/x", nil); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestClientCustomDialer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/ping", func(req *Request) *Response { return Text("pong") })

	dialer := netsim.Dialer{Profile: netsim.LAN}
	cli := NewClient(srv.Addr().String(), WithDial(dialer.Dial))
	defer cli.Close()
	resp, err := cli.Get("/ping", nil)
	if err != nil || string(resp.Body) != "pong" {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
}

func TestClientUseAfterClose(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := NewClient(srv.Addr().String())
	cli.Close()
	if _, err := cli.Get("/x", nil); err == nil {
		t.Fatal("request after close succeeded")
	}
	cli.Close() // idempotent
}

func TestClientRetriesStalePooledConnection(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", WithReadTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/x", func(req *Request) *Response { return Text("ok") })

	cli := NewClient(srv.Addr().String(), WithPersistent(1))
	defer cli.Close()
	if _, err := cli.Get("/x", nil); err != nil {
		t.Fatal(err)
	}
	// Let the server's keep-alive read timeout close the pooled connection,
	// then verify the client transparently retries on a fresh one.
	time.Sleep(100 * time.Millisecond)
	resp, err := cli.Get("/x", nil)
	if err != nil {
		t.Fatalf("retry after stale pooled conn failed: %v", err)
	}
	if string(resp.Body) != "ok" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestMGetRejectsEmptyList(t *testing.T) {
	cli := NewClient("127.0.0.1:1")
	defer cli.Close()
	if _, err := cli.MGet(nil); err == nil {
		t.Fatal("empty MGet accepted")
	}
}

func TestWithHTTPMetricsSharesRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, err := NewServer("127.0.0.1:0", WithHTTPMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/m", func(req *Request) *Response { return Text("x") })
	cli := NewClient(srv.Addr().String())
	defer cli.Close()
	cli.Get("/m", nil)
	if reg.Counter("requests").Value() != 1 {
		t.Fatal("metrics not recorded into the provided registry")
	}
}

func TestServerRejectsOversizedContentLength(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/x", func(req *Request) *Response { return Text("x") })

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("POST /x HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n"))
	buf := make([]byte, 1024)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "400") {
		t.Fatalf("response = %q, want 400", buf[:n])
	}
}

func TestServerRejectsMGetWithoutTargets(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("MGET HTTP/1.1\r\n\r\n"))
	buf := make([]byte, 1024)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "400") {
		t.Fatalf("response = %q, want 400", buf[:n])
	}
}

// Property: ReadRequest never panics on arbitrary bytes.
func TestReadRequestNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		r := bufio.NewReader(bytes.NewReader(raw))
		_, _ = ReadRequest(r)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ReadRequest never panics on line-structured input resembling
// requests, which reaches deeper parser paths than raw bytes.
func TestReadRequestStructuredNeverPanicsProperty(t *testing.T) {
	pieces := []string{
		"GET", "POST", "MGET", "/x", "URI:/a", "HTTP/1.1", "HTTP/9",
		"\r\n", "\n", ":", "content-length", "99", "-1", " ", "host: h",
	}
	f := func(picks []uint8) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(pieces[int(p)%len(pieces)])
			b.WriteByte(' ')
		}
		b.WriteString("\r\n\r\n")
		r := bufio.NewReader(strings.NewReader(b.String()))
		_, _ = ReadRequest(r)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
