package apimodel

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/metrics"
)

func TestDoConnectsPerRequest(t *testing.T) {
	a, err := New(&backend.DelayConnector{ServiceName: "cgi"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		out, err := a.Do(context.Background(), []byte("q"))
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != "done:q" {
			t.Fatalf("out = %q", out)
		}
	}
	if got := a.Metrics().Counter("connects").Value(); got != 5 {
		t.Fatalf("connects = %d, want 5 (one per request)", got)
	}
	if got := a.Metrics().Counter("requests").Value(); got != 5 {
		t.Fatalf("requests = %d, want 5", got)
	}
}

func TestDoPaysConnectionCostEveryTime(t *testing.T) {
	const setup = 20 * time.Millisecond
	a, err := New(&backend.DelayConnector{ServiceName: "cgi", ConnectTime: setup})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := a.Do(context.Background(), []byte("q")); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 3*setup {
		t.Fatalf("3 API accesses took %v, want ≥ %v (setup paid per request)", elapsed, 3*setup)
	}
}

func TestDoErrorPaths(t *testing.T) {
	connectFail := &backend.FuncConnector{
		ServiceName: "down",
		ConnectFn:   func(context.Context) error { return errors.New("refused") },
		DoFn:        func(context.Context, []byte) ([]byte, error) { return nil, nil },
	}
	a, err := New(connectFail)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Do(context.Background(), nil); err == nil {
		t.Fatal("connect failure not surfaced")
	}
	if got := a.Metrics().Counter("errors").Value(); got != 1 {
		t.Fatalf("errors = %d, want 1", got)
	}

	doFail := &backend.FuncConnector{
		ServiceName: "flaky",
		DoFn: func(context.Context, []byte) ([]byte, error) {
			return nil, errors.New("query failed")
		},
	}
	a2, err := New(doFail)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Do(context.Background(), nil); err == nil {
		t.Fatal("query failure not surfaced")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("New(nil) succeeded")
	}
}

func TestName(t *testing.T) {
	a, _ := New(&backend.DelayConnector{ServiceName: "mail"})
	if a.Name() != "mail" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestConcurrentIsolatedAccesses(t *testing.T) {
	a, err := New(&backend.DelayConnector{ServiceName: "cgi", ProcessTime: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Do(context.Background(), []byte("x")); err != nil {
				t.Errorf("do: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := a.Metrics().Counter("connects").Value(); got != 16 {
		t.Fatalf("connects = %d, want 16", got)
	}
}

func TestWithMetricsSharesRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	a, err := New(&backend.DelayConnector{ServiceName: "cgi"}, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Do(context.Background(), []byte("q")); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("requests").Value() != 1 {
		t.Fatal("metrics not recorded into the provided registry")
	}
}
