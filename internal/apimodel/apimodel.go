// Package apimodel implements the paper's baseline: API-based backend
// access (§II). Every request lives in its own "process space": it
// establishes a fresh connection, issues exactly one query, and tears the
// connection down. Nothing is shared between requests — no connection reuse,
// no caching, no QoS, no clustering, strict FCFS at the backend.
//
// The experiments run the same workloads through this accessor and through
// a service broker to reproduce the paper's comparisons (Figure 9's linear
// API curve, the connection-overhead ablations).
package apimodel

import (
	"context"
	"errors"

	"servicebroker/internal/backend"
	"servicebroker/internal/metrics"
)

// Accessor performs stateless, isolated backend accesses. It is safe for
// concurrent use; concurrent requests open concurrent connections, exactly
// as independent CGI processes would.
type Accessor struct {
	connector backend.Connector
	reg       *metrics.Registry
}

// Option configures an Accessor.
type Option interface {
	apply(*Accessor)
}

type optionFunc func(*Accessor)

func (f optionFunc) apply(a *Accessor) { f(a) }

// WithMetrics directs the accessor's counters into reg.
func WithMetrics(reg *metrics.Registry) Option {
	return optionFunc(func(a *Accessor) { a.reg = reg })
}

// New creates an accessor for one backend service.
func New(connector backend.Connector, opts ...Option) (*Accessor, error) {
	if connector == nil {
		return nil, errors.New("apimodel: nil connector")
	}
	a := &Accessor{connector: connector, reg: metrics.NewRegistry()}
	for _, o := range opts {
		o.apply(a)
	}
	return a, nil
}

// Name returns the backend service name.
func (a *Accessor) Name() string { return a.connector.Name() }

// Metrics returns the accessor's registry. Interesting entries:
// "connects" (one per request — the defining cost of this model),
// "requests", "errors", and the "request_time" histogram.
func (a *Accessor) Metrics() *metrics.Registry { return a.reg }

// Do performs one isolated access: connect, query, tear down.
func (a *Accessor) Do(ctx context.Context, payload []byte) ([]byte, error) {
	a.reg.Counter("requests").Inc()
	timer := metrics.StartTimer(a.reg.Histogram("request_time"))
	defer timer.ObserveDuration()

	a.reg.Counter("connects").Inc()
	session, err := a.connector.Connect(ctx)
	if err != nil {
		a.reg.Counter("errors").Inc()
		return nil, err
	}
	defer session.Close()

	out, err := session.Do(ctx, payload)
	if err != nil {
		a.reg.Counter("errors").Inc()
		return nil, err
	}
	return out, nil
}
