package registry

import (
	"fmt"
	"net"
	"sync"
	"time"

	"servicebroker/internal/broker"
)

// RegistrarConfig parameterizes a Registrar.
type RegistrarConfig struct {
	// Service is the service name this broker hosts.
	Service string
	// Addr is the gateway address to advertise ("host:port" the front end
	// should dial).
	Addr string
	// Target is the front end's UDP report/registration listener address.
	Target string
	// TTL is the lease duration requested; zero means 3s.
	TTL time.Duration
	// Interval is the renewal period; zero means TTL/3, so two datagrams
	// can be lost before the lease lapses.
	Interval time.Duration
	// Load, when set, supplies the load summary piggybacked on each
	// REGISTER/RENEW; nil sends zeros.
	Load func() broker.LoadReport
	// AdminAddr, when set, advertises the member's admin-plane HTTP address
	// on each REGISTER/RENEW (the admin= field) so a fleet federator can
	// scrape it without separate configuration.
	AdminAddr string
}

// Registrar keeps one broker's lease alive at one front end: REGISTER on
// start, RENEW every Interval, DEREGISTER on Close. Datagram loss is
// tolerated by construction — any later RENEW re-admits the member — so
// sends are fire-and-forget.
type Registrar struct {
	cfg  RegistrarConfig
	conn net.Conn

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// NewRegistrar validates cfg, sends the initial REGISTER, and starts the
// renewal loop.
func NewRegistrar(cfg RegistrarConfig) (*Registrar, error) {
	if cfg.Service == "" || cfg.Addr == "" || cfg.Target == "" {
		return nil, fmt.Errorf("registry: registrar needs Service, Addr and Target")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 3 * time.Second
	}
	if cfg.TTL < MinTTL || cfg.TTL > MaxTTL {
		return nil, fmt.Errorf("registry: ttl %v outside [%v, %v]", cfg.TTL, MinTTL, MaxTTL)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.TTL / 3
	}
	conn, err := net.Dial("udp", cfg.Target)
	if err != nil {
		return nil, fmt.Errorf("registry: dial %s: %w", cfg.Target, err)
	}
	r := &Registrar{cfg: cfg, conn: conn, done: make(chan struct{})}
	r.send(VerbRegister)
	go r.loop()
	return r, nil
}

func (r *Registrar) loop() {
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.send(VerbRenew)
		}
	}
}

// send emits one datagram; errors are ignored (the lease protocol is built
// on loss: a missed RENEW just shortens the margin before expiry).
func (r *Registrar) send(v Verb) {
	cmd := Command{Verb: v, Service: r.cfg.Service, Addr: r.cfg.Addr, TTL: r.cfg.TTL}
	if v != VerbDeregister {
		cmd.AdminAddr = r.cfg.AdminAddr
		if r.cfg.Load != nil {
			cmd.Load = r.cfg.Load()
		}
	}
	cmd.Load.Service = r.cfg.Service
	_, _ = r.conn.Write([]byte(FormatCommand(cmd)))
}

// Close sends DEREGISTER and stops the renewal loop. Idempotent.
func (r *Registrar) Close() {
	if r.stop() {
		r.send(VerbDeregister)
		r.conn.Close()
	}
}

// Abandon stops the renewal loop without sending DEREGISTER, modelling a
// crash: the front end must notice the silence and let the lease lapse. The
// chaos harness uses this; a graceful shutdown uses Close. Idempotent.
func (r *Registrar) Abandon() {
	if r.stop() {
		r.conn.Close()
	}
}

// stop marks the registrar closed and halts the loop; it reports whether
// this call was the one that closed it.
func (r *Registrar) stop() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.closed = true
	close(r.done)
	return true
}
