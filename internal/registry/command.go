// Package registry implements lease-based broker self-registration: the
// membership half of a replicated broker tier. Each brokerd process
// announces the services it hosts to a front end over the same UDP channel
// the centralized model's load reports travel on, and keeps the claim alive
// by renewing a TTL lease. A reconciliation loop on the front end expires
// leases whose broker stopped renewing — a crashed or partitioned broker
// silently falls out of the pool — and re-admits brokers that come back.
//
// Registration datagrams are single text lines layered on the
// frontend.Listener wire format (strict parse, reject-don't-clamp, fuzzed
// like parseReport):
//
//	REGISTER   <service> <addr> <ttl_ms> <outstanding> <threshold> <queuelen> <hot|cool> [admin=<addr>]
//	RENEW      <service> <addr> <ttl_ms> <outstanding> <threshold> <queuelen> <hot|cool> [admin=<addr>]
//	DEREGISTER <service> <addr>
//
// REGISTER and RENEW piggyback the broker's current load summary so the
// front end's health-weighted member selection always works from data no
// older than one renewal interval, with no separate reporting channel. The
// optional trailing admin=<host:port> field advertises the member's admin
// HTTP plane so a fleet federator can scrape /metrics and /buildz without
// separate configuration; lines without it parse exactly as before.
package registry

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"servicebroker/internal/broker"
)

// Verb is a registration command's action.
type Verb int

// Registration verbs.
const (
	// VerbRegister claims (or re-claims) pool membership with a fresh lease.
	VerbRegister Verb = iota + 1
	// VerbRenew extends an existing lease; an unknown member is admitted as
	// if it had registered (a front-end restart must not drop the pool).
	VerbRenew
	// VerbDeregister withdraws a member immediately (graceful shutdown).
	VerbDeregister
)

// String names the verb in its wire spelling.
func (v Verb) String() string {
	switch v {
	case VerbRegister:
		return "REGISTER"
	case VerbRenew:
		return "RENEW"
	case VerbDeregister:
		return "DEREGISTER"
	default:
		return fmt.Sprintf("verb(%d)", int(v))
	}
}

// Command is one parsed registration datagram.
type Command struct {
	Verb    Verb
	Service string
	// Addr is the member's gateway address ("host:port") as the broker
	// advertises it — the address the front end dials to reach it.
	Addr string
	// TTL is the lease duration granted by a REGISTER/RENEW; zero for
	// DEREGISTER.
	TTL time.Duration
	// Load is the load summary piggybacked on REGISTER/RENEW (Service is
	// filled from the command); zero for DEREGISTER.
	Load broker.LoadReport
	// AdminAddr optionally advertises the member's admin-plane HTTP address
	// (the trailing "admin=<host:port>" field on REGISTER/RENEW) for fleet
	// federation scraping. Empty when the member runs no admin plane.
	AdminAddr string
}

// Bounds the parser enforces. Registration shares the listener's
// unauthenticated UDP socket, so a malformed or hostile datagram must never
// perturb pool membership: reject rather than clamp.
const (
	maxCommandLine = 512     // matches the listener's read buffer
	maxServiceName = 128     // mirrors the LOAD report bound
	maxMemberAddr  = 256     // host:port; generous for IPv6 literals
	maxCounter     = 1 << 30 // load-field sanity cap, mirrors maxReportCounter

	// MinTTL and MaxTTL bound acceptable lease durations: a TTL below the
	// renewal resolution would flap membership, one above the cap would keep
	// a dead broker in the pool long past any reasonable failover horizon.
	MinTTL = 10 * time.Millisecond
	MaxTTL = 10 * time.Minute
)

// FormatCommand serializes a command into its datagram line. It is the
// inverse of ParseCommand; the fuzz target checks the round trip.
func FormatCommand(c Command) string {
	if c.Verb == VerbDeregister {
		return fmt.Sprintf("DEREGISTER %s %s", c.Service, c.Addr)
	}
	state := "cool"
	if c.Load.Hot {
		state = "hot"
	}
	line := fmt.Sprintf("%s %s %s %d %d %d %d %s",
		c.Verb, c.Service, c.Addr, c.TTL/time.Millisecond,
		c.Load.Outstanding, c.Load.Threshold, c.Load.QueueLen, state)
	if c.AdminAddr != "" {
		line += " admin=" + c.AdminAddr
	}
	return line
}

// parseCounter decodes one non-negative bounded integer field, refusing
// signs so every accepted field re-formats to the identical string.
func parseCounter(s string) (int, error) {
	if s == "" || s[0] == '-' || s[0] == '+' {
		return 0, fmt.Errorf("registry: bad counter %q", s)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n > maxCounter {
		return 0, fmt.Errorf("registry: counter %d out of range", n)
	}
	return n, nil
}

// printable reports whether s is plain printable ASCII: member addresses
// and service names are map keys and are echoed on /poolz, so control bytes
// are refused.
func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '!' || s[i] > '~' {
			return false
		}
	}
	return len(s) > 0
}

// validAddr applies the member-address shape check: bounded printable ASCII
// containing a single host:port separator with a numeric port. (Brackets
// for IPv6 literals pass the printable check and keep their last colon.)
func validAddr(addr string) bool {
	if len(addr) > maxMemberAddr || !printable(addr) {
		return false
	}
	i := strings.LastIndexByte(addr, ':')
	if i <= 0 || i == len(addr)-1 {
		return false
	}
	_, err := strconv.Atoi(addr[i+1:])
	return err == nil
}

// ParseCommand decodes one registration datagram. The format is exactly the
// field counts given in the package comment; anything else — wrong field
// count, unknown verb or state, signed or oversized numbers, malformed
// addresses — is rejected so garbage datagrams cannot perturb the pool.
func ParseCommand(line string) (Command, error) {
	if len(line) > maxCommandLine {
		return Command{}, fmt.Errorf("registry: oversized command (%d bytes)", len(line))
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Command{}, fmt.Errorf("registry: empty command")
	}
	var c Command
	switch fields[0] {
	case "REGISTER":
		c.Verb = VerbRegister
	case "RENEW":
		c.Verb = VerbRenew
	case "DEREGISTER":
		c.Verb = VerbDeregister
	default:
		return Command{}, fmt.Errorf("registry: unknown verb %q", fields[0])
	}

	// REGISTER/RENEW take exactly 8 fields, or 9 with the optional trailing
	// admin=<addr>; DEREGISTER takes exactly 3.
	want := 8
	if c.Verb == VerbDeregister {
		want = 3
	}
	if len(fields) != want && !(c.Verb != VerbDeregister && len(fields) == want+1) {
		return Command{}, fmt.Errorf("registry: bad %s command %q (want %d fields, got %d)",
			c.Verb, line, want, len(fields))
	}
	c.Service = fields[1]
	if len(c.Service) > maxServiceName || !printable(c.Service) {
		return Command{}, fmt.Errorf("registry: bad service name %q", c.Service)
	}
	c.Addr = fields[2]
	if !validAddr(c.Addr) {
		return Command{}, fmt.Errorf("registry: bad member address %q", c.Addr)
	}
	if c.Verb == VerbDeregister {
		return c, nil
	}

	ttlMs, err := parseCounter(fields[3])
	if err != nil {
		return Command{}, fmt.Errorf("registry: bad ttl in %q: %w", line, err)
	}
	c.TTL = time.Duration(ttlMs) * time.Millisecond
	if c.TTL < MinTTL || c.TTL > MaxTTL {
		return Command{}, fmt.Errorf("registry: ttl %v outside [%v, %v]", c.TTL, MinTTL, MaxTTL)
	}
	c.Load.Service = c.Service
	if c.Load.Outstanding, err = parseCounter(fields[4]); err != nil {
		return Command{}, fmt.Errorf("registry: bad command %q: %w", line, err)
	}
	if c.Load.Threshold, err = parseCounter(fields[5]); err != nil {
		return Command{}, fmt.Errorf("registry: bad command %q: %w", line, err)
	}
	if c.Load.QueueLen, err = parseCounter(fields[6]); err != nil {
		return Command{}, fmt.Errorf("registry: bad command %q: %w", line, err)
	}
	switch fields[7] {
	case "hot":
		c.Load.Hot = true
	case "cool":
		c.Load.Hot = false
	default:
		return Command{}, fmt.Errorf("registry: bad state %q", fields[7])
	}
	if len(fields) == 9 {
		v, ok := strings.CutPrefix(fields[8], "admin=")
		if !ok || !validAddr(v) {
			return Command{}, fmt.Errorf("registry: bad admin address %q", fields[8])
		}
		c.AdminAddr = v
	}
	return c, nil
}
