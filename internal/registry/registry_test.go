package registry

import (
	"net"
	"testing"
	"time"

	"servicebroker/internal/broker"
	"servicebroker/internal/fleet"
	"servicebroker/internal/metrics"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }
func reg(c *fakeClock, m *metrics.Registry) *Registry {
	return New(Config{Clock: c.Now, Metrics: m, TombstoneFor: time.Minute})
}

func registerCmd(service, addr string, ttl time.Duration) Command {
	return Command{Verb: VerbRegister, Service: service, Addr: addr, TTL: ttl,
		Load: broker.LoadReport{Service: service, Outstanding: 1, Threshold: 16}}
}

func TestRegistryLifecycle(t *testing.T) {
	clock := newFakeClock()
	m := metrics.NewRegistry()
	r := reg(clock, m)

	r.Apply(registerCmd("search", "127.0.0.1:7101", time.Second))
	r.Apply(registerCmd("search", "127.0.0.1:7102", time.Second))
	if got := len(r.Members("search")); got != 2 {
		t.Fatalf("after two registers: %d members, want 2", got)
	}
	if got := m.Gauge("broker_pool_size").Value(); got != 2 {
		t.Fatalf("broker_pool_size = %d, want 2", got)
	}

	// Renewal extends the lease past the original expiry.
	clock.Advance(800 * time.Millisecond)
	r.Apply(Command{Verb: VerbRenew, Service: "search", Addr: "127.0.0.1:7101", TTL: time.Second})
	clock.Advance(500 * time.Millisecond) // 7101 renewed 500ms ago; 7102 lapsed at 1s
	members := r.Members("search")
	if len(members) != 1 || members[0].Addr != "127.0.0.1:7101" {
		t.Fatalf("after partial expiry: members = %+v, want only 7101", members)
	}
	if members[0].Renewals != 1 {
		t.Fatalf("renewals = %d, want 1", members[0].Renewals)
	}

	// Reconcile emits the expiry transition for 7102.
	if n := r.Reconcile(); n != 1 {
		t.Fatalf("Reconcile expired %d leases, want 1", n)
	}
	if got := m.Counter("lease_expirations").Value(); got != 1 {
		t.Fatalf("lease_expirations = %d, want 1", got)
	}
	if got := m.Gauge("broker_pool_size").Value(); got != 1 {
		t.Fatalf("broker_pool_size after expiry = %d, want 1", got)
	}

	// The expired member shows as a tombstone on /poolz, then rejoins.
	var sawTombstone bool
	for _, v := range r.Snapshot() {
		if v.Addr == "127.0.0.1:7102" && v.State == "expired" {
			sawTombstone = true
		}
	}
	if !sawTombstone {
		t.Fatal("expired member missing from Snapshot")
	}
	r.Apply(registerCmd("search", "127.0.0.1:7102", time.Second))
	if got := m.Counter("lease_rejoins").Value(); got != 1 {
		t.Fatalf("lease_rejoins = %d, want 1", got)
	}
	if got := len(r.Members("search")); got != 2 {
		t.Fatalf("after rejoin: %d members, want 2", got)
	}

	// Deregister withdraws immediately.
	r.Apply(Command{Verb: VerbDeregister, Service: "search", Addr: "127.0.0.1:7101"})
	if got := len(r.Members("search")); got != 1 {
		t.Fatalf("after deregister: %d members, want 1", got)
	}
	if got := m.Counter("lease_deregistrations").Value(); got != 1 {
		t.Fatalf("lease_deregistrations = %d, want 1", got)
	}
}

func TestRegistryRenewAdmitsUnknownMember(t *testing.T) {
	// A front-end restart empties the table; the first RENEW from each
	// broker must rebuild the pool.
	clock := newFakeClock()
	r := reg(clock, nil)
	r.Apply(Command{Verb: VerbRenew, Service: "search", Addr: "127.0.0.1:7101", TTL: time.Second})
	if got := len(r.Members("search")); got != 1 {
		t.Fatalf("RENEW of unknown member admitted %d members, want 1", got)
	}
}

func TestRegistryMembersFilterWithoutReconcile(t *testing.T) {
	// Lapsed leases must disappear from Members even if Reconcile never
	// runs: routing correctness cannot depend on loop granularity.
	clock := newFakeClock()
	r := reg(clock, nil)
	r.Apply(registerCmd("search", "127.0.0.1:7101", time.Second))
	clock.Advance(time.Second)
	if got := len(r.Members("search")); got != 0 {
		t.Fatalf("lapsed lease still visible: %d members, want 0", got)
	}
}

func TestRegistryLateRenewAfterLapseCountsExpiryAndRejoin(t *testing.T) {
	clock := newFakeClock()
	m := metrics.NewRegistry()
	r := reg(clock, m)
	r.Apply(registerCmd("search", "127.0.0.1:7101", time.Second))
	clock.Advance(2 * time.Second)
	// The broker hung, never deregistered, and now renews: the lapse is an
	// expiry+rejoin even though Reconcile never saw it.
	r.Apply(Command{Verb: VerbRenew, Service: "search", Addr: "127.0.0.1:7101", TTL: time.Second})
	if got := m.Counter("lease_expirations").Value(); got != 1 {
		t.Fatalf("lease_expirations = %d, want 1", got)
	}
	if got := m.Counter("lease_rejoins").Value(); got != 1 {
		t.Fatalf("lease_rejoins = %d, want 1", got)
	}
	if got := len(r.Members("search")); got != 1 {
		t.Fatalf("members after late renew = %d, want 1", got)
	}
}

func TestRegistryFleetMembers(t *testing.T) {
	clock := newFakeClock()
	r := reg(clock, nil)

	// A member without an admin plane never appears in the fleet view.
	r.Apply(registerCmd("search", "127.0.0.1:7101", time.Second))
	withAdmin := registerCmd("search", "127.0.0.1:7102", time.Second)
	withAdmin.AdminAddr = "127.0.0.1:9102"
	r.Apply(withAdmin)
	got := r.FleetMembers()
	if len(got) != 1 || got[0].Name != "127.0.0.1:7102" || got[0].AdminAddr != "127.0.0.1:9102" {
		t.Fatalf("FleetMembers = %+v, want only 7102 with its admin addr", got)
	}

	// The same gateway serving two services dedupes to one scrape target.
	dup := registerCmd("cart", "127.0.0.1:7102", time.Second)
	dup.AdminAddr = "127.0.0.1:9102"
	r.Apply(dup)
	if got = r.FleetMembers(); len(got) != 1 {
		t.Fatalf("duplicate admin addr not collapsed: %+v", got)
	}

	// Lapsed leases drop out without waiting for Reconcile.
	clock.Advance(time.Second)
	if got = r.FleetMembers(); len(got) != 0 {
		t.Fatalf("lapsed lease still scraped: %+v", got)
	}
}

func TestRegistryPublishesLeaseEvents(t *testing.T) {
	clock := newFakeClock()
	r := reg(clock, nil)
	events := fleet.NewLog(16, nil)
	r.SetEvents(events)

	r.Apply(registerCmd("search", "127.0.0.1:7101", time.Second))
	clock.Advance(2 * time.Second)
	r.Reconcile()
	r.Apply(registerCmd("search", "127.0.0.1:7101", time.Second))
	r.Apply(Command{Verb: VerbDeregister, Service: "search", Addr: "127.0.0.1:7101"})

	// Snapshot is newest first.
	var kinds []fleet.Kind
	for _, e := range events.Snapshot(0) {
		kinds = append(kinds, e.Kind)
	}
	want := []fleet.Kind{fleet.KindLeaseLeave, fleet.KindLeaseRejoin, fleet.KindLeaseExpired, fleet.KindLeaseJoin}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
	}
}

func TestRegistryTombstonesPruned(t *testing.T) {
	clock := newFakeClock()
	r := reg(clock, nil)
	r.Apply(registerCmd("search", "127.0.0.1:7101", time.Second))
	clock.Advance(2 * time.Second)
	r.Reconcile()
	if len(r.Snapshot()) != 1 {
		t.Fatal("tombstone missing right after expiry")
	}
	clock.Advance(2 * time.Minute)
	r.Reconcile()
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("tombstone survived past TombstoneFor: %+v", got)
	}
}

func TestRegistryBoundsTables(t *testing.T) {
	clock := newFakeClock()
	r := reg(clock, nil)
	for i := 0; i < maxTrackedMembers+50; i++ {
		r.Apply(registerCmd("search", addrN(i), time.Minute))
	}
	if got := len(r.Members("search")); got != maxTrackedMembers {
		t.Fatalf("member table grew to %d, want cap %d", got, maxTrackedMembers)
	}
	for i := 0; i < maxTrackedServices+50; i++ {
		r.Apply(registerCmd(serviceN(i), "127.0.0.1:7101", time.Minute))
	}
	svcs := map[string]bool{}
	for _, v := range r.Snapshot() {
		svcs[v.Service] = true
	}
	if len(svcs) != maxTrackedServices {
		t.Fatalf("service table grew to %d, want cap %d", len(svcs), maxTrackedServices)
	}
}

func addrN(i int) string {
	return net.JoinHostPort("10.0.0.1", itoa(10000+i))
}

func serviceN(i int) string { return "svc" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestRegistrarAgainstUDPListener(t *testing.T) {
	// A real Registrar against a real UDP socket: REGISTER arrives first,
	// RENEWs follow, DEREGISTER on Close.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	lines := make(chan string, 16)
	go func() {
		buf := make([]byte, 1024)
		for {
			n, _, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			lines <- string(buf[:n])
		}
	}()

	r, err := NewRegistrar(RegistrarConfig{
		Service:  "search",
		Addr:     "127.0.0.1:7101",
		Target:   pc.LocalAddr().String(),
		TTL:      90 * time.Millisecond,
		Interval: 30 * time.Millisecond,
		Load:     func() broker.LoadReport { return broker.LoadReport{Outstanding: 3, Threshold: 16} },
	})
	if err != nil {
		t.Fatal(err)
	}

	next := func() Command {
		t.Helper()
		select {
		case line := <-lines:
			cmd, err := ParseCommand(line)
			if err != nil {
				t.Fatalf("registrar sent unparseable %q: %v", line, err)
			}
			return cmd
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for registrar datagram")
			return Command{}
		}
	}

	first := next()
	if first.Verb != VerbRegister || first.Service != "search" || first.Addr != "127.0.0.1:7101" {
		t.Fatalf("first datagram = %+v, want REGISTER search 127.0.0.1:7101", first)
	}
	if first.Load.Outstanding != 3 {
		t.Fatalf("piggybacked load = %+v, want Outstanding 3", first.Load)
	}
	if renew := next(); renew.Verb != VerbRenew {
		t.Fatalf("second datagram = %+v, want RENEW", renew)
	}

	r.Close()
	r.Close() // idempotent
	deadline := time.After(2 * time.Second)
	for {
		select {
		case line := <-lines:
			cmd, err := ParseCommand(line)
			if err != nil {
				t.Fatalf("registrar sent unparseable %q: %v", line, err)
			}
			if cmd.Verb == VerbDeregister {
				return
			}
		case <-deadline:
			t.Fatal("no DEREGISTER after Close")
		}
	}
}

func TestRegistryStartReconciles(t *testing.T) {
	// Real-clock smoke for the reconciliation goroutine.
	m := metrics.NewRegistry()
	r := New(Config{Metrics: m}).Start(5 * time.Millisecond)
	defer r.Close()
	r.Apply(registerCmd("search", "127.0.0.1:7101", MinTTL))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if m.Counter("lease_expirations").Value() == 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("reconciliation loop never expired the lease")
}
