package registry

import (
	"log/slog"
	"sort"
	"sync"
	"time"

	"servicebroker/internal/broker"
	"servicebroker/internal/fleet"
	"servicebroker/internal/metrics"
)

// Member is one live pool member: a broker gateway holding a valid lease
// for a service.
type Member struct {
	Service string
	// Addr is the gateway address the front end dials to reach this member.
	Addr string
	// Registered is when the current lease incarnation began (a rejoin after
	// expiry starts a new incarnation).
	Registered time.Time
	// LastSeen is the arrival time of the most recent REGISTER/RENEW.
	LastSeen time.Time
	// Expires is when the lease lapses unless renewed.
	Expires time.Time
	// Renewals counts RENEWs within the current incarnation.
	Renewals int
	// Load is the summary piggybacked on the latest REGISTER/RENEW.
	Load broker.LoadReport
	// AdminAddr is the admin-plane HTTP address the member advertised on
	// its latest REGISTER/RENEW (the optional admin= field), so a fleet
	// federator can scrape it. Empty when the member advertises none.
	AdminAddr string
}

// PoolView is one row of pool state as rendered on /poolz. It merges lease
// bookkeeping (from the registry) with routing health (from the frontend
// pool's breakers) so obs can display both without importing either
// package's internals.
type PoolView struct {
	Service string
	Addr    string
	// Source is how the member entered the pool: "static" (configured
	// gateway address) or "lease" (self-registered).
	Source string
	// State is the row's condition: "live", "expired" (lease lapsed, shown
	// until reconciliation forgets the tombstone), or a breaker state such
	// as "open" supplied by the routing layer.
	State string
	// TTLRemaining is time until lease expiry; zero or negative when
	// expired, zero for static members with no lease.
	TTLRemaining time.Duration
	Renewals     int
	Outstanding  int
	Threshold    int
	QueueLen     int
	Hot          bool
	// Failures and Failovers are routing-layer counters (zero when the row
	// comes straight from the registry with no pool attached).
	Failures  int64
	Failovers int64
	LastError string
}

// Config parameterizes a Registry. The zero value is usable.
type Config struct {
	// Clock substitutes a time source for tests; nil means time.Now.
	Clock func() time.Time
	// Metrics, when set, receives broker_pool_size gauges and lease_*
	// counters.
	Metrics *metrics.Registry
	// Logger, when set, records membership transitions.
	Logger *slog.Logger
	// TombstoneFor bounds how long an expired member is remembered (for
	// rejoin detection and /poolz display). Zero means 1 minute.
	TombstoneFor time.Duration
	// Events, when set, receives fleet timeline entries for every
	// membership transition (join, rejoin, expiry, leave). Nil disables
	// event publishing (every Log method is nil-safe).
	Events *fleet.Log
}

// Registry tracks lease-based pool membership for every service a front
// end routes. It is driven by Apply (one call per parsed datagram) and by a
// periodic Reconcile that expires lapsed leases. All methods are safe for
// concurrent use.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	members map[string]map[string]*Member // service → addr → member
	// tombstones remembers recently expired/deregistered members so a
	// returning broker is counted as a rejoin and /poolz can show the gap.
	tombstones map[string]map[string]time.Time // service → addr → when
	closed     bool
	done       chan struct{}

	poolSize      *metrics.Gauge
	registrations *metrics.Counter
	renewals      *metrics.Counter
	expirations   *metrics.Counter
	deregs        *metrics.Counter
	rejoins       *metrics.Counter
}

// maxTrackedMembers caps members+tombstones per service, and
// maxTrackedServices caps distinct services, so a spoofed datagram flood
// cannot grow the tables (or the per-service gauge set) without bound.
const (
	maxTrackedMembers  = 256
	maxTrackedServices = 256
)

// New builds a Registry from cfg.
func New(cfg Config) *Registry {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.TombstoneFor <= 0 {
		cfg.TombstoneFor = time.Minute
	}
	r := &Registry{
		cfg:        cfg,
		members:    make(map[string]map[string]*Member),
		tombstones: make(map[string]map[string]time.Time),
	}
	if m := cfg.Metrics; m != nil {
		r.poolSize = m.Gauge("broker_pool_size")
		r.registrations = m.Counter("lease_registrations")
		r.renewals = m.Counter("lease_renewals")
		r.expirations = m.Counter("lease_expirations")
		r.deregs = m.Counter("lease_deregistrations")
		r.rejoins = m.Counter("lease_rejoins")
	}
	return r
}

// SetEvents attaches (or replaces) the fleet event log membership
// transitions publish into; the deployment models call this when fleet
// observability is enabled after the registry is built.
func (r *Registry) SetEvents(l *fleet.Log) {
	r.mu.Lock()
	r.cfg.Events = l
	r.mu.Unlock()
}

// Apply folds one parsed command into the membership table.
func (r *Registry) Apply(cmd Command) {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	switch cmd.Verb {
	case VerbRegister, VerbRenew:
		r.admit(cmd, now)
	case VerbDeregister:
		r.withdraw(cmd, now)
	}
}

// admit handles REGISTER and RENEW under r.mu. RENEW for an unknown member
// admits it: after a front-end restart the first renewal from each broker
// rebuilds the pool without waiting for re-registration.
func (r *Registry) admit(cmd Command, now time.Time) {
	svc := r.members[cmd.Service]
	if svc == nil {
		if len(r.members) >= maxTrackedServices {
			return
		}
		svc = make(map[string]*Member)
		r.members[cmd.Service] = svc
	}
	m := svc[cmd.Addr]
	if m != nil && now.Before(m.Expires) {
		// Live lease: extend it.
		m.LastSeen = now
		m.Expires = now.Add(cmd.TTL)
		m.Load = cmd.Load
		if cmd.AdminAddr != "" {
			m.AdminAddr = cmd.AdminAddr
		}
		if cmd.Verb == VerbRenew {
			m.Renewals++
			count(r.renewals)
		} else {
			count(r.registrations)
		}
		return
	}
	// New member, or a lapsed lease coming back: new incarnation.
	if len(svc) >= maxTrackedMembers && m == nil {
		return
	}
	rejoin := m != nil || r.hadTombstone(cmd.Service, cmd.Addr)
	if m != nil {
		// Lapsed but not yet reconciled away; count the expiry now so the
		// metric reflects reality regardless of reconcile granularity.
		count(r.expirations)
	}
	svc[cmd.Addr] = &Member{
		Service:    cmd.Service,
		Addr:       cmd.Addr,
		Registered: now,
		LastSeen:   now,
		Expires:    now.Add(cmd.TTL),
		Load:       cmd.Load,
		AdminAddr:  cmd.AdminAddr,
	}
	delete(r.tombstones[cmd.Service], cmd.Addr)
	count(r.registrations)
	if rejoin {
		count(r.rejoins)
		r.logf("broker rejoined pool", cmd.Service, cmd.Addr)
		r.event(fleet.KindLeaseRejoin, cmd.Service, cmd.Addr, "lease re-established after gap")
	} else {
		r.logf("broker joined pool", cmd.Service, cmd.Addr)
		r.event(fleet.KindLeaseJoin, cmd.Service, cmd.Addr, "first lease for this member")
	}
	r.updatePoolSize()
}

// withdraw handles DEREGISTER under r.mu.
func (r *Registry) withdraw(cmd Command, now time.Time) {
	svc := r.members[cmd.Service]
	if svc == nil || svc[cmd.Addr] == nil {
		return
	}
	delete(svc, cmd.Addr)
	if len(svc) == 0 {
		delete(r.members, cmd.Service)
		if r.cfg.Metrics != nil {
			r.cfg.Metrics.Gauge("broker_pool_size_" + cmd.Service).Set(0)
		}
	}
	r.tombstone(cmd.Service, cmd.Addr, now)
	count(r.deregs)
	r.logf("broker left pool", cmd.Service, cmd.Addr)
	r.event(fleet.KindLeaseLeave, cmd.Service, cmd.Addr, "member deregistered (graceful shutdown)")
	r.updatePoolSize()
}

// Reconcile expires every lapsed lease and prunes old tombstones. It
// returns the number of leases expired. Members/Snapshot already filter
// lapsed leases on read, so correctness never depends on how often this
// runs — it exists to emit expiry transitions (metrics, logs, tombstones)
// promptly and to bound the tables.
func (r *Registry) Reconcile() int {
	now := r.cfg.Clock()
	expired := 0
	r.mu.Lock()
	defer r.mu.Unlock()
	for service, svc := range r.members {
		for addr, m := range svc {
			if now.Before(m.Expires) {
				continue
			}
			delete(svc, addr)
			r.tombstone(service, addr, now)
			expired++
			count(r.expirations)
			r.logf("broker lease expired", service, addr)
			r.event(fleet.KindLeaseExpired, service, addr, "lease lapsed without renewal")
		}
		if len(svc) == 0 {
			delete(r.members, service)
			if r.cfg.Metrics != nil {
				r.cfg.Metrics.Gauge("broker_pool_size_" + service).Set(0)
			}
		}
	}
	for service, ts := range r.tombstones {
		for addr, at := range ts {
			if now.Sub(at) > r.cfg.TombstoneFor {
				delete(ts, addr)
			}
		}
		if len(ts) == 0 {
			delete(r.tombstones, service)
		}
	}
	if expired > 0 {
		r.updatePoolSize()
	}
	return expired
}

// Members returns the live members for a service, lapsed leases filtered
// out, sorted by address for deterministic iteration.
func (r *Registry) Members(service string) []Member {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	svc := r.members[service]
	out := make([]Member, 0, len(svc))
	for _, m := range svc {
		if now.Before(m.Expires) {
			out = append(out, *m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// FleetMembers returns every live member that advertised an admin-plane
// address, as federator member infos (Name is the gateway address, matching
// /poolz rows and /tracez broker tags). It is the natural Discover hook for
// a fleet.Federator: membership follows the leases with no extra config.
func (r *Registry) FleetMembers() []fleet.MemberInfo {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []fleet.MemberInfo
	for _, svc := range r.members {
		for _, m := range svc {
			if m.AdminAddr != "" && now.Before(m.Expires) {
				out = append(out, fleet.MemberInfo{Name: m.Addr, AdminAddr: m.AdminAddr})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	// A member hosting several services appears once per service in the
	// table; collapse duplicates (same gateway, same admin plane).
	dedup := out[:0]
	for i, m := range out {
		if i == 0 || m != out[i-1] {
			dedup = append(dedup, m)
		}
	}
	return dedup
}

// Snapshot returns every row the registry knows about — live members and
// not-yet-forgotten tombstones — as PoolViews for /poolz.
func (r *Registry) Snapshot() []PoolView {
	now := r.cfg.Clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []PoolView
	for _, svc := range r.members {
		for _, m := range svc {
			v := PoolView{
				Service:      m.Service,
				Addr:         m.Addr,
				Source:       "lease",
				State:        "live",
				TTLRemaining: m.Expires.Sub(now),
				Renewals:     m.Renewals,
				Outstanding:  m.Load.Outstanding,
				Threshold:    m.Load.Threshold,
				QueueLen:     m.Load.QueueLen,
				Hot:          m.Load.Hot,
			}
			if !now.Before(m.Expires) {
				v.State = "expired"
				v.TTLRemaining = 0
			}
			out = append(out, v)
		}
	}
	for service, ts := range r.tombstones {
		for addr := range ts {
			out = append(out, PoolView{
				Service: service,
				Addr:    addr,
				Source:  "lease",
				State:   "expired",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Service != out[j].Service {
			return out[i].Service < out[j].Service
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Start launches the reconciliation loop at the given interval (zero means
// one second) and returns the registry for chaining.
func (r *Registry) Start(interval time.Duration) *Registry {
	if interval <= 0 {
		interval = time.Second
	}
	r.mu.Lock()
	if r.done != nil || r.closed {
		r.mu.Unlock()
		return r
	}
	r.done = make(chan struct{})
	done := r.done
	r.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				r.Reconcile()
			}
		}
	}()
	return r
}

// Close stops the reconciliation loop. It is idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	if r.done != nil {
		close(r.done)
	}
}

// hadTombstone reports whether (service, addr) expired or deregistered
// recently. Caller holds r.mu.
func (r *Registry) hadTombstone(service, addr string) bool {
	ts := r.tombstones[service]
	if ts == nil {
		return false
	}
	_, ok := ts[addr]
	return ok
}

// tombstone records a departure. Caller holds r.mu.
func (r *Registry) tombstone(service, addr string, now time.Time) {
	ts := r.tombstones[service]
	if ts == nil {
		ts = make(map[string]time.Time)
		r.tombstones[service] = ts
	}
	if len(ts) < maxTrackedMembers {
		ts[addr] = now
	}
}

// updatePoolSize refreshes gauges. Caller holds r.mu.
func (r *Registry) updatePoolSize() {
	if r.poolSize == nil {
		return
	}
	total := 0
	for service, svc := range r.members {
		total += len(svc)
		r.cfg.Metrics.Gauge("broker_pool_size_" + service).Set(int64(len(svc)))
	}
	r.poolSize.Set(int64(total))
}

func (r *Registry) logf(msg, service, addr string) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Info(msg, "service", service, "addr", addr)
	}
}

// event publishes one membership transition onto the fleet timeline.
// Publish never blocks, so calling under r.mu is safe.
func (r *Registry) event(kind fleet.Kind, service, addr, detail string) {
	r.cfg.Events.Publish(fleet.Event{Kind: kind, Service: service, Member: addr, Detail: detail})
}

func count(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}
