package registry

import (
	"strings"
	"testing"
	"time"

	"servicebroker/internal/broker"
)

func TestParseCommandHardening(t *testing.T) {
	cases := []struct {
		name string
		line string
		ok   bool
		want Command
	}{
		{
			name: "register",
			line: "REGISTER search 127.0.0.1:7101 3000 4 16 2 cool",
			ok:   true,
			want: Command{
				Verb: VerbRegister, Service: "search", Addr: "127.0.0.1:7101",
				TTL:  3 * time.Second,
				Load: broker.LoadReport{Service: "search", Outstanding: 4, Threshold: 16, QueueLen: 2},
			},
		},
		{
			name: "renew hot",
			line: "RENEW search 127.0.0.1:7101 250 16 16 9 hot",
			ok:   true,
			want: Command{
				Verb: VerbRenew, Service: "search", Addr: "127.0.0.1:7101",
				TTL:  250 * time.Millisecond,
				Load: broker.LoadReport{Service: "search", Outstanding: 16, Threshold: 16, QueueLen: 9, Hot: true},
			},
		},
		{
			name: "deregister",
			line: "DEREGISTER search 127.0.0.1:7101",
			ok:   true,
			want: Command{Verb: VerbDeregister, Service: "search", Addr: "127.0.0.1:7101"},
		},
		{
			name: "ipv6 addr",
			line: "REGISTER search [::1]:7101 3000 0 16 0 cool",
			ok:   true,
			want: Command{
				Verb: VerbRegister, Service: "search", Addr: "[::1]:7101",
				TTL:  3 * time.Second,
				Load: broker.LoadReport{Service: "search", Threshold: 16},
			},
		},
		{
			name: "register with admin",
			line: "REGISTER search 127.0.0.1:7101 3000 4 16 2 cool admin=127.0.0.1:9101",
			ok:   true,
			want: Command{
				Verb: VerbRegister, Service: "search", Addr: "127.0.0.1:7101",
				TTL:       3 * time.Second,
				Load:      broker.LoadReport{Service: "search", Outstanding: 4, Threshold: 16, QueueLen: 2},
				AdminAddr: "127.0.0.1:9101",
			},
		},
		{
			name: "renew with ipv6 admin",
			line: "RENEW search 127.0.0.1:7101 250 16 16 9 hot admin=[::1]:9101",
			ok:   true,
			want: Command{
				Verb: VerbRenew, Service: "search", Addr: "127.0.0.1:7101",
				TTL:       250 * time.Millisecond,
				Load:      broker.LoadReport{Service: "search", Outstanding: 16, Threshold: 16, QueueLen: 9, Hot: true},
				AdminAddr: "[::1]:9101",
			},
		},
		{name: "admin missing prefix", line: "REGISTER search 127.0.0.1:7101 3000 4 16 2 cool 127.0.0.1:9101"},
		{name: "admin bad addr", line: "REGISTER search 127.0.0.1:7101 3000 4 16 2 cool admin=127.0.0.1"},
		{name: "admin empty", line: "REGISTER search 127.0.0.1:7101 3000 4 16 2 cool admin="},
		{name: "admin on deregister", line: "DEREGISTER search 127.0.0.1:7101 admin=127.0.0.1:9101"},
		{name: "two admin fields", line: "REGISTER search 127.0.0.1:7101 3000 4 16 2 cool admin=127.0.0.1:9101 admin=127.0.0.1:9102"},
		{name: "empty", line: ""},
		{name: "unknown verb", line: "LOAD search 1 16 0 cool"},
		{name: "lowercase verb", line: "register search 127.0.0.1:7101 3000 0 16 0 cool"},
		{name: "missing field", line: "REGISTER search 127.0.0.1:7101 3000 0 16 cool"},
		{name: "extra field", line: "REGISTER search 127.0.0.1:7101 3000 0 16 0 cool x"},
		{name: "deregister extra field", line: "DEREGISTER search 127.0.0.1:7101 cool"},
		{name: "addr without port", line: "REGISTER search 127.0.0.1 3000 0 16 0 cool"},
		{name: "addr trailing colon", line: "REGISTER search 127.0.0.1: 3000 0 16 0 cool"},
		{name: "addr non-numeric port", line: "REGISTER search 127.0.0.1:x 3000 0 16 0 cool"},
		{name: "addr too long", line: "REGISTER search " + strings.Repeat("a", maxMemberAddr) + ":1 3000 0 16 0 cool"},
		{name: "service too long", line: "REGISTER " + strings.Repeat("s", maxServiceName+1) + " 127.0.0.1:7101 3000 0 16 0 cool"},
		{name: "service control bytes", line: "REGISTER s\x01vc 127.0.0.1:7101 3000 0 16 0 cool"},
		{name: "ttl zero", line: "REGISTER search 127.0.0.1:7101 0 0 16 0 cool"},
		{name: "ttl below floor", line: "REGISTER search 127.0.0.1:7101 9 0 16 0 cool"},
		{name: "ttl above cap", line: "REGISTER search 127.0.0.1:7101 600001 0 16 0 cool"},
		{name: "ttl negative", line: "REGISTER search 127.0.0.1:7101 -3000 0 16 0 cool"},
		{name: "ttl signed", line: "REGISTER search 127.0.0.1:7101 +3000 0 16 0 cool"},
		{name: "counter negative", line: "REGISTER search 127.0.0.1:7101 3000 -1 16 0 cool"},
		{name: "counter huge", line: "REGISTER search 127.0.0.1:7101 3000 1073741825 16 0 cool"},
		{name: "counter float", line: "REGISTER search 127.0.0.1:7101 3000 1.5 16 0 cool"},
		{name: "bad state", line: "REGISTER search 127.0.0.1:7101 3000 0 16 0 warm"},
		{name: "oversized line", line: "REGISTER search 127.0.0.1:7101 3000 0 16 0 cool" + strings.Repeat(" ", maxCommandLine)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseCommand(tc.line)
			if tc.ok {
				if err != nil {
					t.Fatalf("ParseCommand(%q): unexpected error %v", tc.line, err)
				}
				if got != tc.want {
					t.Fatalf("ParseCommand(%q) = %+v, want %+v", tc.line, got, tc.want)
				}
			} else if err == nil {
				t.Fatalf("ParseCommand(%q) accepted garbage: %+v", tc.line, got)
			}
		})
	}
}

func TestFormatCommandRoundTrip(t *testing.T) {
	cmds := []Command{
		{Verb: VerbRegister, Service: "search", Addr: "127.0.0.1:7101", TTL: 3 * time.Second,
			Load: broker.LoadReport{Service: "search", Outstanding: 4, Threshold: 16, QueueLen: 2, Hot: true}},
		{Verb: VerbRenew, Service: "cart", Addr: "[::1]:9", TTL: MinTTL,
			Load: broker.LoadReport{Service: "cart", Threshold: 1}},
		{Verb: VerbRegister, Service: "search", Addr: "127.0.0.1:7101", TTL: 3 * time.Second,
			Load:      broker.LoadReport{Service: "search", Outstanding: 1, Threshold: 16},
			AdminAddr: "127.0.0.1:9101"},
		{Verb: VerbDeregister, Service: "cart", Addr: "10.0.0.2:7102"},
	}
	for _, c := range cmds {
		line := FormatCommand(c)
		got, err := ParseCommand(line)
		if err != nil {
			t.Fatalf("ParseCommand(FormatCommand(%+v)) = %q: %v", c, line, err)
		}
		if got != c {
			t.Fatalf("round trip: got %+v, want %+v (line %q)", got, c, line)
		}
	}
}

// FuzzParseCommand checks the parser never panics and that every accepted
// command survives a format/parse round trip unchanged.
func FuzzParseCommand(f *testing.F) {
	f.Add("REGISTER search 127.0.0.1:7101 3000 4 16 2 cool")
	f.Add("RENEW search [::1]:7101 250 16 16 9 hot")
	f.Add("DEREGISTER search 127.0.0.1:7101")
	f.Add("REGISTER search 127.0.0.1:7101 3000 4 16 2 cool admin=127.0.0.1:9101")
	f.Add("RENEW search 127.0.0.1:7101 250 16 16 9 hot admin=[::1]:9101")
	f.Add("REGISTER s :1 10 0 0 0 cool")
	f.Add("LOAD search 1 16 0 cool")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		c, err := ParseCommand(line)
		if err != nil {
			return
		}
		again, err := ParseCommand(FormatCommand(c))
		if err != nil {
			t.Fatalf("re-parse of formatted %+v failed: %v", c, err)
		}
		if again != c {
			t.Fatalf("round trip mismatch: %+v != %+v", again, c)
		}
	})
}
