// Package resilience implements the fault-tolerance primitives the broker
// uses to shield front-end processes from backend trouble (paper §III): a
// Retryer (capped exponential backoff with deterministic jitter and a
// per-request deadline budget), error classification separating transient
// transport faults from permanent payload errors, and a per-replica circuit
// Breaker (closed/open/half-open) that lets the load balancer fail over away
// from unhealthy replicas and probe them back in.
//
// The package is stdlib-only and fully deterministic under test: jitter is
// seeded and the breaker clock is injectable.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// ErrorClass partitions failures for the retry decision.
type ErrorClass int

const (
	// ClassRetryable marks transient transport or connect failures: a
	// fresh attempt (possibly against another replica) may succeed.
	ClassRetryable ErrorClass = iota + 1
	// ClassPermanent marks payload or protocol errors (bad query syntax,
	// unknown command): repeating the identical request cannot succeed.
	ClassPermanent
)

// String names the class.
func (c ErrorClass) String() string {
	switch c {
	case ClassRetryable:
		return "retryable"
	case ClassPermanent:
		return "permanent"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as non-retryable. Backend connectors wrap payload
// errors (bad command syntax, 4xx statuses) so the broker does not burn its
// retry budget repeating a request that can never succeed. Permanent(nil)
// returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Classify is the default error classifier: errors marked Permanent and
// context errors (the caller's budget is gone) are permanent; everything
// else — connection resets, refused connects, injected faults, simulated
// drops — is presumed a transient transport failure and retryable.
func Classify(err error) ErrorClass {
	if err == nil || IsPermanent(err) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassPermanent
	}
	return ClassRetryable
}

// CountsAsBreakerFailure reports whether err should count against a
// replica's circuit breaker. Transport-class errors and per-attempt
// timeouts do; caller cancellation and permanent payload errors (the
// replica answered, just not usefully) do not.
func CountsAsBreakerFailure(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || IsPermanent(err) {
		return false
	}
	return true
}

// RetryConfig parameterizes a Retryer. Zero fields select the defaults
// noted on each field.
type RetryConfig struct {
	// MaxAttempts is the total number of tries including the first;
	// values ≤ 0 default to 3. MaxAttempts of 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 1s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Seed makes the jitter stream deterministic; 0 selects a fixed
	// default so runs are reproducible by default.
	Seed int64
	// Classify overrides the error classifier (default Classify).
	Classify func(error) ErrorClass
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 10 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Second
	}
	if c.Multiplier <= 1 {
		c.Multiplier = 2
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Classify == nil {
		c.Classify = Classify
	}
	return c
}

// Retryer repeats failed operations under capped exponential backoff with
// deterministic jitter, honoring the caller's context deadline as a hard
// budget: it never starts a wait that would outlive the deadline. Safe for
// concurrent use.
type Retryer struct {
	cfg RetryConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetryer returns a Retryer for cfg (zero fields take defaults).
func NewRetryer(cfg RetryConfig) *Retryer {
	cfg = cfg.withDefaults()
	return &Retryer{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// MaxAttempts returns the effective attempt bound.
func (r *Retryer) MaxAttempts() int { return r.cfg.MaxAttempts }

// Backoff returns the wait after the attempt-th failure (1-based):
// min(MaxDelay, BaseDelay·Multiplier^(attempt-1)) scaled by a jitter factor
// in [0.5, 1] drawn from the seeded stream.
func (r *Retryer) Backoff(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(r.cfg.BaseDelay) * math.Pow(r.cfg.Multiplier, float64(attempt-1))
	if d > float64(r.cfg.MaxDelay) {
		d = float64(r.cfg.MaxDelay)
	}
	r.mu.Lock()
	f := 0.5 + 0.5*r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(d * f)
}

// Do runs op until it succeeds, the attempt budget is spent, the error is
// permanent, or the context's deadline cannot fit another backoff wait. It
// returns op's result, the number of attempts made, and the final error.
// notify, when non-nil, is invoked after each backoff wait and before the
// next attempt with the upcoming attempt number, the time just waited, and
// the error that caused the retry.
func (r *Retryer) Do(ctx context.Context, op func(context.Context) ([]byte, error),
	notify func(attempt int, waited time.Duration, cause error)) ([]byte, int, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return nil, attempt - 1, lastErr
		}
		body, err := op(ctx)
		if err == nil {
			return body, attempt, nil
		}
		lastErr = err
		if attempt >= r.cfg.MaxAttempts || r.cfg.Classify(err) == ClassPermanent {
			return nil, attempt, err
		}
		wait := r.Backoff(attempt)
		if deadline, ok := ctx.Deadline(); ok && wait >= time.Until(deadline) {
			// The deadline budget cannot fit another wait + attempt.
			return nil, attempt, fmt.Errorf("resilience: retry budget exhausted after %d attempts: %w", attempt, err)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, attempt, err
		}
		if notify != nil {
			notify(attempt+1, wait, err)
		}
	}
}
