package resilience

import (
	"fmt"
	"sync"
	"time"
)

// State is a circuit breaker's position in the classic three-state machine.
type State int

const (
	// StateClosed passes traffic, counting consecutive failures.
	StateClosed State = iota
	// StateHalfOpen admits a bounded number of probe requests after the
	// cooldown; success closes the breaker, failure reopens it.
	StateHalfOpen
	// StateOpen rejects traffic until the cooldown elapses.
	StateOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig parameterizes a Breaker. Zero fields select the defaults
// noted on each field.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips a
	// closed breaker open (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects traffic before
	// admitting half-open probes (default 1s).
	Cooldown time.Duration
	// SuccessThreshold is the number of successful half-open probes that
	// close the breaker (default 1).
	SuccessThreshold int
	// MaxProbes bounds concurrent half-open probes (default 1).
	MaxProbes int
	// Clock overrides the time source, for deterministic tests.
	Clock func() time.Time
	// OnTransition, when non-nil, is called after every state change.
	// It runs outside the breaker's lock but must not block; it may be
	// invoked while a caller (e.g. a ReplicaSet) holds its own locks, so
	// it must not call back into the component that owns the breaker.
	OnTransition func(from, to State)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 1
	}
	if c.MaxProbes <= 0 {
		c.MaxProbes = 1
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Snapshot is a point-in-time view of one breaker, rendered by /breakerz.
type Snapshot struct {
	Name                string
	State               State
	ConsecutiveFailures int
	Successes           int64
	Failures            int64
	Opens               int64
	LastTransition      time.Time // zero if the breaker never transitioned
}

// Breaker is one replica's circuit breaker. Use NewBreaker; all methods are
// safe for concurrent use.
//
// The request lifecycle is Acquire (may the attempt proceed?) followed by
// exactly one Done(err) per successful Acquire. Errors are weighed by
// CountsAsBreakerFailure, so caller cancellations and permanent payload
// errors never trip the breaker.
type Breaker struct {
	name string
	cfg  BreakerConfig

	mu         sync.Mutex
	state      State
	failures   int // consecutive, while closed
	probes     int // in-flight, while half-open
	successes  int // successful probes, while half-open
	lastChange time.Time
	opens      int64
	totalOK    int64
	totalFail  int64
}

// NewBreaker returns a closed breaker named name (zero cfg fields take
// defaults).
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	return &Breaker{name: name, cfg: cfg.withDefaults()}
}

// Name returns the breaker's replica label.
func (b *Breaker) Name() string { return b.name }

// State returns the current state, accounting for an elapsed cooldown only
// when a request actually probes (Acquire) — an idle open breaker reports
// open until someone tries it.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Candidate reports, without changing state, whether a request may be
// attempted now: closed, half-open with a free probe slot, or open with the
// cooldown elapsed.
func (b *Breaker) Candidate() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		return b.cfg.Clock().Sub(b.lastChange) >= b.cfg.Cooldown
	default:
		return b.probes < b.cfg.MaxProbes
	}
}

// Acquire asks to attempt one request. An open breaker whose cooldown has
// elapsed transitions to half-open and admits the caller as a probe. Every
// true return must be matched by one Done call.
func (b *Breaker) Acquire() bool {
	var fire func()
	b.mu.Lock()
	ok := false
	switch b.state {
	case StateClosed:
		ok = true
	case StateOpen:
		if b.cfg.Clock().Sub(b.lastChange) >= b.cfg.Cooldown {
			fire = b.transitionLocked(StateHalfOpen)
			b.successes = 0
			b.probes = 1
			ok = true
		}
	case StateHalfOpen:
		if b.probes < b.cfg.MaxProbes {
			b.probes++
			ok = true
		}
	}
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
	return ok
}

// Done reports the outcome of an acquired attempt and drives the state
// machine: threshold consecutive failures open a closed breaker; a failed
// probe reopens a half-open one; SuccessThreshold successful probes close
// it.
func (b *Breaker) Done(err error) {
	fail := CountsAsBreakerFailure(err)
	var fire func()
	b.mu.Lock()
	if err == nil {
		b.totalOK++
	} else {
		b.totalFail++
	}
	switch b.state {
	case StateClosed:
		if fail {
			b.failures++
			if b.failures >= b.cfg.FailureThreshold {
				fire = b.openLocked()
			}
		} else if err == nil {
			b.failures = 0
		}
	case StateHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		switch {
		case fail:
			fire = b.openLocked()
		case err == nil:
			b.successes++
			if b.successes >= b.cfg.SuccessThreshold {
				fire = b.transitionLocked(StateClosed)
				b.failures = 0
			}
		}
		// A cancelled probe is neutral: neither closes nor reopens.
	case StateOpen:
		// A straggler that was in flight when the breaker tripped; it
		// only updates the totals.
	}
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Snapshot returns the breaker's current counters and state.
func (b *Breaker) Snapshot() Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Snapshot{
		Name:                b.name,
		State:               b.state,
		ConsecutiveFailures: b.failures,
		Successes:           b.totalOK,
		Failures:            b.totalFail,
		Opens:               b.opens,
		LastTransition:      b.lastChange,
	}
}

// openLocked trips the breaker open. Caller holds b.mu.
func (b *Breaker) openLocked() func() {
	fire := b.transitionLocked(StateOpen)
	b.opens++
	b.probes = 0
	b.successes = 0
	return fire
}

// transitionLocked moves to state `to`, returning the deferred OnTransition
// call (nil when no callback is registered). Caller holds b.mu.
func (b *Breaker) transitionLocked(to State) func() {
	from := b.state
	b.state = to
	b.lastChange = b.cfg.Clock()
	if b.cfg.OnTransition == nil || from == to {
		return nil
	}
	cb := b.cfg.OnTransition
	return func() { cb(from, to) }
}

// Config bundles the whole fault-tolerance policy a broker applies to its
// backend access path.
type Config struct {
	// Retry parameterizes the per-request retry loop.
	Retry RetryConfig
	// Breaker parameterizes the per-replica circuit breakers (applied
	// only when the broker routes across replicas).
	Breaker BreakerConfig
	// ServeStale lets the broker answer with an expired cache entry at
	// low fidelity when retries and replicas are exhausted — the paper's
	// immediate "low-fidelity message" instead of an error.
	ServeStale bool
}
