package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	base := errors.New("connection reset")
	if got := Classify(base); got != ClassRetryable {
		t.Fatalf("Classify(transport) = %v, want retryable", got)
	}
	if got := Classify(Permanent(base)); got != ClassPermanent {
		t.Fatalf("Classify(Permanent) = %v, want permanent", got)
	}
	if got := Classify(fmt.Errorf("wrap: %w", Permanent(base))); got != ClassPermanent {
		t.Fatalf("Classify(wrapped Permanent) = %v, want permanent", got)
	}
	if got := Classify(context.Canceled); got != ClassPermanent {
		t.Fatalf("Classify(Canceled) = %v, want permanent", got)
	}
	if got := Classify(context.DeadlineExceeded); got != ClassPermanent {
		t.Fatalf("Classify(DeadlineExceeded) = %v, want permanent", got)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestCountsAsBreakerFailure(t *testing.T) {
	if !CountsAsBreakerFailure(errors.New("reset")) {
		t.Fatal("transport error should count")
	}
	if !CountsAsBreakerFailure(context.DeadlineExceeded) {
		t.Fatal("attempt timeout should count")
	}
	if CountsAsBreakerFailure(context.Canceled) {
		t.Fatal("caller cancellation should not count")
	}
	if CountsAsBreakerFailure(Permanent(errors.New("bad query"))) {
		t.Fatal("permanent payload error should not count")
	}
	if CountsAsBreakerFailure(nil) {
		t.Fatal("nil should not count")
	}
}

func TestRetryerSucceedsAfterTransientFailures(t *testing.T) {
	r := NewRetryer(RetryConfig{MaxAttempts: 4, BaseDelay: time.Millisecond, Seed: 1})
	calls := 0
	body, attempts, err := r.Do(context.Background(), func(context.Context) ([]byte, error) {
		calls++
		if calls < 3 {
			return nil, errors.New("transient")
		}
		return []byte("ok"), nil
	}, nil)
	if err != nil || string(body) != "ok" {
		t.Fatalf("Do = %q, %v", body, err)
	}
	if attempts != 3 || calls != 3 {
		t.Fatalf("attempts = %d, calls = %d, want 3", attempts, calls)
	}
}

func TestRetryerStopsOnPermanent(t *testing.T) {
	r := NewRetryer(RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1})
	calls := 0
	_, attempts, err := r.Do(context.Background(), func(context.Context) ([]byte, error) {
		calls++
		return nil, Permanent(errors.New("bad payload"))
	}, nil)
	if err == nil || attempts != 1 || calls != 1 {
		t.Fatalf("attempts = %d, calls = %d, err = %v; want one attempt", attempts, calls, err)
	}
}

func TestRetryerExhaustsAttempts(t *testing.T) {
	r := NewRetryer(RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1})
	var notified []int
	calls := 0
	_, attempts, err := r.Do(context.Background(), func(context.Context) ([]byte, error) {
		calls++
		return nil, errors.New("transient")
	}, func(attempt int, waited time.Duration, cause error) {
		if waited <= 0 || cause == nil {
			t.Errorf("notify(%d): waited=%v cause=%v", attempt, waited, cause)
		}
		notified = append(notified, attempt)
	})
	if err == nil || attempts != 3 || calls != 3 {
		t.Fatalf("attempts = %d, calls = %d, err = %v; want 3 attempts and error", attempts, calls, err)
	}
	if len(notified) != 2 || notified[0] != 2 || notified[1] != 3 {
		t.Fatalf("notified = %v, want [2 3]", notified)
	}
}

func TestRetryerHonorsDeadlineBudget(t *testing.T) {
	// Backoff after the first failure is at least 25ms (half of 50ms
	// base), far beyond the 5ms budget: the retryer must give up without
	// sleeping through the deadline.
	r := NewRetryer(RetryConfig{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, attempts, err := r.Do(ctx, func(context.Context) ([]byte, error) {
		return nil, errors.New("transient")
	}, nil)
	if err == nil {
		t.Fatal("want error")
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (budget cannot fit a backoff)", attempts)
	}
	if elapsed := time.Since(start); elapsed > 25*time.Millisecond {
		t.Fatalf("retryer overslept the deadline budget: %v", elapsed)
	}
}

func TestRetryerCancelledContext(t *testing.T) {
	r := NewRetryer(RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, attempts, err := r.Do(ctx, func(context.Context) ([]byte, error) {
		t.Fatal("op must not run with a dead context")
		return nil, nil
	}, nil)
	if attempts != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("attempts = %d, err = %v", attempts, err)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 7}
	a, b := NewRetryer(cfg), NewRetryer(cfg)
	for attempt := 1; attempt <= 8; attempt++ {
		da, db := a.Backoff(attempt), b.Backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed produced %v vs %v", attempt, da, db)
		}
		if da > 80*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v exceeds cap", attempt, da)
		}
		if da < 5*time.Millisecond {
			t.Fatalf("attempt %d: backoff %v below half the base", attempt, da)
		}
	}
}
