package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func attempt(b *Breaker, err error) (acquired bool) {
	if !b.Acquire() {
		return false
	}
	b.Done(err)
	return true
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("r0", BreakerConfig{FailureThreshold: 3, Cooldown: time.Second, Clock: clk.now})
	fail := errors.New("reset")
	for i := 0; i < 2; i++ {
		if !attempt(b, fail) {
			t.Fatalf("attempt %d rejected while closed", i)
		}
		if b.State() != StateClosed {
			t.Fatalf("opened after %d failures, threshold 3", i+1)
		}
	}
	if !attempt(b, fail) {
		t.Fatal("third attempt rejected")
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	if b.Acquire() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := NewBreaker("r0", BreakerConfig{FailureThreshold: 2})
	fail := errors.New("reset")
	attempt(b, fail)
	attempt(b, nil) // resets the consecutive count
	attempt(b, fail)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed (failures not consecutive)", b.State())
	}
	attempt(b, fail)
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
}

func TestBreakerHalfOpenProbeClosesOnSuccess(t *testing.T) {
	clk := newFakeClock()
	var transitions []State
	b := NewBreaker("r0", BreakerConfig{
		FailureThreshold: 1, Cooldown: time.Second, SuccessThreshold: 1, Clock: clk.now,
		OnTransition: func(_, to State) { transitions = append(transitions, to) },
	})
	attempt(b, errors.New("reset"))
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Candidate() {
		t.Fatal("open breaker is a candidate before cooldown")
	}
	clk.advance(time.Second)
	if !b.Candidate() {
		t.Fatal("cooled-down breaker should be a probe candidate")
	}
	if !b.Acquire() {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Acquire() {
		t.Fatal("second concurrent probe admitted with MaxProbes 1")
	}
	b.Done(nil)
	if b.State() != StateClosed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	want := []State{StateOpen, StateHalfOpen, StateClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerHalfOpenProbeReopensOnFailure(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("r0", BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, Clock: clk.now})
	attempt(b, errors.New("reset"))
	clk.advance(time.Second)
	if !b.Acquire() {
		t.Fatal("probe rejected")
	}
	b.Done(errors.New("still down"))
	if b.State() != StateOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	// The fresh open period restarts the cooldown.
	if b.Acquire() {
		t.Fatal("reopened breaker admitted a request immediately")
	}
	snap := b.Snapshot()
	if snap.Opens != 2 {
		t.Fatalf("opens = %d, want 2", snap.Opens)
	}
}

func TestBreakerNeutralOutcomes(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("r0", BreakerConfig{FailureThreshold: 1, Cooldown: time.Second, SuccessThreshold: 1, Clock: clk.now})
	// Caller cancellation while closed neither trips nor resets.
	attempt(b, context.Canceled)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	attempt(b, errors.New("reset"))
	clk.advance(time.Second)
	if !b.Acquire() {
		t.Fatal("probe rejected")
	}
	b.Done(context.Canceled) // neutral probe: stay half-open
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v after cancelled probe, want half-open", b.State())
	}
	if !b.Acquire() {
		t.Fatal("probe slot not released by the neutral outcome")
	}
	b.Done(nil)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerSnapshot(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("db#1", BreakerConfig{FailureThreshold: 2, Clock: clk.now})
	attempt(b, nil)
	attempt(b, errors.New("reset"))
	snap := b.Snapshot()
	if snap.Name != "db#1" || snap.State != StateClosed {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Successes != 1 || snap.Failures != 1 || snap.ConsecutiveFailures != 1 || snap.Opens != 0 {
		t.Fatalf("snapshot counters = %+v", snap)
	}
	if !snap.LastTransition.IsZero() {
		t.Fatalf("LastTransition = %v, want zero (never transitioned)", snap.LastTransition)
	}
}
