// Package ldapdir is a lightweight LDAP-style directory service, one of the
// heterogeneous backend servers the paper's web applications access (the
// "LDAP API" in Figure 1). It provides a hierarchical entry tree addressed
// by distinguished names, an LDAP-flavoured search filter language, and a
// line-oriented TCP protocol with a bind (authentication) round trip.
package ldapdir

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Directory errors.
var (
	ErrNoSuchEntry   = errors.New("ldapdir: no such entry")
	ErrEntryExists   = errors.New("ldapdir: entry already exists")
	ErrNoParent      = errors.New("ldapdir: parent entry does not exist")
	ErrHasChildren   = errors.New("ldapdir: entry has children")
	ErrBadDN         = errors.New("ldapdir: malformed DN")
	ErrBadFilter     = errors.New("ldapdir: malformed filter")
	ErrNotEmptyScope = errors.New("ldapdir: unknown search scope")
)

// DN is a parsed distinguished name, most-specific RDN first, e.g.
// ["cn=alice", "ou=users", "dc=example"].
type DN []string

// ParseDN splits a textual DN. Components are trimmed and lowercased on the
// attribute side; values keep their case.
func ParseDN(s string) (DN, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("%w: empty", ErrBadDN)
	}
	parts := strings.Split(s, ",")
	dn := make(DN, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		attr, val, ok := strings.Cut(p, "=")
		if !ok || attr == "" || val == "" {
			return nil, fmt.Errorf("%w: component %q", ErrBadDN, p)
		}
		dn = append(dn, strings.ToLower(strings.TrimSpace(attr))+"="+strings.TrimSpace(val))
	}
	return dn, nil
}

// String renders the DN in textual form.
func (d DN) String() string { return strings.Join(d, ",") }

// Parent returns the DN with the most specific RDN removed; nil for a
// one-component DN.
func (d DN) Parent() DN {
	if len(d) <= 1 {
		return nil
	}
	return d[1:]
}

// key returns a canonical (case-insensitive) map key.
func (d DN) key() string { return strings.ToLower(d.String()) }

// IsDescendantOf reports whether d is strictly under base.
func (d DN) IsDescendantOf(base DN) bool {
	if len(d) <= len(base) {
		return false
	}
	offset := len(d) - len(base)
	for i, rdn := range base {
		if !strings.EqualFold(d[offset+i], rdn) {
			return false
		}
	}
	return true
}

// Equal reports whether two DNs name the same entry.
func (d DN) Equal(o DN) bool {
	if len(d) != len(o) {
		return false
	}
	for i := range d {
		if !strings.EqualFold(d[i], o[i]) {
			return false
		}
	}
	return true
}

// Entry is one directory node: a DN plus multi-valued attributes. Attribute
// names are stored lowercase.
type Entry struct {
	DN    DN
	Attrs map[string][]string
}

// Get returns the first value of an attribute, or "".
func (e *Entry) Get(attr string) string {
	vs := e.Attrs[strings.ToLower(attr)]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// clone deep-copies the entry so callers cannot mutate directory state.
func (e *Entry) clone() *Entry {
	c := &Entry{DN: append(DN(nil), e.DN...), Attrs: make(map[string][]string, len(e.Attrs))}
	for k, vs := range e.Attrs {
		c.Attrs[k] = append([]string(nil), vs...)
	}
	return c
}

// Scope selects how far Search descends.
type Scope int

// Search scopes, mirroring LDAP.
const (
	// ScopeBase matches only the base entry itself.
	ScopeBase Scope = iota + 1
	// ScopeOne matches immediate children of the base.
	ScopeOne
	// ScopeSub matches the base and all descendants.
	ScopeSub
)

// ParseScope parses "base", "one", or "sub".
func ParseScope(s string) (Scope, error) {
	switch strings.ToLower(s) {
	case "base":
		return ScopeBase, nil
	case "one":
		return ScopeOne, nil
	case "sub":
		return ScopeSub, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrNotEmptyScope, s)
	}
}

// Directory is the in-memory entry store. It is safe for concurrent use.
type Directory struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[string]*Entry)}
}

// Len returns the number of entries.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Add inserts an entry. Every entry except roots (single-RDN DNs) requires
// an existing parent. Attribute names are normalized to lowercase.
func (d *Directory) Add(dn DN, attrs map[string][]string) error {
	if len(dn) == 0 {
		return ErrBadDN
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	key := dn.key()
	if _, ok := d.entries[key]; ok {
		return fmt.Errorf("%w: %s", ErrEntryExists, dn)
	}
	if parent := dn.Parent(); parent != nil {
		if _, ok := d.entries[parent.key()]; !ok {
			return fmt.Errorf("%w: %s", ErrNoParent, parent)
		}
	}
	e := &Entry{DN: dn, Attrs: make(map[string][]string, len(attrs)+1)}
	for k, vs := range attrs {
		e.Attrs[strings.ToLower(k)] = append([]string(nil), vs...)
	}
	// The RDN attribute is implicitly present.
	if attr, val, ok := strings.Cut(dn[0], "="); ok {
		name := strings.ToLower(attr)
		if !contains(e.Attrs[name], val) {
			e.Attrs[name] = append(e.Attrs[name], val)
		}
	}
	d.entries[key] = e
	return nil
}

func contains(vs []string, v string) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// Delete removes a leaf entry.
func (d *Directory) Delete(dn DN) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := dn.key()
	if _, ok := d.entries[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchEntry, dn)
	}
	for _, e := range d.entries {
		if e.DN.IsDescendantOf(dn) {
			return fmt.Errorf("%w: %s", ErrHasChildren, dn)
		}
	}
	delete(d.entries, key)
	return nil
}

// Modify replaces the named attributes on an existing entry (nil value
// slices delete the attribute).
func (d *Directory) Modify(dn DN, attrs map[string][]string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[dn.key()]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchEntry, dn)
	}
	for k, vs := range attrs {
		name := strings.ToLower(k)
		if len(vs) == 0 {
			delete(e.Attrs, name)
			continue
		}
		e.Attrs[name] = append([]string(nil), vs...)
	}
	return nil
}

// Lookup returns a copy of the entry at dn.
func (d *Directory) Lookup(dn DN) (*Entry, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.entries[dn.key()]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchEntry, dn)
	}
	return e.clone(), nil
}

// Search returns copies of entries under base (per scope) matching the
// filter, sorted by DN for deterministic output.
func (d *Directory) Search(base DN, scope Scope, f Filter) ([]*Entry, error) {
	if f == nil {
		f = &Present{Attr: "objectclass"}
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if _, ok := d.entries[base.key()]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchEntry, base)
	}
	var out []*Entry
	for _, e := range d.entries {
		var inScope bool
		switch scope {
		case ScopeBase:
			inScope = e.DN.Equal(base)
		case ScopeOne:
			inScope = e.DN.IsDescendantOf(base) && len(e.DN) == len(base)+1
		case ScopeSub:
			inScope = e.DN.Equal(base) || e.DN.IsDescendantOf(base)
		default:
			return nil, ErrNotEmptyScope
		}
		if inScope && f.Match(e) {
			out = append(out, e.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DN.key() < out[j].DN.key() })
	return out, nil
}
