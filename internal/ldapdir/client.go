package ldapdir

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Client is a connection to an ldapdir server. Operations on one Client are
// serialized. Use Connect, then Bind before other operations.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	closed bool
}

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("ldapdir: client closed")

// Connect dials an ldapdir server and consumes the greeting.
func Connect(addr string, timeout time.Duration) (*Client, error) {
	var (
		conn net.Conn
		err  error
	)
	if timeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("ldapdir: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	line, err := c.readLine()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !strings.HasPrefix(line, "+OK") {
		conn.Close()
		return nil, fmt.Errorf("ldapdir: unexpected greeting %q", line)
	}
	return c, nil
}

func (c *Client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("ldapdir: read: %w", err)
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// command sends one line and returns the first response line.
func (c *Client) command(format string, args ...interface{}) (string, error) {
	if c.closed {
		return "", ErrClientClosed
	}
	fmt.Fprintf(c.w, format+"\r\n", args...)
	if err := c.w.Flush(); err != nil {
		return "", fmt.Errorf("ldapdir: write: %w", err)
	}
	return c.readLine()
}

// checkOK converts "-ERR ..." into an error.
func checkOK(line string) error {
	if strings.HasPrefix(line, "+OK") {
		return nil
	}
	return fmt.Errorf("ldapdir: server: %s", strings.TrimPrefix(line, "-ERR "))
}

// Bind authenticates the session.
func (c *Client) Bind(user, pass string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	line, err := c.command("BIND %s %s", user, pass)
	if err != nil {
		return err
	}
	return checkOK(line)
}

// Search runs a search and returns the matching entries.
func (c *Client) Search(base string, scope Scope, filter string) ([]*Entry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	scopeName := map[Scope]string{ScopeBase: "base", ScopeOne: "one", ScopeSub: "sub"}[scope]
	if scopeName == "" {
		return nil, ErrNotEmptyScope
	}
	line, err := c.command("SEARCH %s %s %s", base, scopeName, filter)
	if err != nil {
		return nil, err
	}
	var entries []*Entry
	var cur *Entry
	for {
		switch {
		case strings.HasPrefix(line, "*ENTRY "):
			dn, err := ParseDN(strings.TrimPrefix(line, "*ENTRY "))
			if err != nil {
				return nil, err
			}
			cur = &Entry{DN: dn, Attrs: make(map[string][]string)}
			entries = append(entries, cur)
		case strings.HasPrefix(line, "*ATTR "):
			if cur == nil {
				return nil, errors.New("ldapdir: attribute before entry")
			}
			rest := strings.TrimPrefix(line, "*ATTR ")
			name, val, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("ldapdir: bad attr line %q", line)
			}
			cur.Attrs[name] = append(cur.Attrs[name], val)
		default:
			if err := checkOK(line); err != nil {
				return nil, err
			}
			return entries, nil
		}
		if line, err = c.readLine(); err != nil {
			return nil, err
		}
	}
}

// Add creates an entry. attrs uses the wire "a=v|a=v" form semantics.
func (c *Client) Add(dn string, attrs map[string][]string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	line, err := c.command("ADD %s %s", dn, encodeAttrList(attrs))
	if err != nil {
		return err
	}
	return checkOK(line)
}

// Modify replaces attributes on an entry; nil slices delete.
func (c *Client) Modify(dn string, attrs map[string][]string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	line, err := c.command("MODIFY %s %s", dn, encodeAttrList(attrs))
	if err != nil {
		return err
	}
	return checkOK(line)
}

// Delete removes a leaf entry.
func (c *Client) Delete(dn string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	line, err := c.command("DEL %s", dn)
	if err != nil {
		return err
	}
	return checkOK(line)
}

// Close ends the session.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	fmt.Fprintf(c.w, "QUIT\r\n")
	c.w.Flush()
	return c.conn.Close()
}

func encodeAttrList(attrs map[string][]string) string {
	var parts []string
	for name, vals := range attrs {
		if len(vals) == 0 {
			parts = append(parts, name+"=")
			continue
		}
		for _, v := range vals {
			parts = append(parts, name+"="+v)
		}
	}
	return strings.Join(parts, "|")
}
