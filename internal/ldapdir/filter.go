package ldapdir

import (
	"fmt"
	"strings"
)

// Filter matches directory entries, mirroring the LDAP string filter
// language: (attr=value) with * wildcards, (attr=*) presence tests, and
// (&...), (|...), (!...) combinators.
type Filter interface {
	Match(e *Entry) bool
	String() string
}

// Eq matches entries with an attribute value equal to (or, with wildcards,
// matching) Value.
type Eq struct {
	Attr  string
	Value string
}

// Match implements Filter.
func (f *Eq) Match(e *Entry) bool {
	for _, v := range e.Attrs[strings.ToLower(f.Attr)] {
		if wildcardMatch(v, f.Value) {
			return true
		}
	}
	return false
}

// String renders the filter in LDAP syntax.
func (f *Eq) String() string { return "(" + f.Attr + "=" + f.Value + ")" }

// Present matches entries that carry the attribute at all.
type Present struct{ Attr string }

// Match implements Filter.
func (f *Present) Match(e *Entry) bool {
	return len(e.Attrs[strings.ToLower(f.Attr)]) > 0
}

// String renders the filter in LDAP syntax.
func (f *Present) String() string { return "(" + f.Attr + "=*)" }

// And matches entries satisfying every sub-filter.
type And struct{ Subs []Filter }

// Match implements Filter.
func (f *And) Match(e *Entry) bool {
	for _, s := range f.Subs {
		if !s.Match(e) {
			return false
		}
	}
	return true
}

// String renders the filter in LDAP syntax.
func (f *And) String() string { return "(&" + joinFilters(f.Subs) + ")" }

// Or matches entries satisfying any sub-filter.
type Or struct{ Subs []Filter }

// Match implements Filter.
func (f *Or) Match(e *Entry) bool {
	for _, s := range f.Subs {
		if s.Match(e) {
			return true
		}
	}
	return false
}

// String renders the filter in LDAP syntax.
func (f *Or) String() string { return "(|" + joinFilters(f.Subs) + ")" }

// NotF negates a sub-filter.
type NotF struct{ Sub Filter }

// Match implements Filter.
func (f *NotF) Match(e *Entry) bool { return !f.Sub.Match(e) }

// String renders the filter in LDAP syntax.
func (f *NotF) String() string { return "(!" + f.Sub.String() + ")" }

func joinFilters(subs []Filter) string {
	var b strings.Builder
	for _, s := range subs {
		b.WriteString(s.String())
	}
	return b.String()
}

// wildcardMatch matches value against a pattern with * wildcards,
// case-insensitively (LDAP attribute values are usually compared
// caseIgnoreMatch).
func wildcardMatch(value, pattern string) bool {
	v := strings.ToLower(value)
	p := strings.ToLower(pattern)
	if !strings.Contains(p, "*") {
		return v == p
	}
	parts := strings.Split(p, "*")
	// Anchor the first and last fragments, float the middle ones.
	if !strings.HasPrefix(v, parts[0]) {
		return false
	}
	v = v[len(parts[0]):]
	last := parts[len(parts)-1]
	if !strings.HasSuffix(v, last) {
		return false
	}
	v = v[:len(v)-len(last)]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		idx := strings.Index(v, mid)
		if idx < 0 {
			return false
		}
		v = v[idx+len(mid):]
	}
	return true
}

// ParseFilter parses an LDAP-style filter string.
func ParseFilter(s string) (Filter, error) {
	p := &filterParser{s: strings.TrimSpace(s)}
	f, err := p.parse()
	if err != nil {
		return nil, err
	}
	if p.i != len(p.s) {
		return nil, fmt.Errorf("%w: trailing input at %d", ErrBadFilter, p.i)
	}
	return f, nil
}

type filterParser struct {
	s string
	i int
}

func (p *filterParser) parse() (Filter, error) {
	if p.i >= len(p.s) || p.s[p.i] != '(' {
		return nil, fmt.Errorf("%w: expected '(' at %d", ErrBadFilter, p.i)
	}
	p.i++
	if p.i >= len(p.s) {
		return nil, fmt.Errorf("%w: truncated", ErrBadFilter)
	}
	switch p.s[p.i] {
	case '&', '|':
		op := p.s[p.i]
		p.i++
		var subs []Filter
		for p.i < len(p.s) && p.s[p.i] == '(' {
			sub, err := p.parse()
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if len(subs) == 0 {
			return nil, fmt.Errorf("%w: empty combinator", ErrBadFilter)
		}
		if op == '&' {
			return &And{Subs: subs}, nil
		}
		return &Or{Subs: subs}, nil
	case '!':
		p.i++
		sub, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &NotF{Sub: sub}, nil
	default:
		end := strings.IndexByte(p.s[p.i:], ')')
		if end < 0 {
			return nil, fmt.Errorf("%w: missing ')'", ErrBadFilter)
		}
		body := p.s[p.i : p.i+end]
		p.i += end + 1
		attr, val, ok := strings.Cut(body, "=")
		if !ok || attr == "" {
			return nil, fmt.Errorf("%w: %q", ErrBadFilter, body)
		}
		attr = strings.TrimSpace(attr)
		val = strings.TrimSpace(val)
		if val == "*" {
			return &Present{Attr: attr}, nil
		}
		if val == "" {
			return nil, fmt.Errorf("%w: empty value in %q", ErrBadFilter, body)
		}
		return &Eq{Attr: attr, Value: val}, nil
	}
}

func (p *filterParser) expect(c byte) error {
	if p.i >= len(p.s) || p.s[p.i] != c {
		return fmt.Errorf("%w: expected %q at %d", ErrBadFilter, string(c), p.i)
	}
	p.i++
	return nil
}
