package ldapdir

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestParseDN(t *testing.T) {
	dn, err := ParseDN("CN=Alice, ou=users, dc=example")
	if err != nil {
		t.Fatal(err)
	}
	if dn.String() != "cn=Alice,ou=users,dc=example" {
		t.Fatalf("dn = %s", dn)
	}
	if dn.Parent().String() != "ou=users,dc=example" {
		t.Fatalf("parent = %s", dn.Parent())
	}
	if DN([]string{"dc=example"}).Parent() != nil {
		t.Fatal("root parent should be nil")
	}
	for _, bad := range []string{"", "nodnhere", "cn=", "=val", "cn=a,,dc=b"} {
		if _, err := ParseDN(bad); !errors.Is(err, ErrBadDN) {
			t.Errorf("ParseDN(%q) err = %v, want ErrBadDN", bad, err)
		}
	}
}

func TestDNRelations(t *testing.T) {
	base, _ := ParseDN("ou=users,dc=example")
	child, _ := ParseDN("cn=alice,ou=users,dc=example")
	grand, _ := ParseDN("cn=x,cn=alice,ou=users,dc=example")
	other, _ := ParseDN("cn=bob,ou=groups,dc=example")
	if !child.IsDescendantOf(base) || !grand.IsDescendantOf(base) {
		t.Fatal("descendants not detected")
	}
	if base.IsDescendantOf(base) {
		t.Fatal("self counted as descendant")
	}
	if other.IsDescendantOf(base) {
		t.Fatal("non-descendant matched")
	}
	caseVariant, _ := ParseDN("cn=ALICE,ou=users,dc=example")
	if !child.Equal(caseVariant) {
		t.Fatal("case-insensitive Equal failed")
	}
}

// newTestDir builds a small org tree.
func newTestDir(t *testing.T) *Directory {
	t.Helper()
	d := NewDirectory()
	add := func(dn string, attrs map[string][]string) {
		t.Helper()
		parsed, err := ParseDN(dn)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Add(parsed, attrs); err != nil {
			t.Fatalf("Add(%s): %v", dn, err)
		}
	}
	add("dc=example", map[string][]string{"objectclass": {"domain"}})
	add("ou=users,dc=example", map[string][]string{"objectclass": {"organizationalUnit"}})
	add("ou=groups,dc=example", map[string][]string{"objectclass": {"organizationalUnit"}})
	add("cn=alice,ou=users,dc=example", map[string][]string{
		"objectclass": {"person"}, "mail": {"alice@example.com"}, "title": {"engineer"}})
	add("cn=bob,ou=users,dc=example", map[string][]string{
		"objectclass": {"person"}, "mail": {"bob@example.com"}, "title": {"manager"}})
	add("cn=eng,ou=groups,dc=example", map[string][]string{
		"objectclass": {"group"}, "member": {"alice"}})
	return d
}

func TestAddRequiresParent(t *testing.T) {
	d := NewDirectory()
	dn, _ := ParseDN("cn=orphan,ou=nowhere,dc=example")
	if err := d.Add(dn, nil); !errors.Is(err, ErrNoParent) {
		t.Fatalf("err = %v, want ErrNoParent", err)
	}
}

func TestAddDuplicate(t *testing.T) {
	d := newTestDir(t)
	dn, _ := ParseDN("cn=Alice,ou=users,dc=example") // different case
	if err := d.Add(dn, nil); !errors.Is(err, ErrEntryExists) {
		t.Fatalf("err = %v, want ErrEntryExists", err)
	}
}

func TestRDNImplicitAttribute(t *testing.T) {
	d := newTestDir(t)
	dn, _ := ParseDN("cn=alice,ou=users,dc=example")
	e, err := d.Lookup(dn)
	if err != nil {
		t.Fatal(err)
	}
	if e.Get("cn") != "alice" {
		t.Fatalf("cn = %q, want alice", e.Get("cn"))
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	d := newTestDir(t)
	dn, _ := ParseDN("cn=alice,ou=users,dc=example")
	e, _ := d.Lookup(dn)
	e.Attrs["mail"][0] = "corrupted"
	e2, _ := d.Lookup(dn)
	if e2.Get("mail") != "alice@example.com" {
		t.Fatal("Lookup leaked internal state")
	}
}

func TestDeleteLeafOnly(t *testing.T) {
	d := newTestDir(t)
	users, _ := ParseDN("ou=users,dc=example")
	if err := d.Delete(users); !errors.Is(err, ErrHasChildren) {
		t.Fatalf("err = %v, want ErrHasChildren", err)
	}
	alice, _ := ParseDN("cn=alice,ou=users,dc=example")
	if err := d.Delete(alice); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup(alice); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("lookup after delete err = %v", err)
	}
	if err := d.Delete(alice); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestModify(t *testing.T) {
	d := newTestDir(t)
	dn, _ := ParseDN("cn=alice,ou=users,dc=example")
	err := d.Modify(dn, map[string][]string{"title": {"principal"}, "mail": nil})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := d.Lookup(dn)
	if e.Get("title") != "principal" {
		t.Fatalf("title = %q", e.Get("title"))
	}
	if e.Get("mail") != "" {
		t.Fatalf("mail survived deletion: %q", e.Get("mail"))
	}
	missing, _ := ParseDN("cn=nobody,dc=example")
	if err := d.Modify(missing, nil); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("modify missing err = %v", err)
	}
}

func TestSearchScopes(t *testing.T) {
	d := newTestDir(t)
	base, _ := ParseDN("dc=example")
	users, _ := ParseDN("ou=users,dc=example")

	tests := []struct {
		base  DN
		scope Scope
		want  int
	}{
		{base, ScopeBase, 1},
		{base, ScopeOne, 2},
		{base, ScopeSub, 6},
		{users, ScopeOne, 2},
		{users, ScopeSub, 3},
	}
	for _, tt := range tests {
		got, err := d.Search(tt.base, tt.scope, nil)
		if err != nil {
			t.Fatalf("Search(%s, %d): %v", tt.base, tt.scope, err)
		}
		if len(got) != tt.want {
			t.Errorf("Search(%s, %d) = %d entries, want %d", tt.base, tt.scope, len(got), tt.want)
		}
	}
	missing, _ := ParseDN("dc=nowhere")
	if _, err := d.Search(missing, ScopeSub, nil); !errors.Is(err, ErrNoSuchEntry) {
		t.Fatalf("missing base err = %v", err)
	}
}

func TestSearchDeterministicOrder(t *testing.T) {
	d := newTestDir(t)
	base, _ := ParseDN("ou=users,dc=example")
	a, _ := d.Search(base, ScopeSub, nil)
	b, _ := d.Search(base, ScopeSub, nil)
	for i := range a {
		if !a[i].DN.Equal(b[i].DN) {
			t.Fatal("search order not deterministic")
		}
	}
}

func TestFilters(t *testing.T) {
	d := newTestDir(t)
	base, _ := ParseDN("dc=example")
	tests := []struct {
		filter string
		want   int
	}{
		{"(objectclass=person)", 2},
		{"(objectclass=PERSON)", 2}, // case-insensitive values
		{"(mail=*)", 2},
		{"(mail=alice*)", 1},
		{"(mail=*example.com)", 2},
		{"(mail=*@*)", 2},
		{"(&(objectclass=person)(title=manager))", 1},
		{"(|(title=manager)(title=engineer))", 2},
		{"(!(objectclass=person))", 4},
		{"(&(objectclass=person)(!(title=manager)))", 1},
		{"(cn=alice)", 1},
		{"(cn=zed)", 0},
	}
	for _, tt := range tests {
		f, err := ParseFilter(tt.filter)
		if err != nil {
			t.Fatalf("ParseFilter(%q): %v", tt.filter, err)
		}
		got, err := d.Search(base, ScopeSub, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != tt.want {
			t.Errorf("filter %s matched %d, want %d", tt.filter, len(got), tt.want)
		}
	}
}

func TestParseFilterErrors(t *testing.T) {
	for _, bad := range []string{
		"", "cn=x", "(cn=x", "(cn=x))", "(&)", "(|)", "(!)", "(=x)", "(cn=)", "(!(cn=a)(cn=b))",
	} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) succeeded", bad)
		}
	}
}

func TestFilterString(t *testing.T) {
	f, err := ParseFilter("(&(objectclass=person)(!(cn=bob))(|(a=1)(b=*)))")
	if err != nil {
		t.Fatal(err)
	}
	want := "(&(objectclass=person)(!(cn=bob))(|(a=1)(b=*)))"
	if got := f.String(); got != want {
		t.Fatalf("String = %s, want %s", got, want)
	}
}

// Property: ParseFilter never panics and round-trips its own rendering.
func TestFilterRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		flt, err := ParseFilter(s)
		if err != nil {
			return true
		}
		again, err := ParseFilter(flt.String())
		return err == nil && again.String() == flt.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWildcardMatch(t *testing.T) {
	tests := []struct {
		v, p string
		want bool
	}{
		{"alice", "alice", true},
		{"Alice", "alice", true},
		{"alice", "a*", true},
		{"alice", "*e", true},
		{"alice", "a*e", true},
		{"alice", "a*i*e", true},
		{"alice", "a*x*e", false},
		{"alice", "*", true},
		{"", "*", true},
		{"", "", true},
		{"x", "", false},
	}
	for _, tt := range tests {
		if got := wildcardMatch(tt.v, tt.p); got != tt.want {
			t.Errorf("wildcardMatch(%q, %q) = %v, want %v", tt.v, tt.p, got, tt.want)
		}
	}
}

func TestParseScope(t *testing.T) {
	for name, want := range map[string]Scope{"base": ScopeBase, "ONE": ScopeOne, "Sub": ScopeSub} {
		got, err := ParseScope(name)
		if err != nil || got != want {
			t.Errorf("ParseScope(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScope("tree"); err == nil {
		t.Fatal("ParseScope(tree) succeeded")
	}
}

// startTestServer builds a directory, serves it, and returns a bound client.
func startTestServer(t *testing.T, opts ...ServerOption) (*Server, *Client) {
	t.Helper()
	d := newTestDir(t)
	srv, err := NewServer(d, "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Connect(srv.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestServerBindAndSearch(t *testing.T) {
	_, cli := startTestServer(t)
	if err := cli.Bind("cn=web", "web"); err != nil {
		t.Fatal(err)
	}
	entries, err := cli.Search("dc=example", ScopeSub, "(objectclass=person)")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	if entries[0].Get("mail") == "" {
		t.Fatalf("attributes missing: %+v", entries[0])
	}
}

func TestServerRejectsUnboundOperations(t *testing.T) {
	_, cli := startTestServer(t)
	if _, err := cli.Search("dc=example", ScopeSub, ""); err == nil {
		t.Fatal("unbound search succeeded")
	}
	if err := cli.Bind("cn=web", "wrong"); err == nil {
		t.Fatal("bad bind succeeded")
	}
	// After a proper bind everything works.
	if err := cli.Bind("cn=web", "web"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Search("dc=example", ScopeBase, ""); err != nil {
		t.Fatal(err)
	}
}

func TestServerAddModifyDelete(t *testing.T) {
	_, cli := startTestServer(t)
	if err := cli.Bind("cn=web", "web"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Add("cn=carol,ou=users,dc=example", map[string][]string{
		"objectclass": {"person"}, "mail": {"carol@example.com"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Modify("cn=carol,ou=users,dc=example", map[string][]string{
		"title": {"director"},
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := cli.Search("cn=carol,ou=users,dc=example", ScopeBase, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Get("title") != "director" {
		t.Fatalf("entries = %+v", entries)
	}
	if err := cli.Delete("cn=carol,ou=users,dc=example"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Delete("cn=carol,ou=users,dc=example"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestServerErrorsKeepSessionAlive(t *testing.T) {
	_, cli := startTestServer(t)
	if err := cli.Bind("cn=web", "web"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Search("dc=missing", ScopeSub, ""); err == nil {
		t.Fatal("search on missing base succeeded")
	}
	if _, err := cli.Search("dc=example", ScopeBase, ""); err != nil {
		t.Fatalf("session dead after error: %v", err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv, _ := startTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := Connect(srv.Addr().String(), 0)
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			defer cli.Close()
			if err := cli.Bind("cn=web", "web"); err != nil {
				t.Errorf("bind: %v", err)
				return
			}
			for j := 0; j < 10; j++ {
				if _, err := cli.Search("dc=example", ScopeSub, "(objectclass=person)"); err != nil {
					t.Errorf("client %d search %d: %v", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestDirectoryConcurrentMutations(t *testing.T) {
	d := newTestDir(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				dn, _ := ParseDN(fmt.Sprintf("cn=user%d-%d,ou=users,dc=example", w, i))
				if err := d.Add(dn, map[string][]string{"objectclass": {"person"}}); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	base, _ := ParseDN("ou=users,dc=example")
	got, err := d.Search(base, ScopeOne, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 202 { // alice, bob + 200 new
		t.Fatalf("entries = %d, want 202", len(got))
	}
}

func TestEncodeAttrList(t *testing.T) {
	s := encodeAttrList(map[string][]string{"a": {"1", "2"}, "b": nil})
	if !strings.Contains(s, "a=1") || !strings.Contains(s, "a=2") || !strings.Contains(s, "b=") {
		t.Fatalf("encoded = %q", s)
	}
}

func BenchmarkSearchSubtreeFiltered(b *testing.B) {
	d := NewDirectory()
	root, _ := ParseDN("dc=example")
	d.Add(root, map[string][]string{"objectclass": {"domain"}})
	ou, _ := ParseDN("ou=users,dc=example")
	d.Add(ou, nil)
	for i := 0; i < 1000; i++ {
		dn, _ := ParseDN(fmt.Sprintf("cn=user%d,ou=users,dc=example", i))
		d.Add(dn, map[string][]string{
			"objectclass": {"person"},
			"mail":        {fmt.Sprintf("user%d@example.com", i)},
		})
	}
	f, _ := ParseFilter("(&(objectclass=person)(mail=user5*))")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Search(root, ScopeSub, f); err != nil {
			b.Fatal(err)
		}
	}
}
