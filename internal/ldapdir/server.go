package ldapdir

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// The ldapdir wire protocol is line-oriented:
//
//	S: +OK ldapdir/1 ready
//	C: BIND <user> <password>
//	S: +OK bound
//	C: SEARCH <base> <base|one|sub> <filter>
//	S: *ENTRY <dn>          (repeated per entry)
//	S: *ATTR <name> <value> (repeated per attribute value)
//	S: +OK <n> entries
//	C: ADD <dn> <attr=val|attr=val|...>
//	C: MODIFY <dn> <attr=val|attr=|...>   (empty value deletes the attribute)
//	C: DEL <dn>
//	C: QUIT
//
// Errors are reported as "-ERR <message>". Every session must BIND first;
// that round trip is the connection-setup cost the broker's persistent
// connections amortize.

// ErrNotBound is returned when operations precede BIND.
var ErrNotBound = errors.New("ldapdir: not bound")

// ErrBindFailed is returned for bad credentials.
var ErrBindFailed = errors.New("ldapdir: bind failed")

// ServerOption configures a Server.
type ServerOption interface {
	apply(*Server)
}

type serverOptionFunc func(*Server)

func (f serverOptionFunc) apply(s *Server) { f(s) }

// WithBindCredentials sets the accepted BIND user/password (default
// "cn=web"/"web").
func WithBindCredentials(user, pass string) ServerOption {
	return serverOptionFunc(func(s *Server) { s.user, s.pass = user, pass })
}

// WithBindDelay adds artificial cost to the BIND round trip.
func WithBindDelay(d time.Duration) ServerOption {
	return serverOptionFunc(func(s *Server) { s.bindDelay = d })
}

// Server exposes a Directory over the line protocol.
type Server struct {
	dir *Directory
	ln  net.Listener

	user, pass string
	bindDelay  time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer serves dir on addr.
func NewServer(dir *Directory, addr string, opts ...ServerOption) (*Server, error) {
	if dir == nil {
		return nil, errors.New("ldapdir: nil directory")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ldapdir: listen %s: %w", addr, err)
	}
	s := &Server{
		dir:   dir,
		ln:    ln,
		user:  "cn=web",
		pass:  "web",
		conns: make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o.apply(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server and waits for sessions to end.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.session(conn)
		}()
	}
}

func (s *Server) session(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	say := func(format string, args ...interface{}) bool {
		fmt.Fprintf(w, format+"\r\n", args...)
		return w.Flush() == nil
	}
	if !say("+OK ldapdir/1 ready") {
		return
	}
	bound := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		cmd, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(cmd) {
		case "BIND":
			if s.bindDelay > 0 {
				time.Sleep(s.bindDelay)
			}
			user, pass, _ := strings.Cut(rest, " ")
			if user != s.user || pass != s.pass {
				if !say("-ERR %s", ErrBindFailed) {
					return
				}
				continue
			}
			bound = true
			if !say("+OK bound") {
				return
			}
		case "QUIT":
			say("+OK bye")
			return
		case "SEARCH", "ADD", "MODIFY", "DEL":
			if !bound {
				if !say("-ERR %s", ErrNotBound) {
					return
				}
				continue
			}
			if !s.dispatch(say, strings.ToUpper(cmd), rest) {
				return
			}
		default:
			if !say("-ERR unknown command %q", cmd) {
				return
			}
		}
	}
}

// dispatch runs one bound command, reporting whether the session continues.
func (s *Server) dispatch(say func(string, ...interface{}) bool, cmd, rest string) bool {
	switch cmd {
	case "SEARCH":
		fields := strings.SplitN(rest, " ", 3)
		if len(fields) < 2 {
			return say("-ERR SEARCH <base> <scope> [filter]")
		}
		base, err := ParseDN(fields[0])
		if err != nil {
			return say("-ERR %s", err)
		}
		scope, err := ParseScope(fields[1])
		if err != nil {
			return say("-ERR %s", err)
		}
		var filter Filter
		if len(fields) == 3 && strings.TrimSpace(fields[2]) != "" {
			filter, err = ParseFilter(fields[2])
			if err != nil {
				return say("-ERR %s", err)
			}
		}
		entries, err := s.dir.Search(base, scope, filter)
		if err != nil {
			return say("-ERR %s", err)
		}
		for _, e := range entries {
			if !say("*ENTRY %s", e.DN) {
				return false
			}
			for name, vals := range e.Attrs {
				for _, v := range vals {
					if !say("*ATTR %s %s", name, v) {
						return false
					}
				}
			}
		}
		return say("+OK %d entries", len(entries))

	case "ADD":
		dnText, attrText, _ := strings.Cut(rest, " ")
		dn, err := ParseDN(dnText)
		if err != nil {
			return say("-ERR %s", err)
		}
		attrs, err := parseAttrList(attrText)
		if err != nil {
			return say("-ERR %s", err)
		}
		if err := s.dir.Add(dn, attrs); err != nil {
			return say("-ERR %s", err)
		}
		return say("+OK added")

	case "MODIFY":
		dnText, attrText, _ := strings.Cut(rest, " ")
		dn, err := ParseDN(dnText)
		if err != nil {
			return say("-ERR %s", err)
		}
		attrs, err := parseAttrList(attrText)
		if err != nil {
			return say("-ERR %s", err)
		}
		if err := s.dir.Modify(dn, attrs); err != nil {
			return say("-ERR %s", err)
		}
		return say("+OK modified")

	case "DEL":
		dn, err := ParseDN(rest)
		if err != nil {
			return say("-ERR %s", err)
		}
		if err := s.dir.Delete(dn); err != nil {
			return say("-ERR %s", err)
		}
		return say("+OK deleted")
	}
	return say("-ERR unhandled %s", cmd)
}

// parseAttrList parses "attr=val|attr=val|attr=" (” value = delete).
// Multiple values for one attribute accumulate.
func parseAttrList(s string) (map[string][]string, error) {
	attrs := make(map[string][]string)
	s = strings.TrimSpace(s)
	if s == "" {
		return attrs, nil
	}
	for _, pair := range strings.Split(s, "|") {
		attr, val, ok := strings.Cut(pair, "=")
		if !ok || attr == "" {
			return nil, fmt.Errorf("ldapdir: bad attribute %q", pair)
		}
		name := strings.ToLower(strings.TrimSpace(attr))
		if val == "" {
			// Explicit deletion marker: ensure the key exists with nil.
			if _, present := attrs[name]; !present {
				attrs[name] = nil
			}
			continue
		}
		attrs[name] = append(attrs[name], val)
	}
	return attrs, nil
}
