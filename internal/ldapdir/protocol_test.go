package ldapdir

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

func TestDirectoryLen(t *testing.T) {
	d := newTestDir(t)
	if d.Len() != 6 {
		t.Fatalf("Len = %d, want 6", d.Len())
	}
}

func TestBindDelay(t *testing.T) {
	const delay = 30 * time.Millisecond
	d := newTestDir(t)
	srv, err := NewServer(d, "127.0.0.1:0", WithBindDelay(delay))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Connect(srv.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	if err := cli.Bind("cn=web", "web"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("bind took %v, want ≥ %v", elapsed, delay)
	}
}

func TestCustomBindCredentials(t *testing.T) {
	d := newTestDir(t)
	srv, err := NewServer(d, "127.0.0.1:0", WithBindCredentials("cn=admin", "hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Connect(srv.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Bind("cn=web", "web"); err == nil {
		t.Fatal("default credentials accepted against custom server")
	}
	if err := cli.Bind("cn=admin", "hunter2"); err != nil {
		t.Fatal(err)
	}
}

// rawLine dials and returns line-level helpers for protocol edge cases.
func rawLine(t *testing.T, srv *Server) (say func(string), expect func(string)) {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	r := bufio.NewReader(conn)
	say = func(line string) {
		t.Helper()
		fmt.Fprintf(conn, "%s\r\n", line)
	}
	expect = func(prefix string) {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("got %q, want prefix %q", strings.TrimSpace(line), prefix)
		}
	}
	expect("+OK")
	return say, expect
}

func TestProtocolEdgeCases(t *testing.T) {
	d := newTestDir(t)
	srv, err := NewServer(d, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	say, expect := rawLine(t, srv)

	say("NOPE")
	expect("-ERR")
	say("BIND cn=web web")
	expect("+OK")

	// SEARCH validation branches.
	say("SEARCH onlybase")
	expect("-ERR")
	say("SEARCH ,,bad sub")
	expect("-ERR")
	say("SEARCH dc=example sideways")
	expect("-ERR")
	say("SEARCH dc=example sub (((")
	expect("-ERR")

	// ADD with a bad DN and bad attribute list.
	say("ADD notadn a=b")
	expect("-ERR")
	say("ADD cn=x,dc=example noequalsign")
	expect("-ERR")

	// MODIFY and DEL with bad DNs.
	say("MODIFY notadn a=b")
	expect("-ERR")
	say("DEL notadn")
	expect("-ERR")

	// The session still works after all errors.
	say("SEARCH dc=example base")
	expect("*ENTRY")
}

func TestParseAttrListDeletionMarker(t *testing.T) {
	attrs, err := parseAttrList("title=|mail=a@x.com")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := attrs["title"]; !ok || v != nil {
		t.Fatalf("title = %v, %v; want present-but-nil", v, ok)
	}
	if len(attrs["mail"]) != 1 {
		t.Fatalf("mail = %v", attrs["mail"])
	}
	if _, err := parseAttrList("=value"); err == nil {
		t.Fatal("empty attribute name accepted")
	}
}

func TestConnectFailures(t *testing.T) {
	if _, err := Connect("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Fatal("connect to closed port succeeded")
	}
	// A listener that sends a non-OK greeting.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			fmt.Fprintf(c, "-ERR go away\r\n")
			c.Close()
		}
	}()
	if _, err := Connect(ln.Addr().String(), time.Second); err == nil {
		t.Fatal("bad greeting accepted")
	}
}

func TestClientClosed(t *testing.T) {
	d := newTestDir(t)
	srv, err := NewServer(d, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Connect(srv.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if err := cli.Bind("cn=web", "web"); err == nil {
		t.Fatal("bind after close succeeded")
	}
	if _, err := cli.Search("dc=example", Scope(99), ""); err == nil {
		t.Fatal("invalid scope accepted")
	}
	cli.Close() // idempotent
}

func TestNewServerNilDirectory(t *testing.T) {
	if _, err := NewServer(nil, "127.0.0.1:0"); err == nil {
		t.Fatal("nil directory accepted")
	}
}
