package backend

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"servicebroker/internal/httpserver"
	"servicebroker/internal/ldapdir"
	"servicebroker/internal/mailsvc"
	"servicebroker/internal/sqldb"
)

func TestDelayConnectorBoundedTime(t *testing.T) {
	d := &DelayConnector{ServiceName: "cgi1", ProcessTime: 20 * time.Millisecond}
	s, err := d.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	start := time.Now()
	out, err := s.Do(context.Background(), []byte("req"))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("Do took %v, want ≥ 20ms", elapsed)
	}
	if string(out) != "done:req" {
		t.Fatalf("out = %q", out)
	}
	if d.Name() != "cgi1" {
		t.Fatalf("name = %q", d.Name())
	}
}

func TestDelayConnectorMaxConcurrent(t *testing.T) {
	d := &DelayConnector{ServiceName: "cgi", ProcessTime: 30 * time.Millisecond, MaxConcurrent: 1}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := d.Connect(context.Background())
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			defer s.Close()
			if _, err := s.Do(context.Background(), []byte("x")); err != nil {
				t.Errorf("do: %v", err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("3 requests on 1 slot took %v, want ≥ 90ms", elapsed)
	}
}

func TestDelayConnectorContextCancel(t *testing.T) {
	d := &DelayConnector{ServiceName: "cgi", ProcessTime: 10 * time.Second}
	s, err := d.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Do(ctx, []byte("x")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestDelayConnectorClosedSession(t *testing.T) {
	d := &DelayConnector{ServiceName: "cgi"}
	s, _ := d.Connect(context.Background())
	s.Close()
	if _, err := s.Do(context.Background(), nil); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("err = %v, want ErrServiceClosed", err)
	}
}

func TestFuncConnector(t *testing.T) {
	fc := &FuncConnector{
		ServiceName: "fn",
		DoFn: func(_ context.Context, payload []byte) ([]byte, error) {
			return append([]byte("fn:"), payload...), nil
		},
	}
	s, err := fc.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Do(context.Background(), []byte("p"))
	if err != nil || string(out) != "fn:p" {
		t.Fatalf("out = %q, %v", out, err)
	}
}

func TestFuncConnectorValidation(t *testing.T) {
	fc := &FuncConnector{ServiceName: "fn"}
	if _, err := fc.Connect(context.Background()); err == nil {
		t.Fatal("nil DoFn accepted")
	}
	failing := &FuncConnector{
		ServiceName: "fn",
		ConnectFn:   func(context.Context) error { return errors.New("down") },
		DoFn:        func(context.Context, []byte) ([]byte, error) { return nil, nil },
	}
	if _, err := failing.Connect(context.Background()); err == nil {
		t.Fatal("failing ConnectFn ignored")
	}
}

func TestPoolReusesSessions(t *testing.T) {
	d := &DelayConnector{ServiceName: "cgi"}
	p, err := NewPool(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 10; i++ {
		if _, err := p.Do(context.Background(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Dials(); got != 1 {
		t.Fatalf("dials = %d, want 1 (persistent reuse)", got)
	}
	if got := p.IdleCount(); got != 1 {
		t.Fatalf("idle = %d, want 1", got)
	}
}

func TestPoolConcurrentBorrowers(t *testing.T) {
	d := &DelayConnector{ServiceName: "cgi", ProcessTime: 5 * time.Millisecond}
	p, err := NewPool(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Do(context.Background(), []byte("y")); err != nil {
				t.Errorf("do: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := p.IdleCount(); got > 4 {
		t.Fatalf("idle = %d exceeds capacity 4", got)
	}
}

func TestPoolClosesBrokenSessions(t *testing.T) {
	calls := 0
	fc := &FuncConnector{
		ServiceName: "flaky",
		DoFn: func(context.Context, []byte) ([]byte, error) {
			calls++
			if calls == 1 {
				return nil, errors.New("broken pipe")
			}
			return []byte("ok"), nil
		},
	}
	p, err := NewPool(fc, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Do(context.Background(), nil); err == nil {
		t.Fatal("first do should fail")
	}
	if p.IdleCount() != 0 {
		t.Fatal("broken session returned to pool")
	}
	if out, err := p.Do(context.Background(), nil); err != nil || string(out) != "ok" {
		t.Fatalf("second do = %q, %v", out, err)
	}
	if p.Dials() != 2 {
		t.Fatalf("dials = %d, want 2", p.Dials())
	}
}

func TestPoolClosed(t *testing.T) {
	p, err := NewPool(&DelayConnector{ServiceName: "x"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Get(context.Background()); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("err = %v, want ErrServiceClosed", err)
	}
	p.Close() // idempotent
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, 1); err == nil {
		t.Fatal("nil connector accepted")
	}
	if _, err := NewPool(&DelayConnector{}, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestSQLConnectorEndToEnd(t *testing.T) {
	engine := sqldb.NewEngine()
	if err := sqldb.LoadRecords(engine, 500); err != nil {
		t.Fatal(err)
	}
	srv, err := sqldb.NewServer(engine, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &SQLConnector{Addr: srv.Addr().String()}
	if c.Name() != "db" {
		t.Fatalf("name = %q", c.Name())
	}
	s, err := c.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Do(context.Background(), []byte("SELECT COUNT(*) FROM records"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "500") {
		t.Fatalf("out = %q", out)
	}
}

func TestSQLSessionHonorsRepeatDirective(t *testing.T) {
	engine := sqldb.NewEngine()
	if _, err := engine.Exec("CREATE TABLE t (n INT)"); err != nil {
		t.Fatal(err)
	}
	srv, err := sqldb.NewServer(engine, "127.0.0.1:0", sqldb.WithQueryDelay(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &SQLConnector{Addr: srv.Addr().String()}
	s, err := c.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	start := time.Now()
	if _, err := s.Do(context.Background(), []byte(sqldb.RepeatQuery("SELECT COUNT(*) FROM t", 4))); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("repeated query took %v, want ≥ 40ms (4 × 10ms)", elapsed)
	}
}

func TestDirConnectorEndToEnd(t *testing.T) {
	dir := ldapdir.NewDirectory()
	root, _ := ldapdir.ParseDN("dc=example")
	if err := dir.Add(root, map[string][]string{"objectclass": {"domain"}}); err != nil {
		t.Fatal(err)
	}
	users, _ := ldapdir.ParseDN("ou=users,dc=example")
	if err := dir.Add(users, nil); err != nil {
		t.Fatal(err)
	}
	srv, err := ldapdir.NewServer(dir, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &DirConnector{Addr: srv.Addr().String()}
	s, err := c.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Do(context.Background(), []byte("ADD cn=alice,ou=users,dc=example objectclass=person|mail=a@x.com")); err != nil {
		t.Fatal(err)
	}
	out, err := s.Do(context.Background(), []byte("SEARCH dc=example sub (objectclass=person)"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "dn: cn=alice,ou=users,dc=example") || !strings.Contains(string(out), "mail: a@x.com") {
		t.Fatalf("out = %q", out)
	}
	if _, err := s.Do(context.Background(), []byte("MODIFY cn=alice,ou=users,dc=example title=eng")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(context.Background(), []byte("DEL cn=alice,ou=users,dc=example")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do(context.Background(), []byte("FROB x")); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestMailConnectorEndToEnd(t *testing.T) {
	srv, err := mailsvc.NewServer(mailsvc.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &MailConnector{Addr: srv.Addr().String()}
	s, err := c.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Do(context.Background(), []byte("SEND a@x.com b@x.com,c@x.com hello there")); err != nil {
		t.Fatal(err)
	}
	out, err := s.Do(context.Background(), []byte("LIST b@x.com"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "a@x.com") {
		t.Fatalf("LIST out = %q", out)
	}
	body, err := s.Do(context.Background(), []byte("RETR c@x.com 1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "hello there" {
		t.Fatalf("RETR out = %q", body)
	}
	if _, err := s.Do(context.Background(), []byte("RETR c@x.com NaN")); err == nil {
		t.Fatal("bad sequence accepted")
	}
}

func TestWebConnectorSingleAndMGet(t *testing.T) {
	web, err := httpserver.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer web.Close()
	web.Handle("/page/", func(req *httpserver.Request) *httpserver.Response {
		return httpserver.Text("content " + req.Path)
	})

	c := &WebConnector{Addr: web.Addr().String(), ServiceName: "yahoo"}
	if c.Name() != "yahoo" {
		t.Fatalf("name = %q", c.Name())
	}
	s, err := c.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	out, err := s.Do(context.Background(), []byte("/page/1.html"))
	if err != nil || string(out) != "content /page/1.html" {
		t.Fatalf("single = %q, %v", out, err)
	}
	out, err = s.Do(context.Background(), []byte("/page/1.html\n/page/2.html"))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := httpserver.DecodeMGetParts(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || string(parts[0].Body) != "content /page/1.html" ||
		string(parts[1].Body) != "content /page/2.html" {
		t.Fatalf("mget parts = %+v", parts)
	}
	if _, err := s.Do(context.Background(), []byte("  \n ")); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := s.Do(context.Background(), []byte("/missing")); err == nil {
		t.Fatal("404 not surfaced as error")
	}
}

func TestWebConnectorDefaultName(t *testing.T) {
	c := &WebConnector{Addr: "127.0.0.1:1"}
	if c.Name() != "web" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestSplitCommand(t *testing.T) {
	cmd, rest := SplitCommand([]byte("  search dc=example sub "))
	if cmd != "SEARCH" || rest != "dc=example sub" {
		t.Fatalf("SplitCommand = %q, %q", cmd, rest)
	}
	cmd, rest = SplitCommand([]byte("PING"))
	if cmd != "PING" || rest != "" {
		t.Fatalf("SplitCommand = %q, %q", cmd, rest)
	}
}

func TestSQLConnectorConnectError(t *testing.T) {
	c := &SQLConnector{Addr: "127.0.0.1:1", DialTimeout: 100 * time.Millisecond}
	if _, err := c.Connect(context.Background()); err == nil {
		t.Fatal("connect to closed port succeeded")
	}
}

func TestConnectorsRespectCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, c := range []Connector{
		&DirConnector{Addr: "127.0.0.1:1"},
		&MailConnector{Addr: "127.0.0.1:1"},
		&WebConnector{Addr: "127.0.0.1:1"},
	} {
		if _, err := c.Connect(ctx); err == nil {
			t.Errorf("%s: Connect with cancelled ctx succeeded", c.Name())
		}
	}
}

func TestPoolDoPropagatesConnectError(t *testing.T) {
	fc := &FuncConnector{
		ServiceName: "down",
		ConnectFn:   func(context.Context) error { return fmt.Errorf("refused") },
		DoFn:        func(context.Context, []byte) ([]byte, error) { return nil, nil },
	}
	p, err := NewPool(fc, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Do(context.Background(), nil); err == nil {
		t.Fatal("pool.Do succeeded with failing connector")
	}
	if p.Dials() != 0 {
		t.Fatalf("dials = %d, want 0 after failed connect", p.Dials())
	}
}

func TestConnectorNames(t *testing.T) {
	for _, tc := range []struct {
		c    Connector
		want string
	}{
		{&FuncConnector{ServiceName: "fn"}, "fn"},
		{&DirConnector{}, "dir"},
		{&MailConnector{}, "mail"},
	} {
		if got := tc.c.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestWebConnectorQueryPreserved(t *testing.T) {
	web, err := httpserver.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer web.Close()
	web.Handle("/echo", func(req *httpserver.Request) *httpserver.Response {
		return httpserver.Text("got " + req.Query["a"])
	})
	c := &WebConnector{Addr: web.Addr().String()}
	s, err := c.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Do(context.Background(), []byte("/echo?a=42"))
	if err != nil || string(out) != "got 42" {
		t.Fatalf("out = %q, %v", out, err)
	}
}
