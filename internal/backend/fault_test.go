package backend

import (
	"context"
	"errors"
	"testing"
	"time"
)

func echoConnector(name string) *FuncConnector {
	return &FuncConnector{
		ServiceName: name,
		DoFn: func(_ context.Context, payload []byte) ([]byte, error) {
			return append([]byte("done:"), payload...), nil
		},
	}
}

func TestFaultConnectorPassthrough(t *testing.T) {
	f := &FaultConnector{Inner: echoConnector("db")}
	if f.Name() != "db" {
		t.Fatalf("Name = %q", f.Name())
	}
	s, err := f.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Do(context.Background(), []byte("q"))
	if err != nil || string(out) != "done:q" {
		t.Fatalf("Do = %q, %v", out, err)
	}
	if calls, failures := f.Stats(); calls != 1 || failures != 0 {
		t.Fatalf("stats = %d calls, %d failures", calls, failures)
	}
}

func TestFaultConnectorSetDown(t *testing.T) {
	f := &FaultConnector{Inner: echoConnector("db")}
	s, err := f.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	f.SetDown(true)
	if _, err := s.Do(context.Background(), []byte("q")); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("Do on downed replica = %v, want ErrReplicaDown", err)
	}
	if _, err := f.Connect(context.Background()); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("Connect on downed replica = %v, want ErrReplicaDown", err)
	}
	if !f.Down() {
		t.Fatal("Down() = false")
	}

	f.SetDown(false)
	if out, err := s.Do(context.Background(), []byte("q")); err != nil || string(out) != "done:q" {
		t.Fatalf("Do after revival = %q, %v", out, err)
	}
}

func TestFaultConnectorFailFirstThenRecover(t *testing.T) {
	f := &FaultConnector{Inner: echoConnector("db"), FailFirst: 3}
	s, err := f.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		if _, err := s.Do(context.Background(), []byte("q")); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d = %v, want ErrInjected", i+1, err)
		}
	}
	if out, err := s.Do(context.Background(), []byte("q")); err != nil || string(out) != "done:q" {
		t.Fatalf("recovered call = %q, %v", out, err)
	}
	if calls, failures := f.Stats(); calls != 4 || failures != 3 {
		t.Fatalf("stats = %d calls, %d failures", calls, failures)
	}
}

func TestFaultConnectorDeterministicErrorStream(t *testing.T) {
	run := func() []bool {
		f := &FaultConnector{Inner: echoConnector("db"), ErrorRate: 0.5, Seed: 7}
		s, err := f.Connect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var outcomes []bool
		for i := 0; i < 64; i++ {
			_, err := s.Do(context.Background(), []byte("q"))
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}
	a, b := run(), run()
	var fails int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged between identically seeded runs", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("fails = %d of %d, want a mixed stream", fails, len(a))
	}
}

func TestFaultConnectorHangsUntilContextDone(t *testing.T) {
	f := &FaultConnector{Inner: echoConnector("db"), HangRate: 1}
	s, err := f.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.Do(ctx, []byte("q"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung Do = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("Do returned before the context expired")
	}
}

func TestFaultConnectorConnectFailures(t *testing.T) {
	f := &FaultConnector{Inner: echoConnector("db"), ConnectFailRate: 1}
	if _, err := f.Connect(context.Background()); !errors.Is(err, ErrInjected) {
		t.Fatalf("Connect = %v, want ErrInjected", err)
	}
}
