package backend

import (
	"context"
	"errors"
	"math/rand"
	"sync"
)

// Fault-injection sentinels. Both classify as retryable transport errors.
var (
	// ErrInjected is the failure produced by a FaultConnector's random
	// and fail-first fault modes.
	ErrInjected = errors.New("backend: injected fault")
	// ErrReplicaDown is the failure produced while a FaultConnector is
	// forced down with SetDown, modelling a killed replica.
	ErrReplicaDown = errors.New("backend: replica down")
)

// FaultConnector wraps another Connector with deterministic, seeded fault
// injection so tests and experiments can demonstrate the broker's recovery
// path. Faults are applied in a fixed precedence order per Do call:
//
//  1. forced down (SetDown) — fail with ErrReplicaDown
//  2. fail-first — the first FailFirst Do calls fail with ErrInjected,
//     then the replica recovers
//  3. hang — with probability HangRate, block until the context is done
//  4. error — with probability ErrorRate, fail with ErrInjected
//
// Connect independently fails with probability ConnectFailRate (after the
// forced-down check). The random streams are driven by a single seeded
// generator, so a given configuration and call sequence always produces the
// same faults. Configure the fields before first use; the mutating methods
// (SetDown) are safe at any time.
type FaultConnector struct {
	// Inner is the connector being wrapped.
	Inner Connector
	// Seed drives the fault streams deterministically; 0 selects a fixed
	// default so runs are reproducible by default.
	Seed int64
	// ConnectFailRate is the probability (0..1) that Connect fails.
	ConnectFailRate float64
	// ErrorRate is the probability (0..1) that a Do call fails.
	ErrorRate float64
	// HangRate is the probability (0..1) that a Do call blocks until the
	// caller's context is done, modelling a trapped request.
	HangRate float64
	// FailFirst fails the first FailFirst Do calls, then recovers.
	FailFirst int

	mu       sync.Mutex
	rng      *rand.Rand
	down     bool
	doCalls  int
	failures int
}

var _ Connector = (*FaultConnector)(nil)

// Name implements Connector, delegating to the wrapped connector.
func (f *FaultConnector) Name() string { return f.Inner.Name() }

// SetDown forces the replica dead (every Connect and Do fails with
// ErrReplicaDown) or revives it.
func (f *FaultConnector) SetDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

// Down reports whether the replica is currently forced down.
func (f *FaultConnector) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// Stats reports how many Do calls the connector has seen and how many of
// them were failed or hung by injection.
func (f *FaultConnector) Stats() (doCalls, failures int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.doCalls, f.failures
}

// rngLocked lazily seeds the fault stream. Caller holds f.mu.
func (f *FaultConnector) rngLocked() *rand.Rand {
	if f.rng == nil {
		seed := f.Seed
		if seed == 0 {
			seed = 42
		}
		f.rng = rand.New(rand.NewSource(seed))
	}
	return f.rng
}

// Connect implements Connector, applying the forced-down state and the
// connect-failure rate before dialing the wrapped connector.
func (f *FaultConnector) Connect(ctx context.Context) (Session, error) {
	f.mu.Lock()
	down := f.down
	connFail := f.ConnectFailRate > 0 && f.rngLocked().Float64() < f.ConnectFailRate
	f.mu.Unlock()
	if down {
		return nil, ErrReplicaDown
	}
	if connFail {
		return nil, ErrInjected
	}
	inner, err := f.Inner.Connect(ctx)
	if err != nil {
		return nil, err
	}
	return &faultSession{parent: f, inner: inner}, nil
}

type faultMode int

const (
	faultNone faultMode = iota
	faultDown
	faultError
	faultHang
)

type faultSession struct {
	parent *FaultConnector
	inner  Session
}

func (s *faultSession) Do(ctx context.Context, payload []byte) ([]byte, error) {
	f := s.parent
	f.mu.Lock()
	f.doCalls++
	mode := faultNone
	switch {
	case f.down:
		mode = faultDown
	case f.doCalls <= f.FailFirst:
		mode = faultError
	case f.HangRate > 0 && f.rngLocked().Float64() < f.HangRate:
		mode = faultHang
	case f.ErrorRate > 0 && f.rngLocked().Float64() < f.ErrorRate:
		mode = faultError
	}
	if mode != faultNone {
		f.failures++
	}
	f.mu.Unlock()

	switch mode {
	case faultDown:
		return nil, ErrReplicaDown
	case faultError:
		return nil, ErrInjected
	case faultHang:
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return s.inner.Do(ctx, payload)
}

func (s *faultSession) Close() error { return s.inner.Close() }
