package backend

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// EffectConnector is an in-memory supply-chain backend whose operations are
// *effects*: every mutating command is counted, so tests and experiments can
// assert exactly-once execution under retries, duplicate delivery, and
// failover (the ground truth the broker's idempotency table is judged
// against). It models the paper's §III three-step purchase — hold the item,
// hold the payment, commit the purchase — with explicit compensations.
//
// Payload syntax (one command per request):
//
//	HOLD <sku> <n>      place a hold of n units        (mutation)
//	RELEASE <sku> <n>   release a hold (compensation)  (mutation)
//	PURCHASE <sku> <n>  convert a hold into a purchase (mutation)
//	GET <sku>           read a SKU's state             (read-only)
//
// RELEASE of more units than are held and PURCHASE of more units than are
// held are errors — which is exactly how a double-executed compensation or
// commit betrays itself in a chaos run.
type EffectConnector struct {
	// ServiceName is returned by Name; empty defaults to "supply".
	ServiceName string

	mu        sync.Mutex
	holds     map[string]int
	purchased map[string]int
	mutations int64
}

var _ Connector = (*EffectConnector)(nil)

// Name implements Connector.
func (c *EffectConnector) Name() string {
	if c.ServiceName == "" {
		return "supply"
	}
	return c.ServiceName
}

// Connect implements Connector. Sessions share the connector's state — the
// backend is the store, not the session.
func (c *EffectConnector) Connect(context.Context) (Session, error) {
	return &effectSession{c: c}, nil
}

// Mutations returns how many mutating commands actually executed — the
// number an exactly-once system keeps equal to the logically issued count.
func (c *EffectConnector) Mutations() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mutations
}

// Holds returns the units currently held for sku. After every transaction
// has committed or compensated, a correct run leaves zero holds.
func (c *EffectConnector) Holds(sku string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.holds[sku]
}

// TotalHolds sums outstanding holds across all SKUs.
func (c *EffectConnector) TotalHolds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, h := range c.holds {
		n += h
	}
	return n
}

// Purchased returns the units purchased for sku.
func (c *EffectConnector) Purchased(sku string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.purchased[sku]
}

type effectSession struct{ c *EffectConnector }

func (s *effectSession) Do(_ context.Context, payload []byte) ([]byte, error) {
	fields := strings.Fields(string(payload))
	if len(fields) == 0 {
		return nil, fmt.Errorf("supply: empty command")
	}
	cmd := strings.ToUpper(fields[0])
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.holds == nil {
		c.holds = make(map[string]int)
		c.purchased = make(map[string]int)
	}
	switch cmd {
	case "GET":
		if len(fields) != 2 {
			return nil, fmt.Errorf("supply: usage: GET <sku>")
		}
		sku := fields[1]
		return []byte(fmt.Sprintf("sku=%s holds=%d purchased=%d", sku, c.holds[sku], c.purchased[sku])), nil
	case "HOLD", "RELEASE", "PURCHASE":
		if len(fields) != 3 {
			return nil, fmt.Errorf("supply: usage: %s <sku> <n>", cmd)
		}
		sku := fields[1]
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("supply: bad quantity %q", fields[2])
		}
		switch cmd {
		case "HOLD":
			c.holds[sku] += n
		case "RELEASE":
			if c.holds[sku] < n {
				return nil, fmt.Errorf("supply: release of %d exceeds %d held for %s (duplicate compensation?)", n, c.holds[sku], sku)
			}
			c.holds[sku] -= n
		case "PURCHASE":
			if c.holds[sku] < n {
				return nil, fmt.Errorf("supply: purchase of %d exceeds %d held for %s", n, c.holds[sku], sku)
			}
			c.holds[sku] -= n
			c.purchased[sku] += n
		}
		c.mutations++
		return []byte(fmt.Sprintf("%s ok: sku=%s n=%d holds=%d purchased=%d mutation=%d",
			strings.ToLower(cmd), sku, n, c.holds[sku], c.purchased[sku], c.mutations)), nil
	default:
		return nil, fmt.Errorf("supply: unknown command %q", cmd)
	}
}

func (s *effectSession) Close() error { return nil }
