package backend

import (
	"context"
	"strings"
	"testing"
)

func TestEffectConnectorLifecycle(t *testing.T) {
	c := &EffectConnector{}
	s, err := c.Connect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	do := func(cmd string) (string, error) {
		out, err := s.Do(context.Background(), []byte(cmd))
		return string(out), err
	}

	if _, err := do("HOLD sku-1 2"); err != nil {
		t.Fatal(err)
	}
	if c.Holds("sku-1") != 2 || c.Mutations() != 1 {
		t.Fatalf("after hold: holds=%d mutations=%d", c.Holds("sku-1"), c.Mutations())
	}
	if _, err := do("PURCHASE sku-1 2"); err != nil {
		t.Fatal(err)
	}
	if c.Holds("sku-1") != 0 || c.Purchased("sku-1") != 2 || c.Mutations() != 2 {
		t.Fatalf("after purchase: holds=%d purchased=%d mutations=%d",
			c.Holds("sku-1"), c.Purchased("sku-1"), c.Mutations())
	}

	// Reads are not mutations.
	out, err := do("GET sku-1")
	if err != nil || !strings.Contains(out, "purchased=2") {
		t.Fatalf("get: %q err=%v", out, err)
	}
	if c.Mutations() != 2 {
		t.Fatal("GET counted as a mutation")
	}

	// A compensation pairs with its hold...
	do("HOLD sku-2 1")
	if _, err := do("RELEASE sku-2 1"); err != nil {
		t.Fatal(err)
	}
	if c.TotalHolds() != 0 {
		t.Fatalf("orphaned holds: %d", c.TotalHolds())
	}
	// ...and a duplicate compensation is an error, not a silent negative.
	if _, err := do("RELEASE sku-2 1"); err == nil {
		t.Fatal("duplicate release accepted")
	}
	// A purchase without a hold is an error too.
	if _, err := do("PURCHASE sku-3 1"); err == nil {
		t.Fatal("purchase without hold accepted")
	}
}
