// Package backend defines the uniform access abstraction the service-broker
// framework uses for heterogeneous backend servers (database, directory,
// mail, remote web servers, bounded-time CGI).
//
// The key split mirrors the paper's cost model:
//
//   - Connector.Connect is the expensive part — connection establishment,
//     handshake, authentication. The API-based access model (package
//     apimodel) pays it on every request; service brokers pay it once and
//     keep sessions persistent.
//   - Session.Do is one query/response exchange on an established session.
//
// Payloads are opaque bytes whose syntax each service defines (SQL text for
// the database, command lines for directory/mail, URIs for web backends).
package backend

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Session is an established, possibly stateful channel to one backend
// server. Sessions are not safe for concurrent Do calls unless documented
// otherwise; the broker serializes or pools them.
type Session interface {
	// Do performs one request/response exchange.
	Do(ctx context.Context, payload []byte) ([]byte, error)
	// Close releases the session.
	Close() error
}

// Connector creates sessions to one backend service.
type Connector interface {
	// Name identifies the service ("db", "dir", "mail", "web", ...).
	Name() string
	// Connect establishes a new session, paying the full setup cost.
	Connect(ctx context.Context) (Session, error)
}

// ErrServiceClosed is returned by operations on closed sessions/pools.
var ErrServiceClosed = errors.New("backend: closed")

// DelayConnector is an in-process backend whose requests take a fixed
// processing time — the paper's "CGI requests with bounded processing time"
// — with an optional cap on simultaneous requests (the backend Apache's
// MaxClients of 5). Connection setup may also carry a cost.
type DelayConnector struct {
	// ServiceName is returned by Name.
	ServiceName string
	// ProcessTime is the bounded per-request processing time.
	ProcessTime time.Duration
	// ConnectTime is the connection-establishment cost.
	ConnectTime time.Duration
	// MaxConcurrent caps simultaneously processing requests; 0 = unlimited.
	MaxConcurrent int

	initOnce sync.Once
	slots    chan struct{}
	calls    atomic.Int64
}

// Calls reports how many Do exchanges reached this backend — the trip count
// experiments compare against issued requests to show coalescing savings.
func (d *DelayConnector) Calls() int64 { return d.calls.Load() }

var _ Connector = (*DelayConnector)(nil)

// Name implements Connector.
func (d *DelayConnector) Name() string { return d.ServiceName }

// Connect implements Connector.
func (d *DelayConnector) Connect(ctx context.Context) (Session, error) {
	d.initOnce.Do(func() {
		if d.MaxConcurrent > 0 {
			d.slots = make(chan struct{}, d.MaxConcurrent)
		}
	})
	if d.ConnectTime > 0 {
		select {
		case <-time.After(d.ConnectTime):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &delaySession{parent: d}, nil
}

type delaySession struct {
	parent *DelayConnector
	closed bool
	mu     sync.Mutex
}

// Do waits for a processing slot, holds it for ProcessTime, and echoes the
// payload with a "done:" prefix so tests can verify routing.
func (s *delaySession) Do(ctx context.Context, payload []byte) ([]byte, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrServiceClosed
	}
	p := s.parent
	p.calls.Add(1)
	if p.slots != nil {
		select {
		case p.slots <- struct{}{}:
			defer func() { <-p.slots }()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if p.ProcessTime > 0 {
		select {
		case <-time.After(p.ProcessTime):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([]byte, 0, len(payload)+5)
	out = append(out, "done:"...)
	return append(out, payload...), nil
}

func (s *delaySession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// FuncConnector adapts plain functions to the Connector interface — the
// simplest way to register custom services with a broker.
type FuncConnector struct {
	// ServiceName is returned by Name.
	ServiceName string
	// ConnectFn optionally models setup cost or per-session state; it may
	// be nil.
	ConnectFn func(ctx context.Context) error
	// DoFn handles one exchange.
	DoFn func(ctx context.Context, payload []byte) ([]byte, error)
}

var _ Connector = (*FuncConnector)(nil)

// Name implements Connector.
func (f *FuncConnector) Name() string { return f.ServiceName }

// Connect implements Connector.
func (f *FuncConnector) Connect(ctx context.Context) (Session, error) {
	if f.DoFn == nil {
		return nil, errors.New("backend: FuncConnector with nil DoFn")
	}
	if f.ConnectFn != nil {
		if err := f.ConnectFn(ctx); err != nil {
			return nil, err
		}
	}
	return &funcSession{do: f.DoFn}, nil
}

type funcSession struct {
	do func(ctx context.Context, payload []byte) ([]byte, error)
}

func (s *funcSession) Do(ctx context.Context, payload []byte) ([]byte, error) {
	return s.do(ctx, payload)
}

func (s *funcSession) Close() error { return nil }

// Pool keeps a bounded set of persistent sessions to one connector, the
// mechanism brokers use to amortize connection setup ("DB brokers maintain
// persistent connection thus saving the cost of connection setup").
//
// Get borrows a session (dialing a new one only when the pool is empty);
// Put returns it. Broken sessions should be discarded with session.Close
// instead of Put.
type Pool struct {
	connector Connector
	capacity  int

	mu     sync.Mutex
	idle   []Session
	closed bool

	// dials counts how many real connections were established (observable
	// cost of the access model).
	dials int
}

// NewPool creates a pool keeping at most capacity idle sessions.
func NewPool(connector Connector, capacity int) (*Pool, error) {
	if connector == nil {
		return nil, errors.New("backend: nil connector")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("backend: pool capacity must be positive, got %d", capacity)
	}
	return &Pool{connector: connector, capacity: capacity}, nil
}

// Get borrows an idle session or establishes a new one.
func (p *Pool) Get(ctx context.Context) (Session, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrServiceClosed
	}
	if n := len(p.idle); n > 0 {
		s := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return s, nil
	}
	p.dials++
	p.mu.Unlock()
	s, err := p.connector.Connect(ctx)
	if err != nil {
		p.mu.Lock()
		p.dials-- // the dial did not produce a session
		p.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// Put returns a healthy session to the pool (closing it if the pool is full
// or closed).
func (p *Pool) Put(s Session) {
	if s == nil {
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.capacity {
		p.mu.Unlock()
		s.Close()
		return
	}
	p.idle = append(p.idle, s)
	p.mu.Unlock()
}

// Do borrows a session, performs one exchange, and returns the session on
// success. On error the session is closed (it may be broken).
func (p *Pool) Do(ctx context.Context, payload []byte) ([]byte, error) {
	s, err := p.Get(ctx)
	if err != nil {
		return nil, err
	}
	out, err := s.Do(ctx, payload)
	if err != nil {
		s.Close()
		return nil, err
	}
	p.Put(s)
	return out, nil
}

// Dials reports how many sessions the pool has established.
func (p *Pool) Dials() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dials
}

// IdleCount reports the pooled session count.
func (p *Pool) IdleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Close closes all idle sessions and marks the pool closed.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	var firstErr error
	for _, s := range idle {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SplitCommand splits a textual service payload into the command word and
// the remainder, a convention shared by the dir and mail payload syntaxes.
func SplitCommand(payload []byte) (cmd, rest string) {
	text := strings.TrimSpace(string(payload))
	cmd, rest, _ = strings.Cut(text, " ")
	return strings.ToUpper(cmd), strings.TrimSpace(rest)
}
