package backend

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"servicebroker/internal/httpserver"
	"servicebroker/internal/ldapdir"
	"servicebroker/internal/mailsvc"
	"servicebroker/internal/resilience"
	"servicebroker/internal/sqldb"
)

// SQLConnector reaches a sqldb server. Payloads are SQL text, optionally
// wrapped by sqldb.RepeatQuery — the clustering experiment's "repeat the
// same workload multiple times" directive is honored here, in the backend
// access script's role.
type SQLConnector struct {
	// Addr is the sqldb server address.
	Addr string
	// User and Pass authenticate the handshake; empty means the defaults.
	User, Pass string
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
}

var _ Connector = (*SQLConnector)(nil)

// Name implements Connector.
func (c *SQLConnector) Name() string { return "db" }

// Connect implements Connector: it pays the full TCP + handshake cost.
func (c *SQLConnector) Connect(ctx context.Context) (Session, error) {
	opts := []sqldb.ConnectOption{}
	if c.User != "" {
		opts = append(opts, sqldb.WithAuth(c.User, c.Pass))
	}
	if c.DialTimeout > 0 {
		opts = append(opts, sqldb.WithDialTimeout(c.DialTimeout))
	}
	type result struct {
		conn *sqldb.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := sqldb.Connect(c.Addr, opts...)
		ch <- result{conn, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		return &sqlSession{conn: r.conn}, nil
	case <-ctx.Done():
		go func() {
			if r := <-ch; r.conn != nil {
				r.conn.Close()
			}
		}()
		return nil, ctx.Err()
	}
}

type sqlSession struct {
	conn *sqldb.Conn
}

// Do executes SQL, honoring the /*repeat=N*/ clustering directive: the query
// runs N times (modelling N clustered application requests worth of work)
// and the final result is returned in textual form.
func (s *sqlSession) Do(ctx context.Context, payload []byte) ([]byte, error) {
	sql, times := sqldb.ParseRepeat(string(payload))
	var (
		rs  *sqldb.ResultSet
		err error
	)
	for i := 0; i < times; i++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		rs, err = s.conn.Query(sql)
		if err != nil {
			return nil, err
		}
	}
	return []byte(rs.String()), nil
}

func (s *sqlSession) Close() error { return s.conn.Close() }

// DirConnector reaches an ldapdir server. Payload syntax:
//
//	SEARCH <base> <base|one|sub> [filter]
//	ADD <dn> <attr=val|...>
//	MODIFY <dn> <attr=val|...>
//	DEL <dn>
type DirConnector struct {
	Addr        string
	User, Pass  string
	DialTimeout time.Duration
}

var _ Connector = (*DirConnector)(nil)

// Name implements Connector.
func (c *DirConnector) Name() string { return "dir" }

// Connect implements Connector: TCP setup plus the BIND round trip.
func (c *DirConnector) Connect(ctx context.Context) (Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cli, err := ldapdir.Connect(c.Addr, c.DialTimeout)
	if err != nil {
		return nil, err
	}
	user, pass := c.User, c.Pass
	if user == "" {
		user, pass = "cn=web", "web"
	}
	if err := cli.Bind(user, pass); err != nil {
		cli.Close()
		return nil, err
	}
	return &dirSession{cli: cli}, nil
}

type dirSession struct {
	cli *ldapdir.Client
}

func (s *dirSession) Do(ctx context.Context, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cmd, rest := SplitCommand(payload)
	switch cmd {
	case "SEARCH":
		fields := strings.SplitN(rest, " ", 3)
		if len(fields) < 2 {
			return nil, resilience.Permanent(fmt.Errorf("backend: SEARCH needs base and scope"))
		}
		scope, err := ldapdir.ParseScope(fields[1])
		if err != nil {
			return nil, err
		}
		filter := ""
		if len(fields) == 3 {
			filter = fields[2]
		}
		entries, err := s.cli.Search(fields[0], scope, filter)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, e := range entries {
			fmt.Fprintf(&b, "dn: %s\n", e.DN)
			for name, vals := range e.Attrs {
				for _, v := range vals {
					fmt.Fprintf(&b, "%s: %s\n", name, v)
				}
			}
			b.WriteByte('\n')
		}
		return []byte(b.String()), nil
	case "ADD", "MODIFY":
		dn, attrText, _ := strings.Cut(rest, " ")
		attrs := map[string][]string{}
		if strings.TrimSpace(attrText) != "" {
			for _, pair := range strings.Split(attrText, "|") {
				name, val, ok := strings.Cut(pair, "=")
				if !ok {
					return nil, resilience.Permanent(fmt.Errorf("backend: bad attribute %q", pair))
				}
				if val == "" {
					attrs[name] = nil
					continue
				}
				attrs[name] = append(attrs[name], val)
			}
		}
		var err error
		if cmd == "ADD" {
			err = s.cli.Add(dn, attrs)
		} else {
			err = s.cli.Modify(dn, attrs)
		}
		if err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	case "DEL":
		if err := s.cli.Delete(rest); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	default:
		return nil, resilience.Permanent(fmt.Errorf("backend: unknown dir command %q", cmd))
	}
}

func (s *dirSession) Close() error { return s.cli.Close() }

// MailConnector reaches a mailsvc server. Payload syntax:
//
//	SEND <from> <to[,to...]> <body...>
//	LIST <user>
//	RETR <user> <seq>
type MailConnector struct {
	Addr        string
	DialTimeout time.Duration
}

var _ Connector = (*MailConnector)(nil)

// Name implements Connector.
func (c *MailConnector) Name() string { return "mail" }

// Connect implements Connector: TCP setup plus the HELO round trip.
func (c *MailConnector) Connect(ctx context.Context) (Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cli, err := mailsvc.Connect(c.Addr, c.DialTimeout)
	if err != nil {
		return nil, err
	}
	return &mailSession{cli: cli}, nil
}

type mailSession struct {
	cli *mailsvc.Client
}

func (s *mailSession) Do(ctx context.Context, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cmd, rest := SplitCommand(payload)
	switch cmd {
	case "SEND":
		from, rest, _ := strings.Cut(rest, " ")
		toList, body, _ := strings.Cut(rest, " ")
		if from == "" || toList == "" {
			return nil, resilience.Permanent(fmt.Errorf("backend: SEND <from> <to,...> <body>"))
		}
		if err := s.cli.Send(from, strings.Split(toList, ","), body); err != nil {
			return nil, err
		}
		return []byte("sent"), nil
	case "LIST":
		sums, err := s.cli.List(rest)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, m := range sums {
			fmt.Fprintf(&b, "%d %s %d\n", m.Seq, m.From, m.Size)
		}
		return []byte(b.String()), nil
	case "RETR":
		user, seqText, _ := strings.Cut(rest, " ")
		seq, err := strconv.Atoi(strings.TrimSpace(seqText))
		if err != nil {
			return nil, resilience.Permanent(fmt.Errorf("backend: RETR needs a sequence number: %w", err))
		}
		body, err := s.cli.Retr(user, seq)
		if err != nil {
			return nil, err
		}
		return []byte(body), nil
	default:
		return nil, resilience.Permanent(fmt.Errorf("backend: unknown mail command %q", cmd))
	}
}

func (s *mailSession) Close() error { return s.cli.Close() }

// WebConnector reaches a (possibly loosely coupled) web backend over HTTP.
// Payloads are one URI per line; multi-line payloads are fetched with a
// single MGET (paper §III: "two separate accesses ... can be combined using
// MGET"). A single-URI request returns the raw body; a multi-URI request
// returns the multipart MGET encoding (httpserver.EncodeMGetParts) so the
// broker's clustering engine can split it losslessly.
type WebConnector struct {
	Addr string
	// ServiceName overrides the default name "web" (syndicates register one
	// connector per provider).
	ServiceName string
	Timeout     time.Duration
	// Dial substitutes the dialer (e.g. a netsim WAN profile).
	Dial func(network, address string) (net.Conn, error)
}

var _ Connector = (*WebConnector)(nil)

// Name implements Connector.
func (c *WebConnector) Name() string {
	if c.ServiceName != "" {
		return c.ServiceName
	}
	return "web"
}

// Connect implements Connector. The session holds one persistent HTTP
// connection (pool size 1).
func (c *WebConnector) Connect(ctx context.Context) (Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts := []httpserver.ClientOption{httpserver.WithPersistent(1)}
	if c.Timeout > 0 {
		opts = append(opts, httpserver.WithTimeout(c.Timeout))
	}
	if c.Dial != nil {
		opts = append(opts, httpserver.WithDial(c.Dial))
	}
	return &webSession{cli: httpserver.NewClient(c.Addr, opts...)}, nil
}

type webSession struct {
	cli *httpserver.Client
}

func (s *webSession) Do(ctx context.Context, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	uris := splitLines(string(payload))
	if len(uris) == 0 {
		return nil, resilience.Permanent(fmt.Errorf("backend: empty web payload"))
	}
	if len(uris) == 1 {
		path, rawQuery, _ := strings.Cut(uris[0], "?")
		resp, err := s.cli.Get(path+querySuffix(rawQuery), nil)
		if err != nil {
			return nil, err
		}
		if resp.Status != 200 {
			err := fmt.Errorf("backend: web status %d: %s", resp.Status, resp.Body)
			if resp.Status < 500 {
				// Client errors are the payload's fault; retrying the
				// identical request cannot succeed.
				err = resilience.Permanent(err)
			}
			return nil, err
		}
		return resp.Body, nil
	}
	parts, err := s.cli.MGet(uris)
	if err != nil {
		return nil, err
	}
	responses := make([]*httpserver.Response, len(parts))
	for i, p := range parts {
		responses[i] = httpserver.NewResponse(p.Status, p.Body)
	}
	return httpserver.EncodeMGetParts(uris, responses), nil
}

func querySuffix(rawQuery string) string {
	if rawQuery == "" {
		return ""
	}
	return "?" + rawQuery
}

func (s *webSession) Close() error { return s.cli.Close() }

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		l = strings.TrimSpace(l)
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}
