package cluster

import (
	"testing"

	"servicebroker/internal/testutil"
)

// TestMain fails the package if any test leaks a goroutine — every Batcher
// started by a test must be Closed, and Close promises the dispatcher and
// all in-flight executions have finished.
func TestMain(m *testing.M) { testutil.VerifyMain(m) }
