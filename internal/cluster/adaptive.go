package cluster

import (
	"fmt"
	"sync"
	"time"
)

// AdaptiveConfig parameterizes the self-tuning degree-of-clustering
// controller enabled by WithAdaptiveDegree. The paper's Figure 7 shows
// response time vs degree of clustering is U-shaped with a minimum that
// depends on backend capacity; the controller hill-climbs toward that
// minimum online instead of requiring the operator to pick the degree by
// hand.
type AdaptiveConfig struct {
	// MinDegree is the lower clamp of the walk (default 1).
	MinDegree int
	// MaxDegree is the upper clamp of the walk (required, ≥ MinDegree).
	MaxDegree int
	// Step is how far the degree moves per epoch decision (default 1).
	Step int
	// EpochBatches is how many successful backend accesses are averaged
	// before the controller makes one move (default 16). Larger epochs
	// smooth noise at the cost of slower tracking.
	EpochBatches int
	// Hysteresis is the relative dead band around the previous epoch's mean
	// per-request latency (default 0.05). A new mean within ±Hysteresis of
	// the old one is treated as "no signal" and the degree holds, which
	// damps oscillation on measurement noise.
	Hysteresis float64
}

// withDefaults fills zero fields and validates the result.
func (c AdaptiveConfig) withDefaults() (AdaptiveConfig, error) {
	if c.MinDegree == 0 {
		c.MinDegree = 1
	}
	if c.Step == 0 {
		c.Step = 1
	}
	if c.EpochBatches == 0 {
		c.EpochBatches = 16
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 0.05
	}
	switch {
	case c.MinDegree < 1:
		return c, fmt.Errorf("cluster: adaptive MinDegree must be ≥ 1, got %d", c.MinDegree)
	case c.MaxDegree < c.MinDegree:
		return c, fmt.Errorf("cluster: adaptive MaxDegree must be ≥ MinDegree (%d), got %d",
			c.MinDegree, c.MaxDegree)
	case c.Step < 1:
		return c, fmt.Errorf("cluster: adaptive Step must be ≥ 1, got %d", c.Step)
	case c.EpochBatches < 1:
		return c, fmt.Errorf("cluster: adaptive EpochBatches must be ≥ 1, got %d", c.EpochBatches)
	case c.Hysteresis < 0 || c.Hysteresis >= 1:
		return c, fmt.Errorf("cluster: adaptive Hysteresis must be in [0, 1), got %g", c.Hysteresis)
	}
	return c, nil
}

// adaptiveController is the hill climber. It accumulates per-request
// completion latency (summed request sojourn ÷ batch size, covering gather
// wait, backend queueing, and service — the response time Figure 7 plots)
// over an epoch of EpochBatches samples, then compares the epoch mean
// against the previous epoch's:
//
//   - clearly worse (beyond the hysteresis band): the last move climbed the
//     far side of the U, so reverse direction and step back;
//   - clearly better: the walk is descending the curve, keep stepping the
//     same way;
//   - within the band: hold position — on a flat stretch or at the minimum
//     moving would just inject noise.
//
// A hold must not become capture: if the backend's capacity changes while
// the walk is parked (or noise strands it on a bad degree — the worst case
// is pinned at a range clamp, where "worse → reverse" is a no-op and every
// later epoch compares the position against itself), the controller would
// otherwise never notice. After probeAfterHolds consecutive in-band epochs
// it therefore takes a remembered probing step: if the probed degree is
// clearly better the walk resumes from it, otherwise the controller returns
// to the held degree and aims the next probe at the other side. At the
// minimum the probes alternate cheaply across the flat bottom; off the
// minimum they re-engage the climb.
//
// The degree clamps to [MinDegree, MaxDegree]; hitting a clamp reverses
// the direction so the next useful move points back into range. Because
// the U-curve is unimodal, a reversed overshoot always lands the walk on
// the descending side again, so the controller converges to a ±Step orbit
// around the minimum.
type adaptiveController struct {
	cfg AdaptiveConfig

	mu  sync.Mutex
	cur int // current degree
	dir int // +1 or -1, direction of the next move

	epochSum   time.Duration // Σ per-request latency this epoch
	epochCount int           // samples this epoch
	prevMean   time.Duration // previous epoch's mean (0 = no epoch yet)
	// discard counts batches to drop after a move: batches already gathered
	// or in flight when the degree changed were shaped by the old degree,
	// and judging the new position on them makes the walk chase its own
	// transients.
	discard int

	held     int           // consecutive in-band epochs at the current degree
	probing  bool          // a remembered probe is outstanding
	probeCur int           // degree to return to if the probe is rejected
	probeRef time.Duration // that degree's mean, the probe's baseline
}

// probeAfterHolds is how many consecutive in-band epochs the controller
// tolerates before taking a probing step to re-test its position.
const probeAfterHolds = 3

// init validates cfg, applies defaults, and clamps the starting degree.
func (a *adaptiveController) init(degree int) error {
	cfg, err := a.cfg.withDefaults()
	if err != nil {
		return err
	}
	a.cfg = cfg
	a.cur = degree
	if a.cur < cfg.MinDegree {
		a.cur = cfg.MinDegree
	}
	if a.cur > cfg.MaxDegree {
		a.cur = cfg.MaxDegree
	}
	a.dir = 1
	if a.cur == cfg.MaxDegree {
		a.dir = -1
	}
	return nil
}

// observe feeds one successful batch into the current epoch and, at epoch
// boundaries, makes a hill-climbing move. It returns the (possibly new)
// degree and whether it changed.
func (a *adaptiveController) observe(sojournSum time.Duration, size int) (degree int, changed bool) {
	if size < 1 {
		size = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	if a.discard > 0 {
		a.discard--
		return a.cur, false
	}
	a.epochSum += sojournSum / time.Duration(size)
	a.epochCount++
	if a.epochCount < a.cfg.EpochBatches {
		return a.cur, false
	}
	mean := a.epochSum / time.Duration(a.epochCount)
	a.epochSum, a.epochCount = 0, 0

	prev := a.prevMean
	a.prevMean = mean
	if prev == 0 {
		// First completed epoch: no baseline to compare against yet. Take
		// the initial step so the next epoch produces a comparison.
		return a.move(), true
	}

	band := time.Duration(float64(prev) * a.cfg.Hysteresis)
	if a.probing {
		a.probing = false
		if mean < a.probeRef-time.Duration(float64(a.probeRef)*a.cfg.Hysteresis) {
			// The probe found a clearly better degree: resume the walk
			// from here in the direction that was probed.
			return a.move(), true
		}
		// No improvement: return to the held degree and aim the next probe
		// at its other side.
		a.cur = a.probeCur
		a.prevMean = a.probeRef
		a.dir = -a.dir
		a.discard = a.cfg.EpochBatches
		return a.cur, true
	}

	switch {
	case mean > prev+band:
		// Worse beyond the noise band: the last move climbed the far side
		// of the U. Turn around.
		a.held = 0
		a.dir = -a.dir
		return a.move(), true
	case mean < prev-band:
		// Clearly better: keep descending.
		a.held = 0
		return a.move(), true
	default:
		// Indistinguishable from the last epoch: hold — but not forever.
		a.held++
		if a.held < probeAfterHolds {
			return a.cur, false
		}
		a.held = 0
		a.probing = true
		a.probeCur = a.cur
		a.probeRef = mean
		return a.move(), true
	}
}

// move steps the degree in the current direction, clamping to the
// configured range and reversing direction at the bounds, then schedules a
// settling epoch: the next EpochBatches samples are discarded so the first
// judged epoch is produced entirely at the new degree. Callers hold mu.
func (a *adaptiveController) move() int {
	a.cur += a.dir * a.cfg.Step
	if a.cur <= a.cfg.MinDegree {
		a.cur = a.cfg.MinDegree
		a.dir = 1
	} else if a.cur >= a.cfg.MaxDegree {
		a.cur = a.cfg.MaxDegree
		a.dir = -1
	}
	a.discard = a.cfg.EpochBatches
	return a.cur
}
