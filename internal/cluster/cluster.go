// Package cluster implements the service broker's request clustering engine
// (paper §III "Accesses can be clustered and optimized" and the §V-A
// experiment). A Batcher gathers queued requests for one service, groups
// compatible ones up to a configurable degree of clustering, combines each
// group into a single backend access, and splits the combined response back
// to the individual issuers.
//
// Two combining strategies from the paper are provided:
//
//   - RepeatCombiner clusters identical database queries: the broker
//     "rewrite[s] the query command to notify the script to repeat the same
//     workload multiple times", and every issuer shares the one result.
//   - MGetCombiner clusters distinct web URIs into one MGET request and
//     splits the multipart response.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"servicebroker/internal/httpserver"
	"servicebroker/internal/metrics"
	"servicebroker/internal/sqldb"
)

// Combiner merges compatible payloads into one backend payload and splits
// the combined response.
type Combiner interface {
	// CanCombine reports whether payload b may join a batch started by a.
	CanCombine(a, b []byte) bool
	// Combine merges the payloads of one batch into a single payload.
	Combine(payloads [][]byte) ([]byte, error)
	// Split distributes the combined response across the batch's issuers.
	Split(combined []byte, n int) ([][]byte, error)
}

// RepeatCombiner clusters byte-identical payloads (the paper's repeated
// database query). Combine wraps the query in a repeat directive sized to
// the batch; Split hands every issuer the shared result.
type RepeatCombiner struct{}

var _ Combiner = RepeatCombiner{}

// CanCombine implements Combiner: only identical queries cluster.
func (RepeatCombiner) CanCombine(a, b []byte) bool { return bytes.Equal(a, b) }

// Combine implements Combiner.
func (RepeatCombiner) Combine(payloads [][]byte) ([]byte, error) {
	if len(payloads) == 0 {
		return nil, errors.New("cluster: empty batch")
	}
	return []byte(sqldb.RepeatQuery(string(payloads[0]), len(payloads))), nil
}

// Split implements Combiner: all issuers share the single result.
func (RepeatCombiner) Split(combined []byte, n int) ([][]byte, error) {
	out := make([][]byte, n)
	for i := range out {
		out[i] = combined
	}
	return out, nil
}

// MGetCombiner clusters distinct single-URI payloads into one MGET payload
// (one URI per line, the backend.WebConnector syntax) and splits the
// multipart response.
type MGetCombiner struct{}

var _ Combiner = MGetCombiner{}

// CanCombine implements Combiner: any two single-line URI payloads combine.
func (MGetCombiner) CanCombine(a, b []byte) bool {
	return isSingleURI(a) && isSingleURI(b)
}

func isSingleURI(p []byte) bool {
	t := bytes.TrimSpace(p)
	return len(t) > 0 && t[0] == '/' && !bytes.ContainsRune(t, '\n')
}

// Combine implements Combiner.
func (MGetCombiner) Combine(payloads [][]byte) ([]byte, error) {
	if len(payloads) == 0 {
		return nil, errors.New("cluster: empty batch")
	}
	var b bytes.Buffer
	for i, p := range payloads {
		if !isSingleURI(p) {
			return nil, fmt.Errorf("cluster: payload %d is not a URI", i)
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.Write(bytes.TrimSpace(p))
	}
	return b.Bytes(), nil
}

// Split implements Combiner. A batch of one passed through as a raw body;
// larger batches decode the multipart MGET encoding.
func (MGetCombiner) Split(combined []byte, n int) ([][]byte, error) {
	if n == 1 {
		return [][]byte{combined}, nil
	}
	parts, err := httpserver.DecodeMGetParts(combined)
	if err != nil {
		return nil, err
	}
	if len(parts) != n {
		return nil, fmt.Errorf("cluster: %d parts for %d requests", len(parts), n)
	}
	out := make([][]byte, n)
	for i, p := range parts {
		if p.Status != 200 {
			return nil, fmt.Errorf("cluster: part %s status %d", p.URI, p.Status)
		}
		out[i] = p.Body
	}
	return out, nil
}

// Do performs the combined backend access for a batch.
type Do func(ctx context.Context, payload []byte) ([]byte, error)

// Batcher queues requests and dispatches them in clustered batches. Use
// NewBatcher; Close stops the dispatcher and fails queued requests.
type Batcher struct {
	do       Do
	combiner Combiner
	degree   int // configured (initial) degree
	maxWait  time.Duration
	reg      *metrics.Registry

	// curDegree is the live degree of clustering: equal to degree for a
	// static batcher, walked by the controller under WithAdaptiveDegree.
	curDegree atomic.Int32
	adaptive  *adaptiveController
	// waitPerUnit is the gather window per unit of degree, so the window
	// scales with the current degree (a bigger batch needs longer to fill).
	waitPerUnit time.Duration
	degreeGauge *metrics.Gauge

	mu     sync.Mutex
	queue  []*pending
	closed bool
	kick   chan struct{}
	stop   chan struct{}
	done   chan struct{}
	// execWG tracks in-flight batch executions, which run on their own
	// goroutines so independent batches proceed concurrently.
	execWG sync.WaitGroup
}

type pending struct {
	ctx     context.Context
	payload []byte
	// enq is the Submit time: the adaptive controller's samples are full
	// request sojourns (gather wait + backend queueing + service), because
	// that is the latency the U-curve is drawn in. Backend time alone
	// monotonically improves with degree (the handshake amortizes) and
	// would walk the controller to MaxDegree.
	enq  time.Time
	resp chan result
}

type result struct {
	body []byte
	err  error
}

// BatcherOption configures a Batcher.
type BatcherOption interface {
	apply(*Batcher)
}

type batcherOptionFunc func(*Batcher)

func (f batcherOptionFunc) apply(b *Batcher) { f(b) }

// WithMaxWait bounds how long the dispatcher waits for a batch to fill
// after the first request arrives (default 2 ms). Smaller values favour
// latency; larger values favour clustering degree.
func WithMaxWait(d time.Duration) BatcherOption {
	return batcherOptionFunc(func(b *Batcher) { b.maxWait = d })
}

// WithMetrics directs batcher counters into reg.
func WithMetrics(reg *metrics.Registry) BatcherOption {
	return batcherOptionFunc(func(b *Batcher) { b.reg = reg })
}

// WithAdaptiveDegree enables the self-tuning degree controller (see
// adaptive.go): the degree passed to NewBatcher becomes the starting point
// of a hill-climbing walk over [cfg.MinDegree, cfg.MaxDegree], and the
// gather window scales with the current degree. The live degree is exported
// as the "cluster_degree_current" gauge.
func WithAdaptiveDegree(cfg AdaptiveConfig) BatcherOption {
	return batcherOptionFunc(func(b *Batcher) { b.adaptive = &adaptiveController{cfg: cfg} })
}

// ErrBatcherClosed is returned for requests submitted after Close.
var ErrBatcherClosed = errors.New("cluster: batcher closed")

// NewBatcher creates a batcher dispatching through do with the given
// combiner and degree of clustering (maximum batch size). Degree 1 disables
// clustering (every request dispatches alone).
func NewBatcher(do Do, combiner Combiner, degree int, opts ...BatcherOption) (*Batcher, error) {
	if do == nil {
		return nil, errors.New("cluster: nil do")
	}
	if combiner == nil {
		return nil, errors.New("cluster: nil combiner")
	}
	if degree < 1 {
		return nil, fmt.Errorf("cluster: degree must be ≥ 1, got %d", degree)
	}
	b := &Batcher{
		do:       do,
		combiner: combiner,
		degree:   degree,
		maxWait:  2 * time.Millisecond,
		reg:      metrics.NewRegistry(),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o.apply(b)
	}
	b.curDegree.Store(int32(degree))
	b.waitPerUnit = b.maxWait / time.Duration(degree)
	if b.adaptive != nil {
		if err := b.adaptive.init(degree); err != nil {
			return nil, err
		}
		b.curDegree.Store(int32(b.adaptive.cur))
	}
	b.degreeGauge = b.reg.Gauge("cluster_degree_current")
	b.degreeGauge.Set(int64(b.curDegree.Load()))
	go b.dispatchLoop()
	return b, nil
}

// Metrics returns the batcher registry: "batches", "clustered_requests",
// the "cluster_degree_current" gauge (live degree of clustering), and the
// "cluster_batch_size" histogram (sizes recorded in microsecond units for
// reuse of the duration histogram: size n is recorded as n µs).
func (b *Batcher) Metrics() *metrics.Registry { return b.reg }

// Degree returns the current degree of clustering: the configured value for
// a static batcher, the controller's live position under WithAdaptiveDegree.
func (b *Batcher) Degree() int { return int(b.curDegree.Load()) }

// gatherWait returns the batch-fill window for the current degree. A static
// batcher uses the configured maxWait unchanged; an adaptive one scales it
// linearly with the live degree, so a larger target batch is given
// proportionally longer to fill and a shrinking degree sheds gather latency.
func (b *Batcher) gatherWait() time.Duration {
	if b.adaptive == nil {
		return b.maxWait
	}
	return b.waitPerUnit * time.Duration(b.curDegree.Load())
}

// Submit queues one request and blocks until its response is available.
func (b *Batcher) Submit(ctx context.Context, payload []byte) ([]byte, error) {
	p := &pending{ctx: ctx, payload: payload, enq: time.Now(), resp: make(chan result, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrBatcherClosed
	}
	b.queue = append(b.queue, p)
	b.mu.Unlock()
	select {
	case b.kick <- struct{}{}:
	default:
	}
	select {
	case r := <-p.resp:
		return r.body, r.err
	case <-ctx.Done():
		// The dispatcher will still process the request; the issuer just
		// stops waiting (resp is buffered so the send cannot block).
		return nil, ctx.Err()
	}
}

// Close stops the dispatcher, failing queued requests with
// ErrBatcherClosed, and waits for the dispatch goroutine to exit.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	queued := b.queue
	b.queue = nil
	b.mu.Unlock()
	for _, p := range queued {
		p.resp <- result{err: ErrBatcherClosed}
	}
	close(b.stop)
	<-b.done
	b.execWG.Wait()
}

// dispatchLoop forms and executes batches until Close.
func (b *Batcher) dispatchLoop() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			return
		case <-b.kick:
		}
		// A request has arrived; give the batch a short window to fill.
		if wait := b.gatherWait(); wait > 0 {
			deadline := time.NewTimer(wait)
		window:
			for {
				b.mu.Lock()
				full := len(b.queue) >= b.Degree()
				b.mu.Unlock()
				if full {
					break
				}
				select {
				case <-deadline.C:
					break window
				case <-b.stop:
					deadline.Stop()
					return
				case <-b.kick:
					// more arrivals; loop to re-check fullness
				}
			}
			deadline.Stop()
		}
		for b.dispatchOnce() {
		}
	}
}

// dispatchOnce takes one compatible batch off the queue and executes it,
// reporting whether more queued work remains.
func (b *Batcher) dispatchOnce() bool {
	b.mu.Lock()
	if len(b.queue) == 0 {
		b.mu.Unlock()
		return false
	}
	head := b.queue[0]
	batch := []*pending{head}
	rest := b.queue[:0]
	deg := b.Degree()
	for _, p := range b.queue[1:] {
		if len(batch) < deg && b.combiner.CanCombine(head.payload, p.payload) {
			batch = append(batch, p)
			continue
		}
		rest = append(rest, p)
	}
	// Zero the tail so popped requests are not pinned.
	for i := len(rest); i < len(b.queue); i++ {
		b.queue[i] = nil
	}
	b.queue = rest
	remaining := len(b.queue) > 0
	b.mu.Unlock()

	b.execWG.Add(1)
	go func() {
		defer b.execWG.Done()
		b.execute(batch)
	}()
	return remaining
}

// execute combines, performs, splits, and responds to one batch.
func (b *Batcher) execute(batch []*pending) {
	b.reg.Counter("batches").Inc()
	b.reg.Counter("clustered_requests").Add(int64(len(batch)))
	b.reg.Histogram("cluster_batch_size").Observe(time.Duration(len(batch)) * time.Microsecond)

	payloads := make([][]byte, len(batch))
	for i, p := range batch {
		payloads[i] = p.payload
	}
	fail := func(err error) {
		for _, p := range batch {
			p.resp <- result{err: err}
		}
	}
	combined, err := b.combiner.Combine(payloads)
	if err != nil {
		fail(err)
		return
	}
	body, err := b.do(batch[0].ctx, combined)
	if err != nil {
		fail(err)
		return
	}
	if b.adaptive != nil {
		var sojourn time.Duration
		for _, p := range batch {
			sojourn += time.Since(p.enq)
		}
		b.observeBatch(sojourn, len(batch))
	}
	parts, err := b.combiner.Split(body, len(batch))
	if err != nil {
		fail(err)
		return
	}
	for i, p := range batch {
		p.resp <- result{body: parts[i]}
	}
}

// observeBatch feeds one successful batch's summed request sojourn into the
// adaptive controller and publishes any degree change. Failed accesses are
// excluded: an error's latency says nothing about where the U-curve minimum
// sits.
func (b *Batcher) observeBatch(sojournSum time.Duration, size int) {
	if b.adaptive == nil {
		return
	}
	if deg, changed := b.adaptive.observe(sojournSum, size); changed {
		b.curDegree.Store(int32(deg))
		b.degreeGauge.Set(int64(deg))
	}
}
