package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"servicebroker/internal/httpserver"
	"servicebroker/internal/sqldb"
)

func TestRepeatCombiner(t *testing.T) {
	c := RepeatCombiner{}
	q := []byte("SELECT * FROM records WHERE category = 7")
	if !c.CanCombine(q, []byte(string(q))) {
		t.Fatal("identical queries cannot combine")
	}
	if c.CanCombine(q, []byte("SELECT 1")) {
		t.Fatal("distinct queries combined")
	}
	combined, err := c.Combine([][]byte{q, q, q})
	if err != nil {
		t.Fatal(err)
	}
	sql, times := sqldb.ParseRepeat(string(combined))
	if sql != string(q) || times != 3 {
		t.Fatalf("combined = (%q, %d)", sql, times)
	}
	parts, err := c.Split([]byte("result"), 3)
	if err != nil || len(parts) != 3 {
		t.Fatalf("split = %v, %v", parts, err)
	}
	for _, p := range parts {
		if string(p) != "result" {
			t.Fatalf("part = %q", p)
		}
	}
	if _, err := c.Combine(nil); err == nil {
		t.Fatal("empty combine accepted")
	}
}

func TestRepeatCombinerSingleton(t *testing.T) {
	c := RepeatCombiner{}
	combined, err := c.Combine([][]byte{[]byte("SELECT 1")})
	if err != nil {
		t.Fatal(err)
	}
	if string(combined) != "SELECT 1" {
		t.Fatalf("singleton combined = %q (no directive expected)", combined)
	}
}

func TestMGetCombiner(t *testing.T) {
	c := MGetCombiner{}
	a, b := []byte("/1.html"), []byte("/2.html")
	if !c.CanCombine(a, b) {
		t.Fatal("URIs cannot combine")
	}
	if c.CanCombine(a, []byte("not a uri")) {
		t.Fatal("non-URI combined")
	}
	if c.CanCombine(a, []byte("/multi\n/line")) {
		t.Fatal("multi-line payload combined")
	}
	combined, err := c.Combine([][]byte{a, b})
	if err != nil || string(combined) != "/1.html\n/2.html" {
		t.Fatalf("combined = %q, %v", combined, err)
	}

	// Split decodes the multipart MGET body.
	multipart := httpserver.EncodeMGetParts(
		[]string{"/1.html", "/2.html"},
		[]*httpserver.Response{httpserver.NewResponse(200, []byte("one")), httpserver.NewResponse(200, []byte("two"))},
	)
	parts, err := c.Split(multipart, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(parts[0]) != "one" || string(parts[1]) != "two" {
		t.Fatalf("parts = %q", parts)
	}
	// Singleton batches pass the raw body through.
	raw, err := c.Split([]byte("rawbody"), 1)
	if err != nil || string(raw[0]) != "rawbody" {
		t.Fatalf("singleton split = %q, %v", raw, err)
	}
	// Mismatched counts and error parts fail.
	if _, err := c.Split(multipart, 3); err == nil {
		t.Fatal("count mismatch accepted")
	}
	bad := httpserver.EncodeMGetParts([]string{"/x", "/y"},
		[]*httpserver.Response{httpserver.NewResponse(200, nil), httpserver.NewResponse(404, nil)})
	if _, err := c.Split(bad, 2); err == nil {
		t.Fatal("non-200 part accepted")
	}
}

// countingDo records every dispatched backend payload.
type countingDo struct {
	mu       sync.Mutex
	payloads [][]byte
	fn       Do
}

func (c *countingDo) do(ctx context.Context, payload []byte) ([]byte, error) {
	c.mu.Lock()
	cp := append([]byte(nil), payload...)
	c.payloads = append(c.payloads, cp)
	c.mu.Unlock()
	if c.fn != nil {
		return c.fn(ctx, payload)
	}
	return payload, nil
}

func (c *countingDo) calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.payloads)
}

func TestBatcherClustersIdenticalRequests(t *testing.T) {
	backendCalls := &countingDo{fn: func(_ context.Context, p []byte) ([]byte, error) {
		return []byte("shared result"), nil
	}}
	b, err := NewBatcher(backendCalls.do, RepeatCombiner{}, 10, WithMaxWait(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 8
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := b.Submit(context.Background(), []byte("SELECT X"))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if string(r) != "shared result" {
			t.Fatalf("result %d = %q", i, r)
		}
	}
	if calls := backendCalls.calls(); calls >= n {
		t.Fatalf("backend calls = %d, want < %d (clustering)", calls, n)
	}
	if got := b.Metrics().Counter("clustered_requests").Value(); got != n {
		t.Fatalf("clustered_requests = %d, want %d", got, n)
	}
}

func TestBatcherDegreeOneDisablesClustering(t *testing.T) {
	calls := &countingDo{}
	b, err := NewBatcher(calls.do, RepeatCombiner{}, 1, WithMaxWait(0))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), []byte("Q")); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := calls.calls(); got != 5 {
		t.Fatalf("backend calls = %d, want 5 (degree 1)", got)
	}
	// None of the dispatched payloads should carry a repeat directive.
	for _, p := range calls.payloads {
		if _, times := sqldb.ParseRepeat(string(p)); times != 1 {
			t.Fatalf("degree-1 payload had repeat=%d", times)
		}
	}
}

func TestBatcherRespectsDegreeCap(t *testing.T) {
	var maxBatch atomic.Int64
	do := func(_ context.Context, p []byte) ([]byte, error) {
		_, times := sqldb.ParseRepeat(string(p))
		for {
			cur := maxBatch.Load()
			if int64(times) <= cur || maxBatch.CompareAndSwap(cur, int64(times)) {
				break
			}
		}
		return []byte("r"), nil
	}
	b, err := NewBatcher(do, RepeatCombiner{}, 3, WithMaxWait(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Submit(context.Background(), []byte("Q"))
		}()
	}
	wg.Wait()
	if got := maxBatch.Load(); got > 3 {
		t.Fatalf("max batch = %d, want ≤ 3", got)
	}
}

func TestBatcherSeparatesIncompatibleRequests(t *testing.T) {
	calls := &countingDo{}
	b, err := NewBatcher(calls.do, RepeatCombiner{}, 10, WithMaxWait(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf("SELECT %d", i%2) // two distinct queries
			out, err := b.Submit(context.Background(), []byte(q))
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			// RepeatCombiner shares the combined result; strip directive to
			// verify the right query was executed.
			sql, _ := sqldb.ParseRepeat(string(out))
			if sql != q {
				t.Errorf("result %q for query %q (cross-batch mixing)", out, q)
			}
		}(i)
	}
	wg.Wait()
	if got := calls.calls(); got < 2 {
		t.Fatalf("backend calls = %d, want ≥ 2 (incompatible queries split)", got)
	}
}

func TestBatcherMGetEndToEnd(t *testing.T) {
	// Backend returning a multipart body for multi-URI payloads.
	do := func(_ context.Context, payload []byte) ([]byte, error) {
		uris := bytes.Split(payload, []byte("\n"))
		if len(uris) == 1 {
			return append([]byte("body:"), uris[0]...), nil
		}
		resps := make([]*httpserver.Response, len(uris))
		strs := make([]string, len(uris))
		for i, u := range uris {
			strs[i] = string(u)
			resps[i] = httpserver.NewResponse(200, append([]byte("body:"), u...))
		}
		return httpserver.EncodeMGetParts(strs, resps), nil
	}
	b, err := NewBatcher(do, MGetCombiner{}, 8, WithMaxWait(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			uri := fmt.Sprintf("/page/%d.html", i)
			out, err := b.Submit(context.Background(), []byte(uri))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if string(out) != "body:"+uri {
				t.Errorf("result %d = %q, want body:%s", i, out, uri)
			}
		}(i)
	}
	wg.Wait()
}

func TestBatcherBackendErrorPropagates(t *testing.T) {
	do := func(context.Context, []byte) ([]byte, error) {
		return nil, errors.New("backend down")
	}
	b, err := NewBatcher(do, RepeatCombiner{}, 4, WithMaxWait(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), []byte("Q")); err == nil {
				t.Error("backend error not propagated")
			}
		}()
	}
	wg.Wait()
}

func TestBatcherSubmitContextCancel(t *testing.T) {
	block := make(chan struct{})
	do := func(context.Context, []byte) ([]byte, error) {
		<-block
		return []byte("late"), nil
	}
	b, err := NewBatcher(do, RepeatCombiner{}, 1, WithMaxWait(0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		b.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.Submit(ctx, []byte("Q")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestBatcherClose(t *testing.T) {
	b, err := NewBatcher(func(_ context.Context, p []byte) ([]byte, error) { return p, nil },
		RepeatCombiner{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, err := b.Submit(context.Background(), []byte("Q")); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("err = %v, want ErrBatcherClosed", err)
	}
	b.Close() // idempotent
}

func TestNewBatcherValidation(t *testing.T) {
	do := func(_ context.Context, p []byte) ([]byte, error) { return p, nil }
	if _, err := NewBatcher(nil, RepeatCombiner{}, 1); err == nil {
		t.Fatal("nil do accepted")
	}
	if _, err := NewBatcher(do, nil, 1); err == nil {
		t.Fatal("nil combiner accepted")
	}
	if _, err := NewBatcher(do, RepeatCombiner{}, 0); err == nil {
		t.Fatal("degree 0 accepted")
	}
}

// Property: every submitted request receives exactly its own URI body back
// through MGET clustering, for any batch composition.
func TestBatcherMGetFidelityProperty(t *testing.T) {
	do := func(_ context.Context, payload []byte) ([]byte, error) {
		uris := bytes.Split(payload, []byte("\n"))
		if len(uris) == 1 {
			return append([]byte("B"), uris[0]...), nil
		}
		resps := make([]*httpserver.Response, len(uris))
		strs := make([]string, len(uris))
		for i, u := range uris {
			strs[i] = string(u)
			resps[i] = httpserver.NewResponse(200, append([]byte("B"), u...))
		}
		return httpserver.EncodeMGetParts(strs, resps), nil
	}
	f := func(ids []uint8, degree uint8) bool {
		if len(ids) == 0 || len(ids) > 24 {
			return true
		}
		d := int(degree%8) + 1
		b, err := NewBatcher(do, MGetCombiner{}, d, WithMaxWait(5*time.Millisecond))
		if err != nil {
			return false
		}
		defer b.Close()
		var wg sync.WaitGroup
		ok := make([]bool, len(ids))
		for i, id := range ids {
			wg.Add(1)
			go func(i int, id uint8) {
				defer wg.Done()
				uri := fmt.Sprintf("/r/%d/%d", i, id)
				out, err := b.Submit(context.Background(), []byte(uri))
				ok[i] = err == nil && string(out) == "B"+uri
			}(i, id)
		}
		wg.Wait()
		for _, v := range ok {
			if !v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
