package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"servicebroker/internal/sqldb"
)

// uCurve models the paper's Figure-7 latency curve: per-request latency is
// minimized at degree `best` and grows linearly as the degree moves away on
// either side. Returned as a *batch* latency so observe() divides it back.
func uCurve(best, degree, size int) time.Duration {
	dist := degree - best
	if dist < 0 {
		dist = -dist
	}
	perReq := time.Duration(100+20*dist) * time.Microsecond
	return perReq * time.Duration(size)
}

// feedEpoch pushes one full epoch of identical samples and returns the
// controller's resulting degree.
func feedEpoch(t *testing.T, a *adaptiveController, degree int, best int) int {
	t.Helper()
	cur := degree
	for i := 0; i < a.cfg.EpochBatches; i++ {
		cur, _ = a.observe(uCurve(best, degree, degree), degree)
	}
	return cur
}

func TestAdaptiveConfigDefaults(t *testing.T) {
	cfg, err := AdaptiveConfig{MaxDegree: 8}.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	if cfg.MinDegree != 1 || cfg.Step != 1 || cfg.EpochBatches != 16 || cfg.Hysteresis != 0.05 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	bad := []AdaptiveConfig{
		{},                               // MaxDegree missing
		{MaxDegree: 4, MinDegree: 8},     // Max < Min
		{MaxDegree: 8, MinDegree: -1},    // negative min
		{MaxDegree: 8, Step: -2},         // negative step
		{MaxDegree: 8, EpochBatches: -1}, // negative epoch
		{MaxDegree: 8, Hysteresis: 1.5},  // band ≥ 1
		{MaxDegree: 8, Hysteresis: -0.1}, // negative band
	}
	for i, cfg := range bad {
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("case %d: config %+v unexpectedly valid", i, cfg)
		}
	}
	if _, err := NewBatcher(
		func(ctx context.Context, p []byte) ([]byte, error) { return p, nil },
		RepeatCombiner{}, 4, WithAdaptiveDegree(AdaptiveConfig{}),
	); err == nil {
		t.Fatal("NewBatcher accepted an invalid adaptive config")
	}
}

// TestAdaptiveClimbsTowardMinimum verifies the controller walks from a bad
// starting degree to a ±Step orbit of the U-curve minimum and stays there.
func TestAdaptiveClimbsTowardMinimum(t *testing.T) {
	const best = 8
	a := &adaptiveController{cfg: AdaptiveConfig{MaxDegree: 16, EpochBatches: 4}}
	if err := a.init(1); err != nil {
		t.Fatalf("init: %v", err)
	}
	cur := 1
	for epoch := 0; epoch < 40; epoch++ {
		cur = feedEpoch(t, a, cur, best)
	}
	if cur < best-1 || cur > best+1 {
		t.Fatalf("controller settled at degree %d, want within ±1 of %d", cur, best)
	}
}

// TestAdaptiveDescendsFromAbove starts past the minimum: the first epochs
// look "worse", so the walk must reverse and come back down.
func TestAdaptiveDescendsFromAbove(t *testing.T) {
	const best = 3
	a := &adaptiveController{cfg: AdaptiveConfig{MaxDegree: 16, EpochBatches: 4}}
	if err := a.init(14); err != nil {
		t.Fatalf("init: %v", err)
	}
	cur := 14
	for epoch := 0; epoch < 40; epoch++ {
		cur = feedEpoch(t, a, cur, best)
	}
	if cur < best-1 || cur > best+1 {
		t.Fatalf("controller settled at degree %d, want within ±1 of %d", cur, best)
	}
}

// TestAdaptiveTracksCapacityStep moves the optimum mid-run, as the fig7a
// experiment does by stepping backend capacity, and requires the walk to
// re-converge on the new minimum.
func TestAdaptiveTracksCapacityStep(t *testing.T) {
	a := &adaptiveController{cfg: AdaptiveConfig{MaxDegree: 16, EpochBatches: 4}}
	if err := a.init(1); err != nil {
		t.Fatalf("init: %v", err)
	}
	cur := 1
	for epoch := 0; epoch < 40; epoch++ {
		cur = feedEpoch(t, a, cur, 10)
	}
	if cur < 9 || cur > 11 {
		t.Fatalf("phase 1: settled at %d, want within ±1 of 10", cur)
	}
	for epoch := 0; epoch < 60; epoch++ {
		cur = feedEpoch(t, a, cur, 2)
	}
	if cur < 1 || cur > 3 {
		t.Fatalf("phase 2: settled at %d, want within ±1 of 2", cur)
	}
}

// TestAdaptiveHoldsInsideHysteresis: samples that differ by less than the
// band must not move the degree — until probeAfterHolds in-band epochs have
// passed, at which point the controller takes one remembered probing step
// and, finding no improvement, returns to the held degree.
func TestAdaptiveHoldsInsideHysteresis(t *testing.T) {
	a := &adaptiveController{cfg: AdaptiveConfig{MaxDegree: 16, EpochBatches: 2, Hysteresis: 0.2}}
	if err := a.init(8); err != nil {
		t.Fatalf("init: %v", err)
	}
	// epoch feeds one epoch of identical in-band samples. Each move is
	// followed by a settling epoch whose samples are discarded, so the
	// helper is called once extra after any step.
	epoch := func(us time.Duration) (int, bool) {
		var cur int
		var changed bool
		for i := 0; i < 2; i++ {
			cur, changed = a.observe(us*time.Microsecond, 1)
		}
		return cur, changed
	}
	epoch(100) // first epoch: initial probing step
	epoch(100) // its settling epoch
	settled, changed := epoch(100)
	if changed {
		t.Fatalf("degree moved to %d on the first in-band epoch", settled)
	}
	// Second in-band epoch: still holding.
	if cur, changed := epoch(104); changed {
		t.Fatalf("degree moved to %d inside the hysteresis band", cur)
	}
	// Third in-band epoch: the anti-capture probe fires.
	probed, changed := epoch(97)
	if !changed || probed == settled {
		t.Fatalf("expected a probing step after %d in-band epochs, got degree %d (changed %v)",
			probeAfterHolds, probed, changed)
	}
	epoch(100) // the probe's settling epoch
	// The probed degree is no better, so the walk must return to the held
	// degree rather than wander off along a flat stretch.
	if cur, _ := epoch(100); cur != settled {
		t.Fatalf("probe did not return: settled at %d, now %d", settled, cur)
	}
}

// TestAdaptiveClampsToRange: the walk never leaves [MinDegree, MaxDegree]
// even under adversarial samples that always reward the previous move.
func TestAdaptiveClampsToRange(t *testing.T) {
	a := &adaptiveController{cfg: AdaptiveConfig{MinDegree: 2, MaxDegree: 6, EpochBatches: 1, Step: 3}}
	if err := a.init(4); err != nil {
		t.Fatalf("init: %v", err)
	}
	lat := 1000 * time.Microsecond
	for i := 0; i < 50; i++ {
		lat = lat * 9 / 10 // monotonically "better": keep pushing the same way
		deg, _ := a.observe(lat, 1)
		if deg < 2 || deg > 6 {
			t.Fatalf("degree %d escaped [2, 6] at step %d", deg, i)
		}
	}
}

// TestBatcherAdaptiveDegreeLive drives a real Batcher whose backend latency
// follows a U-curve in the batch size and checks the live degree moves off
// its starting point and is reflected in the gauge.
func TestBatcherAdaptiveDegreeLive(t *testing.T) {
	var mu sync.Mutex
	sizes := []int{}
	do := func(ctx context.Context, payload []byte) ([]byte, error) {
		_, n := sqldb.ParseRepeat(string(payload))
		mu.Lock()
		sizes = append(sizes, n)
		mu.Unlock()
		time.Sleep(uCurve(4, n, n) / 4) // compressed for test speed
		return payload, nil
	}
	b, err := NewBatcher(do, RepeatCombiner{}, 1,
		WithMaxWait(200*time.Microsecond),
		WithAdaptiveDegree(AdaptiveConfig{MaxDegree: 8, EpochBatches: 2}),
	)
	if err != nil {
		t.Fatalf("NewBatcher: %v", err)
	}
	defer b.Close()

	if got := b.Degree(); got != 1 {
		t.Fatalf("initial degree = %d, want 1", got)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				if _, err := b.Submit(context.Background(), []byte("q")); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := b.Degree(); got == 1 {
		t.Fatalf("degree never moved off 1 after %d batches", len(sizes))
	}
	if g := b.Metrics().Gauge("cluster_degree_current").Value(); g != int64(b.Degree()) {
		t.Fatalf("gauge %d does not match Degree() %d", g, b.Degree())
	}
}
