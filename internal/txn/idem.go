package txn

import (
	"context"
	"strconv"
	"sync"
	"time"

	"servicebroker/internal/qos"
)

// Outcome is the recorded first result of a mutating access: what the broker
// answered the first time the (transaction, step, key) triple executed.
// Retried and failed-over duplicates are answered with it verbatim instead
// of re-executing the backend effect. Status is the broker's status code
// kept as a plain int so the table stays import-cycle-free.
type Outcome struct {
	Status   int
	Fidelity qos.Fidelity
	Payload  []byte
}

// IdemKey builds the composite idempotency-table key for one access. The
// unit separator keeps "txn-1"/step 2 distinct from "txn-12"/step... etc.
func IdemKey(txnID string, step int, key string) string {
	return txnID + "\x1f" + strconv.Itoa(step) + "\x1f" + key
}

// idemState is an entry's lifecycle phase.
type idemState uint8

const (
	idemPending idemState = iota + 1 // first execution in flight
	idemDone                         // outcome recorded
)

// idemEntry is one table slot. ready is closed when the entry leaves the
// pending state (recorded or cancelled) so coalesced duplicates wake up.
type idemEntry struct {
	state idemState
	out   Outcome
	ready chan struct{}
	at    time.Time // insertion time, drives TTL expiry and FIFO eviction
}

// IdemStats is the table's point-in-time accounting for /txnz and tests.
type IdemStats struct {
	Size      int
	Capacity  int
	TTL       time.Duration
	Hits      int64 // duplicates answered from a recorded outcome
	Coalesced int64 // duplicates that waited on an in-flight first execution
	Recorded  int64 // outcomes recorded by Complete
	Restored  int64 // outcomes re-armed from a journal
	Evicted   int64 // entries removed by capacity or TTL pressure
}

// IdemTable is the broker-side idempotency table: a bounded, TTL'd map from
// (transaction, step, idempotency key) to the recorded first outcome of that
// access. It gives the retry/failover path exactly-once *effects*: the wire
// client retransmits lost datagrams and the frontend pool fails requests
// over to other brokers, so a mutating access can arrive more than once —
// every arrival after the first is answered from the table.
//
// Duplicates that arrive while the first execution is still in flight are
// coalesced: Acquire hands them a ticket whose Await blocks until the owner
// records or cancels. A table may be shared by several brokers (the paper's
// brokers "exchange state information to ensure that transactions involving
// different backend servers are properly protected"); sharing is what covers
// the pool-failover path where attempt one executed but its broker crashed
// before answering.
//
// IdemTable is safe for concurrent use. Use NewIdemTable.
type IdemTable struct {
	mu      sync.Mutex
	entries map[string]*idemEntry
	order   []string // insertion FIFO; lazily compacted against entries
	cap     int
	ttl     time.Duration
	now     func() time.Time

	onRecord func(key string, out Outcome)

	hits      int64
	coalesced int64
	recorded  int64
	restored  int64
	evicted   int64
}

// DefaultIdemCapacity bounds the table when the caller passes capacity ≤ 0.
const DefaultIdemCapacity = 4096

// NewIdemTable builds a table holding at most capacity recorded outcomes
// (≤ 0 selects DefaultIdemCapacity), each kept for ttl after insertion
// (ttl ≤ 0 means entries never expire — capacity still bounds the table).
func NewIdemTable(capacity int, ttl time.Duration) *IdemTable {
	if capacity <= 0 {
		capacity = DefaultIdemCapacity
	}
	return &IdemTable{
		entries: make(map[string]*idemEntry),
		cap:     capacity,
		ttl:     ttl,
		now:     time.Now,
	}
}

// SetClock overrides the table's time source (deterministic tests).
func (t *IdemTable) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// OnRecord registers a callback invoked (outside table locks) for every
// outcome recorded via Complete — the journal append hook. Restored entries
// do not fire it (they came *from* the journal).
func (t *IdemTable) OnRecord(fn func(key string, out Outcome)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onRecord = fn
}

// Ticket is the caller's handle on one Acquire that did not hit a recorded
// outcome. The owner (first arrival) must call exactly one of Complete or
// Cancel; coalesced duplicates call Await.
type Ticket struct {
	t     *IdemTable
	key   string
	owner bool
	ready <-chan struct{}
}

// Owner reports whether this caller owns the first execution.
func (tk *Ticket) Owner() bool { return tk.owner }

// Acquire looks up one access. Three outcomes:
//
//   - the access already has a recorded outcome → (outcome, true, nil):
//     answer the caller with it, do not execute;
//   - first arrival → (zero, false, ticket) with ticket.Owner() true:
//     execute, then ticket.Complete(outcome) or ticket.Cancel();
//   - duplicate of an in-flight access → (zero, false, ticket) with Owner()
//     false: ticket.Await(ctx) blocks for the first execution's outcome.
func (t *IdemTable) Acquire(key string) (Outcome, bool, *Ticket) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if e, ok := t.entries[key]; ok {
		if e.state == idemDone && !t.expiredLocked(e, now) {
			t.hits++
			return e.out, true, nil
		}
		if e.state == idemPending {
			t.coalesced++
			return Outcome{}, false, &Ticket{t: t, key: key, ready: e.ready}
		}
		// Done but expired: the window closed; treat as first arrival.
		t.deleteLocked(key)
	}
	e := &idemEntry{state: idemPending, ready: make(chan struct{}), at: now}
	t.insertLocked(key, e)
	return Outcome{}, false, &Ticket{t: t, key: key, owner: true, ready: e.ready}
}

// Await blocks a coalesced duplicate until the first execution records or
// cancels, or ctx is done. ok is true when an outcome was recorded — false
// means the first execution did not record (it was shed or failed before the
// effect), and the caller should execute normally.
func (tk *Ticket) Await(ctx context.Context) (Outcome, bool, error) {
	select {
	case <-tk.ready:
	case <-ctx.Done():
		return Outcome{}, false, ctx.Err()
	}
	out, ok := tk.t.Lookup(tk.key)
	return out, ok, nil
}

// Complete records the first outcome for the ticket's access and wakes every
// coalesced duplicate. Owner tickets only; a duplicate Complete is a no-op.
func (tk *Ticket) Complete(out Outcome) {
	if !tk.owner {
		return
	}
	tk.t.complete(tk.key, out)
}

// Cancel abandons the ticket without recording: the access did not execute
// (shed, dropped, backend error before the effect), so a retry is allowed to
// run for real. Coalesced duplicates wake with ok=false.
func (tk *Ticket) Cancel() {
	if !tk.owner {
		return
	}
	tk.t.cancel(tk.key)
}

func (t *IdemTable) complete(key string, out Outcome) {
	t.mu.Lock()
	e, ok := t.entries[key]
	if !ok || e.state != idemPending {
		t.mu.Unlock()
		return
	}
	e.state = idemDone
	e.out = out
	e.at = t.now()
	close(e.ready)
	t.recorded++
	t.evictOverCapLocked()
	fn := t.onRecord
	t.mu.Unlock()
	if fn != nil {
		fn(key, out)
	}
}

func (t *IdemTable) cancel(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok || e.state != idemPending {
		return
	}
	t.deleteLocked(key)
	close(e.ready)
}

// Restore re-arms a recorded outcome from a journal (brokerd restart).
// Idempotent: a later record for the same key wins, matching journal replay
// order. Restored entries do not fire OnRecord.
func (t *IdemTable) Restore(key string, out Outcome) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[key]; ok {
		if e.state == idemPending {
			close(e.ready)
		}
		t.deleteLocked(key)
	}
	ready := make(chan struct{})
	close(ready)
	t.insertLocked(key, &idemEntry{state: idemDone, out: out, ready: ready, at: t.now()})
	t.restored++
	t.evictOverCapLocked()
}

// Lookup returns the recorded outcome for key, if any (and not expired).
func (t *IdemTable) Lookup(key string) (Outcome, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok || e.state != idemDone || t.expiredLocked(e, t.now()) {
		return Outcome{}, false
	}
	return e.out, true
}

// Len returns the number of live entries (pending + recorded).
func (t *IdemTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Stats returns the table's accounting.
func (t *IdemTable) Stats() IdemStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return IdemStats{
		Size:      len(t.entries),
		Capacity:  t.cap,
		TTL:       t.ttl,
		Hits:      t.hits,
		Coalesced: t.coalesced,
		Recorded:  t.recorded,
		Restored:  t.restored,
		Evicted:   t.evicted,
	}
}

// expiredLocked reports whether a done entry has outlived the TTL.
func (t *IdemTable) expiredLocked(e *idemEntry, now time.Time) bool {
	return t.ttl > 0 && now.Sub(e.at) > t.ttl
}

// insertLocked adds an entry and maintains the FIFO. Caller holds t.mu.
func (t *IdemTable) insertLocked(key string, e *idemEntry) {
	t.entries[key] = e
	t.order = append(t.order, key)
}

// deleteLocked removes an entry; its order slot is skipped lazily.
func (t *IdemTable) deleteLocked(key string) {
	delete(t.entries, key)
}

// evictOverCapLocked sheds expired and oldest *recorded* entries until the
// table fits its capacity. Pending entries are never evicted — they are
// bounded by the brokers' outstanding work, and evicting one would strand
// its coalesced waiters. Caller holds t.mu.
func (t *IdemTable) evictOverCapLocked() {
	now := t.now()
	// Drop expired recorded entries first, regardless of capacity pressure.
	if t.ttl > 0 && len(t.entries) > t.cap/2 {
		for key, e := range t.entries {
			if e.state == idemDone && t.expiredLocked(e, now) {
				t.deleteLocked(key)
				t.evicted++
			}
		}
	}
	if len(t.entries) <= t.cap {
		t.compactOrderLocked()
		return
	}
	// FIFO over insertion order: evict the oldest recorded entries.
	kept := t.order[:0]
	for _, key := range t.order {
		e, ok := t.entries[key]
		if !ok {
			continue // already deleted; lazy compaction
		}
		if len(t.entries) > t.cap && e.state == idemDone {
			t.deleteLocked(key)
			t.evicted++
			continue
		}
		kept = append(kept, key)
	}
	t.order = kept
}

// compactOrderLocked trims tombstones from the FIFO once it outgrows the
// live set enough to matter. Caller holds t.mu.
func (t *IdemTable) compactOrderLocked() {
	if len(t.order) < 2*len(t.entries)+16 {
		return
	}
	kept := t.order[:0]
	for _, key := range t.order {
		if _, ok := t.entries[key]; ok {
			kept = append(kept, key)
		}
	}
	t.order = kept
}
