package txn

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"servicebroker/internal/qos"
)

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "txn.journal")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	recs := []JournalRecord{
		{Key: IdemKey("t1", 1, "hold"), Status: 1, Fidelity: int(qos.FidelityFull), Payload: []byte("held")},
		{Key: IdemKey("t1", 2, "charge"), Status: 1, Payload: []byte{0x00, 0xff, '\n', 'x'}},
		{Key: IdemKey("t2", 1, "hold"), Status: 3},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if j.Appended() != 3 {
		t.Fatalf("appended = %d, want 3", j.Appended())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(recs[0]); err != ErrJournalClosed {
		t.Fatalf("append after close: %v, want ErrJournalClosed", err)
	}

	var got []JournalRecord
	n, err := ReplayJournal(path, func(r JournalRecord) { got = append(got, r) })
	if err != nil || n != 3 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	for i := range recs {
		if got[i].Key != recs[i].Key || got[i].Status != recs[i].Status ||
			string(got[i].Payload) != string(recs[i].Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestJournalReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "txn.journal")
	j1, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j1.Append(JournalRecord{Key: "a", Status: 1})
	j1.Close()

	j2, err := OpenJournal(path, true) // fsync variant also exercised
	if err != nil {
		t.Fatal(err)
	}
	j2.Append(JournalRecord{Key: "b", Status: 1})
	j2.Close()

	n, err := ReplayJournal(path, func(JournalRecord) {})
	if err != nil || n != 2 {
		t.Fatalf("reopened journal replay: n=%d err=%v", n, err)
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, err := ReplayJournal(filepath.Join(t.TempDir(), "absent"), func(JournalRecord) {
		t.Fatal("callback fired for missing file")
	})
	if err != nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v", n, err)
	}
}

func TestReplayTornTailSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "txn.journal")
	j, _ := OpenJournal(path, false)
	j.Append(JournalRecord{Key: "intact", Status: 1})
	j.Close()
	// Simulate a crash mid-append: a truncated, newline-less final record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn","sta`)
	f.Close()

	var keys []string
	n, err := ReplayJournal(path, func(r JournalRecord) { keys = append(keys, r.Key) })
	if err != nil {
		t.Fatalf("torn tail must replay cleanly: %v", err)
	}
	if n != 1 || len(keys) != 1 || keys[0] != "intact" {
		t.Fatalf("replayed %v (n=%d), want just [intact]", keys, n)
	}
}

func TestReplayMidFileCorruptionErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "txn.journal")
	content := `{"key":"ok","status":1}` + "\n" +
		`garbage not json` + "\n" +
		`{"key":"after","status":1}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := ReplayJournal(path, func(JournalRecord) {})
	if err == nil {
		t.Fatal("mid-file corruption not reported")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("err = %v, want corruption error", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records before corruption, want 1", n)
	}
}

func TestRestoreTableReArmsIdempotency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "txn.journal")

	// First life: a broker records outcomes through the OnRecord hook.
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewIdemTable(16, 0)
	tbl.OnRecord(func(key string, out Outcome) {
		if err := j.AppendOutcome(key, out); err != nil {
			t.Errorf("journal append: %v", err)
		}
	})
	key := IdemKey("t9", 2, "charge-card")
	_, _, tk := tbl.Acquire(key)
	tk.Complete(Outcome{Status: 1, Fidelity: qos.FidelityFull, Payload: []byte("charged $42")})
	j.Close()

	// Second life: a fresh table (restarted brokerd) restores from disk and
	// answers the replayed duplicate without executing.
	tbl2 := NewIdemTable(16, 0)
	n, err := RestoreTable(path, tbl2)
	if err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	out, hit, _ := tbl2.Acquire(key)
	if !hit {
		t.Fatal("restored table did not replay the recorded outcome")
	}
	if out.Status != 1 || out.Fidelity != qos.FidelityFull || string(out.Payload) != "charged $42" {
		t.Fatalf("restored outcome = %+v", out)
	}
}
