// Package txn implements the transaction-integrity support of the service
// broker framework (paper §III, "Transaction integrity assurance"). The
// motivating example is a supply-chain purchase spanning several backend
// servers multiple times: a computer manufacturer selects monitors (step 1),
// then video cards (step 2), then returns to the monitor vendor to purchase
// (step 3). Brokers tag each access with its transaction and step, and
// "gradually increase the priority of the subsequent accesses that belong to
// the same transaction": under load a broker prefers step-3 accesses and
// sheds step-1 accesses, so nearly-complete transactions do not abort.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"servicebroker/internal/qos"
)

// State describes one tracked transaction.
type State struct {
	ID      string
	Step    int
	Started time.Time
	// Accesses counts brokered requests made on behalf of the transaction.
	Accesses int
}

// Tracker records transaction progress and computes priority escalation.
// It is safe for concurrent use. Use NewTracker.
type Tracker struct {
	mu     sync.Mutex
	active map[string]*State
	now    func() time.Time

	completed int
	aborted   int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{active: make(map[string]*State), now: time.Now}
}

// Tracker errors.
var (
	ErrUnknownTxn = errors.New("txn: unknown transaction")
	ErrBadStep    = errors.New("txn: step must not decrease")
)

// Begin starts tracking a transaction at step 1. Beginning an existing ID
// is an error.
func (t *Tracker) Begin(id string) error {
	if id == "" {
		return errors.New("txn: empty id")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.active[id]; ok {
		return fmt.Errorf("txn: %s already active", id)
	}
	t.active[id] = &State{ID: id, Step: 1, Started: t.now()}
	return nil
}

// Observe records one access for transaction id at the given step,
// creating the transaction on first sight (brokers learn about transactions
// from tagged requests, not from explicit begins). The step may only grow.
func (t *Tracker) Observe(id string, step int) (*State, error) {
	if id == "" {
		return nil, errors.New("txn: empty id")
	}
	if step < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadStep, step)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.active[id]
	if !ok {
		s = &State{ID: id, Step: step, Started: t.now()}
		t.active[id] = s
	}
	if step < s.Step {
		return nil, fmt.Errorf("%w: %d after %d", ErrBadStep, step, s.Step)
	}
	s.Step = step
	s.Accesses++
	cp := *s
	return &cp, nil
}

// Complete finishes a transaction successfully.
func (t *Tracker) Complete(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.active[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTxn, id)
	}
	delete(t.active, id)
	t.completed++
	return nil
}

// Abort finishes a transaction unsuccessfully.
func (t *Tracker) Abort(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.active[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTxn, id)
	}
	delete(t.active, id)
	t.aborted++
	return nil
}

// Lookup returns a copy of a transaction's state.
func (t *Tracker) Lookup(id string) (*State, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.active[id]
	if !ok {
		return nil, false
	}
	cp := *s
	return &cp, true
}

// ActiveCount returns the number of in-flight transactions.
func (t *Tracker) ActiveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// Stats returns (completed, aborted) totals.
func (t *Tracker) Stats() (completed, aborted int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.completed, t.aborted
}

// EscalatedClass returns the effective QoS class for an access of the given
// base class at the given transaction step: each step beyond the first
// raises priority by one class (smaller number = higher priority), floored
// at class 1. Non-transactional accesses (step ≤ 1) keep their base class.
//
// This is the paper's "put more weight on those accesses whose transactions
// are in step 3 and selectively drop those whose transactions are in step 1
// if the load is high".
func EscalatedClass(base qos.Class, step int) qos.Class {
	if step <= 1 {
		return base
	}
	escalated := int(base) - (step - 1)
	if escalated < 1 {
		escalated = 1
	}
	return qos.Class(escalated)
}
