// Package txn implements the transaction-integrity support of the service
// broker framework (paper §III, "Transaction integrity assurance"). The
// motivating example is a supply-chain purchase spanning several backend
// servers multiple times: a computer manufacturer selects monitors (step 1),
// then video cards (step 2), then returns to the monitor vendor to purchase
// (step 3). Brokers tag each access with its transaction and step, and
// "gradually increase the priority of the subsequent accesses that belong to
// the same transaction": under load a broker prefers step-3 accesses and
// sheds step-1 accesses, so nearly-complete transactions do not abort.
//
// Beyond step tracking the package supplies the three mechanisms that make
// multi-step transactions survive an unreliable broker tier:
//
//   - saga-style compensation: each completed step may register an undo
//     action; Abort runs the registered compensations in reverse order and
//     accounts for partial compensation (a compensation that itself fails);
//   - abandonment sweeps: the active table is TTL'd, so a transaction whose
//     client vanished mid-flight is eventually aborted (compensations and
//     all) instead of leaking forever;
//   - an idempotency table plus crash-safe journal (idem.go, journal.go):
//     retried or failed-over mutating accesses are answered with the
//     recorded first outcome instead of re-executing the backend effect.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"servicebroker/internal/qos"
)

// State describes one tracked transaction.
type State struct {
	ID      string
	Step    int
	Started time.Time
	// LastSeen is the time of the most recent access (or Begin); the
	// abandonment sweep measures idleness against it.
	LastSeen time.Time
	// Accesses counts brokered requests made on behalf of the transaction.
	Accesses int
	// Compensations counts undo actions registered so far.
	Compensations int
}

// CompensationFunc undoes one completed step of a transaction. It receives
// the context of the Abort (or Background for TTL-sweep aborts).
type CompensationFunc func(ctx context.Context) error

// compensation is one registered undo action.
type compensation struct {
	step int
	name string
	fn   CompensationFunc
}

// CompensationResult records one compensation run during an abort.
type CompensationResult struct {
	Step int
	Name string
	Err  error // nil when the compensation succeeded
}

// AbortReport accounts for one abort's compensation run: which undo actions
// ran (in execution order — reverse registration order), and how many of
// them failed. A failed compensation does not stop the run; the saga keeps
// unwinding so the damage is bounded to the steps whose undo really broke.
type AbortReport struct {
	ID     string
	Ran    []CompensationResult
	Failed int
}

// ActiveTxn is one /txnz row: a point-in-time copy of an active transaction.
type ActiveTxn struct {
	ID            string
	Step          int
	Age           time.Duration
	Idle          time.Duration
	Accesses      int
	Compensations int
}

// Snapshot is the tracker's point-in-time state for the obs /txnz page.
type Snapshot struct {
	Active    []ActiveTxn
	Completed int
	Aborted   int
	// Abandoned counts transactions aborted by the TTL sweep rather than an
	// explicit Abort; they are included in Aborted too.
	Abandoned int
	// CompensationsRun / CompensationsFailed account saga unwinding across
	// all aborts.
	CompensationsRun    int
	CompensationsFailed int
	// TTL is the abandonment idle limit (0 = sweeping disabled).
	TTL time.Duration
}

// Tracker records transaction progress and computes priority escalation.
// It is safe for concurrent use. Use NewTracker.
type Tracker struct {
	mu     sync.Mutex
	active map[string]*State
	comps  map[string][]compensation
	now    func() time.Time

	// ttl is the idle limit after which an active transaction counts as
	// abandoned; 0 disables sweeping. lastSweep rate-limits the lazy sweep
	// piggybacked on Observe.
	ttl       time.Duration
	lastSweep time.Time
	onAbandon func(State)

	completed   int
	aborted     int
	abandoned   int
	compsRun    int
	compsFailed int
}

// NewTracker returns an empty tracker with abandonment sweeping disabled.
func NewTracker() *Tracker {
	return &Tracker{
		active: make(map[string]*State),
		comps:  make(map[string][]compensation),
		now:    time.Now,
	}
}

// SetClock overrides the tracker's time source (deterministic tests).
func (t *Tracker) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// SetTTL enables (or, with d ≤ 0, disables) abandonment sweeping: an active
// transaction idle for longer than d is aborted by the next sweep, its
// compensations run, and the abandoned counter incremented. Sweeps piggyback
// on Observe (rate-limited) and Snapshot; Sweep forces one.
func (t *Tracker) SetTTL(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d < 0 {
		d = 0
	}
	t.ttl = d
}

// OnAbandon registers a callback invoked (outside tracker locks) for each
// transaction the TTL sweep aborts — brokers use it to count
// txn_abandoned_total and publish timeline events.
func (t *Tracker) OnAbandon(fn func(State)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onAbandon = fn
}

// Tracker errors.
var (
	ErrUnknownTxn = errors.New("txn: unknown transaction")
	ErrBadStep    = errors.New("txn: step must not decrease")
)

// Begin starts tracking a transaction at step 1. Begin is idempotent against
// a transaction that already exists at step 1 — brokers learn about
// transactions from tagged requests, so a tagged access racing ahead of the
// client's explicit Begin must not fail it. Beginning a transaction that has
// progressed past step 1 is still an error: that is a duplicate ID, not a
// race on first sight.
func (t *Tracker) Begin(id string) error {
	if id == "" {
		return errors.New("txn: empty id")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.active[id]; ok {
		if s.Step <= 1 {
			s.LastSeen = t.now()
			return nil
		}
		return fmt.Errorf("txn: %s already active at step %d", id, s.Step)
	}
	now := t.now()
	t.active[id] = &State{ID: id, Step: 1, Started: now, LastSeen: now}
	return nil
}

// Observe records one access for transaction id at the given step,
// creating the transaction on first sight (brokers learn about transactions
// from tagged requests, not from explicit begins). The step may only grow.
func (t *Tracker) Observe(id string, step int) (*State, error) {
	if id == "" {
		return nil, errors.New("txn: empty id")
	}
	if step < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadStep, step)
	}
	t.mu.Lock()
	now := t.now()
	// Lazy abandonment sweep: at most one scan per TTL/4 so the hot path
	// stays O(1) amortized while abandoned state still gets bounded.
	var abandoned []abortWork
	if t.ttl > 0 && now.Sub(t.lastSweep) > t.ttl/4 {
		abandoned = t.collectAbandonedLocked(now)
	}
	s, ok := t.active[id]
	if !ok {
		s = &State{ID: id, Step: step, Started: now, LastSeen: now}
		t.active[id] = s
	}
	if step < s.Step {
		t.mu.Unlock()
		t.finishAborts(abandoned, true)
		return nil, fmt.Errorf("%w: %d after %d", ErrBadStep, step, s.Step)
	}
	s.Step = step
	s.Accesses++
	s.LastSeen = now
	cp := *s
	t.mu.Unlock()
	t.finishAborts(abandoned, true)
	return &cp, nil
}

// Touch refreshes a transaction's idle clock without counting an access
// (compensation registration and idempotent replays use it).
func (t *Tracker) Touch(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.active[id]; ok {
		s.LastSeen = t.now()
	}
}

// RegisterCompensation records an undo action for a completed step of an
// active transaction. On Abort the registered compensations run in reverse
// registration order (last completed step undone first — saga order). name
// labels the action in AbortReport and /txnz accounting.
func (t *Tracker) RegisterCompensation(id string, step int, name string, fn CompensationFunc) error {
	if fn == nil {
		return errors.New("txn: nil compensation")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.active[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTxn, id)
	}
	t.comps[id] = append(t.comps[id], compensation{step: step, name: name, fn: fn})
	s.Compensations++
	s.LastSeen = t.now()
	return nil
}

// Complete finishes a transaction successfully. Registered compensations are
// discarded — the saga committed.
func (t *Tracker) Complete(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.active[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTxn, id)
	}
	delete(t.active, id)
	delete(t.comps, id)
	t.completed++
	return nil
}

// Abort finishes a transaction unsuccessfully, running its registered
// compensations in reverse order with a background context. See AbortContext
// for the report.
func (t *Tracker) Abort(id string) error {
	_, err := t.AbortContext(context.Background(), id)
	return err
}

// abortWork is one removed transaction whose compensations still have to run
// (outside the tracker lock — compensations are arbitrary user code and may
// call back into the tracker).
type abortWork struct {
	state State
	comps []compensation
}

// AbortContext finishes a transaction unsuccessfully and runs its registered
// compensations in reverse registration order, continuing past failures. The
// report lists every compensation that ran with its outcome; Failed counts
// partial compensation (undo actions that themselves errored).
func (t *Tracker) AbortContext(ctx context.Context, id string) (*AbortReport, error) {
	t.mu.Lock()
	s, ok := t.active[id]
	if !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownTxn, id)
	}
	work := abortWork{state: *s, comps: t.comps[id]}
	delete(t.active, id)
	delete(t.comps, id)
	t.aborted++
	t.mu.Unlock()

	report := t.runCompensations(ctx, work)
	return report, nil
}

// runCompensations executes one abort's undo stack in reverse registration
// order, updating the tracker's accounting. Caller must not hold t.mu.
func (t *Tracker) runCompensations(ctx context.Context, w abortWork) *AbortReport {
	report := &AbortReport{ID: w.state.ID}
	for i := len(w.comps) - 1; i >= 0; i-- {
		c := w.comps[i]
		err := c.fn(ctx)
		report.Ran = append(report.Ran, CompensationResult{Step: c.step, Name: c.name, Err: err})
		if err != nil {
			report.Failed++
		}
	}
	t.mu.Lock()
	t.compsRun += len(report.Ran)
	t.compsFailed += report.Failed
	t.mu.Unlock()
	return report
}

// collectAbandonedLocked removes every transaction idle past the TTL and
// returns the abort work to finish outside the lock. Caller holds t.mu.
func (t *Tracker) collectAbandonedLocked(now time.Time) []abortWork {
	t.lastSweep = now
	var out []abortWork
	for id, s := range t.active {
		if now.Sub(s.LastSeen) <= t.ttl {
			continue
		}
		out = append(out, abortWork{state: *s, comps: t.comps[id]})
		delete(t.active, id)
		delete(t.comps, id)
		t.aborted++
		t.abandoned++
	}
	return out
}

// finishAborts runs compensations and abandonment callbacks for swept
// transactions. Caller must not hold t.mu.
func (t *Tracker) finishAborts(work []abortWork, abandoned bool) {
	if len(work) == 0 {
		return
	}
	t.mu.Lock()
	onAbandon := t.onAbandon
	t.mu.Unlock()
	for _, w := range work {
		t.runCompensations(context.Background(), w)
		if abandoned && onAbandon != nil {
			onAbandon(w.state)
		}
	}
}

// Sweep forces one abandonment sweep and returns the states it aborted. A
// no-op (nil) when SetTTL has not enabled sweeping.
func (t *Tracker) Sweep() []State {
	t.mu.Lock()
	if t.ttl <= 0 {
		t.mu.Unlock()
		return nil
	}
	work := t.collectAbandonedLocked(t.now())
	t.mu.Unlock()
	t.finishAborts(work, true)
	out := make([]State, 0, len(work))
	for _, w := range work {
		out = append(out, w.state)
	}
	return out
}

// Lookup returns a copy of a transaction's state.
func (t *Tracker) Lookup(id string) (*State, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.active[id]
	if !ok {
		return nil, false
	}
	cp := *s
	return &cp, true
}

// ActiveCount returns the number of in-flight transactions.
func (t *Tracker) ActiveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// Stats returns (completed, aborted) totals. Abandoned transactions count as
// aborted.
func (t *Tracker) Stats() (completed, aborted int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.completed, t.aborted
}

// Abandoned returns how many transactions the TTL sweep has aborted.
func (t *Tracker) Abandoned() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.abandoned
}

// Snapshot returns the tracker's point-in-time state for /txnz, running a
// sweep first (when enabled) so the page never shows transactions that are
// already past their TTL.
func (t *Tracker) Snapshot() Snapshot {
	t.mu.Lock()
	var work []abortWork
	now := t.now()
	if t.ttl > 0 {
		work = t.collectAbandonedLocked(now)
	}
	t.mu.Unlock()
	t.finishAborts(work, true)

	t.mu.Lock()
	defer t.mu.Unlock()
	snap := Snapshot{
		Completed:           t.completed,
		Aborted:             t.aborted,
		Abandoned:           t.abandoned,
		CompensationsRun:    t.compsRun,
		CompensationsFailed: t.compsFailed,
		TTL:                 t.ttl,
	}
	for _, s := range t.active {
		snap.Active = append(snap.Active, ActiveTxn{
			ID:            s.ID,
			Step:          s.Step,
			Age:           now.Sub(s.Started),
			Idle:          now.Sub(s.LastSeen),
			Accesses:      s.Accesses,
			Compensations: s.Compensations,
		})
	}
	// Oldest first, then ID: deterministic /txnz rows.
	sort.Slice(snap.Active, func(i, j int) bool {
		if snap.Active[i].Age != snap.Active[j].Age {
			return snap.Active[i].Age > snap.Active[j].Age
		}
		return snap.Active[i].ID < snap.Active[j].ID
	})
	return snap
}

// EscalatedClass returns the effective QoS class for an access of the given
// base class at the given transaction step: each step beyond the first
// raises priority by one class (smaller number = higher priority), floored
// at class 1. Non-transactional accesses (step ≤ 1) keep their base class.
//
// This is the paper's "put more weight on those accesses whose transactions
// are in step 3 and selectively drop those whose transactions are in step 1
// if the load is high".
func EscalatedClass(base qos.Class, step int) qos.Class {
	if step <= 1 {
		return base
	}
	escalated := int(base) - (step - 1)
	if escalated < 1 {
		escalated = 1
	}
	return qos.Class(escalated)
}
