package txn

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"servicebroker/internal/qos"
)

func TestIdemKeyComposite(t *testing.T) {
	// Field boundaries must be unambiguous: "t-1" step 2 vs "t-12" etc.
	keys := map[string]bool{}
	for _, c := range []struct {
		txn  string
		step int
		key  string
	}{
		{"t-1", 2, "a"}, {"t-12", 2, "a"}, {"t-1", 22, "a"}, {"t-1", 2, "2a"},
	} {
		k := IdemKey(c.txn, c.step, c.key)
		if keys[k] {
			t.Fatalf("collision on %+v: %q", c, k)
		}
		keys[k] = true
	}
}

func TestAcquireRecordHit(t *testing.T) {
	tbl := NewIdemTable(16, 0)
	key := IdemKey("t1", 2, "hold-sku-9")

	out, hit, tk := tbl.Acquire(key)
	if hit || tk == nil || !tk.Owner() {
		t.Fatalf("first acquire: hit=%v ticket=%v", hit, tk)
	}
	_ = out
	tk.Complete(Outcome{Status: 1, Fidelity: qos.FidelityFull, Payload: []byte("held")})

	out, hit, tk = tbl.Acquire(key)
	if !hit || tk != nil {
		t.Fatalf("duplicate acquire: hit=%v ticket=%v", hit, tk)
	}
	if string(out.Payload) != "held" || out.Status != 1 {
		t.Fatalf("replayed outcome = %+v", out)
	}
	st := tbl.Stats()
	if st.Hits != 1 || st.Recorded != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 recorded", st)
	}
}

func TestAcquireCoalescesInFlight(t *testing.T) {
	tbl := NewIdemTable(16, 0)
	key := IdemKey("t1", 1, "hold")

	_, _, owner := tbl.Acquire(key)
	if !owner.Owner() {
		t.Fatal("first arrival not owner")
	}
	_, hit, dup := tbl.Acquire(key)
	if hit || dup == nil || dup.Owner() {
		t.Fatalf("in-flight duplicate: hit=%v dup=%v", hit, dup)
	}

	done := make(chan Outcome, 1)
	go func() {
		out, ok, err := dup.Await(context.Background())
		if err != nil || !ok {
			t.Errorf("await: ok=%v err=%v", ok, err)
		}
		done <- out
	}()

	owner.Complete(Outcome{Status: 1, Payload: []byte("first")})
	select {
	case out := <-done:
		if string(out.Payload) != "first" {
			t.Fatalf("coalesced outcome = %+v", out)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("coalesced waiter never woke")
	}
	if st := tbl.Stats(); st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}
}

func TestCancelReleasesWaitersWithoutOutcome(t *testing.T) {
	tbl := NewIdemTable(16, 0)
	key := IdemKey("t1", 1, "hold")
	_, _, owner := tbl.Acquire(key)
	_, _, dup := tbl.Acquire(key)

	owner.Cancel()
	out, ok, err := dup.Await(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("cancelled execution produced an outcome: %+v", out)
	}
	// After a cancel the key is free again — the retry executes for real.
	_, hit, tk := tbl.Acquire(key)
	if hit || !tk.Owner() {
		t.Fatal("retry after cancel did not become owner")
	}
	tk.Cancel()
}

func TestAwaitContextCancel(t *testing.T) {
	tbl := NewIdemTable(16, 0)
	_, _, owner := tbl.Acquire("k")
	_, _, dup := tbl.Acquire("k")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := dup.Await(ctx); err == nil {
		t.Fatal("Await ignored cancelled context")
	}
	owner.Cancel()
}

func TestNonOwnerCompleteIsNoop(t *testing.T) {
	tbl := NewIdemTable(16, 0)
	_, _, owner := tbl.Acquire("k")
	_, _, dup := tbl.Acquire("k")
	dup.Complete(Outcome{Status: 99}) // must not record
	dup.Cancel()                      // must not free the slot
	if _, ok := tbl.Lookup("k"); ok {
		t.Fatal("non-owner Complete recorded an outcome")
	}
	owner.Complete(Outcome{Status: 1})
	if out, ok := tbl.Lookup("k"); !ok || out.Status != 1 {
		t.Fatalf("owner outcome lost: %+v ok=%v", out, ok)
	}
}

func TestRestoreReArmsOutcome(t *testing.T) {
	tbl := NewIdemTable(16, 0)
	tbl.Restore("k", Outcome{Status: 1, Payload: []byte("journaled")})
	out, hit, _ := tbl.Acquire("k")
	if !hit || string(out.Payload) != "journaled" {
		t.Fatalf("restored outcome not served: hit=%v out=%+v", hit, out)
	}
	if st := tbl.Stats(); st.Restored != 1 {
		t.Fatalf("restored = %d, want 1", st.Restored)
	}
}

func TestRestoreDoesNotFireOnRecord(t *testing.T) {
	tbl := NewIdemTable(16, 0)
	fired := 0
	tbl.OnRecord(func(string, Outcome) { fired++ })
	tbl.Restore("k", Outcome{Status: 1})
	if fired != 0 {
		t.Fatal("Restore fired OnRecord — journal replay would re-journal")
	}
	_, _, tk := tbl.Acquire("k2")
	tk.Complete(Outcome{Status: 1})
	if fired != 1 {
		t.Fatalf("Complete fired OnRecord %d times, want 1", fired)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(100, 0)
	tbl := NewIdemTable(16, time.Minute)
	tbl.SetClock(func() time.Time { return now })

	_, _, tk := tbl.Acquire("k")
	tk.Complete(Outcome{Status: 1})
	if _, ok := tbl.Lookup("k"); !ok {
		t.Fatal("fresh outcome missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := tbl.Lookup("k"); ok {
		t.Fatal("expired outcome still served")
	}
	// An acquire after expiry is a fresh first arrival.
	_, hit, tk2 := tbl.Acquire("k")
	if hit || !tk2.Owner() {
		t.Fatal("acquire after expiry did not become owner")
	}
	tk2.Cancel()
}

func TestCapacityBoundWithFIFOEviction(t *testing.T) {
	tbl := NewIdemTable(8, 0)
	for i := 0; i < 40; i++ {
		_, _, tk := tbl.Acquire(fmt.Sprintf("k%d", i))
		tk.Complete(Outcome{Status: 1})
	}
	if n := tbl.Len(); n > 8 {
		t.Fatalf("table grew to %d entries past capacity 8", n)
	}
	// Newest entries survive; the oldest were FIFO-evicted.
	if _, ok := tbl.Lookup("k39"); !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := tbl.Lookup("k0"); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	if st := tbl.Stats(); st.Evicted == 0 {
		t.Fatal("eviction not accounted")
	}
}

func TestPendingEntriesNeverEvicted(t *testing.T) {
	tbl := NewIdemTable(4, 0)
	var owners []*Ticket
	for i := 0; i < 6; i++ {
		_, _, tk := tbl.Acquire(fmt.Sprintf("pending%d", i))
		owners = append(owners, tk)
	}
	// Push recorded entries through to create eviction pressure.
	for i := 0; i < 20; i++ {
		_, _, tk := tbl.Acquire(fmt.Sprintf("done%d", i))
		tk.Complete(Outcome{Status: 1})
	}
	for i, tk := range owners {
		// Each pending owner must still hold its slot: a second acquire
		// coalesces rather than becoming a new owner.
		_, hit, dup := tbl.Acquire(fmt.Sprintf("pending%d", i))
		if hit || dup == nil || dup.Owner() {
			t.Fatalf("pending%d lost its slot under eviction pressure", i)
		}
		tk.Cancel()
	}
}

func TestIdemTableConcurrentDuplicates(t *testing.T) {
	tbl := NewIdemTable(64, 0)
	const dups = 32
	var executions int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	results := make([]Outcome, dups)
	wg.Add(dups)
	for i := 0; i < dups; i++ {
		go func(i int) {
			defer wg.Done()
			out, hit, tk := tbl.Acquire("shared")
			if hit {
				results[i] = out
				return
			}
			if tk.Owner() {
				mu.Lock()
				executions++
				mu.Unlock()
				out = Outcome{Status: 1, Payload: []byte("once")}
				tk.Complete(out)
				results[i] = out
				return
			}
			out, ok, err := tk.Await(context.Background())
			if err != nil || !ok {
				t.Errorf("await: ok=%v err=%v", ok, err)
				return
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	if executions != 1 {
		t.Fatalf("executions = %d, want exactly 1", executions)
	}
	for i, out := range results {
		if string(out.Payload) != "once" {
			t.Fatalf("duplicate %d got %+v", i, out)
		}
	}
}

// TestIdemTableAllocHotPath is the alloc-regression gate for the idempotency
// hot path (matched by CI's -run 'Alloc' bench-smoke step): a replay hit —
// the path every duplicate datagram takes under failover — must not allocate.
func TestIdemTableAllocHotPath(t *testing.T) {
	tbl := NewIdemTable(64, 0)
	key := IdemKey("t1", 2, "hold")
	_, _, tk := tbl.Acquire(key)
	tk.Complete(Outcome{Status: 1, Payload: []byte("held")})

	allocs := testing.AllocsPerRun(1000, func() {
		if _, hit, _ := tbl.Acquire(key); !hit {
			t.Fatal("hit path missed")
		}
	})
	if allocs > 0 {
		t.Fatalf("idempotency hit path allocates %.1f objects/op, want 0", allocs)
	}

	lookups := testing.AllocsPerRun(1000, func() {
		if _, ok := tbl.Lookup(key); !ok {
			t.Fatal("lookup missed")
		}
	})
	if lookups > 0 {
		t.Fatalf("Lookup allocates %.1f objects/op, want 0", lookups)
	}
}
