package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"servicebroker/internal/qos"
)

func TestBeginObserveComplete(t *testing.T) {
	tr := NewTracker()
	if err := tr.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Begin("t1"); err == nil {
		t.Fatal("duplicate begin accepted")
	}
	s, err := tr.Observe("t1", 1)
	if err != nil || s.Step != 1 || s.Accesses != 1 {
		t.Fatalf("observe = %+v, %v", s, err)
	}
	s, err = tr.Observe("t1", 3)
	if err != nil || s.Step != 3 || s.Accesses != 2 {
		t.Fatalf("observe = %+v, %v", s, err)
	}
	if err := tr.Complete("t1"); err != nil {
		t.Fatal(err)
	}
	completed, aborted := tr.Stats()
	if completed != 1 || aborted != 0 {
		t.Fatalf("stats = %d, %d", completed, aborted)
	}
	if tr.ActiveCount() != 0 {
		t.Fatal("transaction still active after complete")
	}
}

func TestObserveCreatesImplicitly(t *testing.T) {
	tr := NewTracker()
	s, err := tr.Observe("implicit", 2)
	if err != nil || s.Step != 2 {
		t.Fatalf("observe = %+v, %v", s, err)
	}
	if tr.ActiveCount() != 1 {
		t.Fatal("implicit transaction not tracked")
	}
}

func TestObserveStepMonotone(t *testing.T) {
	tr := NewTracker()
	tr.Observe("t", 3)
	if _, err := tr.Observe("t", 2); !errors.Is(err, ErrBadStep) {
		t.Fatalf("err = %v, want ErrBadStep", err)
	}
	if _, err := tr.Observe("t", 0); !errors.Is(err, ErrBadStep) {
		t.Fatalf("err = %v, want ErrBadStep", err)
	}
	if _, err := tr.Observe("", 1); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := tr.Begin(""); err == nil {
		t.Fatal("empty begin accepted")
	}
}

func TestAbort(t *testing.T) {
	tr := NewTracker()
	tr.Begin("t")
	if err := tr.Abort("t"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Abort("t"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("double abort err = %v", err)
	}
	if err := tr.Complete("ghost"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("complete unknown err = %v", err)
	}
	_, aborted := tr.Stats()
	if aborted != 1 {
		t.Fatalf("aborted = %d", aborted)
	}
}

// A backend failure mid-transaction aborts it; a retry under the same ID is
// a fresh transaction (implicit re-creation), not a resumption — the step
// monotonicity clock restarts with it.
func TestStepFailureMidTransaction(t *testing.T) {
	tr := NewTracker()
	if err := tr.Begin("order-7"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Observe("order-7", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Observe("order-7", 2); err != nil {
		t.Fatal(err)
	}
	// Step 2's backend access fails; the broker aborts the transaction.
	if err := tr.Abort("order-7"); err != nil {
		t.Fatal(err)
	}
	if tr.ActiveCount() != 0 {
		t.Fatal("aborted transaction still active")
	}
	completed, aborted := tr.Stats()
	if completed != 0 || aborted != 1 {
		t.Fatalf("stats = %d, %d; want 0, 1", completed, aborted)
	}
	// The client retries from step 1 under the same ID: tracked as new.
	s, err := tr.Observe("order-7", 1)
	if err != nil {
		t.Fatalf("retry after abort rejected: %v", err)
	}
	if s.Step != 1 || s.Accesses != 1 {
		t.Fatalf("retry state = %+v, want fresh step 1 with 1 access", s)
	}
}

// An access retransmitted after its transaction finished must not resurrect
// completed state at an earlier step and then trip monotonicity for the
// retried flow — it re-creates the transaction at whatever step it carries.
func TestObserveAfterCompleteRecreates(t *testing.T) {
	tr := NewTracker()
	tr.Observe("t", 3)
	if err := tr.Complete("t"); err != nil {
		t.Fatal(err)
	}
	s, err := tr.Observe("t", 2)
	if err != nil {
		t.Fatalf("post-complete observe rejected: %v", err)
	}
	if s.Step != 2 || s.Accesses != 1 {
		t.Fatalf("recreated state = %+v", s)
	}
}

// Duplicate completion (e.g. a retried completion callback after the first
// one's response was lost) must error without double-counting, and must not
// let an already-completed transaction also score as aborted.
func TestDuplicateCompletion(t *testing.T) {
	tr := NewTracker()
	tr.Begin("t")
	if err := tr.Complete("t"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Complete("t"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("duplicate complete err = %v, want ErrUnknownTxn", err)
	}
	if err := tr.Abort("t"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("abort after complete err = %v, want ErrUnknownTxn", err)
	}
	completed, aborted := tr.Stats()
	if completed != 1 || aborted != 0 {
		t.Fatalf("stats = %d, %d; want 1, 0", completed, aborted)
	}
}

// Racing completions for one transaction: exactly one wins, the rest get
// ErrUnknownTxn, and the completed counter moves by exactly one.
func TestConcurrentDuplicateCompletion(t *testing.T) {
	tr := NewTracker()
	tr.Begin("t")
	const racers = 8
	var wg sync.WaitGroup
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = tr.Complete("t")
		}(i)
	}
	wg.Wait()
	wins := 0
	for i, err := range errs {
		switch {
		case err == nil:
			wins++
		case !errors.Is(err, ErrUnknownTxn):
			t.Errorf("racer %d: err = %v, want nil or ErrUnknownTxn", i, err)
		}
	}
	if wins != 1 {
		t.Fatalf("%d completions won, want exactly 1", wins)
	}
	if completed, _ := tr.Stats(); completed != 1 {
		t.Fatalf("completed = %d, want 1", completed)
	}
}

func TestLookupCopies(t *testing.T) {
	tr := NewTracker()
	tr.Observe("t", 1)
	s, ok := tr.Lookup("t")
	if !ok {
		t.Fatal("lookup failed")
	}
	s.Step = 99
	again, _ := tr.Lookup("t")
	if again.Step != 1 {
		t.Fatal("Lookup leaked internal state")
	}
	if _, ok := tr.Lookup("ghost"); ok {
		t.Fatal("ghost lookup ok")
	}
}

func TestEscalatedClass(t *testing.T) {
	tests := []struct {
		base qos.Class
		step int
		want qos.Class
	}{
		{qos.Class3, 1, qos.Class3},
		{qos.Class3, 2, qos.Class2},
		{qos.Class3, 3, qos.Class1},
		{qos.Class3, 9, qos.Class1}, // floored
		{qos.Class1, 3, qos.Class1},
		{qos.Class2, 0, qos.Class2},
	}
	for _, tt := range tests {
		if got := EscalatedClass(tt.base, tt.step); got != tt.want {
			t.Errorf("EscalatedClass(%v, %d) = %v, want %v", tt.base, tt.step, got, tt.want)
		}
	}
}

// Property: escalation never lowers priority and never exceeds class 1.
func TestEscalationMonotoneProperty(t *testing.T) {
	f := func(base uint8, step uint8) bool {
		b := qos.Class(int(base)%5 + 1)
		got := EscalatedClass(b, int(step)%6)
		return got >= qos.Class1 && got <= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentObserves(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("txn-%d", w)
			for step := 1; step <= 5; step++ {
				if _, err := tr.Observe(id, step); err != nil {
					t.Errorf("observe: %v", err)
					return
				}
			}
			if w%2 == 0 {
				tr.Complete(id)
			} else {
				tr.Abort(id)
			}
		}(w)
	}
	wg.Wait()
	completed, aborted := tr.Stats()
	if completed != 4 || aborted != 4 {
		t.Fatalf("stats = %d, %d; want 4, 4", completed, aborted)
	}
}
