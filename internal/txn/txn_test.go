package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"servicebroker/internal/qos"
)

func TestBeginObserveComplete(t *testing.T) {
	tr := NewTracker()
	if err := tr.Begin("t1"); err != nil {
		t.Fatal(err)
	}
	// Begin is idempotent while the transaction is still at step 1 (a tagged
	// request may have raced ahead and created it).
	if err := tr.Begin("t1"); err != nil {
		t.Fatalf("repeat begin at step 1 rejected: %v", err)
	}
	s, err := tr.Observe("t1", 1)
	if err != nil || s.Step != 1 || s.Accesses != 1 {
		t.Fatalf("observe = %+v, %v", s, err)
	}
	s, err = tr.Observe("t1", 3)
	if err != nil || s.Step != 3 || s.Accesses != 2 {
		t.Fatalf("observe = %+v, %v", s, err)
	}
	if err := tr.Complete("t1"); err != nil {
		t.Fatal(err)
	}
	completed, aborted := tr.Stats()
	if completed != 1 || aborted != 0 {
		t.Fatalf("stats = %d, %d", completed, aborted)
	}
	if tr.ActiveCount() != 0 {
		t.Fatal("transaction still active after complete")
	}
}

func TestObserveCreatesImplicitly(t *testing.T) {
	tr := NewTracker()
	s, err := tr.Observe("implicit", 2)
	if err != nil || s.Step != 2 {
		t.Fatalf("observe = %+v, %v", s, err)
	}
	if tr.ActiveCount() != 1 {
		t.Fatal("implicit transaction not tracked")
	}
}

func TestObserveStepMonotone(t *testing.T) {
	tr := NewTracker()
	tr.Observe("t", 3)
	if _, err := tr.Observe("t", 2); !errors.Is(err, ErrBadStep) {
		t.Fatalf("err = %v, want ErrBadStep", err)
	}
	if _, err := tr.Observe("t", 0); !errors.Is(err, ErrBadStep) {
		t.Fatalf("err = %v, want ErrBadStep", err)
	}
	if _, err := tr.Observe("", 1); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := tr.Begin(""); err == nil {
		t.Fatal("empty begin accepted")
	}
}

func TestAbort(t *testing.T) {
	tr := NewTracker()
	tr.Begin("t")
	if err := tr.Abort("t"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Abort("t"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("double abort err = %v", err)
	}
	if err := tr.Complete("ghost"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("complete unknown err = %v", err)
	}
	_, aborted := tr.Stats()
	if aborted != 1 {
		t.Fatalf("aborted = %d", aborted)
	}
}

// A backend failure mid-transaction aborts it; a retry under the same ID is
// a fresh transaction (implicit re-creation), not a resumption — the step
// monotonicity clock restarts with it.
func TestStepFailureMidTransaction(t *testing.T) {
	tr := NewTracker()
	if err := tr.Begin("order-7"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Observe("order-7", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Observe("order-7", 2); err != nil {
		t.Fatal(err)
	}
	// Step 2's backend access fails; the broker aborts the transaction.
	if err := tr.Abort("order-7"); err != nil {
		t.Fatal(err)
	}
	if tr.ActiveCount() != 0 {
		t.Fatal("aborted transaction still active")
	}
	completed, aborted := tr.Stats()
	if completed != 0 || aborted != 1 {
		t.Fatalf("stats = %d, %d; want 0, 1", completed, aborted)
	}
	// The client retries from step 1 under the same ID: tracked as new.
	s, err := tr.Observe("order-7", 1)
	if err != nil {
		t.Fatalf("retry after abort rejected: %v", err)
	}
	if s.Step != 1 || s.Accesses != 1 {
		t.Fatalf("retry state = %+v, want fresh step 1 with 1 access", s)
	}
}

// An access retransmitted after its transaction finished must not resurrect
// completed state at an earlier step and then trip monotonicity for the
// retried flow — it re-creates the transaction at whatever step it carries.
func TestObserveAfterCompleteRecreates(t *testing.T) {
	tr := NewTracker()
	tr.Observe("t", 3)
	if err := tr.Complete("t"); err != nil {
		t.Fatal(err)
	}
	s, err := tr.Observe("t", 2)
	if err != nil {
		t.Fatalf("post-complete observe rejected: %v", err)
	}
	if s.Step != 2 || s.Accesses != 1 {
		t.Fatalf("recreated state = %+v", s)
	}
}

// Duplicate completion (e.g. a retried completion callback after the first
// one's response was lost) must error without double-counting, and must not
// let an already-completed transaction also score as aborted.
func TestDuplicateCompletion(t *testing.T) {
	tr := NewTracker()
	tr.Begin("t")
	if err := tr.Complete("t"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Complete("t"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("duplicate complete err = %v, want ErrUnknownTxn", err)
	}
	if err := tr.Abort("t"); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("abort after complete err = %v, want ErrUnknownTxn", err)
	}
	completed, aborted := tr.Stats()
	if completed != 1 || aborted != 0 {
		t.Fatalf("stats = %d, %d; want 1, 0", completed, aborted)
	}
}

// Racing completions for one transaction: exactly one wins, the rest get
// ErrUnknownTxn, and the completed counter moves by exactly one.
func TestConcurrentDuplicateCompletion(t *testing.T) {
	tr := NewTracker()
	tr.Begin("t")
	const racers = 8
	var wg sync.WaitGroup
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = tr.Complete("t")
		}(i)
	}
	wg.Wait()
	wins := 0
	for i, err := range errs {
		switch {
		case err == nil:
			wins++
		case !errors.Is(err, ErrUnknownTxn):
			t.Errorf("racer %d: err = %v, want nil or ErrUnknownTxn", i, err)
		}
	}
	if wins != 1 {
		t.Fatalf("%d completions won, want exactly 1", wins)
	}
	if completed, _ := tr.Stats(); completed != 1 {
		t.Fatalf("completed = %d, want 1", completed)
	}
}

func TestLookupCopies(t *testing.T) {
	tr := NewTracker()
	tr.Observe("t", 1)
	s, ok := tr.Lookup("t")
	if !ok {
		t.Fatal("lookup failed")
	}
	s.Step = 99
	again, _ := tr.Lookup("t")
	if again.Step != 1 {
		t.Fatal("Lookup leaked internal state")
	}
	if _, ok := tr.Lookup("ghost"); ok {
		t.Fatal("ghost lookup ok")
	}
}

func TestEscalatedClass(t *testing.T) {
	tests := []struct {
		base qos.Class
		step int
		want qos.Class
	}{
		{qos.Class3, 1, qos.Class3},
		{qos.Class3, 2, qos.Class2},
		{qos.Class3, 3, qos.Class1},
		{qos.Class3, 9, qos.Class1}, // floored
		{qos.Class1, 3, qos.Class1},
		{qos.Class2, 0, qos.Class2},
	}
	for _, tt := range tests {
		if got := EscalatedClass(tt.base, tt.step); got != tt.want {
			t.Errorf("EscalatedClass(%v, %d) = %v, want %v", tt.base, tt.step, got, tt.want)
		}
	}
}

// Property: escalation never lowers priority and never exceeds class 1.
func TestEscalationMonotoneProperty(t *testing.T) {
	f := func(base uint8, step uint8) bool {
		b := qos.Class(int(base)%5 + 1)
		got := EscalatedClass(b, int(step)%6)
		return got >= qos.Class1 && got <= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Begin against a transaction that progressed past step 1 is still a
// duplicate-ID error, not idempotent.
func TestBeginPastStepOneRejected(t *testing.T) {
	tr := NewTracker()
	if _, err := tr.Observe("t", 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Begin("t"); err == nil {
		t.Fatal("begin against step-2 transaction accepted")
	}
}

// The Begin/Observe first-sight race: a tagged request creating the
// transaction concurrently with the client's explicit Begin must never fail
// either side. Regression for the seed behavior where Begin errored if the
// Observe landed first.
func TestConcurrentBeginObserveRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		tr := NewTracker()
		var wg sync.WaitGroup
		var beginErr error
		var observeErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			beginErr = tr.Begin("race")
		}()
		go func() {
			defer wg.Done()
			_, observeErr = tr.Observe("race", 1)
		}()
		wg.Wait()
		if beginErr != nil {
			t.Fatalf("round %d: Begin lost the race: %v", round, beginErr)
		}
		if observeErr != nil {
			t.Fatalf("round %d: Observe failed: %v", round, observeErr)
		}
		if tr.ActiveCount() != 1 {
			t.Fatalf("round %d: active = %d, want 1", round, tr.ActiveCount())
		}
	}
}

// Regression for the unbounded-growth bug: abandoned transactions used to
// stay in the active table forever. With a TTL set, a sweep aborts them,
// counts them as abandoned, runs their compensations, and fires OnAbandon.
func TestAbandonmentSweep(t *testing.T) {
	now := time.Unix(1000, 0)
	tr := NewTracker()
	tr.SetClock(func() time.Time { return now })
	tr.SetTTL(time.Minute)

	var abandoned []string
	tr.OnAbandon(func(s State) { abandoned = append(abandoned, s.ID) })

	compensated := false
	tr.Observe("stale", 2)
	if err := tr.RegisterCompensation("stale", 2, "undo", func(context.Context) error {
		compensated = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	tr.Observe("fresh", 1)

	// "stale" is now 70s idle, "fresh" 40s — only stale is past the TTL.
	now = now.Add(40 * time.Second)
	tr.Observe("fresh", 2) // refresh and trigger the lazy sweep

	if tr.ActiveCount() != 1 {
		t.Fatalf("active = %d after sweep, want 1", tr.ActiveCount())
	}
	if _, ok := tr.Lookup("stale"); ok {
		t.Fatal("abandoned transaction still active")
	}
	if !compensated {
		t.Fatal("abandoned transaction's compensation did not run")
	}
	if len(abandoned) != 1 || abandoned[0] != "stale" {
		t.Fatalf("OnAbandon got %v, want [stale]", abandoned)
	}
	if got := tr.Abandoned(); got != 1 {
		t.Fatalf("Abandoned() = %d, want 1", got)
	}
	if _, aborted := tr.Stats(); aborted != 1 {
		t.Fatalf("aborted = %d, want 1 (abandoned counts as aborted)", aborted)
	}

	// Growth stays bounded: churn many one-shot transactions through and
	// sweep — nothing may accumulate.
	for i := 0; i < 500; i++ {
		tr.Observe(fmt.Sprintf("ghost-%d", i), 1)
	}
	now = now.Add(2 * time.Minute)
	tr.Sweep()
	if tr.ActiveCount() != 0 {
		t.Fatalf("active = %d after full sweep, want 0", tr.ActiveCount())
	}
	if got := tr.Abandoned(); got != 502 {
		t.Fatalf("Abandoned() = %d, want 502", got)
	}
}

// Sweep with no TTL configured is a no-op.
func TestSweepDisabledByDefault(t *testing.T) {
	tr := NewTracker()
	tr.Observe("t", 1)
	if got := tr.Sweep(); got != nil {
		t.Fatalf("Sweep() = %v with no TTL, want nil", got)
	}
	if tr.ActiveCount() != 1 {
		t.Fatal("transaction vanished without a TTL")
	}
}

// Compensations run in reverse registration order (saga unwinding) and a
// failing compensation does not stop the run — partial compensation is
// accounted, not hidden.
func TestAbortRunsCompensationsInReverse(t *testing.T) {
	tr := NewTracker()
	tr.Observe("buy", 1)
	var order []string
	tr.RegisterCompensation("buy", 1, "release-monitor-hold", func(context.Context) error {
		order = append(order, "release-monitor-hold")
		return nil
	})
	tr.Observe("buy", 2)
	tr.RegisterCompensation("buy", 2, "release-card-hold", func(context.Context) error {
		order = append(order, "release-card-hold")
		return errors.New("vendor unreachable")
	})
	tr.Observe("buy", 3)
	tr.RegisterCompensation("buy", 3, "void-purchase", func(context.Context) error {
		order = append(order, "void-purchase")
		return nil
	})

	report, err := tr.AbortContext(context.Background(), "buy")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"void-purchase", "release-card-hold", "release-monitor-hold"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("compensation order = %v, want %v", order, want)
	}
	if len(report.Ran) != 3 || report.Failed != 1 {
		t.Fatalf("report = %+v, want 3 ran / 1 failed", report)
	}
	if report.Ran[1].Err == nil || report.Ran[1].Name != "release-card-hold" {
		t.Fatalf("failed compensation not attributed: %+v", report.Ran[1])
	}

	snap := tr.Snapshot()
	if snap.CompensationsRun != 3 || snap.CompensationsFailed != 1 {
		t.Fatalf("snapshot accounting = %d run / %d failed, want 3/1",
			snap.CompensationsRun, snap.CompensationsFailed)
	}
}

// Completing a transaction discards its compensations: the saga committed.
func TestCompleteDiscardsCompensations(t *testing.T) {
	tr := NewTracker()
	tr.Observe("t", 1)
	ran := false
	tr.RegisterCompensation("t", 1, "undo", func(context.Context) error { ran = true; return nil })
	if err := tr.Complete("t"); err != nil {
		t.Fatal(err)
	}
	// A later Observe re-creates the ID; aborting the fresh incarnation must
	// not run the committed saga's undo.
	tr.Observe("t", 1)
	if err := tr.Abort("t"); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("committed transaction's compensation ran")
	}
}

func TestRegisterCompensationErrors(t *testing.T) {
	tr := NewTracker()
	if err := tr.RegisterCompensation("ghost", 1, "x", func(context.Context) error { return nil }); !errors.Is(err, ErrUnknownTxn) {
		t.Fatalf("err = %v, want ErrUnknownTxn", err)
	}
	tr.Observe("t", 1)
	if err := tr.RegisterCompensation("t", 1, "x", nil); err == nil {
		t.Fatal("nil compensation accepted")
	}
}

func TestSnapshotRows(t *testing.T) {
	now := time.Unix(2000, 0)
	tr := NewTracker()
	tr.SetClock(func() time.Time { return now })
	tr.Observe("old", 1)
	now = now.Add(10 * time.Second)
	tr.Observe("new", 3)
	tr.RegisterCompensation("new", 3, "undo", func(context.Context) error { return nil })
	tr.Complete("old")
	tr.Observe("old2", 2)
	tr.Abort("old2")

	snap := tr.Snapshot()
	if snap.Completed != 1 || snap.Aborted != 1 {
		t.Fatalf("totals = %d/%d, want 1/1", snap.Completed, snap.Aborted)
	}
	if len(snap.Active) != 1 {
		t.Fatalf("active rows = %d, want 1", len(snap.Active))
	}
	row := snap.Active[0]
	if row.ID != "new" || row.Step != 3 || row.Accesses != 1 || row.Compensations != 1 {
		t.Fatalf("row = %+v", row)
	}
}

func TestConcurrentObserves(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("txn-%d", w)
			for step := 1; step <= 5; step++ {
				if _, err := tr.Observe(id, step); err != nil {
					t.Errorf("observe: %v", err)
					return
				}
			}
			if w%2 == 0 {
				tr.Complete(id)
			} else {
				tr.Abort(id)
			}
		}(w)
	}
	wg.Wait()
	completed, aborted := tr.Stats()
	if completed != 4 || aborted != 4 {
		t.Fatalf("stats = %d, %d; want 4, 4", completed, aborted)
	}
}
