package txn

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"servicebroker/internal/qos"
)

// JournalRecord is one journaled idempotency outcome. The journal is the
// broker's crash-safe memory: replaying it after a restart re-arms the
// idempotency table, so a duplicate that arrives at the restarted broker is
// still answered with the first outcome instead of re-executing.
//
// The on-disk format is one JSON object per line ("\n"-terminated), appended
// only. Key is the composite IdemKey (txn \x1f step \x1f access key);
// Payload round-trips through JSON's base64 encoding.
type JournalRecord struct {
	Key      string `json:"key"`
	Status   int    `json:"status"`
	Fidelity int    `json:"fidelity"`
	Payload  []byte `json:"payload,omitempty"`
}

// Journal is an append-only transaction journal. Appends are flushed to the
// file before returning, so every record survives a process crash; a torn
// final line (the process died mid-write) is tolerated and skipped by
// Replay. Safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	sync     bool
	appended int
	closed   bool
}

// OpenJournal opens (creating if needed) the append-only journal at path.
// With fsync true every append is additionally fdatasync'd, surviving power
// loss at a heavy latency cost; false (the usual choice) survives process
// crashes — the flush leaves the data with the kernel.
func OpenJournal(path string, fsync bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("txn: open journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), sync: fsync}, nil
}

// ErrJournalClosed is returned by Append after Close.
var ErrJournalClosed = errors.New("txn: journal closed")

// Append writes one record and flushes it.
func (j *Journal) Append(rec JournalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("txn: journal encode: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("txn: journal append: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("txn: journal append: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("txn: journal flush: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("txn: journal sync: %w", err)
		}
	}
	j.appended++
	return nil
}

// AppendOutcome journals one idempotency outcome under its composite key.
func (j *Journal) AppendOutcome(key string, out Outcome) error {
	return j.Append(JournalRecord{
		Key:      key,
		Status:   out.Status,
		Fidelity: int(out.Fidelity),
		Payload:  out.Payload,
	})
}

// Appended returns how many records this handle has written.
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	ferr := j.w.Flush()
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// ReplayJournal reads the journal at path, invoking fn for each intact
// record in append order, and returns how many records were replayed. A
// missing file replays zero records (first boot); a torn or corrupt final
// line — the signature of a crash mid-append — is skipped silently, but
// corruption anywhere earlier is an error (the file is damaged, not torn).
func ReplayJournal(path string, fn func(JournalRecord)) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("txn: open journal: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	n := 0
	for {
		line, err := r.ReadBytes('\n')
		atEOF := errors.Is(err, io.EOF)
		if err != nil && !atEOF {
			return n, fmt.Errorf("txn: read journal: %w", err)
		}
		if len(line) > 0 {
			var rec JournalRecord
			if uerr := json.Unmarshal(line, &rec); uerr != nil {
				if atEOF || !hasNewline(line) {
					// Torn tail from a crash mid-append: replay what we have.
					return n, nil
				}
				return n, fmt.Errorf("txn: journal record %d corrupt: %w", n+1, uerr)
			}
			fn(rec)
			n++
		}
		if atEOF {
			return n, nil
		}
	}
}

// RestoreTable replays the journal at path into table, returning the number
// of outcomes re-armed — the brokerd restart path in one call.
func RestoreTable(path string, table *IdemTable) (int, error) {
	return ReplayJournal(path, func(rec JournalRecord) {
		table.Restore(rec.Key, Outcome{
			Status:   rec.Status,
			Fidelity: qos.Fidelity(rec.Fidelity),
			Payload:  rec.Payload,
		})
	})
}

func hasNewline(line []byte) bool {
	return len(line) > 0 && line[len(line)-1] == '\n'
}
