package obs

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"servicebroker/internal/sketch"
	"servicebroker/internal/slo"
	"servicebroker/internal/trace"
)

// HotKeySource supplies a workload-analytics snapshot for /hotz. The bool is
// false when the broker runs without hot-key tracking (no WithHotKeys).
type HotKeySource func() (sketch.Snapshot, bool)

// SLOSource supplies an evaluated per-class SLO status for /sloz. The bool
// is false when no SLO engine is configured. Each /sloz render evaluates the
// engine, so scraping the page (or the tsdb probes) drives alerting.
type SLOSource func() (slo.Status, bool)

// CoalesceSnapshot mirrors broker.CoalesceStats without importing the broker
// (obs must stay import-cycle-free): single-flight accounting for one
// service's query coalescing.
type CoalesceSnapshot struct {
	Flights   int64 // backend-bound first executions
	Coalesced int64 // duplicates that waited on an in-flight query
	Shared    int64 // waiters answered from the first execution's response
	Inflight  int64 // currently open flights
}

// CoalesceSource supplies a coalescing snapshot for /hotz. The bool is false
// when the broker runs without WithCoalescing.
type CoalesceSource func() (CoalesceSnapshot, bool)

type namedHotKeySource struct {
	service string
	src     HotKeySource
}

type namedSLOSource struct {
	service string
	src     SLOSource
}

type namedCoalesceSource struct {
	service string
	src     CoalesceSource
}

// AddHotKeySource registers a /hotz supplier for one service. Sources whose
// broker has no tracker render as a "disabled" line.
func (s *Server) AddHotKeySource(service string, src HotKeySource) {
	if src == nil {
		return
	}
	s.mu.Lock()
	s.hotkeys = append(s.hotkeys, namedHotKeySource{service: service, src: src})
	s.mu.Unlock()
}

// AddCoalesceSource registers a /hotz coalescing supplier for one service:
// the page shows, next to the hot-key skew that makes duplicate in-flight
// queries likely, how many of them single-flight coalescing actually folded.
func (s *Server) AddCoalesceSource(service string, src CoalesceSource) {
	if src == nil {
		return
	}
	s.mu.Lock()
	s.coalesce = append(s.coalesce, namedCoalesceSource{service: service, src: src})
	s.mu.Unlock()
}

// AddSLOSource registers a /sloz supplier for one service. Sources with no
// engine render as a "disabled" line.
func (s *Server) AddSLOSource(service string, src SLOSource) {
	if src == nil {
		return
	}
	s.mu.Lock()
	s.slos = append(s.slos, namedSLOSource{service: service, src: src})
	s.mu.Unlock()
}

// --- / (index) --------------------------------------------------------------

// pageInfo is one admin page for the index: its path and a one-line
// description.
type pageInfo struct {
	Path string
	Desc string
}

// pages returns the currently reachable admin pages. Pages whose handler
// would 404 without configuration (the tsdb-backed ones) appear only once
// their backing store is wired, so every listed page serves a 200 — the CI
// smoke step depends on that.
func (s *Server) pages() []pageInfo {
	s.mu.Lock()
	store := s.store
	events := s.events
	federator := s.federator
	s.mu.Unlock()
	out := []pageInfo{
		{"/", "this index: every mounted admin page with a one-line description"},
		{"/healthz", "liveness probe"},
		{"/buildz", "build, runtime, and uptime information"},
		{"/metrics", "Prometheus-style exposition of every mounted metrics registry"},
		{"/tracez", "recent completed traces with per-stage latency breakdowns"},
		{"/loadz", "live broker load reports (outstanding, threshold, queue, hot)"},
		{"/poolz", "broker-pool membership: lease state, health, and failover counters"},
		{"/breakerz", "per-replica circuit-breaker states"},
		{"/limitz", "adaptive admission-limit snapshots"},
		{"/hotz", "hot keys: top-k frequency, hit ratio, latency, and workload skew"},
		{"/sloz", "per-class SLO burn rates, error budgets, and stage attribution"},
		{"/txnz", "active transactions with step/age/accesses, plus idempotency-table accounting"},
		{"/debug/pprof/", "standard net/http/pprof profiling handlers"},
	}
	if store != nil {
		out = append(out,
			pageInfo{"/seriesz", "raw time-series snapshots as JSON"},
			pageInfo{"/graphz", "SVG charts over the recorded time series"},
		)
	}
	if events != nil {
		out = append(out, pageInfo{"/eventz", "fleet event timeline: lease churn, breaker flips, limit cuts, drains"})
	}
	if federator != nil {
		out = append(out, pageInfo{"/fleetz", "fleet topology: pool members with scrape freshness, staleness, and builds"})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// handleIndex serves the admin page directory at exactly "/": one
// tab-separated "path<TAB>description" line per page, trivially parseable by
// the CI smoke step. Any other unmounted path still 404s.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "admin pages")
	for _, p := range s.pages() {
		fmt.Fprintf(w, "%s\t%s\n", p.Path, p.Desc)
	}
}

// --- /hotz ------------------------------------------------------------------

func (s *Server) handleHotz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sources := append([]namedHotKeySource(nil), s.hotkeys...)
	coalesce := append([]namedCoalesceSource(nil), s.coalesce...)
	s.mu.Unlock()

	limit := 0
	if v, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && v > 0 {
		limit = v
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(sources) == 0 && len(coalesce) == 0 {
		fmt.Fprintln(w, "hotz: no hot-key sources configured")
		return
	}
	sort.SliceStable(coalesce, func(i, j int) bool { return coalesce[i].service < coalesce[j].service })
	for _, nc := range coalesce {
		snap, ok := nc.src()
		if !ok {
			fmt.Fprintf(w, "service=%s coalescing disabled\n", nc.service)
			continue
		}
		total := snap.Flights + snap.Coalesced
		saved := 0.0
		if total > 0 {
			saved = float64(snap.Coalesced) / float64(total)
		}
		fmt.Fprintf(w, "service=%s coalesce: flights=%d coalesced=%d shared=%d inflight=%d backend_trips_saved=%.1f%%\n",
			nc.service, snap.Flights, snap.Coalesced, snap.Shared, snap.Inflight, 100*saved)
	}
	sort.SliceStable(sources, func(i, j int) bool { return sources[i].service < sources[j].service })
	for _, ns := range sources {
		snap, ok := ns.src()
		if !ok {
			fmt.Fprintf(w, "service=%s hot-key tracking disabled\n", ns.service)
			continue
		}
		fmt.Fprintf(w, "service=%s accesses=%d hit_ratio=%.3f skew=%.2f tracked=%d memory=%dB elapsed=%s\n",
			ns.service, snap.TotalAccesses, snap.HitRatio(), snap.Skew,
			len(snap.Keys), snap.MemoryBytes, snap.Elapsed.Round(time.Second))
		keys := snap.Keys
		if limit > 0 && len(keys) > limit {
			keys = keys[:limit]
		}
		for i, k := range keys {
			fmt.Fprintf(w, "  #%-3d key=%q count=%d(±%d) rate=%.2f/s hit_ratio=%.3f mean=%s p95=%s\n",
				i+1, k.Key, k.Count, k.Err, k.RatePerSec, k.HitRatio,
				trace.FormatDuration(time.Duration(k.MeanLatencyUs)*time.Microsecond),
				trace.FormatDuration(time.Duration(k.P95LatencyUs)*time.Microsecond))
		}
	}
}

// --- /sloz ------------------------------------------------------------------

func (s *Server) handleSloz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sources := append([]namedSLOSource(nil), s.slos...)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(sources) == 0 {
		fmt.Fprintln(w, "sloz: no SLO sources configured")
		return
	}
	sort.SliceStable(sources, func(i, j int) bool { return sources[i].service < sources[j].service })
	for _, ns := range sources {
		st, ok := ns.src()
		if !ok {
			fmt.Fprintf(w, "service=%s SLO evaluation disabled\n", ns.service)
			continue
		}
		fmt.Fprintf(w, "service=%s fast_window=%s slow_window=%s\n",
			ns.service, st.FastWindow, st.SlowWindow)
		for _, c := range st.Classes {
			fmt.Fprintf(w, "  class=%d state=%s since=%s requests(fast/slow)=%d/%d\n",
				c.Class, c.State, c.Since.Format(time.RFC3339), c.FastTotal, c.SlowTotal)
			fmt.Fprintf(w, "    latency: target=%s goal=%.3f burn(fast/slow)=%.2f/%.2f budget=%.3f\n",
				trace.FormatDuration(c.LatencyTarget), c.Latency.Goal,
				c.Latency.FastBurn, c.Latency.SlowBurn, c.Latency.Budget)
			fmt.Fprintf(w, "    availability: goal=%.3f burn(fast/slow)=%.2f/%.2f budget=%.3f\n",
				c.Availability.Goal,
				c.Availability.FastBurn, c.Availability.SlowBurn, c.Availability.Budget)
			for _, sh := range c.Stages {
				fmt.Fprintf(w, "    stage=%s share=%.3f total=%s\n",
					sh.Stage, sh.Share, trace.FormatDuration(sh.Total))
			}
		}
	}
}
