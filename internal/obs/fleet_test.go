package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"servicebroker/internal/fleet"
	"servicebroker/internal/metrics"
	"servicebroker/internal/registry"
)

func TestEventzEndpoint(t *testing.T) {
	s := New()
	if code, _ := fetch(t, s, "/eventz"); code != 404 {
		t.Fatalf("GET /eventz without a log = %d, want 404", code)
	}

	l := fleet.NewLog(8, nil)
	s.SetEventLog(l)
	l.Publish(fleet.Event{Kind: fleet.KindLeaseExpired, Service: "db", Member: "127.0.0.1:7101",
		Detail: "lease lapsed without renewal"})
	l.Publish(fleet.Event{Kind: fleet.KindBreakerOpen, Service: "db", Member: "127.0.0.1:7101",
		Detail: "dial refused", TraceID: 0xabc})

	body := get(t, s.Handler(), "/eventz")
	for _, want := range []string{
		"2 events (newest first)\n",
		"kind=lease_expired service=db member=127.0.0.1:7101 detail=\"lease lapsed without renewal\"",
		"kind=breaker_open",
		"trace=0000000000000abc", // hex form matching /tracez
		"ring: held=2 dropped=0\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/eventz missing %q in:\n%s", want, body)
		}
	}
	// Newest first: the breaker event precedes the lease expiry.
	if strings.Index(body, "breaker_open") > strings.Index(body, "lease_expired") {
		t.Errorf("/eventz not newest first:\n%s", body)
	}

	// ?n= bounds the page.
	limited := get(t, s.Handler(), "/eventz?n=1")
	if !strings.Contains(limited, "1 events") || strings.Contains(limited, "lease_expired") {
		t.Errorf("/eventz?n=1 did not limit to the newest event:\n%s", limited)
	}
}

// fleetTestMember serves a minimal admin plane for the federator to scrape.
func fleetTestMember(t *testing.T, exposition string) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(exposition))
	})
	mux.HandleFunc("/buildz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("test build\n"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestFleetzEndpoint(t *testing.T) {
	s := New()
	if code, _ := fetch(t, s, "/fleetz"); code != 404 {
		t.Fatalf("GET /fleetz without a federator = %d, want 404", code)
	}

	admin := fleetTestMember(t, "# TYPE requests counter\nrequests 3\n")
	fed := fleet.NewFederator(fleet.FederatorConfig{
		Discover: func() []fleet.MemberInfo {
			return []fleet.MemberInfo{{Name: "127.0.0.1:7101", AdminAddr: admin}}
		},
	})
	defer fed.Close()
	fed.ScrapeOnce(t.Context())
	s.SetFederator(fed)
	s.AddPoolSource("frontend", func() []registry.PoolView {
		return []registry.PoolView{{Service: "db", Addr: "127.0.0.1:7101", Source: "lease",
			State: "live", TTLRemaining: 2 * time.Second, Outstanding: 1, Threshold: 16}}
	})

	body := get(t, s.Handler(), "/fleetz")
	for _, want := range []string{
		"fleet: 1 members\n",
		"member=127.0.0.1:7101 admin=" + admin + " state=live series=1",
		"build=\"test build\"",
		"lease pool=frontend service=db addr=127.0.0.1:7101 source=lease state=live",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/fleetz missing %q in:\n%s", want, body)
		}
	}
}

func TestHealthzDraining(t *testing.T) {
	s := New()
	if code, body := fetch(t, s, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}

	s.SetDraining(true)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", rw.Code)
	}
	if rw.Header().Get("Retry-After") == "" {
		t.Fatal("draining /healthz missing Retry-After")
	}
	if !strings.Contains(rw.Body.String(), "draining") {
		t.Fatalf("draining /healthz body = %q", rw.Body.String())
	}

	s.SetDraining(false)
	if code, body := fetch(t, s, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz after drain cleared = %d %q, want 200 ok", code, body)
	}
}

// The merged /metrics document must stay valid exposition: one TYPE line per
// family even when a federated family collides with a local one, every
// federated sample labeled, and fleet rollups summing the members.
func TestMetricsFederatedNoDuplicateSeries(t *testing.T) {
	local := metrics.NewRegistry()
	local.Counter("requests").Add(2)

	a := fleetTestMember(t, "# TYPE frontend_requests counter\nfrontend_requests 10\n")
	b := fleetTestMember(t, "# TYPE frontend_requests counter\nfrontend_requests 32\n")
	fed := fleet.NewFederator(fleet.FederatorConfig{
		Discover: func() []fleet.MemberInfo {
			return []fleet.MemberInfo{
				{Name: "b1", AdminAddr: a},
				{Name: "b2", AdminAddr: b},
			}
		},
	})
	defer fed.Close()
	fed.ScrapeOnce(t.Context())

	s := New()
	s.MountRegistry("frontend.", local) // local frontend_requests collides with the federated family
	s.SetFederator(fed)

	body := get(t, s.Handler(), "/metrics")
	for _, want := range []string{
		"frontend_requests 2\n", // local, unlabeled
		`frontend_requests{broker="b1"} 10`,
		`frontend_requests{broker="b2"} 32`,
		`frontend_requests{broker="fleet"} 42`,
		`fleet_member_up{broker="b1"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if n := strings.Count(body, "# TYPE frontend_requests "); n != 1 {
		t.Errorf("frontend_requests typed %d times, want 1:\n%s", n, body)
	}
	// No duplicate series: every line (name + label set) appears once.
	lines := map[string]int{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series := line
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			series = line[:i]
		}
		lines[series]++
	}
	for series, n := range lines {
		if n > 1 {
			t.Errorf("series %q appears %d times", series, n)
		}
	}
}

func TestIndexListsFleetPages(t *testing.T) {
	s := New()
	_, body := fetch(t, s, "/")
	if strings.Contains(body, "/eventz") || strings.Contains(body, "/fleetz") {
		t.Fatalf("index lists fleet pages without wiring:\n%s", body)
	}
	s.SetEventLog(fleet.NewLog(0, nil))
	fed := fleet.NewFederator(fleet.FederatorConfig{})
	defer fed.Close()
	s.SetFederator(fed)
	_, body = fetch(t, s, "/")
	if !strings.Contains(body, "/eventz") || !strings.Contains(body, "/fleetz") {
		t.Fatalf("index missing fleet pages:\n%s", body)
	}
}
