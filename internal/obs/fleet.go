package obs

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"servicebroker/internal/fleet"
)

// SetEventLog wires the fleet event timeline backing /eventz.
func (s *Server) SetEventLog(l *fleet.Log) {
	s.mu.Lock()
	s.events = l
	s.mu.Unlock()
}

// SetFederator wires the fleet federator backing /fleetz and the federated
// section of /metrics.
func (s *Server) SetFederator(f *fleet.Federator) {
	s.mu.Lock()
	s.federator = f
	s.mu.Unlock()
}

// SetDraining flips the /healthz answer between "ok" and "draining": a
// daemon calls SetDraining(true) when it starts its graceful shutdown so a
// fleet scraper (or load balancer) can tell an intentional drain from a
// crash. A draining daemon answers 503 with a Retry-After hint.
func (s *Server) SetDraining(v bool) {
	s.mu.Lock()
	s.draining = v
	s.mu.Unlock()
}

// --- /eventz ----------------------------------------------------------------

func (s *Server) handleEventz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	log := s.events
	s.mu.Unlock()
	if log == nil {
		http.Error(w, "eventz: no event log configured", http.StatusNotFound)
		return
	}
	limit := 100
	if v, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && v > 0 {
		limit = v
	}
	events := log.Snapshot(limit)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%d events (newest first)\n", len(events))
	for _, e := range events {
		fmt.Fprintf(w, "seq=%d at=%s kind=%s", e.Seq, e.At.Format(time.RFC3339Nano), e.Kind)
		if e.Service != "" {
			fmt.Fprintf(w, " service=%s", e.Service)
		}
		if e.Member != "" {
			fmt.Fprintf(w, " member=%s", e.Member)
		}
		if e.Detail != "" {
			fmt.Fprintf(w, " detail=%q", e.Detail)
		}
		if e.TraceID != 0 {
			// The hex form /tracez prints, so the event links straight to
			// the stitched trace of the request that triggered it.
			fmt.Fprintf(w, " trace=%016x", e.TraceID)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "ring: held=%d dropped=%d\n", log.Len(), log.Dropped())
}

// --- /fleetz ----------------------------------------------------------------

func (s *Server) handleFleetz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fed := s.federator
	pools := append([]namedPoolSource(nil), s.pools...)
	s.mu.Unlock()
	if fed == nil {
		http.Error(w, "fleetz: no federator configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	members := fed.Members()
	fmt.Fprintf(w, "fleet: %d members\n", len(members))
	now := time.Now()
	for _, m := range members {
		state := "live"
		if m.Stale {
			state = "stale"
		}
		fmt.Fprintf(w, "member=%s admin=%s state=%s series=%d", m.Name, m.AdminAddr, state, m.Series)
		if m.LastGood.IsZero() {
			fmt.Fprint(w, " last_scrape=never")
		} else {
			fmt.Fprintf(w, " last_scrape=%s ago", now.Sub(m.LastGood).Round(time.Millisecond))
		}
		if m.Build != "" {
			fmt.Fprintf(w, " build=%q", m.Build)
		}
		if m.LastError != "" {
			fmt.Fprintf(w, " last_error=%q", m.LastError)
		}
		fmt.Fprintln(w)
	}
	// Lease state, utilization, and breaker health come from the same pool
	// sources /poolz renders: one page with the whole topology.
	for _, np := range pools {
		for _, v := range np.src() {
			state := "cool"
			if v.Hot {
				state = "hot"
			}
			fmt.Fprintf(w, "lease pool=%s service=%s addr=%s source=%s state=%s ttl=%s outstanding=%d/%d %s failovers=%d\n",
				np.name, v.Service, v.Addr, v.Source, v.State,
				v.TTLRemaining.Round(time.Millisecond), v.Outstanding, v.Threshold, state, v.Failovers)
		}
	}
}
