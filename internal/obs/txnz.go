package obs

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"servicebroker/internal/trace"
	"servicebroker/internal/txn"
)

// TxnStatus is one service's transaction-integrity state for /txnz: the
// tracker's active-transaction snapshot plus, when the broker runs an
// idempotency table, its accounting.
type TxnStatus struct {
	Tracker txn.Snapshot
	Idem    txn.IdemStats
	HasIdem bool
}

// TxnSource supplies a transaction status for /txnz. The bool is false when
// the broker runs without transaction tracking (no WithTransactions).
type TxnSource func() (TxnStatus, bool)

type namedTxnSource struct {
	service string
	src     TxnSource
}

// AddTxnSource registers a /txnz supplier for one service. Sources with no
// tracker render as a "disabled" line. Each render snapshots the tracker,
// which also runs its abandonment sweep — scraping the page keeps the active
// table honest even on an otherwise idle broker.
func (s *Server) AddTxnSource(service string, src TxnSource) {
	if src == nil {
		return
	}
	s.mu.Lock()
	s.txns = append(s.txns, namedTxnSource{service: service, src: src})
	s.mu.Unlock()
}

// --- /txnz ------------------------------------------------------------------

func (s *Server) handleTxnz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sources := append([]namedTxnSource(nil), s.txns...)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(sources) == 0 {
		fmt.Fprintln(w, "txnz: no transaction sources configured")
		return
	}
	sort.SliceStable(sources, func(i, j int) bool { return sources[i].service < sources[j].service })
	for _, ns := range sources {
		st, ok := ns.src()
		if !ok {
			fmt.Fprintf(w, "service=%s transaction tracking disabled\n", ns.service)
			continue
		}
		tr := st.Tracker
		fmt.Fprintf(w, "service=%s active=%d completed=%d aborted=%d abandoned=%d compensations(run/failed)=%d/%d ttl=%s\n",
			ns.service, len(tr.Active), tr.Completed, tr.Aborted, tr.Abandoned,
			tr.CompensationsRun, tr.CompensationsFailed, formatTTL(tr.TTL))
		if st.HasIdem {
			id := st.Idem
			fmt.Fprintf(w, "  idempotency: size=%d/%d ttl=%s hits=%d coalesced=%d recorded=%d restored=%d evicted=%d\n",
				id.Size, id.Capacity, formatTTL(id.TTL),
				id.Hits, id.Coalesced, id.Recorded, id.Restored, id.Evicted)
		}
		for _, a := range tr.Active {
			fmt.Fprintf(w, "  txn=%s step=%d age=%s idle=%s accesses=%d compensations=%d\n",
				a.ID, a.Step, trace.FormatDuration(a.Age), trace.FormatDuration(a.Idle),
				a.Accesses, a.Compensations)
		}
	}
}

// formatTTL renders a TTL where zero means "none configured".
func formatTTL(d time.Duration) string {
	if d <= 0 {
		return "none"
	}
	return trace.FormatDuration(d)
}
