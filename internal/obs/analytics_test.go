package obs

import (
	"bufio"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"servicebroker/internal/qos"
	"servicebroker/internal/sketch"
	"servicebroker/internal/slo"
	"servicebroker/internal/tsdb"
)

func fetch(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Result().StatusCode, string(body)
}

func TestIndexListsPagesAndAllServe200(t *testing.T) {
	s := New()
	s.SetTSDB(tsdb.New(0))
	code, body := fetch(t, s, "/")
	if code != 200 {
		t.Fatalf("GET / = %d", code)
	}
	var paths []string
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		path, desc, ok := strings.Cut(line, "\t")
		if !ok || !strings.HasPrefix(path, "/") {
			continue
		}
		if desc == "" {
			t.Fatalf("page %q has no description", path)
		}
		paths = append(paths, path)
	}
	if len(paths) < 10 {
		t.Fatalf("index lists %d pages, want ≥ 10:\n%s", len(paths), body)
	}
	for _, p := range paths {
		code, pageBody := fetch(t, s, p)
		if code != 200 {
			t.Fatalf("GET %s = %d, want 200", p, code)
		}
		if strings.TrimSpace(pageBody) == "" {
			t.Fatalf("GET %s returned an empty body", p)
		}
	}
	for _, p := range []string{"/seriesz", "/graphz"} {
		if !strings.Contains(body, p) {
			t.Fatalf("index with a tsdb store must list %s:\n%s", p, body)
		}
	}
}

func TestIndexOmitsTSDBPagesWithoutStore(t *testing.T) {
	s := New()
	_, body := fetch(t, s, "/")
	if strings.Contains(body, "/seriesz") || strings.Contains(body, "/graphz") {
		t.Fatalf("index without a store must not list tsdb pages:\n%s", body)
	}
}

func TestIndexUnknownPath404s(t *testing.T) {
	s := New()
	if code, _ := fetch(t, s, "/nonsense"); code != 404 {
		t.Fatalf("GET /nonsense = %d, want 404", code)
	}
}

func TestHotz(t *testing.T) {
	s := New()
	if _, body := fetch(t, s, "/hotz"); !strings.Contains(body, "no hot-key sources") {
		t.Fatalf("empty /hotz = %q", body)
	}

	tr := sketch.NewTracker(sketch.Config{TopK: 4, Shards: 1})
	for i := 0; i < 9; i++ {
		tr.RecordAccess("movie-42", i > 0)
		tr.RecordLatency("movie-42", 2*time.Millisecond)
	}
	s.AddHotKeySource("db", func() (sketch.Snapshot, bool) { return tr.Snapshot(), true })
	s.AddHotKeySource("files", func() (sketch.Snapshot, bool) { return sketch.Snapshot{}, false })

	_, body := fetch(t, s, "/hotz")
	for _, want := range []string{"service=db", `key="movie-42"`, "count=9", "service=files hot-key tracking disabled"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/hotz missing %q:\n%s", want, body)
		}
	}
}

func TestSloz(t *testing.T) {
	s := New()
	if _, body := fetch(t, s, "/sloz"); !strings.Contains(body, "no SLO sources") {
		t.Fatalf("empty /sloz = %q", body)
	}

	eng := slo.New(slo.Config{
		Objectives: []slo.Objective{{Class: qos.Class1, LatencyTarget: time.Second, LatencyGoal: 0.9, AvailabilityGoal: 0.99}},
		Logger:     slog.Default(),
	})
	eng.Record(qos.Class1, time.Millisecond, true)
	s.AddSLOSource("db", func() (slo.Status, bool) { return eng.Status(), true })
	s.AddSLOSource("files", func() (slo.Status, bool) { return slo.Status{}, false })

	_, body := fetch(t, s, "/sloz")
	for _, want := range []string{"service=db", "class=1 state=ok", "latency:", "availability:", "service=files SLO evaluation disabled"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/sloz missing %q:\n%s", want, body)
		}
	}
}
