package obs

import (
	"context"
	"strings"
	"testing"
	"time"

	"servicebroker/internal/qos"
	"servicebroker/internal/txn"
)

func TestTxnzNoSources(t *testing.T) {
	s := New()
	code, body := fetch(t, s, "/txnz")
	if code != 200 || !strings.Contains(body, "no transaction sources") {
		t.Fatalf("GET /txnz = %d %q", code, body)
	}
	// The index lists /txnz unconditionally — the page always serves a 200
	// non-empty body, which is what the CI smoke step checks.
	if _, idx := fetch(t, s, "/"); !strings.Contains(idx, "/txnz") {
		t.Fatal("/txnz not on the index")
	}
}

func TestTxnzRendersTrackerAndIdemState(t *testing.T) {
	tracker := txn.NewTracker()
	tracker.SetTTL(time.Minute)
	tracker.Observe("order-7", 2)
	tracker.RegisterCompensation("order-7", 2, "release", func(context.Context) error { return nil })
	tracker.Observe("done-1", 1)
	tracker.Complete("done-1")
	tracker.Observe("bad-1", 1)
	tracker.Abort("bad-1")

	table := txn.NewIdemTable(32, time.Minute)
	_, _, tk := table.Acquire(txn.IdemKey("order-7", 2, "charge"))
	tk.Complete(txn.Outcome{Status: 1, Fidelity: qos.FidelityFull, Payload: []byte("ok")})
	table.Acquire(txn.IdemKey("order-7", 2, "charge")) // a replay hit

	s := New()
	s.AddTxnSource("db", func() (TxnStatus, bool) {
		st, ok := table.Stats(), true
		return TxnStatus{Tracker: tracker.Snapshot(), Idem: st, HasIdem: ok}, true
	})
	s.AddTxnSource("files", func() (TxnStatus, bool) { return TxnStatus{}, false })

	code, body := fetch(t, s, "/txnz")
	if code != 200 {
		t.Fatalf("GET /txnz = %d", code)
	}
	for _, want := range []string{
		"service=db",
		"active=1",
		"completed=1",
		"aborted=1",
		"txn=order-7 step=2",
		"compensations=1",
		"idempotency: size=1/32",
		"hits=1",
		"recorded=1",
		"service=files transaction tracking disabled",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/txnz missing %q:\n%s", want, body)
		}
	}
}
