// Package obs is the framework's operational introspection plane: a small
// admin HTTP server that any daemon (brokerd, frontend, backendd, sbexp) can
// mount behind a -admin flag. It exposes:
//
//	/metrics  Prometheus-style text exposition of every mounted
//	          metrics.Registry, including histogram buckets
//	/healthz  liveness probe
//	/tracez   recent completed traces with per-stage latency breakdowns,
//	          filterable by service and QoS class
//	/loadz    live broker.LoadReport lines from registered load sources,
//	          with age and staleness when the source stamps arrival times
//	/poolz    broker-pool membership from registered pool sources: lease
//	          state, TTLs, piggybacked loads, and failover counters
//	/breakerz per-replica circuit-breaker states from registered breaker
//	          sources (state, consecutive failures, totals, last transition)
//	/limitz   adaptive admission-limit snapshots from registered limit
//	          sources (current limit, bounds, latency target, cut counts)
//	/hotz     hot-key analytics from registered sketch trackers (top-k keys
//	          with rates, hit ratios, p95 latency, and estimated Zipf skew)
//	/sloz     per-QoS-class SLO state from registered engines (burn rates,
//	          error budgets, alert state, per-stage budget attribution)
//	/txnz     transaction integrity from registered txn sources: active
//	          transactions (step, age, accesses), completed/aborted/abandoned
//	          and compensation totals, idempotency-table accounting

//	/fleetz   fleet topology from a wired federator: every pool member with
//	          scrape freshness, staleness, build, plus lease/breaker context
//	/eventz   bounded fleet event timeline (lease churn, breaker flips, AIMD
//	          cuts, SLO transitions, drains) with trace-ID links
//	/         an index of every mounted page with one-line descriptions
//	/debug/pprof/...  the standard net/http/pprof handlers
//
// The server is stdlib-only and safe to mount in front of live registries:
// rendering works from point-in-time View snapshots, never from live metric
// objects.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"regexp"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"servicebroker/internal/broker"
	"servicebroker/internal/cache"
	"servicebroker/internal/fleet"
	"servicebroker/internal/metrics"
	"servicebroker/internal/overload"
	"servicebroker/internal/registry"
	"servicebroker/internal/resilience"
	"servicebroker/internal/trace"
	"servicebroker/internal/tsdb"
)

// LoadSource supplies live broker load summaries for /loadz. A brokerd
// process registers one source per hosted broker (or one returning all of
// them); the centralized front end can register its listener's view.
type LoadSource func() []broker.LoadReport

// AgedLoad is one /loadz row with freshness information: a front-end
// listener knows when each report arrived and whether it has outlived the
// load TTL (the broker stopped reporting — stale rows are shown for
// diagnosis but no longer steer admission).
type AgedLoad struct {
	Report broker.LoadReport
	Age    time.Duration
	Stale  bool
}

// AgedLoadSource supplies age-stamped load reports for /loadz (the
// centralized front end's listener view).
type AgedLoadSource func() []AgedLoad

// PoolSource supplies broker-pool membership rows for /poolz: lease state
// merged with per-member routing health from a frontend pool or a bare
// registry.
type PoolSource func() []registry.PoolView

// BreakerSource supplies per-replica circuit-breaker snapshots for /breakerz.
// A brokerd process registers one source per broker with breakers enabled.
type BreakerSource func() []resilience.Snapshot

// LimitSource supplies an adaptive-admission snapshot for /limitz. The bool
// is false when the broker runs a static threshold (no limiter configured).
type LimitSource func() (overload.Snapshot, bool)

// Server is the admin endpoint. The zero value is not usable; call New.
// Mount* and Add* calls are safe at any time, including while serving.
type Server struct {
	mux   *http.ServeMux
	start time.Time

	mu        sync.Mutex
	mounts    []mount
	rec       *trace.Recorder
	sources   []LoadSource
	aged      []AgedLoadSource
	pools     []namedPoolSource
	breakers  []namedBreakerSource
	limits    []namedLimitSource
	hotkeys   []namedHotKeySource
	coalesce  []namedCoalesceSource
	slos      []namedSLOSource
	txns      []namedTxnSource
	store     *tsdb.Store
	events    *fleet.Log
	federator *fleet.Federator
	draining  bool

	srv *http.Server
	ln  net.Listener
}

type mount struct {
	prefix string
	reg    *metrics.Registry
	// view is set instead of reg for dynamic mounts (MountView): the
	// snapshot is computed per scrape rather than read from a registry.
	view func() metrics.View
}

type namedBreakerSource struct {
	service string
	src     BreakerSource
}

type namedLimitSource struct {
	service string
	src     LimitSource
}

type namedPoolSource struct {
	name string
	src  PoolSource
}

// New returns an admin server with all endpoints registered.
func New() *Server {
	s := &Server{mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/buildz", s.handleBuildz)
	s.mux.HandleFunc("/tracez", s.handleTracez)
	s.mux.HandleFunc("/loadz", s.handleLoadz)
	s.mux.HandleFunc("/poolz", s.handlePoolz)
	s.mux.HandleFunc("/breakerz", s.handleBreakerz)
	s.mux.HandleFunc("/limitz", s.handleLimitz)
	s.mux.HandleFunc("/seriesz", s.handleSeriesz)
	s.mux.HandleFunc("/graphz", s.handleGraphz)
	s.mux.HandleFunc("/hotz", s.handleHotz)
	s.mux.HandleFunc("/sloz", s.handleSloz)
	s.mux.HandleFunc("/txnz", s.handleTxnz)
	s.mux.HandleFunc("/eventz", s.handleEventz)
	s.mux.HandleFunc("/fleetz", s.handleFleetz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// MountRegistry exposes reg's metrics on /metrics with every name prefixed
// by prefix (use "broker.db." to get broker_db_queue_wait and friends, or ""
// for names that are already fully qualified). Mounting the same registry
// twice under different prefixes exports it twice.
func (s *Server) MountRegistry(prefix string, reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.mounts = append(s.mounts, mount{prefix: prefix, reg: reg})
	s.mu.Unlock()
}

// MountView exposes a dynamically computed metrics snapshot on /metrics,
// for stats that live outside a metrics.Registry (per-shard cache counters,
// for example). fn is called once per scrape.
func (s *Server) MountView(prefix string, fn func() metrics.View) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	s.mounts = append(s.mounts, mount{prefix: prefix, view: fn})
	s.mu.Unlock()
}

// MountCacheShards exposes per-shard result-cache counters on /metrics as
// cache_shard<N>_{hits,misses,evictions,expired,stale_hits} counters and
// cache_shard<N>_{entries,bytes} gauges, making key-space skew across the
// cache's lock domains visible. stats is typically broker.CacheShardStats.
func (s *Server) MountCacheShards(prefix string, stats func() []cache.ShardStats) {
	if stats == nil {
		return
	}
	s.MountView(prefix, func() metrics.View {
		v := metrics.View{
			Counters: make(map[string]int64),
			Gauges:   make(map[string]int64),
		}
		for _, st := range stats() {
			p := fmt.Sprintf("cache_shard%d_", st.Shard)
			v.Counters[p+"hits"] = st.Hits
			v.Counters[p+"misses"] = st.Misses
			v.Counters[p+"evictions"] = st.Evictions
			v.Counters[p+"expired"] = st.Expired
			v.Counters[p+"stale_hits"] = st.StaleHits
			v.Gauges[p+"entries"] = int64(st.Entries)
			v.Gauges[p+"bytes"] = st.Bytes
		}
		return v
	})
}

// SetRecorder wires the trace recorder backing /tracez.
func (s *Server) SetRecorder(rec *trace.Recorder) {
	s.mu.Lock()
	s.rec = rec
	s.mu.Unlock()
}

// SetTSDB wires the time-series store backing /seriesz and /graphz.
func (s *Server) SetTSDB(store *tsdb.Store) {
	s.mu.Lock()
	s.store = store
	s.mu.Unlock()
}

// AddLoadSource registers a /loadz supplier.
func (s *Server) AddLoadSource(src LoadSource) {
	if src == nil {
		return
	}
	s.mu.Lock()
	s.sources = append(s.sources, src)
	s.mu.Unlock()
}

// AddAgedLoadSource registers an age-stamped /loadz supplier. Rows carry
// their age and a "stale" marker once the report outlives the load TTL.
func (s *Server) AddAgedLoadSource(src AgedLoadSource) {
	if src == nil {
		return
	}
	s.mu.Lock()
	s.aged = append(s.aged, src)
	s.mu.Unlock()
}

// AddPoolSource registers a /poolz supplier under a display name (typically
// the deployment model or front-end instance).
func (s *Server) AddPoolSource(name string, src PoolSource) {
	if src == nil {
		return
	}
	s.mu.Lock()
	s.pools = append(s.pools, namedPoolSource{name: name, src: src})
	s.mu.Unlock()
}

// AddBreakerSource registers a /breakerz supplier for one service. Sources
// returning nil (breakers disabled) render as a "no breakers" line.
func (s *Server) AddBreakerSource(service string, src BreakerSource) {
	if src == nil {
		return
	}
	s.mu.Lock()
	s.breakers = append(s.breakers, namedBreakerSource{service: service, src: src})
	s.mu.Unlock()
}

// AddLimitSource registers a /limitz supplier for one service. Sources whose
// broker runs a static threshold render as a "static" line.
func (s *Server) AddLimitSource(service string, src LimitSource) {
	if src == nil {
		return
	}
	s.mu.Lock()
	s.limits = append(s.limits, namedLimitSource{service: service, src: src})
	s.mu.Unlock()
}

// Handler returns the admin mux (useful for embedding in tests or an
// existing server).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr ("127.0.0.1:0" for ephemeral) and serves in a
// background goroutine. It returns once the listener is bound, so Addr is
// immediately valid.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address, or nil before Start.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the HTTP server if Start was called.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		// Distinguish an intentional graceful shutdown from a crash: probes
		// should retry elsewhere, not page anyone.
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// --- /buildz ----------------------------------------------------------------

func (s *Server) handleBuildz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	version, goVersion := "(devel)", runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
	}
	fmt.Fprintf(w, "version=%s\n", version)
	fmt.Fprintf(w, "go=%s\n", goVersion)
	fmt.Fprintf(w, "start=%s\n", s.start.Format(time.RFC3339))
	fmt.Fprintf(w, "uptime=%s\n", time.Since(s.start).Round(time.Millisecond))
	fmt.Fprintf(w, "goroutines=%d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "gomaxprocs=%d\n", runtime.GOMAXPROCS(0))
}

// --- /metrics -------------------------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	mounts := append([]mount(nil), s.mounts...)
	fed := s.federator
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	seen := make(map[string]bool)
	for _, m := range mounts {
		v := m.view
		if v == nil {
			v = m.reg.View
		}
		view := v()
		WriteProm(&b, m.prefix, view)
		// Record locally emitted family names so the federated section never
		// repeats a # TYPE line (duplicate metadata is a parse error for
		// strict OpenMetrics consumers).
		for name := range view.Counters {
			seen[PromName(m.prefix+name)] = true
		}
		for name := range view.Gauges {
			seen[PromName(m.prefix+name)] = true
		}
		for name := range view.Histograms {
			seen[PromName(m.prefix+name)] = true
		}
	}
	if fed != nil {
		fed.WriteMetrics(&b, seen)
	}
	if b.Len() == 0 {
		b.WriteString("# no metrics registries mounted\n")
	}
	_, _ = w.Write([]byte(b.String()))
}

// WriteProm renders one registry view in the Prometheus text exposition
// format. Metric names get prefix prepended and are then sanitized (dots and
// other invalid characters become underscores). Histograms emit cumulative
// _bucket{le="..."} lines with upper bounds in seconds, plus _sum and _count.
func WriteProm(b *strings.Builder, prefix string, v metrics.View) {
	names := make([]string, 0, len(v.Counters))
	for name := range v.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(prefix + name)
		fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", pn, pn, v.Counters[name])
	}

	names = names[:0]
	for name := range v.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(prefix + name)
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", pn, pn, v.Gauges[name])
	}

	names = names[:0]
	for name := range v.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap := v.Histograms[name]
		pn := PromName(prefix + name)
		fmt.Fprintf(b, "# TYPE %s histogram\n", pn)
		var cum int64
		for i, n := range snap.Buckets {
			cum += n
			if n == 0 {
				continue
			}
			le := strconv.FormatFloat(metrics.BucketUpperBound(i).Seconds(), 'g', -1, 64)
			fmt.Fprintf(b, "%s_bucket{le=%q} %d", pn, le, cum)
			// OpenMetrics exemplar: the bucket's most recent traced
			// observation, linking the latency band to a /tracez entry.
			if i < len(snap.Exemplars) && snap.Exemplars[i].TraceID != 0 {
				ex := snap.Exemplars[i]
				fmt.Fprintf(b, " # {trace_id=\"%016x\"} %s", ex.TraceID,
					strconv.FormatFloat(ex.Value.Seconds(), 'g', -1, 64))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", pn, snap.Count)
		fmt.Fprintf(b, "%s_sum %s\n", pn, strconv.FormatFloat(snap.Sum.Seconds(), 'g', -1, 64))
		fmt.Fprintf(b, "%s_count %d\n", pn, snap.Count)
	}
}

// PromName sanitizes a dotted metric name into the Prometheus name charset
// [a-zA-Z0-9_:], mapping every other rune to '_' and prefixing '_' when the
// name would start with a digit.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// --- /tracez --------------------------------------------------------------

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rec := s.rec
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if rec == nil {
		fmt.Fprintln(w, "tracez: no trace recorder configured")
		return
	}

	q := r.URL.Query()
	f := trace.Filter{Service: q.Get("service"), Limit: 100}
	if v := q.Get("class"); v != "" {
		if c, err := strconv.Atoi(v); err == nil {
			f.Class = c
		}
	}
	if v := q.Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			f.Limit = n
		}
	}
	if v := q.Get("min"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			f.MinDuration = d
		}
	}

	traces := rec.Snapshot(f)
	fmt.Fprintf(w, "%d traces (newest first)\n", len(traces))
	for _, t := range traces {
		fmt.Fprintf(w, "trace %s service=%s class=%d status=%s dur=%s",
			t.ID, t.Service, t.Class, t.Status, trace.FormatDuration(t.Duration()))
		if t.Note != "" {
			fmt.Fprintf(w, " note=%q", t.Note)
		}
		fmt.Fprintln(w)
		for _, sp := range t.Spans {
			fmt.Fprintf(w, "  stage=%s dur=%s", sp.Stage, trace.FormatDuration(sp.Duration()))
			if sp.Broker != "" {
				fmt.Fprintf(w, " broker=%s", sp.Broker)
			}
			if sp.Note != "" {
				fmt.Fprintf(w, " note=%q", sp.Note)
			}
			fmt.Fprintln(w)
		}
	}
	// Footer: retention accounting, so a truncated or sampled window is
	// never mistaken for the complete history.
	sampled, discarded := rec.SampleCounts()
	fmt.Fprintf(w, "ring: held=%d evicted=%d sampled=%d discarded=%d\n",
		rec.Len(), rec.Evicted(), sampled, discarded)
}

// --- /seriesz and /graphz ---------------------------------------------------

func (s *Server) handleSeriesz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	store := s.store
	s.mu.Unlock()
	if store == nil {
		http.Error(w, "seriesz: no time-series store configured", http.StatusNotFound)
		return
	}
	series := store.Snapshot(r.URL.Query().Get("match"))
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(struct {
		Series []tsdb.Series `json:"series"`
	}{Series: series})
}

// graphzMaxCharts caps one /graphz page; narrow with ?match= to see more.
const graphzMaxCharts = 24

// classSuffix strips the per-class infix so class variants of one metric
// group onto the same chart.
var classSuffix = regexp.MustCompile(`_class_\d+`)

func (s *Server) handleGraphz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	store := s.store
	s.mu.Unlock()
	if store == nil {
		http.Error(w, "graphz: no time-series store configured", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	width, height := 640, 220
	if v, err := strconv.Atoi(q.Get("w")); err == nil && v > 0 {
		width = v
	}
	if v, err := strconv.Atoi(q.Get("h")); err == nil && v > 0 {
		height = v
	}
	series := store.Snapshot(q.Get("match"))

	// Group per-class variants of one metric onto a single multi-line chart:
	// "broker.db.queue_wait_class_2.mean" charts with its base series under
	// the group title "broker.db.queue_wait.mean".
	groups := make(map[string][]tsdb.Series)
	var order []string
	for _, sr := range series {
		key := classSuffix.ReplaceAllString(sr.Name, "")
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], sr)
	}
	sort.Strings(order)
	if len(order) > graphzMaxCharts {
		order = order[:graphzMaxCharts]
	}

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<!DOCTYPE html>\n<html><head><title>graphz</title></head>\n")
	fmt.Fprintf(w, "<body style=\"background:#f9f9f7;margin:16px;font-family:system-ui,-apple-system,'Segoe UI',sans-serif\">\n")
	if len(order) == 0 {
		fmt.Fprintf(w, "<p style=\"color:#52514e\">no series yet — is the sampler running?</p>\n")
	}
	for _, key := range order {
		fmt.Fprintf(w, "<div style=\"margin-bottom:12px\">%s</div>\n", tsdb.ChartSVG(key, groups[key], width, height))
	}
	fmt.Fprintf(w, "</body></html>\n")
}

// --- /breakerz ------------------------------------------------------------

func (s *Server) handleBreakerz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	breakers := append([]namedBreakerSource(nil), s.breakers...)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(breakers) == 0 {
		fmt.Fprintln(w, "breakerz: no breaker sources configured")
		return
	}
	sort.SliceStable(breakers, func(i, j int) bool { return breakers[i].service < breakers[j].service })
	for _, nb := range breakers {
		snaps := nb.src()
		if snaps == nil {
			fmt.Fprintf(w, "service=%s breakers disabled\n", nb.service)
			continue
		}
		for _, sn := range snaps {
			fmt.Fprintf(w, "service=%s replica=%s state=%s consecutive_failures=%d successes=%d failures=%d opens=%d",
				nb.service, sn.Name, sn.State, sn.ConsecutiveFailures, sn.Successes, sn.Failures, sn.Opens)
			if !sn.LastTransition.IsZero() {
				fmt.Fprintf(w, " last_transition=%s", sn.LastTransition.Format(time.RFC3339Nano))
			}
			fmt.Fprintln(w)
		}
	}
}

// --- /limitz --------------------------------------------------------------

func (s *Server) handleLimitz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	limits := append([]namedLimitSource(nil), s.limits...)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(limits) == 0 {
		fmt.Fprintln(w, "limitz: no limit sources configured")
		return
	}
	sort.SliceStable(limits, func(i, j int) bool { return limits[i].service < limits[j].service })
	for _, nl := range limits {
		sn, ok := nl.src()
		if !ok {
			fmt.Fprintf(w, "service=%s static threshold (adaptive limiting disabled)\n", nl.service)
			continue
		}
		fmt.Fprintf(w, "service=%s limit=%d min=%d max=%d target=%s healthy=%d breaches=%d cuts=%d",
			nl.service, sn.Limit, sn.Min, sn.Max, sn.Target, sn.Healthy, sn.Breaches, sn.Cuts)
		if !sn.LastCut.IsZero() {
			fmt.Fprintf(w, " last_cut=%s", sn.LastCut.Format(time.RFC3339Nano))
		}
		fmt.Fprintln(w)
	}
}

// --- /loadz ---------------------------------------------------------------

func (s *Server) handleLoadz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sources := append([]LoadSource(nil), s.sources...)
	aged := append([]AgedLoadSource(nil), s.aged...)
	s.mu.Unlock()

	// Plain sources render as ageless rows; aged sources add freshness.
	var rows []AgedLoad
	for _, src := range sources {
		for _, lr := range src() {
			rows = append(rows, AgedLoad{Report: lr, Age: -1})
		}
	}
	for _, src := range aged {
		rows = append(rows, src()...)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Report.Service < rows[j].Report.Service })

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(sources) == 0 && len(aged) == 0 {
		fmt.Fprintln(w, "loadz: no load sources configured")
		return
	}
	for _, row := range rows {
		lr := row.Report
		fmt.Fprintf(w, "service=%s outstanding=%d threshold=%d queue=%d hot=%v",
			lr.Service, lr.Outstanding, lr.Threshold, lr.QueueLen, lr.Hot)
		if row.Age >= 0 {
			fmt.Fprintf(w, " age=%s", row.Age.Round(time.Millisecond))
			if row.Stale {
				fmt.Fprint(w, " stale")
			}
		}
		fmt.Fprintln(w)
	}
}

// --- /poolz ---------------------------------------------------------------

func (s *Server) handlePoolz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	pools := append([]namedPoolSource(nil), s.pools...)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(pools) == 0 {
		fmt.Fprintln(w, "poolz: no pool sources configured")
		return
	}
	sort.SliceStable(pools, func(i, j int) bool { return pools[i].name < pools[j].name })
	for _, np := range pools {
		views := np.src()
		if len(views) == 0 {
			fmt.Fprintf(w, "pool=%s (no members)\n", np.name)
			continue
		}
		for _, v := range views {
			state := "cool"
			if v.Hot {
				state = "hot"
			}
			fmt.Fprintf(w, "pool=%s service=%s addr=%s source=%s state=%s ttl=%s renewals=%d outstanding=%d/%d queue=%d %s failures=%d failovers=%d",
				np.name, v.Service, v.Addr, v.Source, v.State,
				v.TTLRemaining.Round(time.Millisecond), v.Renewals,
				v.Outstanding, v.Threshold, v.QueueLen, state, v.Failures, v.Failovers)
			if v.LastError != "" {
				fmt.Fprintf(w, " last_error=%q", v.LastError)
			}
			fmt.Fprintln(w)
		}
	}
}
