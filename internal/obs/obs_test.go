package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"servicebroker/internal/broker"
	"servicebroker/internal/cache"
	"servicebroker/internal/metrics"
	"servicebroker/internal/overload"
	"servicebroker/internal/registry"
	"servicebroker/internal/resilience"
	"servicebroker/internal/trace"
)

func get(t *testing.T, h http.Handler, path string) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, rw.Code)
	}
	return rw.Body.String()
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"broker.db.queue_wait": "broker_db_queue_wait",
		"frontend.requests":    "frontend_requests",
		"plain":                "plain",
		"7seconds":             "_7seconds",
		"a-b c":                "a_b_c",
		"ns:sub.metric":        "ns:sub_metric",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("requests").Add(7)
	reg.Gauge("queue_len").Set(3)
	h := reg.Histogram("queue_wait")
	h.Observe(50 * time.Microsecond)
	h.Observe(200 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	s := New()
	s.MountRegistry("broker.db.", reg)
	body := get(t, s.Handler(), "/metrics")

	for _, want := range []string{
		"# TYPE broker_db_requests counter",
		"broker_db_requests 7",
		"# TYPE broker_db_queue_len gauge",
		"broker_db_queue_len 3",
		"# TYPE broker_db_queue_wait histogram",
		`broker_db_queue_wait_bucket{le="+Inf"} 3`,
		"broker_db_queue_wait_count 3",
		"broker_db_queue_wait_sum ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// The bucket lines must be cumulative: the last finite bucket that
	// appears carries the full count.
	var lastBucket string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "broker_db_queue_wait_bucket{le=") &&
			!strings.Contains(line, "+Inf") {
			lastBucket = line
		}
	}
	if lastBucket == "" {
		t.Fatalf("/metrics has no finite bucket lines:\n%s", body)
	}
	if !strings.HasSuffix(lastBucket, " 3") {
		t.Errorf("last finite bucket not cumulative: %q", lastBucket)
	}
}

func TestMetricsMultipleMounts(t *testing.T) {
	a, b := metrics.NewRegistry(), metrics.NewRegistry()
	a.Counter("requests").Inc()
	b.Counter("requests").Add(2)

	s := New()
	s.MountRegistry("broker.db.", a)
	s.MountRegistry("frontend.", b)
	body := get(t, s.Handler(), "/metrics")
	if !strings.Contains(body, "broker_db_requests 1") {
		t.Errorf("missing prefixed broker counter:\n%s", body)
	}
	if !strings.Contains(body, "frontend_requests 2") {
		t.Errorf("missing prefixed frontend counter:\n%s", body)
	}
}

func TestTracezEndpoint(t *testing.T) {
	rec := trace.NewRecorder()
	for i, svc := range []string{"db", "db", "mail"} {
		tr := rec.Start(0, svc, i%2+1)
		span := tr.StartSpan(trace.StageQueue)
		span.End()
		tr.StartSpan(trace.StageBackend).EndNote("row fetch")
		if svc == "mail" {
			tr.SetStatus("dropped")
			tr.SetNote("threshold")
		}
		tr.Finish()
	}

	s := New()
	s.SetRecorder(rec)

	body := get(t, s.Handler(), "/tracez")
	if !strings.Contains(body, "3 traces") {
		t.Errorf("want 3 traces, got:\n%s", body)
	}
	if !strings.Contains(body, "stage=queue") || !strings.Contains(body, "stage=backend") {
		t.Errorf("missing stage lines:\n%s", body)
	}
	if !strings.Contains(body, `note="row fetch"`) {
		t.Errorf("missing span note:\n%s", body)
	}
	if !strings.Contains(body, `status=dropped`) || !strings.Contains(body, `note="threshold"`) {
		t.Errorf("missing dropped trace annotations:\n%s", body)
	}

	body = get(t, s.Handler(), "/tracez?service=mail")
	if !strings.Contains(body, "1 traces") || strings.Contains(body, "service=db") {
		t.Errorf("service filter failed:\n%s", body)
	}
	body = get(t, s.Handler(), "/tracez?service=db&class=1&n=1")
	if !strings.Contains(body, "1 traces") {
		t.Errorf("class+limit filter failed:\n%s", body)
	}
}

func TestTracezNoRecorder(t *testing.T) {
	body := get(t, New().Handler(), "/tracez")
	if !strings.Contains(body, "no trace recorder") {
		t.Errorf("want placeholder, got:\n%s", body)
	}
}

func TestLoadzEndpoint(t *testing.T) {
	s := New()
	body := get(t, s.Handler(), "/loadz")
	if !strings.Contains(body, "no load sources") {
		t.Errorf("want placeholder, got:\n%s", body)
	}

	s.AddLoadSource(func() []broker.LoadReport {
		return []broker.LoadReport{
			{Service: "mail", Outstanding: 1, Threshold: 8, QueueLen: 0},
			{Service: "db", Outstanding: 5, Threshold: 10, QueueLen: 2, Hot: true},
		}
	})
	body = get(t, s.Handler(), "/loadz")
	want := "service=db outstanding=5 threshold=10 queue=2 hot=true\nservice=mail outstanding=1 threshold=8 queue=0 hot=false\n"
	if body != want {
		t.Errorf("loadz = %q, want %q", body, want)
	}
}

func TestLoadzAgedRows(t *testing.T) {
	s := New()
	s.AddAgedLoadSource(func() []AgedLoad {
		return []AgedLoad{
			{Report: broker.LoadReport{Service: "db", Outstanding: 3, Threshold: 16}, Age: 1200 * time.Millisecond},
			{Report: broker.LoadReport{Service: "mail", Outstanding: 0, Threshold: 8}, Age: 20 * time.Second, Stale: true},
		}
	})
	body := get(t, s.Handler(), "/loadz")
	for _, want := range []string{
		"service=db outstanding=3 threshold=16 queue=0 hot=false age=1.2s\n",
		"service=mail outstanding=0 threshold=8 queue=0 hot=false age=20s stale\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("loadz missing %q, got:\n%s", want, body)
		}
	}
}

func TestPoolzEndpoint(t *testing.T) {
	s := New()
	body := get(t, s.Handler(), "/poolz")
	if !strings.Contains(body, "no pool sources") {
		t.Errorf("want placeholder, got:\n%s", body)
	}

	s.AddPoolSource("frontend", func() []registry.PoolView {
		return []registry.PoolView{
			{Service: "db", Addr: "127.0.0.1:7101", Source: "lease", State: "live",
				TTLRemaining: 2500 * time.Millisecond, Renewals: 4, Outstanding: 3, Threshold: 16, QueueLen: 1},
			{Service: "db", Addr: "127.0.0.1:7102", Source: "static", State: "live/open",
				Hot: true, Failures: 5, Failovers: 2, LastError: "dial refused"},
		}
	})
	s.AddPoolSource("empty", func() []registry.PoolView { return nil })
	body = get(t, s.Handler(), "/poolz")
	for _, want := range []string{
		"pool=frontend service=db addr=127.0.0.1:7101 source=lease state=live ttl=2.5s renewals=4 outstanding=3/16 queue=1 cool failures=0 failovers=0\n",
		"pool=frontend service=db addr=127.0.0.1:7102 source=static state=live/open ttl=0s renewals=0 outstanding=0/0 queue=0 hot failures=5 failovers=2 last_error=\"dial refused\"\n",
		"pool=empty (no members)\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("poolz missing %q, got:\n%s", want, body)
		}
	}
}

func TestBreakerzEndpoint(t *testing.T) {
	s := New()
	body := get(t, s.Handler(), "/breakerz")
	if !strings.Contains(body, "no breaker sources") {
		t.Errorf("want placeholder, got:\n%s", body)
	}

	s.AddBreakerSource("db", func() []resilience.Snapshot {
		return []resilience.Snapshot{
			{Name: "db#0", State: resilience.StateClosed, Successes: 12},
			{Name: "db#1", State: resilience.StateOpen, ConsecutiveFailures: 3, Failures: 3, Opens: 1,
				LastTransition: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)},
		}
	})
	s.AddBreakerSource("mail", func() []resilience.Snapshot { return nil })
	body = get(t, s.Handler(), "/breakerz")
	for _, want := range []string{
		"service=db replica=db#0 state=closed consecutive_failures=0 successes=12 failures=0 opens=0\n",
		"service=db replica=db#1 state=open consecutive_failures=3 successes=0 failures=3 opens=1 last_transition=2026-08-05T12:00:00Z\n",
		"service=mail breakers disabled\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("breakerz missing %q, got:\n%s", want, body)
		}
	}
}

func TestHealthzAndPprof(t *testing.T) {
	s := New()
	if body := get(t, s.Handler(), "/healthz"); body != "ok\n" {
		t.Errorf("healthz = %q", body)
	}
	if body := get(t, s.Handler(), "/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
}

func TestStartServesOverTCP(t *testing.T) {
	s := New()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() == nil {
		t.Fatal("Addr nil after Start")
	}
	resp, err := http.Get("http://" + s.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "ok\n" {
		t.Errorf("healthz over TCP = %q", b)
	}
}

func TestLimitzEndpoint(t *testing.T) {
	s := New()
	body := get(t, s.Handler(), "/limitz")
	if !strings.Contains(body, "no limit sources") {
		t.Errorf("want placeholder, got:\n%s", body)
	}

	s.AddLimitSource("db", func() (overload.Snapshot, bool) {
		return overload.Snapshot{
			Limit: 12, Min: 2, Max: 64, Target: 8 * time.Millisecond,
			Healthy: 40, Breaches: 5, Cuts: 2,
			LastCut: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		}, true
	})
	s.AddLimitSource("mail", func() (overload.Snapshot, bool) { return overload.Snapshot{}, false })
	body = get(t, s.Handler(), "/limitz")
	for _, want := range []string{
		"service=db limit=12 min=2 max=64 target=8ms healthy=40 breaches=5 cuts=2 last_cut=2026-08-05T12:00:00Z\n",
		"service=mail static threshold (adaptive limiting disabled)\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("limitz missing %q, got:\n%s", want, body)
		}
	}
}

func TestMountView(t *testing.T) {
	s := New()
	calls := 0
	s.MountView("dyn.", func() metrics.View {
		calls++
		return metrics.View{
			Counters: map[string]int64{"lookups": int64(10 * calls)},
			Gauges:   map[string]int64{"live": 4},
		}
	})
	body := get(t, s.Handler(), "/metrics")
	if !strings.Contains(body, "dyn_lookups 10") || !strings.Contains(body, "dyn_live 4") {
		t.Fatalf("/metrics missing dynamic view:\n%s", body)
	}
	// The view is recomputed per scrape, not cached.
	body = get(t, s.Handler(), "/metrics")
	if !strings.Contains(body, "dyn_lookups 20") {
		t.Fatalf("/metrics served a stale dynamic view:\n%s", body)
	}
}

func TestMountCacheShards(t *testing.T) {
	c := cache.New(1024, cache.WithShards(4))
	c.Put("k", []byte("v"))
	c.Get("k")
	c.Get("absent")
	s := New()
	s.MountCacheShards("broker.db.", c.ShardStats)
	body := get(t, s.Handler(), "/metrics")
	for _, want := range []string{
		"broker_db_cache_shard0_hits",
		"broker_db_cache_shard3_misses",
		"broker_db_cache_shard0_entries",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
	var hits int64
	for _, line := range strings.Split(body, "\n") {
		var shard int
		var v int64
		if n, _ := fmt.Sscanf(line, "broker_db_cache_shard%d_hits %d", &shard, &v); n == 2 {
			hits += v
		}
	}
	if hits != 1 {
		t.Fatalf("per-shard hit lines sum to %d, want 1:\n%s", hits, body)
	}
}
