package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is a named collection of metrics. Subsystems register their
// counters and histograms under stable names so that experiment harnesses,
// the cmd/sbexp binary, and the obs admin server can dump a consistent
// snapshot. The zero value is ready to use.
//
// A name identifies exactly one metric of one kind: asking for the same name
// as two different kinds (e.g. Counter("x") then Histogram("x")) is a
// programming error and panics, instead of silently yielding two unrelated
// metrics that would both appear in exports.
type Registry struct {
	mu         sync.Mutex
	kinds      map[string]string // name → "counter" | "gauge" | "histogram"
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// claim records the kind of a metric name, panicking if the name is already
// registered as a different kind. Caller holds r.mu.
func (r *Registry) claim(name, kind string) {
	if r.kinds == nil {
		r.kinds = make(map[string]string)
	}
	if existing, ok := r.kinds[name]; ok && existing != kind {
		panic(fmt.Sprintf("metrics: %q already registered as a %s, requested as a %s",
			name, existing, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the counter with the given name, creating it on first use.
// It panics if name is already registered as a different metric kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter")
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// It panics if name is already registered as a different metric kind.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge")
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use. It panics if name is already registered as a different metric kind.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogram")
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// View is a point-in-time export of a registry's metrics, keyed by name.
// Histogram values are full snapshots (including bucket counts) so renderers
// such as the obs admin server can emit Prometheus-style exposition without
// reaching into live metric objects.
type View struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]Snapshot
}

// View exports every registered metric. Counter and gauge values are read
// under the registry lock; histogram snapshots are taken afterwards so one
// slow histogram does not stall concurrent registrations.
func (r *Registry) View() View {
	r.mu.Lock()
	v := View{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]Snapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		v.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		v.Gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()
	for name, h := range hists {
		v.Histograms[name] = h.Snapshot()
	}
	return v
}

// Dump renders every metric, sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histogram %s: %s", name, h.Snapshot()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Point is one (x, y) sample of a figure series, e.g. x = number of clients,
// y = mean processing time in paper seconds.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points — one curve of a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// YAt returns the Y value at the given X, with ok=false when absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MinY returns the point with the smallest Y, or a zero Point if empty.
func (s *Series) MinY() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.Y < best.Y {
			best = p
		}
	}
	return best
}

// MaxY returns the point with the largest Y, or a zero Point if empty.
func (s *Series) MaxY() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.Y > best.Y {
			best = p
		}
	}
	return best
}

// Table renders a set of series as a fixed-width text table with one row per
// distinct X (sorted ascending), suitable for experiment output mirroring
// the paper's tables.
func Table(xLabel string, series ...*Series) string {
	xs := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%14s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-14g", x)
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "%14.3f", y)
			} else {
				fmt.Fprintf(&b, "%14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Stopwatch converts wall-clock durations to "paper seconds" given a scale
// (wall time per paper second). It lets the experiment harness report
// numbers in the paper's units regardless of the time compression in use.
type Stopwatch struct {
	Scale time.Duration // wall time representing one paper second
}

// PaperSeconds converts a wall duration to paper seconds.
func (s Stopwatch) PaperSeconds(d time.Duration) float64 {
	if s.Scale <= 0 {
		return d.Seconds()
	}
	return float64(d) / float64(s.Scale)
}

// Wall converts paper seconds to a wall duration.
func (s Stopwatch) Wall(paperSeconds float64) time.Duration {
	if s.Scale <= 0 {
		return time.Duration(paperSeconds * float64(time.Second))
	}
	return time.Duration(paperSeconds * float64(s.Scale))
}
