// Package metrics provides lightweight, concurrency-safe counters, gauges,
// and latency histograms used by every subsystem in the service-broker
// framework to record the measurements the paper's evaluation reports
// (response times, completion counts, drop ratios).
//
// The package is dependency-free and allocation-conscious: a Histogram uses
// fixed log-scaled buckets plus a bounded reservoir of raw samples so that
// experiment harnesses can compute exact means and percentiles for the
// figure-sized populations used in the paper (tens of thousands of requests)
// without unbounded memory growth.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter safe for concurrent
// use. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter. Negative deltas are rejected so that the
// counter stays monotone; use a Gauge for values that go down.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous 64-bit value safe for concurrent use. The zero
// value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative) and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Inc adds one and returns the new value.
func (g *Gauge) Inc() int64 { return g.v.Add(1) }

// Dec subtracts one and returns the new value.
func (g *Gauge) Dec() int64 { return g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// reservoirSize bounds the raw-sample reservoir kept by a Histogram. 16384
// samples give exact percentiles for the paper's populations (≤ a few
// thousand requests per run) and statistically solid ones beyond that.
const reservoirSize = 16384

// bucketCount is the number of log-scaled buckets: bucket i covers
// [2^i, 2^(i+1)) microseconds, i in [0, bucketCount).
const bucketCount = 40

// Exemplar pairs a bucket's most recent observation with the trace that
// produced it, so a latency bucket on /metrics links to a concrete /tracez
// record (OpenMetrics exemplar semantics). A zero TraceID means the bucket
// has no exemplar.
type Exemplar struct {
	TraceID uint64
	Value   time.Duration
}

// Histogram records duration observations. It keeps log-scaled bucket counts
// (always exact for counts) plus a reservoir of raw samples for precise
// quantiles. The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [bucketCount]int64
	// exemplars holds, per bucket, the most recent traced observation that
	// landed there (zero TraceID when the bucket has only untraced samples).
	exemplars [bucketCount]Exemplar
	// reservoir holds up to reservoirSize raw samples; once full it degrades
	// to uniform reservoir sampling using a deterministic LCG so experiment
	// runs are reproducible.
	reservoir []time.Duration
	rng       uint64
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) { h.observe(d, 0) }

// ObserveTrace records one duration attributed to a trace; the trace ID
// becomes the observation's bucket exemplar. A zero traceID behaves like
// Observe.
func (h *Histogram) ObserveTrace(d time.Duration, traceID uint64) { h.observe(d, traceID) }

func (h *Histogram) observe(d time.Duration, traceID uint64) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	b := bucketFor(d)
	h.buckets[b]++
	if traceID != 0 {
		h.exemplars[b] = Exemplar{TraceID: traceID, Value: d}
	}
	if len(h.reservoir) < reservoirSize {
		h.reservoir = append(h.reservoir, d)
		return
	}
	// Vitter's algorithm R with a deterministic LCG.
	h.rng = h.rng*6364136223846793005 + 1442695040888963407
	idx := h.rng % uint64(h.count)
	if idx < reservoirSize {
		h.reservoir[idx] = d
	}
}

func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	b := int(math.Log2(float64(us)))
	if b >= bucketCount {
		b = bucketCount - 1
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) from the raw-sample
// reservoir, or 0 if the histogram is empty. q outside [0,1] is clamped.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.reservoir) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(h.reservoir))
	copy(sorted, h.reservoir)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return quantileOf(sorted, q)
}

// Snapshot is an immutable copy of a Histogram's summary statistics,
// including the raw log-scaled bucket counts needed for Prometheus-style
// exposition (bucket i counts observations in [2^i, 2^(i+1)) microseconds;
// see BucketUpperBound).
type Snapshot struct {
	Count   int64
	Sum     time.Duration
	Mean    time.Duration
	Min     time.Duration
	Max     time.Duration
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	Buckets []int64
	// Exemplars[i] is bucket i's most recent traced observation; a zero
	// TraceID means none.
	Exemplars []Exemplar
}

// Snapshot returns the current summary statistics. The whole snapshot is
// computed under a single lock acquisition with a single sort of the sample
// reservoir, so one scrape does not re-copy and re-sort the 16K-sample
// reservoir once per quantile.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Snapshot{
		Count:     h.count,
		Sum:       h.sum,
		Min:       h.min,
		Max:       h.max,
		Buckets:   make([]int64, bucketCount),
		Exemplars: make([]Exemplar, bucketCount),
	}
	copy(s.Buckets, h.buckets[:])
	copy(s.Exemplars, h.exemplars[:])
	if h.count > 0 {
		s.Mean = h.sum / time.Duration(h.count)
	}
	if len(h.reservoir) > 0 {
		sorted := make([]time.Duration, len(h.reservoir))
		copy(sorted, h.reservoir)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.P50 = quantileOf(sorted, 0.50)
		s.P95 = quantileOf(sorted, 0.95)
		s.P99 = quantileOf(sorted, 0.99)
	}
	return s
}

// quantileOf indexes a pre-sorted sample slice; q must be in [0, 1].
func quantileOf(sorted []time.Duration, q float64) time.Duration {
	return sorted[int(q*float64(len(sorted)-1))]
}

// String renders the snapshot in a compact single-line form suitable for
// experiment logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
	h.buckets = [bucketCount]int64{}
	h.exemplars = [bucketCount]Exemplar{}
	h.reservoir = h.reservoir[:0]
	h.rng = 0
}

// NumBuckets reports the number of log-scaled histogram buckets.
const NumBuckets = bucketCount

// BucketUpperBound returns the exclusive upper bound of bucket i: 2^(i+1)
// microseconds. The final bucket is unbounded above (it absorbs every larger
// observation), matching Prometheus's +Inf bucket.
func BucketUpperBound(i int) time.Duration {
	if i < 0 {
		i = 0
	}
	if i >= bucketCount {
		i = bucketCount - 1
	}
	return time.Duration(1<<uint(i+1)) * time.Microsecond
}

// Buckets returns a copy of the log-scaled bucket counts. Bucket i counts
// observations in [2^i, 2^(i+1)) microseconds.
func (h *Histogram) Buckets() []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int64, bucketCount)
	copy(out, h.buckets[:])
	return out
}

// Timer measures one interval against a Histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing an interval recorded into h on ObserveDuration.
func StartTimer(h *Histogram) Timer {
	return Timer{h: h, start: time.Now()}
}

// ObserveDuration records the elapsed time since StartTimer and returns it.
func (t Timer) ObserveDuration() time.Duration {
	d := time.Since(t.start)
	t.h.Observe(d)
	return d
}
