package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", h.Snapshot())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.Mean(); got != 2*time.Millisecond {
		t.Fatalf("mean = %v, want 2ms", got)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Fatalf("min = %v, want 1ms", got)
	}
	if got := h.Max(); got != 3*time.Millisecond {
		t.Fatalf("max = %v, want 3ms", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if got := h.Min(); got != 0 {
		t.Fatalf("min = %v, want 0 (clamped)", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈50ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 95*time.Millisecond {
		t.Fatalf("p99 = %v, want ≥95ms", p99)
	}
	if lo, hi := h.Quantile(-1), h.Quantile(2); lo != h.Min() || hi != h.Max() {
		t.Fatalf("clamped quantiles = (%v, %v), want (min=%v, max=%v)", lo, hi, h.Min(), h.Max())
	}
}

func TestHistogramReservoirOverflow(t *testing.T) {
	var h Histogram
	// Overflow the reservoir and verify count/sum stay exact.
	n := reservoirSize + 5000
	for i := 0; i < n; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Count(); got != int64(n) {
		t.Fatalf("count = %d, want %d", got, n)
	}
	if got := h.Mean(); got != time.Millisecond {
		t.Fatalf("mean = %v, want 1ms", got)
	}
	if got := h.Quantile(0.5); got != time.Millisecond {
		t.Fatalf("p50 = %v, want 1ms", got)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("reset histogram not empty: %+v", h.Snapshot())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, perWorker = 8, 500
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
}

// Property: mean is always within [min, max] for any set of observations.
func TestHistogramMeanBoundedProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		for _, s := range samples {
			h.Observe(time.Duration(s) * time.Microsecond)
		}
		m := h.Mean()
		return m >= h.Min() && m <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) < 2 {
			return true
		}
		var h Histogram
		for _, s := range samples {
			h.Observe(time.Duration(s) * time.Microsecond)
		}
		qs := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		prev := time.Duration(-1)
		for _, q := range qs {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketFor(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{1024 * time.Microsecond, 10},
		{time.Hour * 24 * 365, bucketCount - 1},
	}
	for _, tt := range tests {
		if got := bucketFor(tt.d); got != tt.want {
			t.Errorf("bucketFor(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestHistogramBucketsSumToCount(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
	var sum int64
	for _, b := range h.Buckets() {
		sum += b
	}
	if sum != h.Count() {
		t.Fatalf("bucket sum = %d, count = %d", sum, h.Count())
	}
}

func TestTimer(t *testing.T) {
	var h Histogram
	timer := StartTimer(&h)
	time.Sleep(2 * time.Millisecond)
	d := timer.ObserveDuration()
	if d < 2*time.Millisecond {
		t.Fatalf("timer observed %v, want ≥2ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
}

func TestRegistryCreatesAndReuses(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("requests")
	c1.Inc()
	c2 := r.Counter("requests")
	if c2.Value() != 1 {
		t.Fatal("registry returned a fresh counter for an existing name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("registry returned distinct gauges for the same name")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("registry returned distinct histograms for the same name")
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(7)
	r.Histogram("c").Observe(time.Millisecond)
	dump := r.Dump()
	for _, want := range []string{"counter a = 2", "gauge b = 7", "histogram c:"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "qos1"
	s.Add(10, 1.5)
	s.Add(20, 3.0)
	s.Add(30, 2.0)
	if y, ok := s.YAt(20); !ok || y != 3.0 {
		t.Fatalf("YAt(20) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Fatal("YAt(99) reported ok for a missing x")
	}
	if p := s.MaxY(); p.X != 20 {
		t.Fatalf("MaxY at x=%g, want 20", p.X)
	}
	if p := s.MinY(); p.X != 10 {
		t.Fatalf("MinY at x=%g, want 10", p.X)
	}
}

func TestSeriesEmptyMinMax(t *testing.T) {
	var s Series
	if p := s.MinY(); p != (Point{}) {
		t.Fatalf("empty MinY = %+v", p)
	}
	if p := s.MaxY(); p != (Point{}) {
		t.Fatalf("empty MaxY = %+v", p)
	}
}

func TestTableRendering(t *testing.T) {
	a := &Series{Name: "api"}
	a.Add(10, 1)
	a.Add(20, 2)
	b := &Series{Name: "broker"}
	b.Add(10, 0.5)
	out := Table("clients", a, b)
	if !strings.Contains(out, "clients") || !strings.Contains(out, "api") || !strings.Contains(out, "broker") {
		t.Fatalf("table missing headers:\n%s", out)
	}
	// Row for x=20 must show "-" for the broker series.
	if !strings.Contains(out, "-") {
		t.Fatalf("table missing placeholder for absent point:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3:\n%s", len(lines), out)
	}
}

func TestStopwatch(t *testing.T) {
	sw := Stopwatch{Scale: 10 * time.Millisecond}
	if got := sw.PaperSeconds(20 * time.Millisecond); got != 2 {
		t.Fatalf("PaperSeconds = %g, want 2", got)
	}
	if got := sw.Wall(3); got != 30*time.Millisecond {
		t.Fatalf("Wall = %v, want 30ms", got)
	}
	// Zero scale falls back to identity (1 paper second = 1s).
	var id Stopwatch
	if got := id.PaperSeconds(1500 * time.Millisecond); got != 1.5 {
		t.Fatalf("identity PaperSeconds = %g, want 1.5", got)
	}
	if got := id.Wall(0.25); got != 250*time.Millisecond {
		t.Fatalf("identity Wall = %v, want 250ms", got)
	}
}

func TestSnapshotSingleLockMatchesQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != h.Sum() {
		t.Fatalf("snapshot sum = %v, histogram sum = %v", s.Sum, h.Sum())
	}
	for _, c := range []struct {
		q   float64
		got time.Duration
	}{{0.50, s.P50}, {0.95, s.P95}, {0.99, s.P99}} {
		if want := h.Quantile(c.q); c.got != want {
			t.Errorf("snapshot q%.2f = %v, Quantile = %v", c.q, c.got, want)
		}
	}
	if len(s.Buckets) != NumBuckets {
		t.Fatalf("snapshot buckets = %d, want %d", len(s.Buckets), NumBuckets)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum = %d, count = %d", bucketSum, s.Count)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 || s.Sum != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestBucketUpperBound(t *testing.T) {
	if got := BucketUpperBound(0); got != 2*time.Microsecond {
		t.Fatalf("bucket 0 upper = %v, want 2µs", got)
	}
	if got := BucketUpperBound(9); got != 1024*time.Microsecond {
		t.Fatalf("bucket 9 upper = %v, want ~1ms", got)
	}
	// Clamped at both ends.
	if BucketUpperBound(-5) != BucketUpperBound(0) {
		t.Fatal("negative index not clamped")
	}
	if BucketUpperBound(NumBuckets+3) != BucketUpperBound(NumBuckets-1) {
		t.Fatal("overflow index not clamped")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	cases := []struct {
		name  string
		first func(r *Registry)
		then  func(r *Registry)
	}{
		{"counter-then-histogram", func(r *Registry) { r.Counter("x") }, func(r *Registry) { r.Histogram("x") }},
		{"histogram-then-counter", func(r *Registry) { r.Histogram("x") }, func(r *Registry) { r.Counter("x") }},
		{"gauge-then-counter", func(r *Registry) { r.Gauge("x") }, func(r *Registry) { r.Counter("x") }},
		{"counter-then-gauge", func(r *Registry) { r.Counter("x") }, func(r *Registry) { r.Gauge("x") }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := NewRegistry()
			c.first(r)
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on metric kind collision")
				}
			}()
			c.then(r)
		})
	}
}

func TestRegistrySameKindDoesNotPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(time.Millisecond)
	r.Histogram("z").Observe(time.Millisecond)
	if r.Counter("x").Value() != 2 {
		t.Fatal("counter reuse broken")
	}
}

func TestRegistryView(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Gauge("depth").Set(-2)
	r.Histogram("lat").Observe(5 * time.Millisecond)
	v := r.View()
	if v.Counters["reqs"] != 3 {
		t.Fatalf("view counter = %d", v.Counters["reqs"])
	}
	if v.Gauges["depth"] != -2 {
		t.Fatalf("view gauge = %d", v.Gauges["depth"])
	}
	h, ok := v.Histograms["lat"]
	if !ok || h.Count != 1 {
		t.Fatalf("view histogram = %+v, ok=%v", h, ok)
	}
	if len(h.Buckets) != NumBuckets {
		t.Fatalf("view histogram buckets = %d", len(h.Buckets))
	}
}
