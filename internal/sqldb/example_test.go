package sqldb_test

import (
	"fmt"

	"servicebroker/internal/sqldb"
)

// ExampleEngine shows the embedded SQL engine: DDL, DML, and a query.
func ExampleEngine() {
	e := sqldb.NewEngine()
	mustExec := func(sql string) *sqldb.ResultSet {
		rs, err := e.Exec(sql)
		if err != nil {
			panic(err)
		}
		return rs
	}
	mustExec("CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, rating FLOAT)")
	mustExec("INSERT INTO movies VALUES (1, 'Alien', 8.5), (2, 'Dune', 6.5), (3, 'Brazil', 7.9)")
	rs := mustExec("SELECT title, rating FROM movies WHERE rating > 7 ORDER BY rating DESC")
	for _, row := range rs.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// Alien 8.5
	// Brazil 7.9
}

// ExampleRepeatQuery shows the clustering directive the broker uses to ask
// the backend script to repeat one workload for a whole batch.
func ExampleRepeatQuery() {
	wrapped := sqldb.RepeatQuery("SELECT COUNT(*) FROM records", 5)
	fmt.Println(wrapped)
	sql, times := sqldb.ParseRepeat(wrapped)
	fmt.Println(sql, times)
	// Output:
	// /*repeat=5*/ SELECT COUNT(*) FROM records
	// SELECT COUNT(*) FROM records 5
}
