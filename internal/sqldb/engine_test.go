package sqldb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// newMoviesDB builds a small fixture database for engine tests.
func newMoviesDB(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, rating FLOAT, year INT)")
	mustExec(t, e, `INSERT INTO movies VALUES
		(1, 'Alien', 8.5, 1979),
		(2, 'Blade Runner', 8.1, 1982),
		(3, 'Brazil', 7.9, 1985),
		(4, 'Contact', 7.5, 1997),
		(5, 'Dune', 6.5, 1984)`)
	return e
}

func mustExec(t *testing.T, e *Engine, sql string) *ResultSet {
	t.Helper()
	rs, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return rs
}

func TestCreateInsertSelect(t *testing.T) {
	e := newMoviesDB(t)
	rs := mustExec(t, e, "SELECT title FROM movies WHERE year < 1985 ORDER BY title")
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rs.Rows))
	}
	if rs.Rows[0][0] != "Alien" || rs.Rows[2][0] != "Dune" {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	e := newMoviesDB(t)
	rs := mustExec(t, e, "SELECT * FROM movies WHERE id = 3")
	if len(rs.Columns) != 4 || len(rs.Rows) != 1 {
		t.Fatalf("result %+v", rs)
	}
	if rs.Rows[0][1] != "Brazil" {
		t.Fatalf("row = %v", rs.Rows[0])
	}
}

func TestSelectLimitAndOrder(t *testing.T) {
	e := newMoviesDB(t)
	rs := mustExec(t, e, "SELECT title FROM movies ORDER BY rating DESC LIMIT 2")
	if len(rs.Rows) != 2 || rs.Rows[0][0] != "Alien" || rs.Rows[1][0] != "Blade Runner" {
		t.Fatalf("rows = %v", rs.Rows)
	}
	rs = mustExec(t, e, "SELECT title FROM movies LIMIT 0")
	if len(rs.Rows) != 0 {
		t.Fatalf("LIMIT 0 rows = %v", rs.Rows)
	}
}

func TestWherePredicates(t *testing.T) {
	e := newMoviesDB(t)
	tests := []struct {
		where string
		want  int
	}{
		{"rating >= 8", 2},
		{"rating > 8.1", 1},
		{"year BETWEEN 1982 AND 1985", 3},
		{"year NOT BETWEEN 1982 AND 1985", 2},
		{"id IN (1, 3, 5)", 3},
		{"id NOT IN (1, 3, 5)", 2},
		{"title LIKE 'B%'", 2},
		{"title NOT LIKE 'B%'", 3},
		{"title LIKE '%n%'", 4},
		{"rating < 7 OR rating > 8.4", 2},
		{"year > 1980 AND year < 1990 AND rating > 7", 2},
		{"NOT (year > 1980)", 1},
		{"id != 1", 4},
		{"id <> 1", 4},
		{"id <= 2", 2},
	}
	for _, tt := range tests {
		rs := mustExec(t, e, "SELECT id FROM movies WHERE "+tt.where)
		if len(rs.Rows) != tt.want {
			t.Errorf("WHERE %s: %d rows, want %d", tt.where, len(rs.Rows), tt.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	e := newMoviesDB(t)
	rs := mustExec(t, e, "SELECT COUNT(*), MIN(rating), MAX(rating), AVG(year) FROM movies")
	row := rs.Rows[0]
	if row[0] != int64(5) {
		t.Fatalf("count = %v", row[0])
	}
	if row[1] != 6.5 || row[2] != 8.5 {
		t.Fatalf("min/max = %v/%v", row[1], row[2])
	}
	avg := row[3].(float64)
	if avg < 1985 || avg > 1986 {
		t.Fatalf("avg year = %v", avg)
	}
	rs = mustExec(t, e, "SELECT SUM(rating) AS total FROM movies WHERE year > 1990")
	if rs.Columns[0] != "total" || rs.Rows[0][0] != 7.5 {
		t.Fatalf("sum = %+v", rs)
	}
}

func TestAggregateOverEmptySet(t *testing.T) {
	e := newMoviesDB(t)
	rs := mustExec(t, e, "SELECT COUNT(*), AVG(rating), MIN(rating) FROM movies WHERE id > 100")
	row := rs.Rows[0]
	if row[0] != int64(0) || row[1] != nil || row[2] != nil {
		t.Fatalf("empty aggregates = %v", row)
	}
}

func TestUpdate(t *testing.T) {
	e := newMoviesDB(t)
	rs := mustExec(t, e, "UPDATE movies SET rating = 9.0 WHERE title = 'Dune'")
	if rs.Affected != 1 {
		t.Fatalf("affected = %d", rs.Affected)
	}
	rs = mustExec(t, e, "SELECT rating FROM movies WHERE title = 'Dune'")
	if rs.Rows[0][0] != 9.0 {
		t.Fatalf("rating = %v", rs.Rows[0][0])
	}
	// Update with no WHERE touches everything.
	rs = mustExec(t, e, "UPDATE movies SET year = 2000")
	if rs.Affected != 5 {
		t.Fatalf("affected = %d, want 5", rs.Affected)
	}
}

func TestDelete(t *testing.T) {
	e := newMoviesDB(t)
	rs := mustExec(t, e, "DELETE FROM movies WHERE year < 1985")
	if rs.Affected != 3 {
		t.Fatalf("affected = %d, want 3", rs.Affected)
	}
	if n, _ := e.RowCount("movies"); n != 2 {
		t.Fatalf("rows = %d, want 2", n)
	}
}

func TestPrimaryKeyDuplicate(t *testing.T) {
	e := newMoviesDB(t)
	_, err := e.Exec("INSERT INTO movies VALUES (1, 'Duplicate', 1.0, 2000)")
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
}

func TestInsertColumnSubset(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE t (a INT, b TEXT, c FLOAT)")
	mustExec(t, e, "INSERT INTO t (b, a) VALUES ('hi', 1)")
	rs := mustExec(t, e, "SELECT a, b, c FROM t")
	row := rs.Rows[0]
	if row[0] != int64(1) || row[1] != "hi" || row[2] != nil {
		t.Fatalf("row = %v", row)
	}
}

func TestInsertErrors(t *testing.T) {
	e := newMoviesDB(t)
	cases := map[string]error{
		"INSERT INTO nope VALUES (1)":                       ErrNoSuchTable,
		"INSERT INTO movies (nope) VALUES (1)":              ErrNoSuchColumn,
		"INSERT INTO movies VALUES (9, 'x', 1.0)":           ErrColumnCount,
		"INSERT INTO movies VALUES ('NaN', 'x', 1.0, 2000)": nil, // coercion error
	}
	for sql, want := range cases {
		_, err := e.Exec(sql)
		if err == nil {
			t.Errorf("Exec(%s) succeeded", sql)
			continue
		}
		if want != nil && !errors.Is(err, want) {
			t.Errorf("Exec(%s) err = %v, want %v", sql, err, want)
		}
	}
}

func TestSelectErrors(t *testing.T) {
	e := newMoviesDB(t)
	for _, sql := range []string{
		"SELECT * FROM nope",
		"SELECT nope FROM movies",
		"SELECT id FROM movies WHERE nope = 1",
		"SELECT id FROM movies ORDER BY nope",
		"SELECT SUM(title) FROM movies",
		"SELECT id, COUNT(*) FROM movies",
	} {
		if _, err := e.Exec(sql); err == nil {
			t.Errorf("Exec(%s) succeeded", sql)
		}
	}
}

func TestDDLErrors(t *testing.T) {
	e := newMoviesDB(t)
	if _, err := e.Exec("CREATE TABLE movies (id INT)"); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	if _, err := e.Exec("CREATE TABLE bad (a INT, a TEXT)"); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := e.Exec("CREATE TABLE bad2 (a INT PRIMARY KEY, b INT PRIMARY KEY)"); err == nil {
		t.Fatal("two primary keys accepted")
	}
	if _, err := e.Exec("DROP TABLE nope"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("drop missing err = %v", err)
	}
	if _, err := e.Exec("CREATE INDEX i ON nope (x)"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("index missing table err = %v", err)
	}
	if _, err := e.Exec("CREATE INDEX i ON movies (nope)"); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("index missing column err = %v", err)
	}
}

func TestDropTable(t *testing.T) {
	e := newMoviesDB(t)
	mustExec(t, e, "DROP TABLE movies")
	if _, err := e.Exec("SELECT * FROM movies"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("select after drop err = %v", err)
	}
	if names := e.TableNames(); len(names) != 0 {
		t.Fatalf("tables = %v", names)
	}
}

func TestIndexedLookupMatchesScan(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE t (k INT, v TEXT)")
	mustExec(t, e, "CREATE INDEX tk ON t (k)")
	for i := 0; i < 200; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d')", i%20, i))
	}
	// Indexed path.
	indexed := mustExec(t, e, "SELECT v FROM t WHERE k = 7")
	// Force scan path by using a predicate shape the index matcher skips.
	scanned := mustExec(t, e, "SELECT v FROM t WHERE k BETWEEN 7 AND 7")
	if len(indexed.Rows) != len(scanned.Rows) || len(indexed.Rows) != 10 {
		t.Fatalf("indexed %d rows, scanned %d rows, want 10", len(indexed.Rows), len(scanned.Rows))
	}
}

func TestIndexStaysFreshAcrossMutations(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE t (k INT, v TEXT)")
	mustExec(t, e, "CREATE INDEX tk ON t (k)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'a'), (2, 'b')")
	if rs := mustExec(t, e, "SELECT v FROM t WHERE k = 1"); len(rs.Rows) != 1 {
		t.Fatalf("pre-mutation rows = %d", len(rs.Rows))
	}
	mustExec(t, e, "UPDATE t SET k = 1 WHERE v = 'b'")
	if rs := mustExec(t, e, "SELECT v FROM t WHERE k = 1"); len(rs.Rows) != 2 {
		t.Fatalf("post-update rows = %d, want 2", len(rs.Rows))
	}
	mustExec(t, e, "DELETE FROM t WHERE v = 'a'")
	if rs := mustExec(t, e, "SELECT v FROM t WHERE k = 1"); len(rs.Rows) != 1 {
		t.Fatalf("post-delete rows = %d, want 1", len(rs.Rows))
	}
	mustExec(t, e, "INSERT INTO t VALUES (1, 'c')")
	if rs := mustExec(t, e, "SELECT v FROM t WHERE k = 1"); len(rs.Rows) != 2 {
		t.Fatalf("post-insert rows = %d, want 2", len(rs.Rows))
	}
}

func TestReversedIndexEquality(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
	mustExec(t, e, "INSERT INTO t VALUES (5, 'five')")
	rs := mustExec(t, e, "SELECT v FROM t WHERE 5 = k")
	if len(rs.Rows) != 1 || rs.Rows[0][0] != "five" {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestNullSemantics(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (3, NULL)")
	if rs := mustExec(t, e, "SELECT b FROM t WHERE a = NULL"); len(rs.Rows) != 1 || rs.Rows[0][0] != "y" {
		t.Fatalf("= NULL rows = %v", rs.Rows)
	}
	if rs := mustExec(t, e, "SELECT b FROM t WHERE a != NULL"); len(rs.Rows) != 2 {
		t.Fatalf("!= NULL rows = %v", rs.Rows)
	}
	// NULL never matches ordering comparisons.
	if rs := mustExec(t, e, "SELECT b FROM t WHERE a > 0"); len(rs.Rows) != 2 {
		t.Fatalf("> 0 rows = %v", rs.Rows)
	}
	// COUNT(col) skips NULLs; COUNT(*) does not.
	rs := mustExec(t, e, "SELECT COUNT(a), COUNT(*) FROM t")
	if rs.Rows[0][0] != int64(2) || rs.Rows[0][1] != int64(3) {
		t.Fatalf("counts = %v", rs.Rows[0])
	}
	// NULL sorts first.
	rs = mustExec(t, e, "SELECT b FROM t ORDER BY a")
	if rs.Rows[0][0] != "y" {
		t.Fatalf("order rows = %v", rs.Rows)
	}
}

func TestResultSetString(t *testing.T) {
	e := newMoviesDB(t)
	rs := mustExec(t, e, "SELECT id, title FROM movies WHERE id = 1")
	s := rs.String()
	if s == "" || s[:2] != "id" {
		t.Fatalf("String() = %q", s)
	}
	rs = mustExec(t, e, "DELETE FROM movies WHERE id = 1")
	if rs.String() != "OK, 1 row(s) affected" {
		t.Fatalf("String() = %q", rs.String())
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE t (k INT, v TEXT)")
	mustExec(t, e, "CREATE INDEX tk ON t (k)")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := e.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'w%d-%d')", i%10, w, i)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := e.Exec(fmt.Sprintf("SELECT COUNT(*) FROM t WHERE k = %d", i%10)); err != nil {
					t.Errorf("select: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rs := mustExec(t, e, "SELECT COUNT(*) FROM t")
	if rs.Rows[0][0] != int64(400) {
		t.Fatalf("count = %v, want 400", rs.Rows[0][0])
	}
}

func TestLoadRecordsFixture(t *testing.T) {
	e := NewEngine()
	if err := LoadRecords(e, 5000); err != nil {
		t.Fatal(err)
	}
	n, err := e.RowCount(RecordsTable)
	if err != nil || n != 5000 {
		t.Fatalf("rows = %d, %v", n, err)
	}
	// Queries from the random generator must execute.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if _, err := e.Exec(RandomRangeQuery(rng)); err != nil {
			t.Fatalf("random query: %v", err)
		}
	}
	if err := LoadRecords(NewEngine(), 0); err == nil {
		t.Fatal("LoadRecords(0) succeeded")
	}
}

func TestRepeatQueryDirective(t *testing.T) {
	sql := "SELECT id FROM records WHERE category = 3"
	wrapped := RepeatQuery(sql, 5)
	bare, times := ParseRepeat(wrapped)
	if bare != sql || times != 5 {
		t.Fatalf("ParseRepeat = (%q, %d)", bare, times)
	}
	// Degenerate cases.
	if got := RepeatQuery(sql, 1); got != sql {
		t.Fatalf("RepeatQuery(1) = %q", got)
	}
	if bare, times := ParseRepeat(sql); bare != sql || times != 1 {
		t.Fatalf("ParseRepeat(bare) = (%q, %d)", bare, times)
	}
	if _, times := ParseRepeat("/*repeat=oops*/ SELECT 1"); times != 1 {
		t.Fatalf("bad directive times = %d", times)
	}
	if _, times := ParseRepeat("/*repeat=3 SELECT 1"); times != 1 {
		t.Fatalf("unterminated directive times = %d", times)
	}
}

// Property: after inserting n distinct primary keys, COUNT(*) = n and every
// key is retrievable via the index path.
func TestInsertLookupProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		e := NewEngine()
		if _, err := e.Exec("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)"); err != nil {
			return false
		}
		seen := map[uint16]bool{}
		for _, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			if _, err := e.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d')", k, k)); err != nil {
				return false
			}
		}
		rs, err := e.Exec("SELECT COUNT(*) FROM t")
		if err != nil || rs.Rows[0][0] != int64(len(seen)) {
			return false
		}
		for k := range seen {
			rs, err := e.Exec(fmt.Sprintf("SELECT v FROM t WHERE k = %d", k))
			if err != nil || len(rs.Rows) != 1 || rs.Rows[0][0] != fmt.Sprintf("v%d", k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ORDER BY produces a non-decreasing (or non-increasing) sequence.
func TestOrderByMonotoneProperty(t *testing.T) {
	f := func(vals []int16, desc bool) bool {
		e := NewEngine()
		if _, err := e.Exec("CREATE TABLE t (v INT)"); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := e.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", v)); err != nil {
				return false
			}
		}
		dir := "ASC"
		if desc {
			dir = "DESC"
		}
		rs, err := e.Exec("SELECT v FROM t ORDER BY v " + dir)
		if err != nil {
			return false
		}
		for i := 1; i < len(rs.Rows); i++ {
			c := compare(rs.Rows[i-1][0], rs.Rows[i][0])
			if desc && c < 0 {
				return false
			}
			if !desc && c > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
