package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ResultSet is the outcome of a query: column names plus rows for SELECT,
// Affected for INSERT/UPDATE/DELETE/DDL.
type ResultSet struct {
	Columns  []string
	Rows     [][]Value
	Affected int
}

// String renders the result set as a small text table (diagnostics and
// examples).
func (rs *ResultSet) String() string {
	var b strings.Builder
	if len(rs.Columns) == 0 {
		fmt.Fprintf(&b, "OK, %d row(s) affected", rs.Affected)
		return b.String()
	}
	b.WriteString(strings.Join(rs.Columns, "\t"))
	b.WriteByte('\n')
	for _, row := range rs.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = formatValue(v)
		}
		b.WriteString(strings.Join(parts, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Engine errors.
var (
	ErrNoSuchTable   = errors.New("sqldb: no such table")
	ErrNoSuchColumn  = errors.New("sqldb: no such column")
	ErrTableExists   = errors.New("sqldb: table already exists")
	ErrDuplicateKey  = errors.New("sqldb: duplicate primary key")
	ErrColumnCount   = errors.New("sqldb: column count mismatch")
	ErrNotComparable = errors.New("sqldb: incomparable operands")
)

// table is one in-memory table with optional indexes. Every CREATE INDEX
// (and the primary key) maintains two access structures per column: a hash
// index for equality lookups and a sorted position list for range scans.
// Both rebuild lazily after invalidating mutations; inserts keep the hash
// fresh incrementally and only mark the sorted list stale.
type table struct {
	name    string
	columns []ColumnDef
	colIdx  map[string]int
	pkCol   int // -1 when no primary key
	rows    [][]Value
	// indexes maps column index → value(text form) → row positions.
	indexes map[int]map[string][]int
	dirty   map[int]bool
	// sorted maps column index → row positions ordered by column value.
	sorted      map[int][]int
	sortedDirty map[int]bool
}

// Engine is the in-memory database. It is safe for concurrent use; reads
// take a shared lock and mutations an exclusive one.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*table
}

// NewEngine returns an empty database.
func NewEngine() *Engine {
	return &Engine{tables: make(map[string]*table)}
}

// Exec parses and executes one SQL statement.
func (e *Engine) Exec(sql string) (*ResultSet, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecStmt(stmt)
}

// ExecStmt executes a parsed statement.
func (e *Engine) ExecStmt(stmt Statement) (*ResultSet, error) {
	switch s := stmt.(type) {
	case *CreateTable:
		return e.createTable(s)
	case *CreateIndex:
		return e.createIndex(s)
	case *DropTable:
		return e.dropTable(s)
	case *Insert:
		return e.insert(s)
	case *Select:
		return e.query(s)
	case *Update:
		return e.update(s)
	case *Delete:
		return e.delete(s)
	default:
		return nil, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// TableNames lists the tables in lexical order.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RowCount returns the number of rows in a table.
func (e *Engine) RowCount(name string) (int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return len(t.rows), nil
}

func (e *Engine) createTable(s *CreateTable) (*ResultSet, error) {
	if len(s.Columns) == 0 {
		return nil, errors.New("sqldb: table needs at least one column")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, ok := e.tables[key]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, s.Name)
	}
	t := &table{
		name:        s.Name,
		columns:     s.Columns,
		colIdx:      make(map[string]int, len(s.Columns)),
		pkCol:       -1,
		indexes:     make(map[int]map[string][]int),
		dirty:       make(map[int]bool),
		sorted:      make(map[int][]int),
		sortedDirty: make(map[int]bool),
	}
	for i, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colIdx[lc]; dup {
			return nil, fmt.Errorf("sqldb: duplicate column %s", c.Name)
		}
		t.colIdx[lc] = i
		if c.PrimaryKey {
			if t.pkCol != -1 {
				return nil, errors.New("sqldb: multiple primary keys")
			}
			t.pkCol = i
		}
	}
	if t.pkCol != -1 {
		t.indexes[t.pkCol] = make(map[string][]int)
		t.sortedDirty[t.pkCol] = true
	}
	e.tables[key] = t
	return &ResultSet{}, nil
}

func (e *Engine) createIndex(s *CreateIndex) (*ResultSet, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	ci, ok := t.colIdx[strings.ToLower(s.Column)]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Table, s.Column)
	}
	if _, exists := t.indexes[ci]; !exists {
		t.indexes[ci] = nil
		t.dirty[ci] = true
		t.sortedDirty[ci] = true
	}
	return &ResultSet{}, nil
}

func (e *Engine) dropTable(s *DropTable) (*ResultSet, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, ok := e.tables[key]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Name)
	}
	delete(e.tables, key)
	return &ResultSet{}, nil
}

func (e *Engine) insert(s *Insert) (*ResultSet, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	// Resolve the column order for the VALUES tuples.
	order := make([]int, 0, len(t.columns))
	if len(s.Columns) == 0 {
		for i := range t.columns {
			order = append(order, i)
		}
	} else {
		for _, name := range s.Columns {
			ci, ok := t.colIdx[strings.ToLower(name)]
			if !ok {
				return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Table, name)
			}
			order = append(order, ci)
		}
	}
	for _, tuple := range s.Rows {
		if len(tuple) != len(order) {
			return nil, fmt.Errorf("%w: got %d values for %d columns", ErrColumnCount, len(tuple), len(order))
		}
		row := make([]Value, len(t.columns))
		for i, v := range tuple {
			cv, err := coerce(v, t.columns[order[i]].Type)
			if err != nil {
				return nil, err
			}
			row[order[i]] = cv
		}
		if t.pkCol != -1 {
			pk := formatValue(row[t.pkCol])
			t.ensureIndex(t.pkCol)
			if len(t.indexes[t.pkCol][pk]) > 0 {
				return nil, fmt.Errorf("%w: %s", ErrDuplicateKey, pk)
			}
		}
		t.rows = append(t.rows, row)
		// Keep built hash indexes incrementally fresh instead of
		// invalidating; sorted lists would need an O(n) insertion, so they
		// only go stale and rebuild lazily on the next range query.
		for ci, idx := range t.indexes {
			t.sortedDirty[ci] = true
			if t.dirty[ci] || idx == nil {
				continue
			}
			key := formatValue(row[ci])
			idx[key] = append(idx[key], len(t.rows)-1)
		}
	}
	return &ResultSet{Affected: len(s.Rows)}, nil
}

// ensureIndex builds the hash index for column ci if stale. Caller holds the
// write lock (or the read lock upgraded path in query via queryIndexes).
func (t *table) ensureIndex(ci int) {
	idx, tracked := t.indexes[ci]
	if !tracked {
		return
	}
	if idx != nil && !t.dirty[ci] {
		return
	}
	idx = make(map[string][]int, len(t.rows))
	for pos, row := range t.rows {
		key := formatValue(row[ci])
		idx[key] = append(idx[key], pos)
	}
	t.indexes[ci] = idx
	delete(t.dirty, ci)
}

// invalidateIndexes marks every index stale after a bulk mutation.
func (t *table) invalidateIndexes() {
	for ci := range t.indexes {
		t.dirty[ci] = true
		t.sortedDirty[ci] = true
	}
}

func (e *Engine) update(s *Update) (*ResultSet, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	// Pre-resolve SET columns.
	type setOp struct {
		ci  int
		val Value
	}
	ops := make([]setOp, 0, len(s.Set))
	for col, v := range s.Set {
		ci, ok := t.colIdx[strings.ToLower(col)]
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Table, col)
		}
		cv, err := coerce(v, t.columns[ci].Type)
		if err != nil {
			return nil, err
		}
		ops = append(ops, setOp{ci: ci, val: cv})
	}
	affected := 0
	for _, row := range t.rows {
		match, err := evalBool(s.Where, t, row)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		for _, op := range ops {
			row[op.ci] = op.val
		}
		affected++
	}
	if affected > 0 {
		t.invalidateIndexes()
	}
	return &ResultSet{Affected: affected}, nil
}

func (e *Engine) delete(s *Delete) (*ResultSet, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	kept := t.rows[:0]
	affected := 0
	for _, row := range t.rows {
		match, err := evalBool(s.Where, t, row)
		if err != nil {
			return nil, err
		}
		if match {
			affected++
			continue
		}
		kept = append(kept, row)
	}
	// Release references past the new length.
	for i := len(kept); i < len(t.rows); i++ {
		t.rows[i] = nil
	}
	t.rows = kept
	if affected > 0 {
		t.invalidateIndexes()
	}
	return &ResultSet{Affected: affected}, nil
}

// planKind identifies the chosen access path for a query.
type planKind int

const (
	planScan planKind = iota
	planEq
	planRange
)

// queryPlan is the planner's choice: a hash-index equality probe, a sorted
// range scan, or a full scan. Index candidates are always re-checked against
// the full WHERE clause, so the plan only affects performance.
type queryPlan struct {
	kind   planKind
	ci     int
	key    string // planEq: hash key
	lo, hi Value  // planRange: bounds (nil = unbounded side)
	loInc  bool
	hiInc  bool
}

func (e *Engine) query(s *Select) (*ResultSet, error) {
	// Index maintenance may mutate the table, so take the write lock when a
	// usable index is stale; the common case takes the read lock only.
	e.mu.RLock()
	t, ok := e.tables[strings.ToLower(s.Table)]
	if !ok {
		e.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	plan := planIndex(s.Where, t)
	if plan.kind == planScan {
		defer e.mu.RUnlock()
		return selectScan(s, t)
	}

	if planStale(t, plan) {
		// Upgrade to the write lock to (re)build the needed structure.
		e.mu.RUnlock()
		e.mu.Lock()
		t.ensureIndex(plan.ci)
		t.ensureSorted(plan.ci)
		e.mu.Unlock()
		e.mu.RLock()
		// The table may have been dropped or replaced between locks.
		if t2, ok := e.tables[strings.ToLower(s.Table)]; !ok || t2 != t {
			e.mu.RUnlock()
			return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
		}
	}
	defer e.mu.RUnlock()
	if planStale(t, plan) {
		// A concurrent mutation re-dirtied the index; fall back to a scan.
		return selectScan(s, t)
	}
	switch plan.kind {
	case planEq:
		return selectRows(s, t, t.indexes[plan.ci][plan.key])
	case planRange:
		return selectRows(s, t, t.rangeLookup(plan))
	default:
		return selectScan(s, t)
	}
}

// planStale reports whether the structures the plan needs require a rebuild.
// Caller holds at least the read lock.
func planStale(t *table, plan queryPlan) bool {
	switch plan.kind {
	case planEq:
		return t.indexes[plan.ci] == nil || t.dirty[plan.ci]
	case planRange:
		return t.sortedDirty[plan.ci] || t.sorted[plan.ci] == nil
	default:
		return false
	}
}

// planIndex chooses an access path for the WHERE clause: it flattens the
// top-level AND conjunction and picks the first equality conjunct over an
// indexed column (hash probe), else the first range conjunct over an
// indexed column (sorted scan). Caller holds at least the read lock.
func planIndex(where Expr, t *table) queryPlan {
	conjuncts := flattenAnd(where, nil)
	// Equality probes first: they are the most selective.
	for _, c := range conjuncts {
		if ci, key, ok := indexableEq(c, t); ok {
			return queryPlan{kind: planEq, ci: ci, key: key}
		}
	}
	for _, c := range conjuncts {
		if plan, ok := indexableRange(c, t); ok {
			return plan
		}
	}
	return queryPlan{kind: planScan}
}

// flattenAnd collects the conjuncts of a top-level AND tree.
func flattenAnd(e Expr, out []Expr) []Expr {
	if l, ok := e.(*Logical); ok && l.Op == OpAnd {
		out = flattenAnd(l.L, out)
		return flattenAnd(l.R, out)
	}
	if e != nil {
		out = append(out, e)
	}
	return out
}

// indexedColumn resolves a ColRef to an indexed column position.
func indexedColumn(e Expr, t *table) (int, bool) {
	col, ok := e.(*ColRef)
	if !ok {
		return 0, false
	}
	ci, exists := t.colIdx[strings.ToLower(col.Name)]
	if !exists {
		return 0, false
	}
	_, indexed := t.indexes[ci]
	return ci, indexed
}

// indexableEq recognizes `col = literal` (either side) over an indexed
// column.
func indexableEq(where Expr, t *table) (ci int, key string, ok bool) {
	cmp, isCmp := where.(*Cmp)
	if !isCmp || cmp.Op != OpEq {
		return 0, "", false
	}
	colExpr, litExpr := cmp.L, cmp.R
	if _, isCol := colExpr.(*ColRef); !isCol {
		colExpr, litExpr = cmp.R, cmp.L
	}
	ci, indexed := indexedColumn(colExpr, t)
	if !indexed {
		return 0, "", false
	}
	lit, isLit := litExpr.(*Literal)
	if !isLit {
		return 0, "", false
	}
	cv, err := coerce(lit.Val, t.columns[ci].Type)
	if err != nil {
		return 0, "", false
	}
	return ci, formatValue(cv), true
}

// indexableRange recognizes `col BETWEEN lo AND hi` and single comparisons
// (`col < x`, `col >= x`, and their reversed forms) over an indexed column.
func indexableRange(where Expr, t *table) (queryPlan, bool) {
	switch x := where.(type) {
	case *Between:
		ci, indexed := indexedColumn(x.E, t)
		if !indexed {
			return queryPlan{}, false
		}
		lo, okLo := literalFor(x.Lo, t, ci)
		hi, okHi := literalFor(x.Hi, t, ci)
		if !okLo || !okHi {
			return queryPlan{}, false
		}
		return queryPlan{kind: planRange, ci: ci, lo: lo, hi: hi, loInc: true, hiInc: true}, true

	case *Cmp:
		op := x.Op
		colExpr, litExpr := x.L, x.R
		if _, isCol := colExpr.(*ColRef); !isCol {
			// literal OP col ⇒ col flipped-OP literal.
			colExpr, litExpr = x.R, x.L
			switch op {
			case OpLt:
				op = OpGt
			case OpLe:
				op = OpGe
			case OpGt:
				op = OpLt
			case OpGe:
				op = OpLe
			}
		}
		ci, indexed := indexedColumn(colExpr, t)
		if !indexed {
			return queryPlan{}, false
		}
		lit, ok := literalFor(litExpr, t, ci)
		if !ok {
			return queryPlan{}, false
		}
		plan := queryPlan{kind: planRange, ci: ci}
		switch op {
		case OpLt:
			plan.hi = lit
		case OpLe:
			plan.hi, plan.hiInc = lit, true
		case OpGt:
			plan.lo = lit
		case OpGe:
			plan.lo, plan.loInc = lit, true
		default:
			return queryPlan{}, false
		}
		return plan, true
	}
	return queryPlan{}, false
}

// literalFor coerces a literal expression to the column's type. NULL bounds
// are rejected (the comparison would never match anyway).
func literalFor(e Expr, t *table, ci int) (Value, bool) {
	lit, ok := e.(*Literal)
	if !ok || lit.Val == nil {
		return nil, false
	}
	cv, err := coerce(lit.Val, t.columns[ci].Type)
	if err != nil {
		return nil, false
	}
	return cv, true
}

// ensureSorted builds the sorted position list for column ci if stale.
// Caller holds the write lock.
func (t *table) ensureSorted(ci int) {
	if _, tracked := t.indexes[ci]; !tracked {
		return
	}
	if t.sorted[ci] != nil && !t.sortedDirty[ci] {
		return
	}
	positions := make([]int, len(t.rows))
	for i := range positions {
		positions[i] = i
	}
	sort.SliceStable(positions, func(a, b int) bool {
		return compare(t.rows[positions[a]][ci], t.rows[positions[b]][ci]) < 0
	})
	t.sorted[ci] = positions
	delete(t.sortedDirty, ci)
}

// rangeLookup returns the row positions whose plan.ci value falls within
// the plan's bounds, using binary search over the sorted list. Caller holds
// at least the read lock and has verified freshness.
func (t *table) rangeLookup(plan queryPlan) []int {
	positions := t.sorted[plan.ci]
	valueAt := func(i int) Value { return t.rows[positions[i]][plan.ci] }

	// start: first position satisfying the lower bound.
	start := 0
	if plan.lo != nil {
		start = sort.Search(len(positions), func(i int) bool {
			c := compare(valueAt(i), plan.lo)
			if plan.loInc {
				return c >= 0
			}
			return c > 0
		})
	} else {
		// NULLs sort first and never satisfy range predicates; skip them.
		start = sort.Search(len(positions), func(i int) bool {
			return valueAt(i) != nil
		})
	}
	// end: first position beyond the upper bound.
	end := len(positions)
	if plan.hi != nil {
		end = sort.Search(len(positions), func(i int) bool {
			c := compare(valueAt(i), plan.hi)
			if plan.hiInc {
				return c > 0
			}
			return c >= 0
		})
	}
	if start >= end {
		return nil
	}
	return positions[start:end]
}

// selectScan evaluates s against every row.
func selectScan(s *Select, t *table) (*ResultSet, error) {
	var matched [][]Value
	for _, row := range t.rows {
		ok, err := evalBool(s.Where, t, row)
		if err != nil {
			return nil, err
		}
		if ok {
			matched = append(matched, row)
		}
	}
	return project(s, t, matched)
}

// selectRows evaluates s against a candidate row position list (from an
// index); the WHERE clause is re-checked for correctness.
func selectRows(s *Select, t *table, positions []int) (*ResultSet, error) {
	var matched [][]Value
	for _, pos := range positions {
		row := t.rows[pos]
		ok, err := evalBool(s.Where, t, row)
		if err != nil {
			return nil, err
		}
		if ok {
			matched = append(matched, row)
		}
	}
	return project(s, t, matched)
}

// project applies ORDER BY, aggregates, column projection, and LIMIT.
func project(s *Select, t *table, matched [][]Value) (*ResultSet, error) {
	if s.OrderBy != "" {
		ci, ok := t.colIdx[strings.ToLower(s.OrderBy)]
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, t.name, s.OrderBy)
		}
		sort.SliceStable(matched, func(i, j int) bool {
			c := compare(matched[i][ci], matched[j][ci])
			if s.Desc {
				return c > 0
			}
			return c < 0
		})
	}

	if isAggregate(s.Items) {
		return aggregate(s, t, matched)
	}

	// Resolve the projection once.
	var (
		cols    []string
		indices []int // -1 marks a star expansion slot
	)
	for _, item := range s.Items {
		if item.Star {
			for i, c := range t.columns {
				cols = append(cols, c.Name)
				indices = append(indices, i)
			}
			continue
		}
		ci, ok := t.colIdx[strings.ToLower(item.Column)]
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, t.name, item.Column)
		}
		name := item.Column
		if item.Alias != "" {
			name = item.Alias
		}
		cols = append(cols, name)
		indices = append(indices, ci)
	}

	limit := s.Limit
	if limit < 0 || limit > len(matched) {
		limit = len(matched)
	}
	out := make([][]Value, 0, limit)
	for _, row := range matched[:limit] {
		proj := make([]Value, len(indices))
		for i, ci := range indices {
			proj[i] = row[ci]
		}
		out = append(out, proj)
	}
	return &ResultSet{Columns: cols, Rows: out}, nil
}

func isAggregate(items []SelectItem) bool {
	for _, it := range items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

func aggregate(s *Select, t *table, matched [][]Value) (*ResultSet, error) {
	cols := make([]string, len(s.Items))
	row := make([]Value, len(s.Items))
	for i, item := range s.Items {
		if item.Agg == AggNone {
			return nil, errors.New("sqldb: mixing aggregates and plain columns is not supported")
		}
		name := item.Alias
		if name == "" {
			name = aggName(item.Agg)
		}
		cols[i] = name

		if item.Agg == AggCount && item.Star {
			row[i] = int64(len(matched))
			continue
		}
		ci, ok := t.colIdx[strings.ToLower(item.Column)]
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, t.name, item.Column)
		}
		v, err := foldAgg(item.Agg, matched, ci)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return &ResultSet{Columns: cols, Rows: [][]Value{row}}, nil
}

func aggName(a AggFunc) string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "agg"
	}
}

func foldAgg(a AggFunc, rows [][]Value, ci int) (Value, error) {
	switch a {
	case AggCount:
		n := int64(0)
		for _, r := range rows {
			if r[ci] != nil {
				n++
			}
		}
		return n, nil
	case AggSum, AggAvg:
		sum := 0.0
		n := 0
		for _, r := range rows {
			if r[ci] == nil {
				continue
			}
			f, ok := toFloat(r[ci])
			if !ok {
				return nil, fmt.Errorf("sqldb: %s over non-numeric column", aggName(a))
			}
			sum += f
			n++
		}
		if a == AggSum {
			return sum, nil
		}
		if n == 0 {
			return nil, nil
		}
		return sum / float64(n), nil
	case AggMin, AggMax:
		var best Value
		for _, r := range rows {
			if r[ci] == nil {
				continue
			}
			if best == nil {
				best = r[ci]
				continue
			}
			c := compare(r[ci], best)
			if (a == AggMin && c < 0) || (a == AggMax && c > 0) {
				best = r[ci]
			}
		}
		return best, nil
	default:
		return nil, fmt.Errorf("sqldb: unknown aggregate %d", a)
	}
}

// evalBool evaluates a WHERE expression; nil means "all rows".
func evalBool(e Expr, t *table, row []Value) (bool, error) {
	if e == nil {
		return true, nil
	}
	switch x := e.(type) {
	case *Logical:
		l, err := evalBool(x.L, t, row)
		if err != nil {
			return false, err
		}
		if x.Op == OpAnd && !l {
			return false, nil
		}
		if x.Op == OpOr && l {
			return true, nil
		}
		return evalBool(x.R, t, row)
	case *Not:
		v, err := evalBool(x.E, t, row)
		return !v, err
	case *Cmp:
		l, err := evalValue(x.L, t, row)
		if err != nil {
			return false, err
		}
		r, err := evalValue(x.R, t, row)
		if err != nil {
			return false, err
		}
		// SQL three-valued logic collapsed to two: NULL comparisons are
		// false except = NULL / != NULL which test for null-ness.
		if l == nil || r == nil {
			switch x.Op {
			case OpEq:
				return l == nil && r == nil, nil
			case OpNe:
				return (l == nil) != (r == nil), nil
			default:
				return false, nil
			}
		}
		c := compare(l, r)
		switch x.Op {
		case OpEq:
			return c == 0, nil
		case OpNe:
			return c != 0, nil
		case OpLt:
			return c < 0, nil
		case OpLe:
			return c <= 0, nil
		case OpGt:
			return c > 0, nil
		case OpGe:
			return c >= 0, nil
		}
		return false, fmt.Errorf("sqldb: unknown comparison op %d", x.Op)
	case *Between:
		v, err := evalValue(x.E, t, row)
		if err != nil {
			return false, err
		}
		lo, err := evalValue(x.Lo, t, row)
		if err != nil {
			return false, err
		}
		hi, err := evalValue(x.Hi, t, row)
		if err != nil {
			return false, err
		}
		if v == nil || lo == nil || hi == nil {
			return false, nil
		}
		return compare(v, lo) >= 0 && compare(v, hi) <= 0, nil
	case *In:
		v, err := evalValue(x.E, t, row)
		if err != nil {
			return false, err
		}
		for _, le := range x.List {
			lv, err := evalValue(le, t, row)
			if err != nil {
				return false, err
			}
			if v == nil && lv == nil {
				return true, nil
			}
			if v != nil && lv != nil && compare(v, lv) == 0 {
				return true, nil
			}
		}
		return false, nil
	case *Like:
		v, err := evalValue(x.E, t, row)
		if err != nil {
			return false, err
		}
		if v == nil {
			return false, nil
		}
		return likeMatch(formatValue(v), x.Pattern), nil
	default:
		return false, fmt.Errorf("sqldb: expression %T is not boolean", e)
	}
}

// evalValue evaluates a value expression against a row.
func evalValue(e Expr, t *table, row []Value) (Value, error) {
	switch x := e.(type) {
	case *ColRef:
		ci, ok := t.colIdx[strings.ToLower(x.Name)]
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, t.name, x.Name)
		}
		return row[ci], nil
	case *Literal:
		return x.Val, nil
	default:
		return nil, fmt.Errorf("sqldb: expression %T is not a value", e)
	}
}
