package sqldb

import (
	"fmt"
	"strings"
)

// Parse turns one SQL statement into its AST.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sqldb: trailing input at %d: %q", p.peek().pos, p.peek().val)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// at reports whether the current token has the given kind (and value, when
// non-empty).
func (p *parser) at(kind tokenKind, val string) bool {
	t := p.peek()
	return t.kind == kind && (val == "" || t.val == val)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, val string) bool {
	if p.at(kind, val) {
		p.next()
		return true
	}
	return false
}

// expect consumes a token or fails with a positioned error.
func (p *parser) expect(kind tokenKind, val string) (token, error) {
	if p.at(kind, val) {
		return p.next(), nil
	}
	t := p.peek()
	want := val
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, fmt.Errorf("sqldb: expected %s at %d, got %q", want, t.pos, t.val)
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	// Permit keywords in identifier position only where unambiguous (e.g. a
	// column named "key" would arrive as an identifier anyway; true
	// keywords are rejected).
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqldb: expected identifier at %d, got %q", t.pos, t.val)
	}
	p.next()
	return t.val, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("sqldb: expected statement keyword at %d, got %q", t.pos, t.val)
	}
	switch t.val {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "SELECT":
		return p.parseSelect()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	default:
		return nil, fmt.Errorf("sqldb: unsupported statement %q", t.val)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.accept(tokKeyword, "TABLE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var cols []ColumnDef
		for {
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			var typ ColType
			tt := p.next()
			switch tt.val {
			case "INT":
				typ = TypeInt
			case "FLOAT":
				typ = TypeFloat
			case "TEXT":
				typ = TypeText
			default:
				return nil, fmt.Errorf("sqldb: unknown column type %q at %d", tt.val, tt.pos)
			}
			def := ColumnDef{Name: colName, Type: typ}
			if p.accept(tokKeyword, "PRIMARY") {
				if _, err := p.expect(tokKeyword, "KEY"); err != nil {
					return nil, err
				}
				def.PrimaryKey = true
			}
			cols = append(cols, def)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &CreateTable{Name: name, Columns: cols}, nil

	case p.accept(tokKeyword, "INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &CreateIndex{Name: name, Table: table, Column: col}, nil

	default:
		return nil, fmt.Errorf("sqldb: CREATE must be followed by TABLE or INDEX")
	}
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return ins, nil
}

// literal parses a constant: number, string, or NULL.
func (p *parser) literal() (Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if t.isInt {
			return int64(t.num), nil
		}
		return t.num, nil
	case tokString:
		return t.val, nil
	case tokKeyword:
		if t.val == "NULL" {
			return nil, nil
		}
	}
	return nil, fmt.Errorf("sqldb: expected literal at %d, got %q", t.pos, t.val)
}

var aggNames = map[string]AggFunc{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = table

	if p.accept(tokKeyword, "WHERE") {
		where, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		sel.Where = where
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = col
		if p.accept(tokKeyword, "DESC") {
			sel.Desc = true
		} else {
			p.accept(tokKeyword, "ASC")
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t := p.next()
		if t.kind != tokNumber || !t.isInt || t.num < 0 {
			return nil, fmt.Errorf("sqldb: LIMIT needs a non-negative integer at %d", t.pos)
		}
		sel.Limit = int(t.num)
	}
	return sel, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.val == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	if t.kind == tokKeyword {
		if agg, ok := aggNames[t.val]; ok {
			p.next()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: agg}
			if p.accept(tokSymbol, "*") {
				if agg != AggCount {
					return SelectItem{}, fmt.Errorf("sqldb: only COUNT may take *")
				}
				item.Star = true
			} else {
				col, err := p.ident()
				if err != nil {
					return SelectItem{}, err
				}
				item.Column = col
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			if p.accept(tokKeyword, "AS") {
				alias, err := p.ident()
				if err != nil {
					return SelectItem{}, err
				}
				item.Alias = alias
			}
			return item, nil
		}
	}
	col, err := p.ident()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Column: col}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table, Set: map[string]Value{}}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		upd.Set[col] = v
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		where, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		upd.Where = where
	}
	return upd, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.accept(tokKeyword, "WHERE") {
		where, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		del.Where = where
	}
	return del, nil
}

// Expression grammar (highest binding last):
//
//	or     := and (OR and)*
//	and    := unary (AND unary)*
//	unary  := NOT unary | ( or ) | predicate
//	predicate := operand (cmp operand | BETWEEN lit AND lit | IN (...) | LIKE 'pat' | NOT (BETWEEN|IN|LIKE) ...)
//	operand := column | literal

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Logical{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Logical{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	if p.accept(tokSymbol, "(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]CmpOp{
	"=": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parsePredicate() (Expr, error) {
	operand, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	negate := p.accept(tokKeyword, "NOT")
	t := p.peek()
	var e Expr
	switch {
	case t.kind == tokSymbol && cmpOps[t.val] != 0:
		if negate {
			return nil, fmt.Errorf("sqldb: NOT before comparison at %d", t.pos)
		}
		p.next()
		r, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &Cmp{Op: cmpOps[t.val], L: operand, R: r}, nil

	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		e = &Between{E: operand, Lo: lo, Hi: hi}

	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			v, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		e = &In{E: operand, List: list}

	case p.accept(tokKeyword, "LIKE"):
		t := p.next()
		if t.kind != tokString {
			return nil, fmt.Errorf("sqldb: LIKE needs a string pattern at %d", t.pos)
		}
		e = &Like{E: operand, Pattern: t.val}

	default:
		return nil, fmt.Errorf("sqldb: expected predicate at %d, got %q", t.pos, t.val)
	}
	if negate {
		return &Not{E: e}, nil
	}
	return e, nil
}

func (p *parser) parseOperand() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.next()
		return &ColRef{Name: t.val}, nil
	case tokNumber, tokString:
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return &Literal{Val: v}, nil
	case tokKeyword:
		if t.val == "NULL" {
			p.next()
			return &Literal{Val: nil}, nil
		}
	}
	return nil, fmt.Errorf("sqldb: expected column or literal at %d, got %q", t.pos, t.val)
}

// MustParse parses sql and panics on error; intended for tests and fixture
// setup.
func MustParse(sql string) Statement {
	s, err := Parse(sql)
	if err != nil {
		panic(fmt.Sprintf("MustParse(%s): %v", strings.TrimSpace(sql), err))
	}
	return s
}
