package sqldb

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is a client connection to a sqldb server. Queries on one Conn are
// serialized (the protocol is strictly request/response); open several Conns
// for parallelism. Use Connect or ConnectConn.
type Conn struct {
	mu     sync.Mutex
	conn   net.Conn
	bc     *bufferedConn
	closed bool
}

// ConnectOption configures Connect.
type ConnectOption interface {
	apply(*connectConfig)
}

type connectConfig struct {
	user, pass string
	timeout    time.Duration
	dial       func(network, address string) (net.Conn, error)
}

type connectOptionFunc func(*connectConfig)

func (f connectOptionFunc) apply(c *connectConfig) { f(c) }

// WithAuth sets client credentials (defaults to "web"/"web").
func WithAuth(user, pass string) ConnectOption {
	return connectOptionFunc(func(c *connectConfig) { c.user, c.pass = user, pass })
}

// WithDialTimeout bounds TCP connection establishment.
func WithDialTimeout(d time.Duration) ConnectOption {
	return connectOptionFunc(func(c *connectConfig) { c.timeout = d })
}

// WithDialer substitutes the TCP dialer, e.g. to route through netsim.
func WithDialer(dial func(network, address string) (net.Conn, error)) ConnectOption {
	return connectOptionFunc(func(c *connectConfig) { c.dial = dial })
}

// ErrConnClosed is returned by operations on a closed Conn.
var ErrConnClosed = errors.New("sqldb: connection closed")

// Connect dials addr and performs the handshake. This is the expensive
// operation the API-based access model repeats per request.
func Connect(addr string, opts ...ConnectOption) (*Conn, error) {
	cfg := connectConfig{user: "web", pass: "web"}
	for _, o := range opts {
		o.apply(&cfg)
	}
	dial := cfg.dial
	if dial == nil {
		if cfg.timeout > 0 {
			dial = func(network, address string) (net.Conn, error) {
				return net.DialTimeout(network, address, cfg.timeout)
			}
		} else {
			dial = net.Dial
		}
	}
	nc, err := dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sqldb: dial %s: %w", addr, err)
	}
	c, err := handshake(nc, cfg.user, cfg.pass)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// ConnectConn performs the client handshake over an existing transport
// (tests use netsim pipes).
func ConnectConn(nc net.Conn, user, pass string) (*Conn, error) {
	return handshake(nc, user, pass)
}

func handshake(nc net.Conn, user, pass string) (*Conn, error) {
	bc := newBufferedConn(nc)
	t, body, err := bc.recv()
	if err != nil {
		return nil, fmt.Errorf("sqldb: handshake: %w", err)
	}
	if t != frameGreeting {
		return nil, fmt.Errorf("%w: expected greeting, got frame %d", ErrProtocol, t)
	}
	if _, _, err := readString(body); err != nil {
		return nil, err
	}
	auth := appendString(nil, user)
	auth = appendString(auth, pass)
	if err := bc.send(frameAuth, auth); err != nil {
		return nil, fmt.Errorf("sqldb: handshake: %w", err)
	}
	t, body, err = bc.recv()
	if err != nil {
		return nil, fmt.Errorf("sqldb: handshake: %w", err)
	}
	switch t {
	case frameAuthOK:
		return &Conn{conn: nc, bc: bc}, nil
	case frameError:
		msg, _, _ := readString(body)
		return nil, fmt.Errorf("%w: %s", ErrAuthFailed, msg)
	default:
		return nil, fmt.Errorf("%w: unexpected frame %d after auth", ErrProtocol, t)
	}
}

// Query executes one SQL statement and returns its result.
func (c *Conn) Query(sql string) (*ResultSet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrConnClosed
	}
	if err := c.bc.send(frameQuery, appendString(nil, sql)); err != nil {
		return nil, fmt.Errorf("sqldb: send query: %w", err)
	}
	t, body, err := c.bc.recv()
	if err != nil {
		return nil, fmt.Errorf("sqldb: read result: %w", err)
	}
	switch t {
	case frameResult:
		return decodeResult(body)
	case frameError:
		msg, _, _ := readString(body)
		return nil, fmt.Errorf("sqldb: server: %s", msg)
	default:
		return nil, fmt.Errorf("%w: unexpected frame %d", ErrProtocol, t)
	}
}

// Ping round-trips a heartbeat frame.
func (c *Conn) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConnClosed
	}
	if err := c.bc.send(framePing, nil); err != nil {
		return err
	}
	t, _, err := c.bc.recv()
	if err != nil {
		return err
	}
	if t != framePong {
		return fmt.Errorf("%w: expected pong, got frame %d", ErrProtocol, t)
	}
	return nil
}

// Close sends a quit frame (best effort) and closes the transport.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	_ = c.bc.send(frameQuit, nil)
	return c.conn.Close()
}
