package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , * = < > <= >= != <>
)

// token is one lexical unit. For numbers, val holds the canonical text and
// num the parsed value; isInt distinguishes INT literals from FLOAT.
type token struct {
	kind  tokenKind
	val   string // uppercased for keywords
	num   float64
	isInt bool
	pos   int
}

// keywords recognized by the parser. Everything else alphanumeric is an
// identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "CREATE": true, "TABLE": true, "INDEX": true, "ON": true,
	"UPDATE": true, "SET": true, "DELETE": true, "AND": true, "OR": true,
	"NOT": true, "BETWEEN": true, "IN": true, "LIKE": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "LIMIT": true, "NULL": true,
	"INT": true, "FLOAT": true, "TEXT": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "AS": true, "DROP": true,
	"PRIMARY": true, "KEY": true,
}

// lex tokenizes a SQL statement.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'' || c == '"':
			quote := byte(c)
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(input) {
					return nil, fmt.Errorf("sqldb: unterminated string at %d", i)
				}
				if input[j] == quote {
					// '' escapes a quote inside the string.
					if j+1 < len(input) && input[j+1] == quote {
						sb.WriteByte(quote)
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{kind: tokString, val: sb.String(), pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1])) && startsValue(toks)):
			j := i + 1
			isInt := true
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				if input[j] == '.' {
					isInt = false
				}
				j++
			}
			text := input[i:j]
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqldb: bad number %q at %d", text, i)
			}
			toks = append(toks, token{kind: tokNumber, val: text, num: f, isInt: isInt, pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, val: upper, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, val: word, pos: i})
			}
			i = j
		case c == '<' || c == '>' || c == '!':
			sym := string(c)
			if i+1 < len(input) && (input[i+1] == '=' || (c == '<' && input[i+1] == '>')) {
				sym += string(input[i+1])
				i++
			}
			if sym == "!" {
				return nil, fmt.Errorf("sqldb: stray '!' at %d", i)
			}
			toks = append(toks, token{kind: tokSymbol, val: sym, pos: i})
			i++
		case strings.ContainsRune("(),*=;", c):
			if c == ';' {
				i++ // statement terminator, ignored
				continue
			}
			toks = append(toks, token{kind: tokSymbol, val: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sqldb: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

// startsValue reports whether a '-' at the current position begins a
// negative literal (rather than being subtraction, which the grammar does
// not support anyway). True when the previous token cannot end a value.
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.kind {
	case tokNumber, tokString, tokIdent:
		return false
	case tokSymbol:
		return last.val != ")"
	default:
		return true
	}
}
