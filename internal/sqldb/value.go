// Package sqldb is an in-memory SQL database engine with a TCP wire
// protocol, standing in for the MySQL backend in the paper's request
// clustering testbed (a 42,000-record table queried by the backend web
// server's script). It implements enough SQL for the experiments and
// examples: CREATE TABLE / CREATE INDEX, INSERT, SELECT with WHERE
// (comparisons, AND/OR/NOT, BETWEEN, IN, LIKE), ORDER BY, LIMIT, the COUNT /
// SUM / AVG / MIN / MAX aggregates, UPDATE, and DELETE.
//
// The wire protocol deliberately includes a multi-round-trip connection
// handshake: the per-access connection establishment and tear-down cost is
// exactly what the paper's API-based access model pays on every request and
// what broker-held persistent connections amortize away.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// ColType is a column's declared type.
type ColType int

// Column types. The engine is permissive about literals but stores values
// coerced to the column's declared type.
const (
	TypeInt ColType = iota + 1
	TypeFloat
	TypeText
)

// String names the column type using SQL spelling.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	default:
		return fmt.Sprintf("TYPE(%d)", int(t))
	}
}

// Value is a single cell: int64, float64, string, or nil (SQL NULL).
type Value interface{}

// coerce converts v to the column type, returning an error for impossible
// conversions.
func coerce(v Value, t ColType) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TypeInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case string:
			n, err := strconv.ParseInt(x, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sqldb: cannot coerce %q to INT", x)
			}
			return n, nil
		}
	case TypeFloat:
		switch x := v.(type) {
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		case string:
			f, err := strconv.ParseFloat(x, 64)
			if err != nil {
				return nil, fmt.Errorf("sqldb: cannot coerce %q to FLOAT", x)
			}
			return f, nil
		}
	case TypeText:
		switch x := v.(type) {
		case int64:
			return strconv.FormatInt(x, 10), nil
		case float64:
			return strconv.FormatFloat(x, 'g', -1, 64), nil
		case string:
			return x, nil
		}
	}
	return nil, fmt.Errorf("sqldb: unsupported value %T for %v", v, t)
}

// compare orders two values: -1, 0, or 1. NULL sorts before everything.
// Numeric types compare numerically across int/float; strings compare
// lexicographically. Mixed string/number comparisons compare the string
// forms, matching the engine's permissive coercion.
func compare(a, b Value) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	af, aIsNum := toFloat(a)
	bf, bIsNum := toFloat(b)
	if aIsNum && bIsNum {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(formatValue(a), formatValue(b))
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// formatValue renders a value the way result sets and error messages print
// it.
func formatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune)
// wildcards, case-sensitive.
func likeMatch(s, pattern string) bool {
	return likeRunes([]rune(s), []rune(pattern))
}

func likeRunes(s, p []rune) bool {
	// Iterative two-pointer matcher with backtracking on the last %.
	var (
		si, pi         int
		starPi, starSi = -1, 0
	)
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starPi = pi
			starSi = si
			pi++
		case starPi >= 0:
			starSi++
			si = starSi
			pi = starPi + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
