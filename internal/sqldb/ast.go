package sqldb

// Statement is a parsed SQL statement: one of *CreateTable, *CreateIndex,
// *DropTable, *Insert, *Select, *Update, or *Delete.
type Statement interface {
	stmt()
}

// ColumnDef declares one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       ColType
	PrimaryKey bool
}

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

// CreateIndex is CREATE INDEX name ON table (column).
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

func (*CreateIndex) stmt() {}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

func (*DropTable) stmt() {}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // empty means schema order
	Rows    [][]Value
}

func (*Insert) stmt() {}

// AggFunc identifies an aggregate function in a SELECT list.
type AggFunc int

// Aggregate functions.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// SelectItem is one entry of a SELECT list: either a plain column, `*`
// (Star), or an aggregate over a column (or `*` for COUNT).
type SelectItem struct {
	Star   bool
	Column string
	Agg    AggFunc
	Alias  string
}

// Select is SELECT items FROM table [WHERE expr] [ORDER BY col [ASC|DESC]]
// [LIMIT n].
type Select struct {
	Items   []SelectItem
	Table   string
	Where   Expr // nil means all rows
	OrderBy string
	Desc    bool
	Limit   int // -1 means no limit
}

func (*Select) stmt() {}

// Update is UPDATE table SET col = val, ... [WHERE expr].
type Update struct {
	Table string
	Set   map[string]Value
	Where Expr
}

func (*Update) stmt() {}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmt() {}

// Expr is a boolean or value expression evaluated against a row.
type Expr interface {
	expr()
}

// ColRef references a column by name.
type ColRef struct{ Name string }

func (*ColRef) expr() {}

// Literal is a constant value.
type Literal struct{ Val Value }

func (*Literal) expr() {}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// Cmp compares two sub-expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (*Cmp) expr() {}

// LogicalOp joins boolean expressions.
type LogicalOp int

// Logical operators.
const (
	OpAnd LogicalOp = iota + 1
	OpOr
)

// Logical is L AND/OR R.
type Logical struct {
	Op   LogicalOp
	L, R Expr
}

func (*Logical) expr() {}

// Not negates a boolean expression.
type Not struct{ E Expr }

func (*Not) expr() {}

// Between is `col BETWEEN lo AND hi` (inclusive).
type Between struct {
	E      Expr
	Lo, Hi Expr
}

func (*Between) expr() {}

// In is `col IN (v1, v2, ...)`.
type In struct {
	E    Expr
	List []Expr
}

func (*In) expr() {}

// Like is `col LIKE 'pattern'`.
type Like struct {
	E       Expr
	Pattern string
}

func (*Like) expr() {}
