package sqldb

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"servicebroker/internal/metrics"
)

// ServerOption configures a Server.
type ServerOption interface {
	apply(*Server)
}

type serverOptionFunc func(*Server)

func (f serverOptionFunc) apply(s *Server) { f(s) }

// WithCredentials sets the username/password the handshake requires
// (defaults to "web"/"web").
func WithCredentials(user, pass string) ServerOption {
	return serverOptionFunc(func(s *Server) { s.user, s.pass = user, pass })
}

// WithHandshakeDelay adds an artificial cost to connection establishment,
// modelling expensive auth/TLS setup. The experiments use it to control the
// connection-setup overhead the API model pays per request.
func WithHandshakeDelay(d time.Duration) ServerOption {
	return serverOptionFunc(func(s *Server) { s.handshakeDelay = d })
}

// WithQueryDelay adds a fixed processing cost to every query, on top of the
// engine's real execution time.
func WithQueryDelay(d time.Duration) ServerOption {
	return serverOptionFunc(func(s *Server) { s.queryDelay = d })
}

// WithExecSlots caps the number of queries executing simultaneously; excess
// queries queue. This mirrors the paper's backend limit of 5 simultaneous
// requests (Apache MaxClients).
func WithExecSlots(n int) ServerOption {
	return serverOptionFunc(func(s *Server) {
		if n > 0 {
			s.execSlots = make(chan struct{}, n)
		}
	})
}

// WithServerMetrics directs server counters into the given registry.
func WithServerMetrics(reg *metrics.Registry) ServerOption {
	return serverOptionFunc(func(s *Server) { s.reg = reg })
}

// Server exposes an Engine over the sqldb wire protocol.
type Server struct {
	engine *Engine
	ln     net.Listener

	user, pass     string
	handshakeDelay time.Duration
	queryDelay     time.Duration
	execSlots      chan struct{}
	reg            *metrics.Registry

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer starts serving engine on addr ("127.0.0.1:0" for ephemeral).
// Close must be called to stop the accept loop and all sessions.
func NewServer(engine *Engine, addr string, opts ...ServerOption) (*Server, error) {
	if engine == nil {
		return nil, errors.New("sqldb: nil engine")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sqldb: listen %s: %w", addr, err)
	}
	s := &Server{
		engine: engine,
		ln:     ln,
		user:   "web",
		pass:   "web",
		reg:    metrics.NewRegistry(),
		conns:  make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o.apply(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Close stops accepting, closes every session, and waits for them to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.session(conn)
		}()
	}
}

// session drives one client connection: handshake, then query loop.
func (s *Server) session(conn net.Conn) {
	s.reg.Counter("connections").Inc()
	bc := newBufferedConn(conn)

	if s.handshakeDelay > 0 {
		time.Sleep(s.handshakeDelay)
	}
	if err := bc.send(frameGreeting, appendString(nil, "sqldb/1")); err != nil {
		return
	}
	t, body, err := bc.recv()
	if err != nil || t != frameAuth {
		return
	}
	user, rest, err := readString(body)
	if err != nil {
		return
	}
	pass, _, err := readString(rest)
	if err != nil {
		return
	}
	if user != s.user || pass != s.pass {
		s.reg.Counter("auth_failures").Inc()
		_ = bc.send(frameError, appendString(nil, ErrAuthFailed.Error()))
		return
	}
	if err := bc.send(frameAuthOK, nil); err != nil {
		return
	}

	for {
		t, body, err := bc.recv()
		if err != nil {
			return
		}
		switch t {
		case framePing:
			if err := bc.send(framePong, nil); err != nil {
				return
			}
		case frameQuit:
			return
		case frameQuery:
			sql, _, err := readString(body)
			if err != nil {
				return
			}
			if !s.respond(bc, sql) {
				return
			}
		default:
			_ = bc.send(frameError, appendString(nil, fmt.Sprintf("unexpected frame %d", t)))
			return
		}
	}
}

// respond executes one query and writes the reply, reporting whether the
// session should continue.
func (s *Server) respond(bc *bufferedConn, sql string) bool {
	if s.execSlots != nil {
		s.execSlots <- struct{}{}
		defer func() { <-s.execSlots }()
	}
	s.reg.Counter("queries").Inc()
	timer := metrics.StartTimer(s.reg.Histogram("query_time"))
	if s.queryDelay > 0 {
		time.Sleep(s.queryDelay)
	}
	rs, err := s.engine.Exec(sql)
	timer.ObserveDuration()
	if err != nil {
		s.reg.Counter("query_errors").Inc()
		return bc.send(frameError, appendString(nil, err.Error())) == nil
	}
	body, err := encodeResult(rs)
	if err != nil {
		return bc.send(frameError, appendString(nil, err.Error())) == nil
	}
	return bc.send(frameResult, body) == nil
}
