package sqldb

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT id, name FROM t WHERE score >= 3.5 AND name LIKE 'a%'")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.kind
	}
	if toks[0].val != "SELECT" || toks[0].kind != tokKeyword {
		t.Fatalf("first token = %+v", toks[0])
	}
	last := toks[len(toks)-1]
	if last.kind != tokEOF {
		t.Fatalf("last token = %+v, want EOF", last)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].val != "it's" {
		t.Fatalf("string = %q, want it's", toks[0].val)
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := lex("SELECT 'oops"); err == nil {
		t.Fatal("unterminated string lexed")
	}
}

func TestLexNegativeNumbers(t *testing.T) {
	toks, err := lex("WHERE x = -5")
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, tok := range toks {
		if tok.kind == tokNumber && tok.num == -5 && tok.isInt {
			found = true
		}
	}
	if !found {
		t.Fatalf("no -5 token in %+v", toks)
	}
}

func TestLexBadCharacter(t *testing.T) {
	if _, err := lex("SELECT @ FROM t"); err == nil {
		t.Fatal("lexed '@'")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, rating FLOAT)")
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("stmt = %T", stmt)
	}
	if ct.Name != "movies" || len(ct.Columns) != 3 {
		t.Fatalf("parsed %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != TypeInt {
		t.Fatalf("pk column %+v", ct.Columns[0])
	}
	if ct.Columns[2].Type != TypeFloat {
		t.Fatalf("rating column %+v", ct.Columns[2])
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt := MustParse("CREATE INDEX idx ON movies (title)")
	ci := stmt.(*CreateIndex)
	if ci.Name != "idx" || ci.Table != "movies" || ci.Column != "title" {
		t.Fatalf("parsed %+v", ci)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
	ins := stmt.(*Insert)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("parsed %+v", ins)
	}
	if ins.Rows[0][0] != int64(1) || ins.Rows[0][1] != "x" {
		t.Fatalf("row 0 = %+v", ins.Rows[0])
	}
	if ins.Rows[1][1] != nil {
		t.Fatalf("row 1 NULL = %+v", ins.Rows[1][1])
	}
}

func TestParseSelectFull(t *testing.T) {
	stmt := MustParse("SELECT id, name AS n FROM t WHERE (a = 1 OR b < 2) AND c BETWEEN 3 AND 4 ORDER BY id DESC LIMIT 10")
	sel := stmt.(*Select)
	if len(sel.Items) != 2 || sel.Items[1].Alias != "n" {
		t.Fatalf("items %+v", sel.Items)
	}
	if sel.OrderBy != "id" || !sel.Desc || sel.Limit != 10 {
		t.Fatalf("tail %+v", sel)
	}
	logical, ok := sel.Where.(*Logical)
	if !ok || logical.Op != OpAnd {
		t.Fatalf("where %T", sel.Where)
	}
}

func TestParseSelectStarAndAggregates(t *testing.T) {
	stmt := MustParse("SELECT * FROM t")
	if sel := stmt.(*Select); !sel.Items[0].Star {
		t.Fatal("star not parsed")
	}
	stmt = MustParse("SELECT COUNT(*), AVG(score) AS a FROM t")
	sel := stmt.(*Select)
	if sel.Items[0].Agg != AggCount || !sel.Items[0].Star {
		t.Fatalf("count item %+v", sel.Items[0])
	}
	if sel.Items[1].Agg != AggAvg || sel.Items[1].Alias != "a" {
		t.Fatalf("avg item %+v", sel.Items[1])
	}
}

func TestParseSelectInLikeNot(t *testing.T) {
	stmt := MustParse("SELECT id FROM t WHERE a IN (1, 2, 3) AND name NOT LIKE 'x%' AND NOT b = 5")
	sel := stmt.(*Select)
	if sel.Where == nil {
		t.Fatal("where missing")
	}
}

func TestParseUpdate(t *testing.T) {
	stmt := MustParse("UPDATE t SET a = 1, b = 'two' WHERE id = 3")
	upd := stmt.(*Update)
	if upd.Set["a"] != int64(1) || upd.Set["b"] != "two" {
		t.Fatalf("set %+v", upd.Set)
	}
	if upd.Where == nil {
		t.Fatal("where missing")
	}
}

func TestParseDelete(t *testing.T) {
	stmt := MustParse("DELETE FROM t WHERE id > 10")
	del := stmt.(*Delete)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("parsed %+v", del)
	}
	stmt = MustParse("DELETE FROM t")
	if stmt.(*Delete).Where != nil {
		t.Fatal("where should be nil")
	}
}

func TestParseDropTable(t *testing.T) {
	stmt := MustParse("DROP TABLE t")
	if stmt.(*DropTable).Name != "t" {
		t.Fatal("bad drop")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a ==",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM t LIMIT 1.5",
		"SELECT SUM(*) FROM t",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES (1,)",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a BLOB)",
		"CREATE INDEX i ON t",
		"UPDATE t SET",
		"DELETE t",
		"SELECT * FROM t extra garbage",
		"SELECT * FROM t WHERE a LIKE 5",
		"SELECT * FROM t WHERE a NOT = 5",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded; want error", sql)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on garbage did not panic")
		}
	}()
	MustParse("NOT SQL AT ALL")
}

// Property: the parser never panics on arbitrary input.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(sql string) bool {
		_, _ = Parse(sql)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on keyword-dense inputs, which reach
// deeper grammar paths than fully random strings.
func TestParseKeywordSoupNeverPanicsProperty(t *testing.T) {
	words := []string{
		"SELECT", "FROM", "WHERE", "INSERT", "VALUES", "(", ")", ",", "*",
		"=", "<", ">", "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE", "ORDER",
		"BY", "LIMIT", "t", "a", "1", "'s'", "NULL", "COUNT", "CREATE", "TABLE",
	}
	f := func(picks []uint8) bool {
		parts := make([]string, 0, len(picks))
		for _, p := range picks {
			parts = append(parts, words[int(p)%len(words)])
		}
		_, _ = Parse(strings.Join(parts, " "))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLikeMatch(t *testing.T) {
	tests := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"abc", "a%b%c", true},
		{"abc", "%%%", true},
		{"abc", "a_c", true},
		{"ab", "a_c", false},
		{"aXbXc", "a%c", true},
		{"record-000123", "record-%", true},
	}
	for _, tt := range tests {
		if got := likeMatch(tt.s, tt.p); got != tt.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tt.s, tt.p, got, tt.want)
		}
	}
}

// Property: a string always matches itself and always matches "%".
func TestLikeReflexiveProperty(t *testing.T) {
	f := func(s string) bool {
		// Skip strings containing wildcards; they change the semantics.
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, s) && likeMatch(s, "%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoerce(t *testing.T) {
	tests := []struct {
		v    Value
		t    ColType
		want Value
		err  bool
	}{
		{int64(5), TypeInt, int64(5), false},
		{3.9, TypeInt, int64(3), false},
		{"7", TypeInt, int64(7), false},
		{"x", TypeInt, nil, true},
		{int64(5), TypeFloat, 5.0, false},
		{"2.5", TypeFloat, 2.5, false},
		{"x", TypeFloat, nil, true},
		{int64(5), TypeText, "5", false},
		{2.5, TypeText, "2.5", false},
		{nil, TypeInt, nil, false},
	}
	for _, tt := range tests {
		got, err := coerce(tt.v, tt.t)
		if (err != nil) != tt.err {
			t.Errorf("coerce(%v, %v) err = %v, want err=%v", tt.v, tt.t, err, tt.err)
			continue
		}
		if !tt.err && got != tt.want {
			t.Errorf("coerce(%v, %v) = %v, want %v", tt.v, tt.t, got, tt.want)
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{nil, nil, 0},
		{nil, int64(1), -1},
		{int64(1), nil, 1},
		{int64(1), int64(2), -1},
		{int64(2), 2.0, 0},
		{2.5, int64(2), 1},
		{"a", "b", -1},
		{"b", "a", 1},
		{"a", "a", 0},
	}
	for _, tt := range tests {
		if got := compare(tt.a, tt.b); got != tt.want {
			t.Errorf("compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestColTypeString(t *testing.T) {
	if TypeInt.String() != "INT" || TypeFloat.String() != "FLOAT" || TypeText.String() != "TEXT" {
		t.Fatal("type names wrong")
	}
	if got := ColType(9).String(); got != "TYPE(9)" {
		t.Fatalf("unknown type string = %q", got)
	}
}
