package sqldb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// The sqldb wire protocol frames every message as
//
//	length[4] type[1] body[length-1]
//
// and opens each session with a greeting/auth handshake, deliberately
// mirroring the multi-round-trip connection establishment of real database
// protocols. That setup cost is what the paper's API access model pays per
// request and what broker persistent connections amortize.

type frameType uint8

const (
	frameGreeting frameType = iota + 1
	frameAuth
	frameAuthOK
	frameQuery
	frameResult
	frameError
	framePing
	framePong
	frameQuit
)

// maxBody bounds one frame body to keep a malicious peer from forcing huge
// allocations.
const maxBody = 64 << 20

// Protocol errors.
var (
	ErrProtocol   = errors.New("sqldb: protocol error")
	ErrAuthFailed = errors.New("sqldb: authentication failed")
)

// writeFrame sends one frame.
func writeFrame(w io.Writer, t frameType, body []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r io.Reader) (frameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxBody {
		return 0, nil, fmt.Errorf("%w: frame length %d", ErrProtocol, n)
	}
	body := make([]byte, n-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return frameType(hdr[4]), body, nil
}

// Value tags used inside result frames.
const (
	tagNull  = 0
	tagInt   = 1
	tagFloat = 2
	tagText  = 3
)

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("%w: truncated string", ErrProtocol)
	}
	n := binary.BigEndian.Uint32(buf)
	buf = buf[4:]
	if uint32(len(buf)) < n {
		return "", nil, fmt.Errorf("%w: string length %d, have %d", ErrProtocol, n, len(buf))
	}
	return string(buf[:n]), buf[n:], nil
}

func appendValue(buf []byte, v Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, tagNull), nil
	case int64:
		buf = append(buf, tagInt)
		return binary.BigEndian.AppendUint64(buf, uint64(x)), nil
	case float64:
		buf = append(buf, tagFloat)
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(x)), nil
	case string:
		buf = append(buf, tagText)
		return appendString(buf, x), nil
	default:
		return nil, fmt.Errorf("%w: unsupported value type %T", ErrProtocol, v)
	}
}

func readValue(buf []byte) (Value, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, fmt.Errorf("%w: truncated value", ErrProtocol)
	}
	tag := buf[0]
	buf = buf[1:]
	switch tag {
	case tagNull:
		return nil, buf, nil
	case tagInt:
		if len(buf) < 8 {
			return nil, nil, fmt.Errorf("%w: truncated int", ErrProtocol)
		}
		return int64(binary.BigEndian.Uint64(buf)), buf[8:], nil
	case tagFloat:
		if len(buf) < 8 {
			return nil, nil, fmt.Errorf("%w: truncated float", ErrProtocol)
		}
		return math.Float64frombits(binary.BigEndian.Uint64(buf)), buf[8:], nil
	case tagText:
		s, rest, err := readString(buf)
		return s, rest, err
	default:
		return nil, nil, fmt.Errorf("%w: unknown value tag %d", ErrProtocol, tag)
	}
}

// encodeResult serializes a ResultSet into a frameResult body.
func encodeResult(rs *ResultSet) ([]byte, error) {
	buf := binary.BigEndian.AppendUint32(nil, uint32(rs.Affected))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(rs.Columns)))
	for _, c := range rs.Columns {
		buf = appendString(buf, c)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rs.Rows)))
	for _, row := range rs.Rows {
		if len(row) != len(rs.Columns) {
			return nil, fmt.Errorf("%w: row width %d != %d columns", ErrProtocol, len(row), len(rs.Columns))
		}
		var err error
		for _, v := range row {
			buf, err = appendValue(buf, v)
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// decodeResult parses a frameResult body.
func decodeResult(buf []byte) (*ResultSet, error) {
	if len(buf) < 10 {
		return nil, fmt.Errorf("%w: truncated result", ErrProtocol)
	}
	rs := &ResultSet{Affected: int(binary.BigEndian.Uint32(buf))}
	buf = buf[4:]
	ncols := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	var err error
	for i := 0; i < ncols; i++ {
		var c string
		c, buf, err = readString(buf)
		if err != nil {
			return nil, err
		}
		rs.Columns = append(rs.Columns, c)
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: truncated row count", ErrProtocol)
	}
	nrows := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	for i := 0; i < nrows; i++ {
		row := make([]Value, ncols)
		for j := 0; j < ncols; j++ {
			row[j], buf, err = readValue(buf)
			if err != nil {
				return nil, err
			}
		}
		rs.Rows = append(rs.Rows, row)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(buf))
	}
	return rs, nil
}

// bufferedConn pairs a buffered reader with the raw writer for one session.
type bufferedConn struct {
	r io.Reader
	w *bufio.Writer
}

func newBufferedConn(rw io.ReadWriter) *bufferedConn {
	return &bufferedConn{r: bufio.NewReader(rw), w: bufio.NewWriter(rw)}
}

func (c *bufferedConn) send(t frameType, body []byte) error {
	if err := writeFrame(c.w, t, body); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *bufferedConn) recv() (frameType, []byte, error) {
	return readFrame(c.r)
}
