package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// newRangeDB builds a table with an indexed and an unindexed copy of the
// same column so tests can compare index-assisted results against scans.
func newRangeDB(t *testing.T, n int) *Engine {
	t.Helper()
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE r (id INT PRIMARY KEY, v INT, vcopy INT, s TEXT)")
	mustExec(t, e, "CREATE INDEX rv ON r (v)")
	rng := rand.New(rand.NewSource(5))
	ins := &Insert{Table: "r"}
	for i := 0; i < n; i++ {
		v := int64(rng.Intn(100))
		var vv Value = v
		if i%17 == 0 {
			vv = nil // sprinkle NULLs
		}
		ins.Rows = append(ins.Rows, []Value{int64(i), vv, vv, fmt.Sprintf("s%d", i)})
	}
	if _, err := e.ExecStmt(ins); err != nil {
		t.Fatal(err)
	}
	return e
}

// queriesEqual runs the same predicate against the indexed and unindexed
// column and compares row counts.
func queriesEqual(t *testing.T, e *Engine, predicate string) {
	t.Helper()
	idx := mustExec(t, e, "SELECT id FROM r WHERE "+fmt.Sprintf(predicate, "v"))
	scan := mustExec(t, e, "SELECT id FROM r WHERE "+fmt.Sprintf(predicate, "vcopy"))
	if len(idx.Rows) != len(scan.Rows) {
		t.Fatalf("predicate %q: indexed %d rows, scan %d rows",
			fmt.Sprintf(predicate, "v"), len(idx.Rows), len(scan.Rows))
	}
}

func TestRangeIndexMatchesScan(t *testing.T) {
	e := newRangeDB(t, 500)
	for _, pred := range []string{
		"%s BETWEEN 20 AND 40",
		"%s BETWEEN 40 AND 20", // empty range
		"%s < 10",
		"%s <= 10",
		"%s > 90",
		"%s >= 90",
		"%s < 0",
		"%s > 99",
		"10 < %s",  // reversed: v > 10
		"10 >= %s", // reversed: v <= 10
		"%s BETWEEN 0 AND 99",
	} {
		queriesEqual(t, e, pred)
	}
}

func TestRangeIndexWithConjunction(t *testing.T) {
	e := newRangeDB(t, 500)
	// The planner picks the range conjunct; the other conjunct is
	// re-checked per candidate.
	idx := mustExec(t, e, "SELECT id FROM r WHERE v BETWEEN 20 AND 40 AND id < 100")
	scan := mustExec(t, e, "SELECT id FROM r WHERE vcopy BETWEEN 20 AND 40 AND id < 100")
	if len(idx.Rows) != len(scan.Rows) {
		t.Fatalf("indexed %d, scan %d", len(idx.Rows), len(scan.Rows))
	}
	// Equality conjunct wins over range: id = 7 uses the pk hash.
	one := mustExec(t, e, "SELECT id FROM r WHERE id = 7 AND v >= 0")
	if len(one.Rows) > 1 {
		t.Fatalf("rows = %d", len(one.Rows))
	}
}

func TestRangeIndexExcludesNulls(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE t (v INT)")
	mustExec(t, e, "CREATE INDEX tv ON t (v)")
	mustExec(t, e, "INSERT INTO t VALUES (NULL), (1), (NULL), (5), (9)")
	for _, tc := range []struct {
		pred string
		want int
	}{
		{"v >= 0", 3},
		{"v < 100", 3},
		{"v BETWEEN 1 AND 5", 2},
	} {
		rs := mustExec(t, e, "SELECT v FROM t WHERE "+tc.pred)
		if len(rs.Rows) != tc.want {
			t.Errorf("%s: %d rows, want %d", tc.pred, len(rs.Rows), tc.want)
		}
		for _, row := range rs.Rows {
			if row[0] == nil {
				t.Errorf("%s returned a NULL row", tc.pred)
			}
		}
	}
}

func TestRangeIndexStaysFreshAcrossMutations(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE t (v INT)")
	mustExec(t, e, "CREATE INDEX tv ON t (v)")
	mustExec(t, e, "INSERT INTO t VALUES (1), (5), (9)")
	if rs := mustExec(t, e, "SELECT v FROM t WHERE v BETWEEN 0 AND 6"); len(rs.Rows) != 2 {
		t.Fatalf("initial rows = %d", len(rs.Rows))
	}
	// Insert invalidates the sorted list; the next range query rebuilds.
	mustExec(t, e, "INSERT INTO t VALUES (3)")
	if rs := mustExec(t, e, "SELECT v FROM t WHERE v BETWEEN 0 AND 6"); len(rs.Rows) != 3 {
		t.Fatalf("post-insert rows = %d", len(rs.Rows))
	}
	mustExec(t, e, "UPDATE t SET v = 100 WHERE v = 1")
	if rs := mustExec(t, e, "SELECT v FROM t WHERE v BETWEEN 0 AND 6"); len(rs.Rows) != 2 {
		t.Fatalf("post-update rows = %d", len(rs.Rows))
	}
	mustExec(t, e, "DELETE FROM t WHERE v = 3")
	if rs := mustExec(t, e, "SELECT v FROM t WHERE v BETWEEN 0 AND 6"); len(rs.Rows) != 1 {
		t.Fatalf("post-delete rows = %d", len(rs.Rows))
	}
}

func TestRangeIndexOnTextColumn(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, "CREATE TABLE t (name TEXT)")
	mustExec(t, e, "CREATE INDEX tn ON t (name)")
	mustExec(t, e, "INSERT INTO t VALUES ('alice'), ('bob'), ('carol'), ('dave')")
	rs := mustExec(t, e, "SELECT name FROM t WHERE name BETWEEN 'b' AND 'd'")
	if len(rs.Rows) != 2 || rs.Rows[0][0] != "bob" {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

// Property: for random data and random bounds, the indexed range query
// returns exactly the rows a full scan returns.
func TestRangeIndexEquivalenceProperty(t *testing.T) {
	f := func(vals []int16, loRaw, hiRaw int16) bool {
		if len(vals) == 0 || len(vals) > 200 {
			return true
		}
		e := NewEngine()
		if _, err := e.Exec("CREATE TABLE t (v INT, w INT)"); err != nil {
			return false
		}
		if _, err := e.Exec("CREATE INDEX tv ON t (v)"); err != nil {
			return false
		}
		ins := &Insert{Table: "t"}
		for _, v := range vals {
			ins.Rows = append(ins.Rows, []Value{int64(v), int64(v)})
		}
		if _, err := e.ExecStmt(ins); err != nil {
			return false
		}
		lo, hi := int64(loRaw), int64(hiRaw)
		idx, err1 := e.Exec(fmt.Sprintf("SELECT v FROM t WHERE v BETWEEN %d AND %d", lo, hi))
		scan, err2 := e.Exec(fmt.Sprintf("SELECT w FROM t WHERE w BETWEEN %d AND %d", lo, hi))
		if err1 != nil || err2 != nil {
			return false
		}
		if len(idx.Rows) != len(scan.Rows) {
			return false
		}
		// Compare multisets via sorted rendering.
		count := map[string]int{}
		for _, r := range idx.Rows {
			count[formatValue(r[0])]++
		}
		for _, r := range scan.Rows {
			count[formatValue(r[0])]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRangeQueryIndexed(b *testing.B) {
	e := NewEngine()
	if err := LoadRecords(e, PaperRecordCount); err != nil {
		b.Fatal(err)
	}
	if _, err := e.Exec("CREATE INDEX records_score ON records (score)"); err != nil {
		b.Fatal(err)
	}
	// Warm the sorted list.
	if _, err := e.Exec("SELECT id FROM records WHERE score BETWEEN 100 AND 140"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT id FROM records WHERE score BETWEEN 100 AND 140"); err != nil {
			b.Fatal(err)
		}
	}
}
