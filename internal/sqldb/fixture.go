package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
)

// RecordsTable is the name of the fixture table used by the request
// clustering experiment (the paper's backend "looked up a database table
// that contained 42,000 records").
const RecordsTable = "records"

// PaperRecordCount is the fixture size from the paper.
const PaperRecordCount = 42000

// LoadRecords creates the experiment fixture table with n rows:
//
//	records(id INT PRIMARY KEY, category INT, score FLOAT, name TEXT)
//
// Categories span [0, 100); scores span [0, 1000). Row content is generated
// from a fixed seed so every run sees the same data.
func LoadRecords(e *Engine, n int) error {
	if n <= 0 {
		return fmt.Errorf("sqldb: record count must be positive, got %d", n)
	}
	if _, err := e.Exec("CREATE TABLE records (id INT PRIMARY KEY, category INT, score FLOAT, name TEXT)"); err != nil {
		return fmt.Errorf("sqldb: create fixture: %w", err)
	}
	if _, err := e.Exec("CREATE INDEX records_category ON records (category)"); err != nil {
		return fmt.Errorf("sqldb: index fixture: %w", err)
	}
	rng := rand.New(rand.NewSource(20030519)) // ICDCS 2003
	// Insert via the engine API in batches; going through the parser for
	// 42,000 rows would dominate test startup for no benefit.
	const batch = 2000
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		ins := &Insert{Table: RecordsTable}
		for i := start; i < end; i++ {
			ins.Rows = append(ins.Rows, []Value{
				int64(i),
				int64(rng.Intn(100)),
				float64(rng.Intn(1_000_000)) / 1000.0,
				fmt.Sprintf("record-%06d", i),
			})
		}
		if _, err := e.ExecStmt(ins); err != nil {
			return fmt.Errorf("sqldb: load fixture rows %d..%d: %w", start, end, err)
		}
	}
	return nil
}

// RandomRangeQuery returns a SELECT over the fixture approximating the
// paper's "random query command": a category lookup plus a score range scan.
// The rng drives the randomness so workloads are reproducible.
func RandomRangeQuery(rng *rand.Rand) string {
	cat := rng.Intn(100)
	lo := rng.Intn(900)
	width := 10 + rng.Intn(50)
	return fmt.Sprintf("SELECT id, name, score FROM records WHERE category = %d AND score BETWEEN %d AND %d",
		cat, lo, lo+width)
}

// RepeatQuery wraps a query with a repetition directive understood by the
// backend CGI script: the paper's broker "rewrite[s] the query command to
// notify the script to repeat the same workload multiple times to achieve
// clustering". The directive survives as a prefix comment.
func RepeatQuery(sql string, times int) string {
	if times <= 1 {
		return sql
	}
	return fmt.Sprintf("/*repeat=%d*/ %s", times, sql)
}

// ParseRepeat extracts the repetition directive from a query produced by
// RepeatQuery, returning the bare SQL and the repeat count (≥ 1).
func ParseRepeat(sql string) (string, int) {
	const prefix = "/*repeat="
	if !strings.HasPrefix(sql, prefix) {
		return sql, 1
	}
	rest := sql[len(prefix):]
	end := strings.Index(rest, "*/")
	if end < 0 {
		return sql, 1
	}
	var times int
	if _, err := fmt.Sscanf(rest[:end], "%d", &times); err != nil || times < 1 {
		return sql, 1
	}
	return strings.TrimSpace(rest[end+2:]), times
}
