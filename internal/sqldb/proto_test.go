package sqldb

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestResultCodecRoundTrip(t *testing.T) {
	rs := &ResultSet{
		Columns:  []string{"id", "name", "score", "note"},
		Rows:     [][]Value{{int64(1), "a", 2.5, nil}, {int64(-7), "b", -0.5, "x"}},
		Affected: 3,
	}
	body, err := encodeResult(rs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Affected != rs.Affected || len(got.Rows) != 2 || len(got.Columns) != 4 {
		t.Fatalf("decoded %+v", got)
	}
	for i := range rs.Rows {
		for j := range rs.Rows[i] {
			if got.Rows[i][j] != rs.Rows[i][j] {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, j, got.Rows[i][j], rs.Rows[i][j])
			}
		}
	}
}

func TestResultCodecEmpty(t *testing.T) {
	body, err := encodeResult(&ResultSet{Affected: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Affected != 1 || len(got.Columns) != 0 || len(got.Rows) != 0 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestResultCodecRejectsRaggedRows(t *testing.T) {
	rs := &ResultSet{Columns: []string{"a"}, Rows: [][]Value{{int64(1), int64(2)}}}
	if _, err := encodeResult(rs); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestDecodeResultRejectsTruncation(t *testing.T) {
	rs := &ResultSet{Columns: []string{"a"}, Rows: [][]Value{{"hello"}}}
	body, _ := encodeResult(rs)
	for cut := 0; cut < len(body); cut++ {
		if _, err := decodeResult(body[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := decodeResult(append(body, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// Property: result sets with arbitrary (bounded) contents round-trip.
func TestResultCodecProperty(t *testing.T) {
	f := func(ints []int64, strs []string, affected uint16) bool {
		if len(ints) > 50 || len(strs) > 50 {
			return true
		}
		rs := &ResultSet{Columns: []string{"i", "s"}, Affected: int(affected)}
		n := len(ints)
		if len(strs) < n {
			n = len(strs)
		}
		for i := 0; i < n; i++ {
			rs.Rows = append(rs.Rows, []Value{ints[i], strs[i]})
		}
		body, err := encodeResult(rs)
		if err != nil {
			return false
		}
		got, err := decodeResult(body)
		if err != nil || got.Affected != rs.Affected || len(got.Rows) != len(rs.Rows) {
			return false
		}
		for i := range rs.Rows {
			if got.Rows[i][0] != rs.Rows[i][0] || got.Rows[i][1] != rs.Rows[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decodeResult never panics on arbitrary bytes.
func TestDecodeResultNeverPanicsProperty(t *testing.T) {
	f := func(body []byte) bool {
		_, _ = decodeResult(body)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameQuery, []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	ft, body, err := readFrame(&buf)
	if err != nil || ft != frameQuery || string(body) != "SELECT 1" {
		t.Fatalf("frame = %d %q %v", ft, body, err)
	}
}

func TestReadFrameRejectsBadLength(t *testing.T) {
	// Length 0 is invalid.
	buf := bytes.NewBuffer([]byte{0, 0, 0, 0, byte(frameQuery)})
	if _, _, err := readFrame(buf); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// startServer spins up an engine+server for protocol tests.
func startServer(t *testing.T, opts ...ServerOption) *Server {
	t.Helper()
	e := NewEngine()
	if _, err := e.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("INSERT INTO kv VALUES (1, 'one'), (2, 'two')"); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(e, "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestClientServerQuery(t *testing.T) {
	srv := startServer(t)
	conn, err := Connect(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rs, err := conn.Query("SELECT v FROM kv WHERE k = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0] != "two" {
		t.Fatalf("rows = %v", rs.Rows)
	}
	// Mutations over the wire.
	rs, err = conn.Query("INSERT INTO kv VALUES (3, 'three')")
	if err != nil || rs.Affected != 1 {
		t.Fatalf("insert = %+v, %v", rs, err)
	}
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestClientServerQueryError(t *testing.T) {
	srv := startServer(t)
	conn, err := Connect(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Query("SELECT * FROM missing"); err == nil {
		t.Fatal("query on missing table succeeded")
	}
	// Session survives an error response.
	if _, err := conn.Query("SELECT k FROM kv"); err != nil {
		t.Fatalf("session dead after error: %v", err)
	}
}

func TestAuthFailure(t *testing.T) {
	srv := startServer(t, WithCredentials("admin", "secret"))
	if _, err := Connect(srv.Addr().String()); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v, want ErrAuthFailed", err)
	}
	conn, err := Connect(srv.Addr().String(), WithAuth("admin", "secret"))
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}

func TestHandshakeDelayApplied(t *testing.T) {
	const delay = 30 * time.Millisecond
	srv := startServer(t, WithHandshakeDelay(delay))
	start := time.Now()
	conn, err := Connect(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("connect took %v, want ≥ %v", elapsed, delay)
	}
	// Queries on the established connection do NOT pay the delay again.
	start = time.Now()
	if _, err := conn.Query("SELECT k FROM kv"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > delay {
		t.Fatalf("query took %v, should not pay handshake delay", elapsed)
	}
}

func TestExecSlotsSerializeQueries(t *testing.T) {
	const qd = 20 * time.Millisecond
	srv := startServer(t, WithExecSlots(1), WithQueryDelay(qd))

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := Connect(srv.Addr().String())
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			defer conn.Close()
			if _, err := conn.Query("SELECT k FROM kv"); err != nil {
				t.Errorf("query: %v", err)
			}
		}()
	}
	wg.Wait()
	// With one slot, three queries serialize: ≥ 3 × 20ms.
	if elapsed := time.Since(start); elapsed < 3*qd {
		t.Fatalf("3 queries on 1 slot took %v, want ≥ %v", elapsed, 3*qd)
	}
}

func TestServerMetrics(t *testing.T) {
	srv := startServer(t)
	conn, err := Connect(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Query("SELECT k FROM kv")
	conn.Query("SELECT * FROM missing")
	reg := srv.Metrics()
	if got := reg.Counter("queries").Value(); got != 2 {
		t.Fatalf("queries = %d, want 2", got)
	}
	if got := reg.Counter("query_errors").Value(); got != 1 {
		t.Fatalf("query_errors = %d, want 1", got)
	}
	if got := reg.Counter("connections").Value(); got != 1 {
		t.Fatalf("connections = %d, want 1", got)
	}
}

func TestConnClosedOperations(t *testing.T) {
	srv := startServer(t)
	conn, err := Connect(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := conn.Query("SELECT k FROM kv"); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("query err = %v, want ErrConnClosed", err)
	}
	if err := conn.Ping(); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("ping err = %v, want ErrConnClosed", err)
	}
	conn.Close() // idempotent
}

func TestServerCloseTerminatesSessions(t *testing.T) {
	srv := startServer(t)
	conn, err := Connect(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query("SELECT k FROM kv"); err == nil {
		t.Fatal("query succeeded after server close")
	}
	srv.Close() // idempotent
}

func TestConcurrentClients(t *testing.T) {
	srv := startServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := Connect(srv.Addr().String())
			if err != nil {
				t.Errorf("connect %d: %v", i, err)
				return
			}
			defer conn.Close()
			for j := 0; j < 20; j++ {
				rs, err := conn.Query("SELECT v FROM kv WHERE k = 1")
				if err != nil {
					t.Errorf("client %d query %d: %v", i, j, err)
					return
				}
				if len(rs.Rows) != 1 || rs.Rows[0][0] != "one" {
					t.Errorf("client %d query %d: rows %v", i, j, rs.Rows)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestNewServerRejectsNilEngine(t *testing.T) {
	if _, err := NewServer(nil, "127.0.0.1:0"); err == nil {
		t.Fatal("NewServer(nil) succeeded")
	}
}
