package overload

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func newTestLimiter(t *testing.T, cfg Config) (*Limiter, *fakeClock) {
	t.Helper()
	l, err := NewLimiter(cfg)
	if err != nil {
		t.Fatalf("NewLimiter: %v", err)
	}
	clk := newFakeClock()
	l.SetClock(clk.Now)
	return l, clk
}

func TestDefaultsAndValidation(t *testing.T) {
	l, err := NewLimiter(Config{})
	if err != nil {
		t.Fatalf("NewLimiter zero config: %v", err)
	}
	s := l.Snapshot()
	if s.Min != 1 || s.Max != 1024 || s.Limit != 1024 {
		t.Fatalf("unexpected defaults: %+v", s)
	}

	if _, err := NewLimiter(Config{Min: 10, Max: 5}); err == nil {
		t.Fatal("want error for Max < Min")
	}

	// Initial is clamped into [Min, Max].
	l, err = NewLimiter(Config{Min: 4, Max: 8, Initial: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Limit(); got != 8 {
		t.Fatalf("Initial not clamped to Max: got %d", got)
	}
	l, err = NewLimiter(Config{Min: 4, Max: 8, Initial: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Limit(); got != 4 {
		t.Fatalf("Initial not clamped to Min: got %d", got)
	}
}

func TestAdditiveIncrease(t *testing.T) {
	l, _ := newTestLimiter(t, Config{Min: 1, Max: 100, Initial: 10, LatencyTarget: 10 * time.Millisecond})
	// About limit healthy completions should raise the limit by ~1.
	for i := 0; i < 10; i++ {
		l.Observe(time.Millisecond, true)
	}
	if got := l.Limit(); got != 10 && got != 11 {
		t.Fatalf("after one round of healthy completions, limit = %d, want ~11", got)
	}
	// Many more healthy completions saturate at Max.
	for i := 0; i < 100_000; i++ {
		l.Observe(time.Millisecond, true)
	}
	if got := l.Limit(); got != 100 {
		t.Fatalf("limit did not saturate at Max: got %d", got)
	}
}

func TestMultiplicativeCutOnLatencyBreach(t *testing.T) {
	l, clk := newTestLimiter(t, Config{Min: 2, Max: 100, Initial: 100, LatencyTarget: 10 * time.Millisecond, Backoff: 0.5, CutWindow: 100 * time.Millisecond})
	l.Observe(50*time.Millisecond, true) // slow but successful → cut
	if got := l.Limit(); got != 50 {
		t.Fatalf("after one cut, limit = %d, want 50", got)
	}
	// Inside the cut window further breaches are coalesced.
	l.Observe(50*time.Millisecond, true)
	l.Observe(0, false)
	if got := l.Limit(); got != 50 {
		t.Fatalf("cut applied inside window: limit = %d, want 50", got)
	}
	// After the window the next breach cuts again.
	clk.Advance(150 * time.Millisecond)
	l.Observe(0, false)
	if got := l.Limit(); got != 25 {
		t.Fatalf("after second cut, limit = %d, want 25", got)
	}
	s := l.Snapshot()
	if s.Cuts != 2 || s.Breaches != 4 {
		t.Fatalf("counter mismatch: %+v", s)
	}
}

func TestCutFloorsAtMin(t *testing.T) {
	l, clk := newTestLimiter(t, Config{Min: 3, Max: 100, Initial: 4, Backoff: 0.1, CutWindow: time.Millisecond})
	for i := 0; i < 10; i++ {
		l.Overload()
		clk.Advance(10 * time.Millisecond)
	}
	if got := l.Limit(); got != 3 {
		t.Fatalf("limit fell below Min: got %d", got)
	}
}

func TestZeroLatencyTargetIgnoresSlowSuccess(t *testing.T) {
	l, _ := newTestLimiter(t, Config{Min: 1, Max: 10, Initial: 5})
	l.Observe(time.Hour, true) // slow but target disabled → healthy
	if s := l.Snapshot(); s.Breaches != 0 || s.Healthy != 1 {
		t.Fatalf("slow success treated as breach with zero target: %+v", s)
	}
	l.Observe(0, false) // failure still cuts
	if s := l.Snapshot(); s.Cuts != 1 {
		t.Fatalf("failure did not cut: %+v", s)
	}
}

func TestOnChangeFires(t *testing.T) {
	l, clk := newTestLimiter(t, Config{Min: 1, Max: 100, Initial: 100, Backoff: 0.5, CutWindow: time.Millisecond})
	var got []int
	l.OnChange(func(n int) { got = append(got, n) })
	l.Overload()
	clk.Advance(10 * time.Millisecond)
	l.Overload()
	if len(got) != 2 || got[0] != 50 || got[1] != 25 {
		t.Fatalf("OnChange values = %v, want [50 25]", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	l, _ := newTestLimiter(t, Config{Min: 1, Max: 64, Initial: 32, LatencyTarget: 10 * time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				switch j % 3 {
				case 0:
					l.Observe(time.Millisecond, true)
				case 1:
					l.Observe(time.Minute, true)
				default:
					l.Overload()
				}
				_ = l.Limit()
				_ = l.Snapshot()
			}
		}(i)
	}
	wg.Wait()
	if got := l.Limit(); got < 1 || got > 64 {
		t.Fatalf("limit escaped bounds: %d", got)
	}
}

// TestRecoversAfterTransientOverload drives the limiter through a
// congestion episode and checks it climbs back: the paper's "peak then
// decline" behavior needs the decline to be temporary.
func TestRecoversAfterTransientOverload(t *testing.T) {
	l, clk := newTestLimiter(t, Config{Min: 2, Max: 64, Initial: 64, LatencyTarget: 10 * time.Millisecond, Backoff: 0.5, CutWindow: 50 * time.Millisecond})
	for i := 0; i < 6; i++ {
		l.Observe(time.Second, true)
		clk.Advance(60 * time.Millisecond)
	}
	low := l.Limit()
	if low >= 16 {
		t.Fatalf("limit did not drop under sustained congestion: %d", low)
	}
	for i := 0; i < 20_000; i++ {
		l.Observe(time.Millisecond, true)
	}
	if got := l.Limit(); got != 64 {
		t.Fatalf("limit did not recover to Max: got %d (low was %d)", got, low)
	}
}
