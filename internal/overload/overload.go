// Package overload implements self-tuning admission control for service
// brokers. The paper's binary forward/drop rule needs a threshold the
// operator must guess; under a workload shift a static guess either sheds
// healthy traffic or lets the backend melt down before anything is shed.
// This package replaces the guess with a measured value: an AIMD
// concurrency limiter in the spirit of TCP congestion control (and of
// Netflix's concurrency-limits library) that raises the effective
// threshold additively while completions come back healthy and cuts it
// multiplicatively the moment the backend shows congestion — a latency
// budget breached, a deadline missed, a circuit breaker opening.
//
// The limiter is deliberately tiny: one float under a mutex, no
// goroutines, signals pushed by the broker's completion path. Brokers
// carry the current limit in their LoadReport, so the centralized front
// end's admission control adapts for free.
package overload

import (
	"fmt"
	"sync"
	"time"
)

// Config parameterizes a Limiter. The zero value is not usable; call
// (Config).withDefaults via NewLimiter.
type Config struct {
	// Min and Max clamp the limit. Min defaults to 1; Max defaults to
	// 1024. The limiter never admits less than Min outstanding requests,
	// so progress is always possible (Min plays the role of TCP's minimum
	// congestion window).
	Min, Max int
	// Initial is the starting limit; it defaults to Max, modelling an
	// operator who guessed generously and lets measurement pull the value
	// down to what the backend actually sustains.
	Initial int
	// LatencyTarget is the healthy-completion budget: a completion slower
	// than this is treated as a congestion signal even when it succeeded.
	// Zero disables latency-based cutting (only failures cut).
	LatencyTarget time.Duration
	// Increase is the additive raise applied per window of healthy
	// completions: each healthy completion adds Increase/limit, so the
	// limit grows by about Increase per limit's worth of completions —
	// one additive step per "round trip" of the pipeline. Defaults to 1.
	Increase float64
	// Backoff is the multiplicative cut factor in (0, 1); defaults to 0.7.
	Backoff float64
	// CutWindow rate-limits multiplicative cuts: congestion signals inside
	// the window after a cut are counted but do not cut again, so one slow
	// burst (which congests every in-flight request at once) costs one
	// cut, not one per request. Defaults to 100ms.
	CutWindow time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 1024
	}
	if c.Max < c.Min {
		return c, fmt.Errorf("overload: Max %d < Min %d", c.Max, c.Min)
	}
	if c.Initial <= 0 {
		c.Initial = c.Max
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.Increase <= 0 {
		c.Increase = 1
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.7
	}
	if c.CutWindow <= 0 {
		c.CutWindow = 100 * time.Millisecond
	}
	return c, nil
}

// Limiter is the AIMD concurrency limiter. It is safe for concurrent use.
type Limiter struct {
	mu    sync.Mutex
	cfg   Config
	limit float64
	now   func() time.Time

	lastCut   time.Time
	healthy   int64 // completions under the latency target
	breaches  int64 // congestion signals observed (latency, failure, external)
	cuts      int64 // multiplicative decreases applied
	onChange  func(int)
	lastLimit int
}

// NewLimiter builds a limiter from cfg, applying defaults. It returns an
// error only for inconsistent bounds (Max < Min).
func NewLimiter(cfg Config) (*Limiter, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	l := &Limiter{cfg: cfg, limit: float64(cfg.Initial), now: time.Now}
	l.lastLimit = cfg.Initial
	return l, nil
}

// SetClock overrides the limiter's time source (deterministic tests).
func (l *Limiter) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// OnChange registers a callback invoked (under the limiter's lock, keep it
// cheap — a gauge store) whenever the integer limit changes.
func (l *Limiter) OnChange(fn func(limit int)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onChange = fn
}

// Limit returns the current admission limit.
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit)
}

// Observe feeds one completed backend access into the controller. ok is
// false for failed accesses (errors, exhausted retries); latency is the
// measured backend time. A healthy completion raises the limit additively;
// a failure or a latency-target breach cuts it multiplicatively (at most
// once per CutWindow).
func (l *Limiter) Observe(latency time.Duration, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	congested := !ok || (l.cfg.LatencyTarget > 0 && latency > l.cfg.LatencyTarget)
	if congested {
		l.cutLocked()
		return
	}
	l.healthy++
	l.limit += l.cfg.Increase / l.limit
	if max := float64(l.cfg.Max); l.limit > max {
		l.limit = max
	}
	l.notifyLocked()
}

// Overload feeds an out-of-band congestion signal: a circuit breaker
// opening, a request expiring in queue, a sojourn eviction storm. It cuts
// the limit under the same CutWindow rate limit as Observe.
func (l *Limiter) Overload() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cutLocked()
}

// cutLocked applies one multiplicative decrease, rate-limited by
// CutWindow. Caller holds l.mu.
func (l *Limiter) cutLocked() {
	l.breaches++
	now := l.now()
	if !l.lastCut.IsZero() && now.Sub(l.lastCut) < l.cfg.CutWindow {
		return
	}
	l.lastCut = now
	l.cuts++
	l.limit *= l.cfg.Backoff
	if min := float64(l.cfg.Min); l.limit < min {
		l.limit = min
	}
	l.notifyLocked()
}

// notifyLocked fires the change callback when the integer limit moved.
func (l *Limiter) notifyLocked() {
	n := int(l.limit)
	if n != l.lastLimit {
		l.lastLimit = n
		if l.onChange != nil {
			l.onChange(n)
		}
	}
}

// Snapshot is a point-in-time view of a limiter, rendered by /limitz.
type Snapshot struct {
	Limit    int
	Min, Max int
	// Target is the configured latency budget (0 when disabled).
	Target time.Duration
	// Healthy counts completions that raised the limit; Breaches counts
	// congestion signals; Cuts counts multiplicative decreases actually
	// applied (breaches inside one CutWindow coalesce into one cut).
	Healthy, Breaches, Cuts int64
	// LastCut is the time of the most recent cut (zero when none).
	LastCut time.Time
}

// Snapshot returns the limiter's current state.
func (l *Limiter) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Snapshot{
		Limit:    int(l.limit),
		Min:      l.cfg.Min,
		Max:      l.cfg.Max,
		Target:   l.cfg.LatencyTarget,
		Healthy:  l.healthy,
		Breaches: l.breaches,
		Cuts:     l.cuts,
		LastCut:  l.lastCut,
	}
}
