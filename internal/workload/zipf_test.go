package workload

import (
	"math"
	"testing"
)

func TestZipfKeysValidation(t *testing.T) {
	if _, err := NewZipfKeys(0, 1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipfKeys(10, -1, 0); err == nil {
		t.Fatal("negative skew accepted")
	}
	if _, err := NewZipfKeys(10, math.NaN(), 0); err == nil {
		t.Fatal("NaN skew accepted")
	}
}

func TestZipfKeysDeterministic(t *testing.T) {
	a, _ := NewZipfKeys(100, 1.1, 7)
	b, _ := NewZipfKeys(100, 1.1, 7)
	for seq := 0; seq < 200; seq++ {
		if a.Rank(3, seq) != b.Rank(3, seq) {
			t.Fatalf("seq %d: samplers with equal seeds diverge", seq)
		}
	}
	c, _ := NewZipfKeys(100, 1.1, 8)
	same := 0
	for seq := 0; seq < 200; seq++ {
		if a.Rank(3, seq) == c.Rank(3, seq) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds replay the identical stream")
	}
}

func TestZipfKeysSkewConcentratesMass(t *testing.T) {
	z, _ := NewZipfKeys(1000, 1.2, 42)
	counts := make([]int, z.N())
	const draws = 40000
	for client := 0; client < 4; client++ {
		for seq := 0; seq < draws/4; seq++ {
			counts[z.Rank(client, seq)]++
		}
	}
	top10 := 0
	for r := 0; r < 10; r++ {
		top10 += counts[r]
	}
	got := float64(top10) / draws
	want := z.Share(10)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("top-10 empirical share = %.3f, analytic = %.3f", got, want)
	}
	if got < 0.5 {
		t.Fatalf("s=1.2 should concentrate >50%% of draws on the top 10 keys, got %.3f", got)
	}
	// Rank 0 must dominate rank 99 decisively.
	if counts[0] < 10*counts[99] {
		t.Fatalf("rank 0 drawn %d times vs rank 99 %d times; skew not applied", counts[0], counts[99])
	}
}

func TestZipfKeysUniformWhenSkewZero(t *testing.T) {
	z, _ := NewZipfKeys(50, 0, 1)
	counts := make([]int, z.N())
	const draws = 50000
	for seq := 0; seq < draws; seq++ {
		counts[z.Rank(0, seq)]++
	}
	for r, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-0.02) > 0.01 {
			t.Fatalf("rank %d share = %.4f, want ≈ 0.02 under uniform choice", r, got)
		}
	}
}

func TestZipfKeysKeyFormat(t *testing.T) {
	z, _ := NewZipfKeys(10, 2, 0)
	k := z.Key(0, 0)
	if len(k) != len("key-00000") || k[:4] != "key-" {
		t.Fatalf("key = %q, want key-NNNNN", k)
	}
}
