package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ZipfKeys samples key ranks with Zipf popularity: rank r (1-based) is chosen
// with probability proportional to 1/r^s. Skew 0 degenerates to a uniform
// choice. Sampling is deterministic in (client, seq) — two runs with the same
// seed replay the same key sequence — and safe for concurrent use because the
// sampler is read-only after construction.
type ZipfKeys struct {
	n    int
	s    float64
	seed uint64
	cdf  []float64
}

// NewZipfKeys builds a sampler over a universe of n keys with skew s ≥ 0.
// The seed decorrelates independent samplers sharing (client, seq) streams.
func NewZipfKeys(n int, s float64, seed int64) (*ZipfKeys, error) {
	if n <= 0 {
		return nil, errors.New("workload: zipf key universe must be positive")
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("workload: zipf skew must be a finite value ≥ 0, got %v", s)
	}
	cdf := make([]float64, n)
	total := 0.0
	for r := 1; r <= n; r++ {
		total += math.Pow(float64(r), -s)
		cdf[r-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &ZipfKeys{n: n, s: s, seed: uint64(seed), cdf: cdf}, nil
}

// N returns the size of the key universe.
func (z *ZipfKeys) N() int { return z.n }

// Skew returns the configured exponent s.
func (z *ZipfKeys) Skew() float64 { return z.s }

// Share returns the probability mass of the top n ranks.
func (z *ZipfKeys) Share(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n > z.n {
		n = z.n
	}
	return z.cdf[n-1]
}

// Rank returns the 0-based popularity rank sampled for request seq of client.
// Rank 0 is the hottest key.
func (z *ZipfKeys) Rank(client, seq int) int {
	h := splitmix64(z.seed ^ uint64(client)<<32 ^ uint64(uint32(seq)))
	u := float64(h>>11) / (1 << 53)
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.n {
		i = z.n - 1
	}
	return i
}

// Key renders the sampled rank as a stable key name ("key-00042").
func (z *ZipfKeys) Key(client, seq int) string {
	return fmt.Sprintf("key-%05d", z.Rank(client, seq))
}

// splitmix64 is the SplitMix64 finalizer: a fast bijective mixer whose output
// passes uniformity tests even on sequential inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
