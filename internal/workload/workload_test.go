package workload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"servicebroker/internal/qos"
)

func okTarget(d time.Duration) Target {
	return func(ctx context.Context, _, _ int) (qos.Fidelity, error) {
		if d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		return qos.FidelityFull, nil
	}
}

func TestClosedLoopExactBudget(t *testing.T) {
	var calls atomic.Int64
	target := func(ctx context.Context, _, _ int) (qos.Fidelity, error) {
		calls.Add(1)
		return qos.FidelityFull, nil
	}
	res, err := ClosedLoop{Concurrency: 4, Requests: 100}.Run(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 100 || res.Issued != 100 || res.Completed != 100 {
		t.Fatalf("calls = %d, result = %+v", calls.Load(), res)
	}
	if res.Latency.Count() != 100 {
		t.Fatalf("latency samples = %d", res.Latency.Count())
	}
}

func TestClosedLoopSeqUnique(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	target := func(_ context.Context, _, seq int) (qos.Fidelity, error) {
		mu.Lock()
		defer mu.Unlock()
		if seen[seq] {
			t.Errorf("seq %d issued twice", seq)
		}
		seen[seq] = true
		return qos.FidelityFull, nil
	}
	if _, err := (ClosedLoop{Concurrency: 8, Requests: 50}).Run(context.Background(), target); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 50 {
		t.Fatalf("unique seqs = %d", len(seen))
	}
}

func TestClosedLoopConcurrencyBound(t *testing.T) {
	var active, peak atomic.Int64
	target := func(ctx context.Context, _, _ int) (qos.Fidelity, error) {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		active.Add(-1)
		return qos.FidelityFull, nil
	}
	if _, err := (ClosedLoop{Concurrency: 3, Requests: 30}).Run(context.Background(), target); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency = %d, want ≤ 3", p)
	}
}

func TestClosedLoopCountsOutcomes(t *testing.T) {
	target := func(_ context.Context, _, seq int) (qos.Fidelity, error) {
		switch seq % 4 {
		case 0:
			return qos.FidelityFull, nil
		case 1:
			return qos.FidelityCached, nil
		case 2:
			return qos.FidelityBusy, nil
		default:
			return 0, errors.New("boom")
		}
	}
	res, err := ClosedLoop{Concurrency: 2, Requests: 40}.Run(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 || res.Dropped != 10 || res.Errors != 10 {
		t.Fatalf("result = %+v", res)
	}
	if res.FullLatency.Count() != 10 {
		t.Fatalf("full-latency samples = %d, want 10", res.FullLatency.Count())
	}
	if got := res.DropRatio(); got != 0.25 {
		t.Fatalf("drop ratio = %g", got)
	}
}

func TestClosedLoopValidation(t *testing.T) {
	tgt := okTarget(0)
	cases := []ClosedLoop{
		{Concurrency: 0, Requests: 1},
		{Concurrency: 1, Requests: 0},
	}
	for _, c := range cases {
		if _, err := c.Run(context.Background(), tgt); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
	if _, err := (ClosedLoop{Concurrency: 1, Requests: 1}).Run(context.Background(), nil); err == nil {
		t.Fatal("nil target accepted")
	}
}

func TestClosedLoopContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	target := func(ctx context.Context, _, _ int) (qos.Fidelity, error) {
		if calls.Add(1) == 5 {
			cancel()
		}
		return qos.FidelityFull, nil
	}
	res, err := ClosedLoop{Concurrency: 1, Requests: 1000}.Run(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued >= 1000 {
		t.Fatalf("issued = %d, want early stop", res.Issued)
	}
}

func TestPopulationRunsAllGroups(t *testing.T) {
	p := Population{
		Duration: 100 * time.Millisecond,
		Groups: []Group{
			{Name: "QoS 1", Class: qos.Class1, Clients: 2, Target: okTarget(5 * time.Millisecond)},
			{Name: "QoS 2", Class: qos.Class2, Clients: 2, Target: okTarget(10 * time.Millisecond)},
		},
	}
	results, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("groups = %d", len(results))
	}
	fast, slow := results["QoS 1"], results["QoS 2"]
	if fast.Issued == 0 || slow.Issued == 0 {
		t.Fatalf("results = %+v / %+v", fast, slow)
	}
	// Best-effort semantics: the faster group issues more requests.
	if fast.Issued <= slow.Issued {
		t.Fatalf("fast issued %d ≤ slow issued %d; best-effort property violated",
			fast.Issued, slow.Issued)
	}
}

func TestPopulationStopsAtDuration(t *testing.T) {
	p := Population{
		Duration: 50 * time.Millisecond,
		Groups:   []Group{{Name: "g", Class: qos.Class1, Clients: 4, Target: okTarget(time.Millisecond)}},
	}
	start := time.Now()
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("run took %v, want ≈50ms", elapsed)
	}
}

func TestPopulationThinkTime(t *testing.T) {
	var calls atomic.Int64
	target := func(context.Context, int, int) (qos.Fidelity, error) {
		calls.Add(1)
		return qos.FidelityFull, nil
	}
	p := Population{
		Duration: 60 * time.Millisecond,
		Groups:   []Group{{Name: "g", Class: qos.Class1, Clients: 1, Target: target, ThinkTime: 20 * time.Millisecond}},
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c := calls.Load(); c > 5 {
		t.Fatalf("calls = %d, want throttled by think time", c)
	}
}

func TestPopulationValidation(t *testing.T) {
	tgt := okTarget(0)
	bad := []Population{
		{Duration: time.Second},
		{Duration: 0, Groups: []Group{{Name: "g", Clients: 1, Target: tgt}}},
		{Duration: time.Second, Groups: []Group{{Name: "g", Clients: 0, Target: tgt}}},
		{Duration: time.Second, Groups: []Group{{Name: "g", Clients: 1}}},
		{Duration: time.Second, Groups: []Group{{Clients: 1, Target: tgt}}},
	}
	for i, p := range bad {
		if _, err := p.Run(context.Background()); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPopulationDoesNotCountCancellationArtifacts(t *testing.T) {
	// A target that blocks until the run ends produces no counted error.
	target := func(ctx context.Context, _, _ int) (qos.Fidelity, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	}
	p := Population{
		Duration: 30 * time.Millisecond,
		Groups:   []Group{{Name: "g", Class: qos.Class1, Clients: 2, Target: target}},
	}
	results, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := results["g"].Errors; got != 0 {
		t.Fatalf("errors = %d, want 0 (cancellation artifacts)", got)
	}
}

func TestResultString(t *testing.T) {
	r := newResult()
	r.Issued = 3
	if r.String() == "" {
		t.Fatal("empty string")
	}
	if r.DropRatio() != 0 {
		t.Fatal("drop ratio on zero issued")
	}
}
