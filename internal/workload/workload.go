// Package workload provides the client-side load generators for the
// experiments: a ClosedLoop driver modelled on ab (Apache bench — a fixed
// number of concurrent clients issuing requests back to back) and a
// Population modelled on WebStone 2.5 (groups of best-effort clients, one
// group per QoS class, running for a fixed duration; like WebStone clients,
// "with shorter processing time, more ... requests [are] initiated").
package workload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"servicebroker/internal/metrics"
	"servicebroker/internal/qos"
)

// Target performs one request on behalf of client `client` (its `seq`-th
// request) and returns the response fidelity. Implementations map their
// protocol's outcomes onto fidelities: a full or cached answer counts as a
// completion, a degraded or busy answer as a drop.
type Target func(ctx context.Context, client, seq int) (qos.Fidelity, error)

// Result aggregates one run (or one group of a Population run).
type Result struct {
	// Issued counts requests sent.
	Issued int64
	// Completed counts full- or cached-fidelity responses.
	Completed int64
	// Dropped counts degraded- or busy-fidelity responses.
	Dropped int64
	// Errors counts failed requests.
	Errors int64
	// Latency records the processing time of every non-error request —
	// completions and drops alike, matching the paper's per-class
	// processing-time curves (quick low-fidelity replies pull the mean
	// down).
	Latency *metrics.Histogram
	// FullLatency records only full-fidelity completions.
	FullLatency *metrics.Histogram
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

func newResult() *Result {
	return &Result{Latency: &metrics.Histogram{}, FullLatency: &metrics.Histogram{}}
}

// DropRatio returns Dropped / Issued (0 when nothing was issued).
func (r *Result) DropRatio() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Issued)
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("issued=%d completed=%d dropped=%d errors=%d mean=%v",
		r.Issued, r.Completed, r.Dropped, r.Errors, r.Latency.Mean())
}

// record accounts one request outcome.
func (r *Result) record(fid qos.Fidelity, err error, elapsed time.Duration,
	issued, completed, dropped, errs *counterSet) {
	issued.inc()
	if err != nil {
		errs.inc()
		return
	}
	r.Latency.Observe(elapsed)
	switch fid {
	case qos.FidelityFull, qos.FidelityCached:
		completed.inc()
		if fid == qos.FidelityFull {
			r.FullLatency.Observe(elapsed)
		}
	default:
		dropped.inc()
	}
}

// counterSet wraps an int64 with a mutex-free atomic-ish accessor via the
// owning goroutine pattern; simpler: use metrics.Counter.
type counterSet struct{ c metrics.Counter }

func (s *counterSet) inc() { s.c.Inc() }

// ClosedLoop is the ab-style driver: Concurrency clients cooperate to issue
// exactly Requests total requests as fast as responses allow.
type ClosedLoop struct {
	// Concurrency is the number of simultaneous clients (ab -c).
	Concurrency int
	// Requests is the total request budget (ab -n).
	Requests int
}

// Run drives target until the request budget is spent.
func (c ClosedLoop) Run(ctx context.Context, target Target) (*Result, error) {
	if c.Concurrency <= 0 {
		return nil, errors.New("workload: concurrency must be positive")
	}
	if c.Requests <= 0 {
		return nil, errors.New("workload: request budget must be positive")
	}
	if target == nil {
		return nil, errors.New("workload: nil target")
	}
	res := newResult()
	var issued, completed, dropped, errs counterSet

	tickets := make(chan int, c.Requests)
	for i := 0; i < c.Requests; i++ {
		tickets <- i
	}
	close(tickets)

	start := time.Now()
	var wg sync.WaitGroup
	for client := 0; client < c.Concurrency; client++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for seq := range tickets {
				if ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				fid, err := target(ctx, client, seq)
				res.record(fid, err, time.Since(t0), &issued, &completed, &dropped, &errs)
			}
		}(client)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Issued = issued.c.Value()
	res.Completed = completed.c.Value()
	res.Dropped = dropped.c.Value()
	res.Errors = errs.c.Value()
	return res, nil
}

// Group is one WebStone client group: Clients best-effort clients issuing
// requests of one QoS class against one target.
type Group struct {
	// Name labels the group in results ("QoS 1").
	Name string
	// Class is carried for reporting; the target itself decides how the
	// class reaches the system under test.
	Class qos.Class
	// Clients is the number of concurrent best-effort clients.
	Clients int
	// Target performs one request.
	Target Target
	// ThinkTime optionally pauses each client between requests.
	ThinkTime time.Duration
	// Stagger spreads client start times: client i of N starts after
	// i×Stagger/N, avoiding an artificial thundering herd at t=0.
	Stagger time.Duration
}

// Population is the WebStone-style driver: all groups run concurrently for
// the configured duration.
type Population struct {
	Groups []Group
	// Duration is how long clients issue requests.
	Duration time.Duration
}

// Run drives every group until the duration elapses and returns per-group
// results keyed by group name.
func (p Population) Run(ctx context.Context) (map[string]*Result, error) {
	if len(p.Groups) == 0 {
		return nil, errors.New("workload: no groups")
	}
	if p.Duration <= 0 {
		return nil, errors.New("workload: duration must be positive")
	}
	for i, g := range p.Groups {
		if g.Clients <= 0 {
			return nil, fmt.Errorf("workload: group %d has no clients", i)
		}
		if g.Target == nil {
			return nil, fmt.Errorf("workload: group %d has nil target", i)
		}
		if g.Name == "" {
			return nil, fmt.Errorf("workload: group %d has no name", i)
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, p.Duration)
	defer cancel()

	type groupState struct {
		res                              *Result
		issued, completed, dropped, errs counterSet
	}
	states := make([]*groupState, len(p.Groups))
	for i := range states {
		states[i] = &groupState{res: newResult()}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for gi, g := range p.Groups {
		st := states[gi]
		for c := 0; c < g.Clients; c++ {
			wg.Add(1)
			go func(g Group, st *groupState, client int) {
				defer wg.Done()
				if g.Stagger > 0 && g.Clients > 1 {
					delay := g.Stagger * time.Duration(client) / time.Duration(g.Clients)
					select {
					case <-time.After(delay):
					case <-runCtx.Done():
						return
					}
				}
				for seq := 0; ; seq++ {
					if runCtx.Err() != nil {
						return
					}
					t0 := time.Now()
					fid, err := g.Target(runCtx, client, seq)
					if runCtx.Err() != nil && err != nil {
						// The run ended mid-request; do not count the
						// artificial cancellation.
						return
					}
					st.res.record(fid, err, time.Since(t0),
						&st.issued, &st.completed, &st.dropped, &st.errs)
					if g.ThinkTime > 0 {
						select {
						case <-time.After(g.ThinkTime):
						case <-runCtx.Done():
							return
						}
					}
				}
			}(g, st, c)
		}
	}
	wg.Wait()

	out := make(map[string]*Result, len(p.Groups))
	for gi, g := range p.Groups {
		st := states[gi]
		st.res.Elapsed = time.Since(start)
		st.res.Issued = st.issued.c.Value()
		st.res.Completed = st.completed.c.Value()
		st.res.Dropped = st.dropped.c.Value()
		st.res.Errors = st.errs.c.Value()
		out[g.Name] = st.res
	}
	return out, nil
}
