package frontend

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"servicebroker/internal/broker"
	"servicebroker/internal/cache"
	"servicebroker/internal/fleet"
	"servicebroker/internal/metrics"
	"servicebroker/internal/qos"
	"servicebroker/internal/registry"
	"servicebroker/internal/resilience"
	"servicebroker/internal/trace"
	"servicebroker/internal/wire"
)

// caller is the gateway-call surface the deployment models route through:
// a single broker.Client or a replicated Pool.
type caller interface {
	Do(ctx context.Context, service string, req *broker.Request) (*broker.Response, error)
	Close() error
}

// PoolConfig parameterizes a broker Pool.
type PoolConfig struct {
	// Gateways are statically configured member addresses (always
	// candidates, for every service).
	Gateways []string
	// Registry, when set, contributes lease-discovered members per service.
	Registry *registry.Registry
	// AttemptTimeout bounds one member attempt when another candidate is
	// waiting behind it; zero means DefaultAttemptTimeout. A single-member
	// pool with no request deadline is never cut short.
	AttemptTimeout time.Duration
	// Breaker configures the per-member circuit breakers.
	Breaker resilience.BreakerConfig
	// Metrics, when set, receives pool_* counters.
	Metrics *metrics.Registry
	// WireOpts apply to every member client dialed by the pool.
	WireOpts []wire.ClientOption
	// StaleEntries sizes the last-good-response cache used to answer
	// low-fidelity classes when every member is down; zero means 256,
	// negative disables stale serving.
	StaleEntries int
	// Events, when set, receives fleet timeline entries for routing
	// decisions: failovers, breaker transitions, stale serves — each linked
	// to the triggering request's trace ID when it was traced. Nil disables
	// event publishing (every Log method is nil-safe).
	Events *fleet.Log
}

// DefaultAttemptTimeout caps one member attempt during failover.
const DefaultAttemptTimeout = 150 * time.Millisecond

// staleTTL is how long a remembered response may be served stale — long,
// because it is only consulted when the whole pool is unreachable.
const staleTTL = 5 * time.Minute

// lowFidelityClass is the first class that trades failover persistence for
// stale serves: classes below it (premium) try every member, classes at or
// above it stop after two attempts and may answer from the stale cache at
// qos.FidelityLow — the degradation ladder of PR 2, one tier up.
const lowFidelityClass = qos.Class(3)

// poolMember is one gateway the pool can route to.
type poolMember struct {
	addr    string
	static  bool
	breaker *resilience.Breaker

	mu        sync.Mutex
	cli       *broker.Client
	failures  int64
	failovers int64
	lastErr   string
}

// Pool fans requests over a replicated broker tier: static gateway
// addresses plus lease-discovered members, ordered by health (piggybacked
// load + breaker state), with deadline-budgeted failover to the next member
// when one fails. It implements the same Do surface as broker.Client.
type Pool struct {
	cfg   PoolConfig
	stale *cache.Cache

	mu      sync.Mutex
	members map[string]*poolMember
	closed  bool
	events  *fleet.Log

	failovers   *metrics.Counter
	staleServed *metrics.Counter
	exhausted   *metrics.Counter
}

// NewPool builds a pool. At least one static gateway or a registry must be
// configured. Static members are dialed eagerly (so a bad address fails
// construction, like DialGateway); discovered members are dialed on first
// use.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if len(cfg.Gateways) == 0 && cfg.Registry == nil {
		return nil, errors.New("frontend: pool needs static gateways or a registry")
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = DefaultAttemptTimeout
	}
	p := &Pool{cfg: cfg, members: make(map[string]*poolMember), events: cfg.Events}
	if n := cfg.StaleEntries; n >= 0 {
		if n == 0 {
			n = 256
		}
		p.stale = cache.New(n, cache.WithDefaultTTL(staleTTL))
	}
	if m := cfg.Metrics; m != nil {
		p.failovers = m.Counter("pool_failovers")
		p.staleServed = m.Counter("pool_stale_served")
		p.exhausted = m.Counter("pool_exhausted")
	}
	for _, addr := range cfg.Gateways {
		mem := p.member(addr, true)
		if _, err := p.clientFor(mem); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// SetRegistry attaches (or replaces) the member-discovery registry; the
// deployment models call this when lease registration is enabled after the
// pool is built.
func (p *Pool) SetRegistry(r *registry.Registry) {
	p.mu.Lock()
	p.cfg.Registry = r
	p.mu.Unlock()
}

// registry reads the discovery registry under the lock.
func (p *Pool) registry() *registry.Registry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.Registry
}

// SetEvents attaches (or replaces) the fleet event log the pool publishes
// routing decisions into; the deployment models call this when fleet
// observability is enabled after the pool is built.
func (p *Pool) SetEvents(l *fleet.Log) {
	p.mu.Lock()
	p.events = l
	p.mu.Unlock()
}

// eventLog reads the fleet event log under the lock. The result may be nil;
// every Log method is nil-safe.
func (p *Pool) eventLog() *fleet.Log {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.events
}

// member returns (creating if needed) the bookkeeping entry for addr.
func (p *Pool) member(addr string, static bool) *poolMember {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.members[addr]
	if !ok {
		m = &poolMember{
			addr:    addr,
			static:  static,
			breaker: resilience.NewBreaker(addr, p.cfg.Breaker),
		}
		p.members[addr] = m
	}
	if static {
		m.static = true
	}
	return m
}

// clientFor lazily dials a member's gateway client.
func (p *Pool) clientFor(m *poolMember) (*broker.Client, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cli != nil {
		return m.cli, nil
	}
	cli, err := broker.DialGateway(m.addr, p.cfg.WireOpts...)
	if err != nil {
		return nil, err
	}
	m.cli = cli
	return cli, nil
}

// candidate is one routing choice with its selection weight.
type candidate struct {
	member *poolMember
	weight float64
}

// weightOf scores a member by its piggybacked load: utilization plus a hot
// penalty, lower is better. Members without load data score a neutral 0.5
// so an idle reported member beats them but an unknown one beats a busy
// one.
func weightOf(load broker.LoadReport, hasLoad bool) float64 {
	if !hasLoad {
		return 0.5
	}
	thr := load.Threshold
	if thr < 1 {
		thr = 1
	}
	w := float64(load.Outstanding) / float64(thr)
	if load.Hot {
		w += 1
	}
	return w
}

// candidates assembles the health-ordered member list for a service:
// lease-discovered members (with live load data) unioned with the static
// gateways, open-breaker members filtered out unless that would empty the
// list entirely (then the pool fails open — a guess beats a guaranteed
// error).
func (p *Pool) candidates(service string) ([]candidate, bool) {
	type seed struct {
		addr    string
		static  bool
		load    broker.LoadReport
		hasLoad bool
	}
	seeds := make(map[string]seed)
	for _, addr := range p.cfg.Gateways {
		seeds[addr] = seed{addr: addr, static: true}
	}
	if reg := p.registry(); reg != nil {
		for _, m := range reg.Members(service) {
			s := seeds[m.Addr]
			s.addr = m.Addr
			s.load, s.hasLoad = m.Load, true
			seeds[m.Addr] = s
		}
	}
	all := make([]candidate, 0, len(seeds))
	for _, s := range seeds {
		all = append(all, candidate{
			member: p.member(s.addr, s.static),
			weight: weightOf(s.load, s.hasLoad),
		})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].weight != all[j].weight {
			return all[i].weight < all[j].weight
		}
		return all[i].member.addr < all[j].member.addr
	})
	live := all[:0:0]
	for _, c := range all {
		if c.member.breaker.Candidate() {
			live = append(live, c)
		}
	}
	if len(live) > 0 {
		return live, false
	}
	return all, true // every breaker open: fail open, bypass gating
}

// staleKey identifies one (service, payload) response in the stale cache.
func staleKey(service string, payload []byte) string {
	return service + "\x00" + string(payload)
}

// Do routes one request: try members in health order, failing over on
// transport errors within the caller's deadline budget. Premium classes
// (below lowFidelityClass) try every candidate; lower classes stop after
// two attempts and fall back to a stale answer at qos.FidelityLow when one
// is cached — losing freshness instead of failing, while premium traffic
// gets every chance at a live broker.
func (p *Pool) Do(ctx context.Context, service string, req *broker.Request) (*broker.Response, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, wire.ErrClientClosed
	}
	p.mu.Unlock()

	cands, bypass := p.candidates(service)
	if len(cands) == 0 {
		return nil, fmt.Errorf("frontend: no pool members for service %q", service)
	}
	maxAttempts := len(cands)
	// Late transaction steps are premium regardless of base class: aborting
	// a transaction at step 2+ wastes the completed steps and forces
	// compensation, so near-complete transactions get every failover chance
	// (the same reasoning that escalates their class at the broker).
	premium := (req.Class != 0 && req.Class < lowFidelityClass) ||
		(req.TxnID != "" && req.TxnStep >= 2)
	if !premium && maxAttempts > 2 {
		maxAttempts = 2
	}
	deadline, hasDeadline := ctx.Deadline()

	// act annotates the caller's trace (when there is one) with the pool's
	// routing decisions: every failover hop becomes a StageFailover span so
	// the stitched cross-broker tree shows where and why the request moved.
	act := trace.FromContext(ctx)
	traceID := uint64(req.TraceID)

	var lastErr error
	var lastResp *broker.Response
	for i := 0; i < maxAttempts; i++ {
		cand := cands[i]
		attemptStart := time.Now()
		cli, err := p.clientFor(cand.member)
		if err != nil {
			lastErr = err
			p.noteFailure(cand.member, err, i < maxAttempts-1, act, traceID, service, attemptStart)
			continue
		}
		acquired := false
		if !bypass {
			if acquired = cand.member.breaker.Acquire(); !acquired {
				continue // raced open since the Candidate check
			}
		}

		attemptCtx, cancel := p.attemptContext(ctx, deadline, hasDeadline, len(cands), maxAttempts-i)
		resp, err := cli.Do(attemptCtx, service, req)
		if cancel != nil {
			cancel()
		}
		if err != nil && attemptCtx.Err() != nil && ctx.Err() == nil {
			// The per-attempt budget expired, not the caller's deadline:
			// report it as such so the breaker counts it against the member.
			err = fmt.Errorf("frontend: pool attempt to %s: %w", cand.member.addr, context.DeadlineExceeded)
		}
		if acquired {
			before := cand.member.breaker.State()
			cand.member.breaker.Done(err)
			p.noteBreaker(cand.member, before, service, traceID, err)
		}
		if err == nil {
			if resp.Status == broker.StatusError && i < maxAttempts-1 {
				// The member is alive but cannot serve this (e.g. it does not
				// host the service): not a breaker failure, but another
				// member may do better.
				lastResp, lastErr = resp, nil
				p.countFailover()
				// Keep the failed member's spans on the stitched tree: the
				// trace shows what that broker did before the request moved.
				for _, sp := range resp.RemoteSpans {
					act.RemoteSpan(sp.Stage, sp.Start, sp.End, sp.Note, sp.Broker)
				}
				act.Span(trace.StageFailover, attemptStart, time.Now(),
					fmt.Sprintf("from=%s status=error", cand.member.addr))
				p.eventLog().Publish(fleet.Event{
					Kind: fleet.KindFailover, Service: service, Member: cand.member.addr,
					Detail: "member answered error status", TraceID: traceID,
				})
				continue
			}
			p.rememberGood(service, req, resp)
			return resp, nil
		}
		lastErr = err
		p.noteFailure(cand.member, err, i < maxAttempts-1, act, traceID, service, attemptStart)
		if ctx.Err() != nil {
			break // the caller's own deadline/cancellation: stop failing over
		}
	}

	if lastResp != nil {
		return lastResp, nil
	}
	count(p.exhausted)
	// Never stale-serve an idempotency-keyed mutation: a remembered payload
	// is not an executed effect, and the caller needs a real disposition to
	// decide between retry and compensation.
	if !premium && req.IdemKey == "" && p.stale != nil {
		if payload, ok := p.stale.GetStale(staleKey(service, req.Payload)); ok {
			count(p.staleServed)
			act.Span(trace.StageFailover, time.Now(), time.Now(), "stale-serve: pool exhausted, answering from last-good cache")
			p.eventLog().Publish(fleet.Event{
				Kind: fleet.KindStaleServe, Service: service,
				Detail: "pool exhausted, served last-good response at low fidelity", TraceID: traceID,
			})
			return &broker.Response{Status: broker.StatusOK, Fidelity: qos.FidelityLow, Payload: payload}, nil
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("frontend: no admissible pool member for service %q", service)
	}
	return nil, lastErr
}

// attemptContext budgets one attempt. The attempt is cut short only when
// someone could use the time saved: another candidate is waiting, or the
// caller set a deadline that must be split across the remaining attempts.
func (p *Pool) attemptContext(ctx context.Context, deadline time.Time, hasDeadline bool, poolSize, attemptsLeft int) (context.Context, context.CancelFunc) {
	if poolSize <= 1 && !hasDeadline {
		return ctx, nil
	}
	per := p.cfg.AttemptTimeout
	if hasDeadline {
		if budget := time.Until(deadline) / time.Duration(attemptsLeft); budget < per {
			per = budget
		}
	}
	if per <= 0 {
		per = time.Millisecond
	}
	return context.WithTimeout(ctx, per)
}

// rememberGood stores a full/cached OK response for later stale serving.
// Idempotency-keyed mutation outcomes are excluded: they would poison the
// (service, payload) entry for unrelated reads of the same payload, and a
// mutation must never be "served" without executing.
func (p *Pool) rememberGood(service string, req *broker.Request, resp *broker.Response) {
	if p.stale == nil || resp.Status != broker.StatusOK || req.IdemKey != "" {
		return
	}
	if resp.Fidelity != qos.FidelityFull && resp.Fidelity != qos.FidelityCached {
		return
	}
	p.stale.Put(staleKey(service, req.Payload), resp.Payload)
}

// noteFailure records a member failure for /poolz, counts the failover when
// another attempt follows, and annotates the trace/timeline with the hop.
func (p *Pool) noteFailure(m *poolMember, err error, willFailover bool, act *trace.Active, traceID uint64, service string, attemptStart time.Time) {
	m.mu.Lock()
	m.failures++
	if willFailover {
		m.failovers++
	}
	m.lastErr = err.Error()
	m.mu.Unlock()
	if willFailover {
		p.countFailover()
		act.Span(trace.StageFailover, attemptStart, time.Now(),
			fmt.Sprintf("from=%s err=%v", m.addr, err))
		p.eventLog().Publish(fleet.Event{
			Kind: fleet.KindFailover, Service: service, Member: m.addr,
			Detail: err.Error(), TraceID: traceID,
		})
	}
}

// noteBreaker publishes a fleet event when a Done call moved the member's
// breaker across the open/closed boundary, linking the opening event to the
// trace whose failure tripped it.
func (p *Pool) noteBreaker(m *poolMember, before resilience.State, service string, traceID uint64, err error) {
	events := p.eventLog()
	if events == nil {
		return
	}
	after := m.breaker.State()
	if after == before {
		return
	}
	switch {
	case after == resilience.StateOpen && before != resilience.StateOpen:
		detail := "consecutive failures reached threshold"
		if err != nil {
			detail = err.Error()
		}
		events.Publish(fleet.Event{
			Kind: fleet.KindBreakerOpen, Service: service, Member: m.addr,
			Detail: detail, TraceID: traceID,
		})
	case after == resilience.StateClosed && before != resilience.StateClosed:
		events.Publish(fleet.Event{
			Kind: fleet.KindBreakerClose, Service: service, Member: m.addr,
			Detail: "probe succeeded, member restored",
		})
	}
}

func (p *Pool) countFailover() { count(p.failovers) }

func count(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Status merges lease state (from the registry) with routing health (from
// the pool's members) into /poolz rows.
func (p *Pool) Status() []registry.PoolView {
	rows := make(map[string][]registry.PoolView) // addr → lease rows
	if reg := p.registry(); reg != nil {
		for _, v := range reg.Snapshot() {
			rows[v.Addr] = append(rows[v.Addr], v)
		}
	}
	p.mu.Lock()
	members := make([]*poolMember, 0, len(p.members))
	for _, m := range p.members {
		members = append(members, m)
	}
	p.mu.Unlock()
	sort.Slice(members, func(i, j int) bool { return members[i].addr < members[j].addr })

	var out []registry.PoolView
	seen := make(map[string]bool)
	for _, m := range members {
		seen[m.addr] = true
		state := m.breaker.State()
		m.mu.Lock()
		failures, failovers, lastErr := m.failures, m.failovers, m.lastErr
		m.mu.Unlock()
		leases := rows[m.addr]
		if len(leases) == 0 && m.static {
			leases = []registry.PoolView{{Addr: m.addr, Service: "*", Source: "static", State: "live"}}
		}
		for _, v := range leases {
			if m.static && v.Source == "" {
				v.Source = "static"
			}
			if state != resilience.StateClosed {
				v.State = v.State + "/" + state.String()
			}
			v.Failures = failures
			v.Failovers = failovers
			v.LastError = lastErr
			out = append(out, v)
		}
	}
	// Lease rows for members the pool has not routed to yet (or tombstones).
	for addr, leases := range rows {
		if seen[addr] {
			continue
		}
		out = append(out, leases...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Service != out[j].Service {
			return out[i].Service < out[j].Service
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Close releases every member client. The registry, if any, belongs to the
// caller and is not closed.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	members := make([]*poolMember, 0, len(p.members))
	for _, m := range p.members {
		members = append(members, m)
	}
	p.mu.Unlock()
	var err error
	for _, m := range members {
		m.mu.Lock()
		cli := m.cli
		m.cli = nil
		m.mu.Unlock()
		if cli != nil {
			if cerr := cli.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// poolStatusBody renders /poolz rows as text.
func poolStatusBody(rows []registry.PoolView) []byte {
	var b strings.Builder
	b.WriteString("broker pool\n")
	if len(rows) == 0 {
		b.WriteString("  (no members)\n")
		return []byte(b.String())
	}
	for _, v := range rows {
		state := "cool"
		if v.Hot {
			state = "hot"
		}
		fmt.Fprintf(&b, "  service=%s addr=%s source=%s state=%s ttl=%s renewals=%d outstanding=%d/%d queue=%d %s failures=%d failovers=%d",
			v.Service, v.Addr, v.Source, v.State, v.TTLRemaining.Round(time.Millisecond),
			v.Renewals, v.Outstanding, v.Threshold, v.QueueLen, state, v.Failures, v.Failovers)
		if v.LastError != "" {
			fmt.Fprintf(&b, " last_error=%q", v.LastError)
		}
		b.WriteString("\n")
	}
	return []byte(b.String())
}
