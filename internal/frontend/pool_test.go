package frontend

import (
	"context"
	"net"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/metrics"
	"servicebroker/internal/qos"
	"servicebroker/internal/registry"
	"servicebroker/internal/resilience"
	"servicebroker/internal/wire"
)

// poolGateway spins up one broker+gateway member answering for "db".
func poolGateway(t *testing.T, tag string) *broker.Gateway {
	t.Helper()
	b, err := broker.New(&backend.DelayConnector{ServiceName: tag})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	g, err := broker.NewGateway("127.0.0.1:0", map[string]*broker.Broker{"db": b})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// fastPool builds a pool with failover-friendly timings for tests.
func fastPool(t *testing.T, cfg PoolConfig) *Pool {
	t.Helper()
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 100 * time.Millisecond
	}
	cfg.WireOpts = append(cfg.WireOpts, wire.WithRetransmit(25*time.Millisecond), wire.WithAttempts(2))
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPoolFailsOverToLiveMember(t *testing.T) {
	g1 := poolGateway(t, "one")
	g2 := poolGateway(t, "two")
	// Lease loads pin the order: the soon-dead g1 looks idle, so it is
	// tried first and the request must fail over to g2.
	reg := registry.New(registry.Config{})
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: g1.Addr().String(),
		TTL: time.Hour, Load: broker.LoadReport{Service: "db", Outstanding: 0, Threshold: 16}})
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: g2.Addr().String(),
		TTL: time.Hour, Load: broker.LoadReport{Service: "db", Outstanding: 8, Threshold: 16}})
	m := metrics.NewRegistry()
	p := fastPool(t, PoolConfig{Registry: reg, Metrics: m})

	// Kill member one. A premium request must fail over and succeed.
	if err := g1.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := p.Do(ctx, "db", &broker.Request{Payload: []byte("x"), Class: qos.Class1})
	if err != nil {
		t.Fatalf("premium request failed despite a live member: %v", err)
	}
	if resp.Status != broker.StatusOK {
		t.Fatalf("status = %v, want OK", resp.Status)
	}
	if m.Counter("pool_failovers").Value() == 0 {
		t.Fatal("failover not counted")
	}
}

func TestPoolPrefersIdleMemberFromLeaseLoad(t *testing.T) {
	// Registry says member A is hot and member B idle: B must be tried
	// first. A is a dead address, so reaching the backend at all proves the
	// order (if A were tried first the call would still succeed via
	// failover, but the failover counter would show it).
	gB := poolGateway(t, "idle")
	deadA := "127.0.0.1:1" // reserved port, nothing listens

	reg := registry.New(registry.Config{})
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: deadA, TTL: time.Minute,
		Load: broker.LoadReport{Service: "db", Outstanding: 16, Threshold: 16, Hot: true}})
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: gB.Addr().String(), TTL: time.Minute,
		Load: broker.LoadReport{Service: "db", Outstanding: 0, Threshold: 16}})

	m := metrics.NewRegistry()
	p := fastPool(t, PoolConfig{Registry: reg, Metrics: m})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := p.Do(ctx, "db", &broker.Request{Payload: []byte("x"), Class: qos.Class1})
	if err != nil || resp.Status != broker.StatusOK {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	if got := m.Counter("pool_failovers").Value(); got != 0 {
		t.Fatalf("health-weighted selection tried the hot/dead member first (%d failovers)", got)
	}
}

func TestPoolStaleFallbackForLowClassesOnly(t *testing.T) {
	g := poolGateway(t, "one")
	p := fastPool(t, PoolConfig{Gateways: []string{g.Addr().String()},
		Metrics: metrics.NewRegistry(),
		Breaker: resilience.BreakerConfig{FailureThreshold: 1000}}) // keep breaker out of this test

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Seed the stale cache with a good answer.
	if _, err := p.Do(ctx, "db", &broker.Request{Payload: []byte("q1"), Class: qos.Class3}); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// Low class: stale serve at FidelityLow.
	downCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	resp, err := p.Do(downCtx, "db", &broker.Request{Payload: []byte("q1"), Class: qos.Class3})
	if err != nil {
		t.Fatalf("low class got error instead of stale serve: %v", err)
	}
	if resp.Fidelity != qos.FidelityLow || resp.Status != broker.StatusOK {
		t.Fatalf("stale serve = status %v fidelity %v, want OK/low", resp.Status, resp.Fidelity)
	}

	// Premium: an explicit error — never a silent stale answer.
	downCtx2, cancel3 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel3()
	if _, err := p.Do(downCtx2, "db", &broker.Request{Payload: []byte("q1"), Class: qos.Class1}); err == nil {
		t.Fatal("premium request served despite the whole pool being down")
	}
}

func TestPoolBreakerEjectsFailingMember(t *testing.T) {
	g1 := poolGateway(t, "one")
	g2 := poolGateway(t, "two")
	// Pin the selection order via lease loads: the (about to be dead) g1
	// looks idle, the live g2 looks busier, so every attempt starts at g1
	// until its breaker opens.
	reg := registry.New(registry.Config{})
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: g1.Addr().String(),
		TTL: time.Hour, Load: broker.LoadReport{Service: "db", Outstanding: 0, Threshold: 16}})
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: g2.Addr().String(),
		TTL: time.Hour, Load: broker.LoadReport{Service: "db", Outstanding: 8, Threshold: 16}})
	m := metrics.NewRegistry()
	p := fastPool(t, PoolConfig{
		Registry: reg,
		Metrics:  m,
		Breaker:  resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
	})
	if err := g1.Close(); err != nil {
		t.Fatal(err)
	}
	// Drive enough premium traffic to trip member one's breaker.
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if _, err := p.Do(ctx, "db", &broker.Request{Payload: []byte("x"), Class: qos.Class1}); err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
		cancel()
	}
	// With the breaker open, requests go straight to member two: failovers
	// stop accumulating.
	before := m.Counter("pool_failovers").Value()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if _, err := p.Do(ctx, "db", &broker.Request{Payload: []byte("x"), Class: qos.Class1}); err != nil {
			t.Fatalf("request after trip failed: %v", err)
		}
		cancel()
	}
	if after := m.Counter("pool_failovers").Value(); after != before {
		t.Fatalf("open breaker did not eject the dead member (failovers %d → %d)", before, after)
	}
	// /poolz rows must carry the breaker state.
	var sawOpen bool
	for _, v := range p.Status() {
		if v.Addr == g1.Addr().String() && v.State == "live/open" {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Fatalf("pool status missing open-breaker member: %+v", p.Status())
	}
}

func TestListenerExpiresStaleLoads(t *testing.T) {
	clock := struct{ now time.Time }{now: time.Unix(1_700_000_000, 0)}
	now := &clock.now
	l, err := NewListener("127.0.0.1:0", WithLoadTTL(time.Second), withClock(func() time.Time { return *now }))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	l.Record(broker.LoadReport{Service: "db", Outstanding: 3, Threshold: 16})
	if _, ok := l.Load("db"); !ok {
		t.Fatal("fresh report withheld")
	}
	*now = now.Add(2 * time.Second)
	if _, ok := l.Load("db"); ok {
		t.Fatal("stale report still served to admission control")
	}
	entries := l.Entries()
	if len(entries) != 1 || !entries[0].Stale || entries[0].Age != 2*time.Second {
		t.Fatalf("entries = %+v, want one stale 2s-old row", entries)
	}

	// A fresh report revives the service.
	l.Record(broker.LoadReport{Service: "db", Outstanding: 1, Threshold: 16})
	if _, ok := l.Load("db"); !ok {
		t.Fatal("revived report withheld")
	}
}

func TestListenerDispatchesLeaseCommands(t *testing.T) {
	reg := registry.New(registry.Config{})
	l, err := NewListener("127.0.0.1:0", WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	conn, err := net.Dial("udp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cmd := registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: "127.0.0.1:7101",
		TTL: time.Minute, Load: broker.LoadReport{Service: "db", Outstanding: 5, Threshold: 16}}
	if _, err := conn.Write([]byte(registry.FormatCommand(cmd))); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if ms := reg.Members("db"); len(ms) == 1 && ms[0].Addr == "127.0.0.1:7101" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease command never reached the registry")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The piggybacked load also feeds the admission table.
	if r, ok := l.Load("db"); !ok || r.Outstanding != 5 {
		t.Fatalf("piggybacked load not recorded: %+v ok=%v", r, ok)
	}
	// LOAD reports still work on the same socket.
	if _, err := conn.Write([]byte("LOAD db 7 16 0 cool")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		if r, ok := l.Load("db"); ok && r.Outstanding == 7 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("LOAD report lost after registry attach")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
