// Package frontend implements the paper's two deployment models for
// incorporating service brokers into web servers (§IV):
//
//   - the distributed model (Figure 5): "the Web server imposes no admission
//     control restrictions. Requests are forwarded to the brokers together
//     with their QoS profiles", and each broker decides to forward or drop;
//   - the centralized model (Figure 4): the web server itself "checks [the
//     request's] resource requirements and current load status of the
//     brokers before the request proceeds"; if any needed backend is
//     overloaded, "the request is aborted before any real processing starts
//     and an error message is sent to the end user".
//
// Both models run on the httpserver substrate and reach brokers through the
// UDP wire gateway. The centralized model's load information arrives at a
// listener goroutine fed by UDP load-report datagrams pushed by a Reporter
// attached to each broker — the paper's "listener thread".
package frontend

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"time"

	"servicebroker/internal/broker"
	"servicebroker/internal/fleet"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/metrics"
	"servicebroker/internal/qos"
	"servicebroker/internal/registry"
	"servicebroker/internal/sketch"
	"servicebroker/internal/slo"
	"servicebroker/internal/trace"
)

// Route maps one URL pattern to a brokered service call.
type Route struct {
	// Pattern is the httpserver pattern ("/db/query" exact or "/pages/"
	// prefix).
	Pattern string
	// Service names the broker to call.
	Service string
	// Payload builds the broker payload from the HTTP request. When nil,
	// the "q" query parameter is used.
	Payload func(req *httpserver.Request) []byte
	// DefaultClass applies when the request carries no qos parameter;
	// zero means the framework default (lowest class at the broker).
	DefaultClass qos.Class
}

// classOf extracts the QoS class from the request ("qos" query parameter,
// else the route default).
func classOf(req *httpserver.Request, route Route) qos.Class {
	if v := req.Query["qos"]; v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			return qos.Class(n)
		}
	}
	return route.DefaultClass
}

// payloadOf builds the broker payload for a request.
func payloadOf(req *httpserver.Request, route Route) []byte {
	if route.Payload != nil {
		return route.Payload(req)
	}
	return []byte(req.Query["q"])
}

// txnOf extracts transaction tagging from the request: the "txn" and "step"
// query parameters, plus the optional "idem" idempotency key that marks the
// access as a mutation whose effect must execute at most once. The key is
// only meaningful inside a transaction, so it is ignored without "txn".
func txnOf(req *httpserver.Request) (string, int, string) {
	id := req.Query["txn"]
	if id == "" {
		return "", 0, ""
	}
	step, _ := strconv.Atoi(req.Query["step"])
	if step < 1 {
		step = 1
	}
	return id, step, req.Query["idem"]
}

// respond converts a broker response to HTTP. Dropped and shed requests
// answer 200 with the adaptive low-fidelity payload and an x-fidelity header,
// mirroring the paper's immediate short-message acknowledgement; shed
// responses additionally carry the broker's backpressure hint as
// x-retry-after-ms so clients know when to come back. A nonzero trace ID is
// surfaced as x-trace-id so clients can correlate with /tracez output.
func respond(resp *broker.Response, traceID trace.ID) *httpserver.Response {
	var out *httpserver.Response
	switch resp.Status {
	case broker.StatusOK, broker.StatusDropped, broker.StatusShed:
		out = httpserver.NewResponse(200, resp.Payload)
		out.Header["x-fidelity"] = resp.Fidelity.String()
		out.Header["x-broker-status"] = resp.Status.String()
		if resp.Status == broker.StatusShed && resp.RetryAfter > 0 {
			out.Header["x-retry-after-ms"] = strconv.FormatInt(int64(resp.RetryAfter/time.Millisecond), 10)
		}
	default:
		msg := "backend error"
		if resp.Err != nil {
			msg = resp.Err.Error()
		}
		out = httpserver.Error(502, msg)
	}
	if traceID != 0 {
		out.Header["x-trace-id"] = traceID.String()
	}
	return out
}

// analytics bundles the optional front-end measurement hooks shared by both
// deployment models: a hot-key tracker fed with each request's payload key
// and a per-class SLO engine fed with each request's disposition and the
// remote per-stage breakdown shipped back on the wire.
type analytics struct {
	hotkeys *sketch.Tracker
	slo     *slo.Engine
}

// observe records one completed gateway call. wire is the full UDP
// round-trip time; the remote spans (when the brokers trace) are subtracted
// from it so the wire stage attributes only the network + gateway overhead,
// not the broker-side work it encloses.
func (a analytics) observe(key string, class qos.Class, resp *broker.Response, err error, wire time.Duration) {
	if a.hotkeys != nil {
		hit := err == nil && resp != nil && resp.Fidelity == qos.FidelityCached
		a.hotkeys.RecordAccess(key, hit)
		a.hotkeys.RecordLatency(key, wire)
	}
	if a.slo == nil {
		return
	}
	ok := err == nil && resp != nil && resp.Status == broker.StatusOK &&
		(resp.Fidelity == qos.FidelityFull || resp.Fidelity == qos.FidelityCached)
	a.slo.Record(class, wire, ok)
	var remote time.Duration
	if resp != nil {
		for _, sp := range resp.RemoteSpans {
			d := sp.Duration()
			a.slo.RecordStage(class, sp.Stage, d)
			remote += d
		}
	}
	if net := wire - remote; net > 0 {
		a.slo.RecordStage(class, trace.StageWire, net)
	}
}

// tracedCall wraps one gateway call with trace bookkeeping shared by both
// deployment models: it assigns the request's end-to-end trace ID, times the
// wire (UDP round-trip) stage, finishes the front-end trace record with
// the request's disposition, and feeds the analytics hooks. With a nil
// recorder it degrades to a plain call with a zero trace ID. cli is either
// a single gateway client or a replicated Pool.
func tracedCall(rec *trace.Recorder, ana analytics, cli caller, service string, req *broker.Request) (*broker.Response, trace.ID, error) {
	var tr *trace.Active
	if rec != nil {
		tr = rec.Start(0, service, int(req.Class))
		req.TraceID = tr.ID()
	}
	start := time.Now()
	span := tr.StartSpan(trace.StageWire)
	// Carry the active trace down into the pool so its failover loop can
	// record StageFailover hops on the same tree the remote spans merge into.
	resp, err := cli.Do(trace.NewContext(context.Background(), tr), service, req)
	span.End()
	wire := time.Since(start)
	if resp != nil {
		// Merge the broker-side spans shipped back on the response so the
		// front end's /tracez shows the whole cross-process tree (wire →
		// queue → cache/cluster/backend → retry), attributed to the pool
		// member that recorded them.
		for _, sp := range resp.RemoteSpans {
			tr.RemoteSpan(sp.Stage, sp.Start, sp.End, sp.Note, sp.Broker)
		}
	}
	ana.observe(string(req.Payload), req.Class, resp, err, wire)
	switch {
	case err != nil:
		tr.SetStatus("error")
		slog.Debug("frontend: broker call failed",
			"service", service, "trace", req.TraceID.String(), "err", err)
	case resp.Status == broker.StatusDropped:
		tr.SetStatus("dropped")
	case resp.Status == broker.StatusShed:
		tr.SetStatus("shed")
	case resp.Status == broker.StatusError:
		tr.SetStatus("error")
	default:
		tr.SetStatus("ok")
	}
	tr.Finish()
	return resp, req.TraceID, err
}

// splitGateways parses a gateway address spec: one address, or several
// pool members separated by "|" (the same replica separator brokerd's
// -service spec uses).
func splitGateways(spec string) []string {
	var out []string
	for _, a := range strings.Split(spec, "|") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// registryReconcileInterval is how often the deployment models' registries
// sweep for expired leases.
const registryReconcileInterval = 500 * time.Millisecond

// Distributed is the Figure 5 deployment: a front-end web server that
// forwards every routed request to the brokers and relays their responses.
// The brokers behind it may be a replicated pool.
type Distributed struct {
	srv  *httpserver.Server
	cli  caller
	pool *Pool
	reg  *metrics.Registry
	rec  *trace.Recorder
	ana  analytics

	events      *fleet.Log
	registry    *registry.Registry
	regListener *Listener
}

// NewDistributed starts a front-end web server on addr whose routes call
// brokers behind gatewayAddr — a single gateway or several separated by "|"
// (a replicated pool with health-weighted failover). EnableRegistry adds
// lease-discovered members to the pool.
func NewDistributed(addr, gatewayAddr string, routes []Route, opts ...httpserver.ServerOption) (*Distributed, error) {
	if len(routes) == 0 {
		return nil, errors.New("frontend: no routes")
	}
	reg := metrics.NewRegistry()
	pool, err := NewPool(PoolConfig{Gateways: splitGateways(gatewayAddr), Metrics: reg})
	if err != nil {
		return nil, err
	}
	srv, err := httpserver.NewServer(addr, opts...)
	if err != nil {
		pool.Close()
		return nil, err
	}
	d := &Distributed{srv: srv, cli: pool, pool: pool, reg: reg}
	for _, route := range routes {
		route := route
		srv.Handle(route.Pattern, func(req *httpserver.Request) *httpserver.Response {
			return d.serve(req, route)
		})
	}
	return d, nil
}

// EnableRegistry starts lease-based pool discovery: it binds a UDP listener
// on listenAddr for REGISTER/RENEW/DEREGISTER datagrams (brokerd's
// -register-to target), reconciles leases in the background, and routes to
// discovered members alongside the static gateways. The returned listener's
// Addr is the address brokers register to.
func (d *Distributed) EnableRegistry(listenAddr string) (*Listener, error) {
	if d.registry != nil {
		return d.regListener, nil
	}
	reg := registry.New(registry.Config{Metrics: d.reg, Logger: slog.Default(), Events: d.events})
	l, err := NewListener(listenAddr, WithRegistry(reg))
	if err != nil {
		reg.Close()
		return nil, err
	}
	reg.Start(registryReconcileInterval)
	d.registry = reg
	d.regListener = l
	d.pool.SetRegistry(reg)
	return l, nil
}

// PoolStatus returns the routing pool's /poolz rows (lease state merged
// with per-member routing health).
func (d *Distributed) PoolStatus() []registry.PoolView { return d.pool.Status() }

// EnableFleet wires the fleet event timeline: the routing pool publishes
// failover, breaker, and stale-serve events into l, and (once discovery is
// enabled) the registry publishes lease lifecycle events. Order-independent
// with EnableRegistry.
func (d *Distributed) EnableFleet(l *fleet.Log) {
	d.events = l
	d.pool.SetEvents(l)
	if d.registry != nil {
		d.registry.SetEvents(l)
	}
}

// FleetMembers returns the lease-discovered pool members that advertised an
// admin plane — the Discover feed for a fleet.Federator. Nil before
// EnableRegistry.
func (d *Distributed) FleetMembers() []fleet.MemberInfo {
	if d.registry == nil {
		return nil
	}
	return d.registry.FleetMembers()
}

// Addr returns the web server's address.
func (d *Distributed) Addr() string { return d.srv.Addr().String() }

// Metrics returns the front-end registry ("forwarded", "dropped",
// "errors").
func (d *Distributed) Metrics() *metrics.Registry { return d.reg }

// EnableTracing assigns each forwarded request an end-to-end trace ID,
// records the front end's wire span into rec, and propagates the ID to the
// brokers over the wire protocol. Share rec with the obs admin server to
// expose /tracez.
func (d *Distributed) EnableTracing(rec *trace.Recorder) { d.rec = rec }

// EnableAnalytics attaches the front end's workload measurement: hk (when
// non-nil) tracks per-key frequency, broker-cache-hit ratio, and latency for
// the /hotz page; eng (when non-nil) records per-class dispositions and the
// per-stage breakdown for the /sloz page. Stage attribution beyond the wire
// stage requires tracing enabled on both the front end and the brokers.
func (d *Distributed) EnableAnalytics(hk *sketch.Tracker, eng *slo.Engine) {
	d.ana = analytics{hotkeys: hk, slo: eng}
}

func (d *Distributed) serve(req *httpserver.Request, route Route) *httpserver.Response {
	txnID, step, idemKey := txnOf(req)
	d.reg.Counter("forwarded").Inc()
	resp, traceID, err := tracedCall(d.rec, d.ana, d.cli, route.Service, &broker.Request{
		Payload: payloadOf(req, route),
		Class:   classOf(req, route),
		TxnID:   txnID,
		TxnStep: step,
		IdemKey: idemKey,
	})
	if err != nil {
		d.reg.Counter("errors").Inc()
		return httpserver.Error(502, err.Error())
	}
	switch resp.Status {
	case broker.StatusDropped:
		d.reg.Counter("dropped").Inc()
	case broker.StatusShed:
		d.reg.Counter("shed").Inc()
	}
	return respond(resp, traceID)
}

// Drain gracefully stops the web server: no new connections, in-flight
// requests run to completion (bounded by ctx). Call before Close.
func (d *Distributed) Drain(ctx context.Context) error { return d.srv.Drain(ctx) }

// Close stops the web server, the gateway pool, and (when registry
// discovery is enabled) the lease listener and reconciliation loop.
func (d *Distributed) Close() error {
	err := d.srv.Close()
	if cerr := d.cli.Close(); err == nil {
		err = cerr
	}
	if d.regListener != nil {
		if lerr := d.regListener.Close(); err == nil {
			err = lerr
		}
	}
	if d.registry != nil {
		d.registry.Close()
	}
	return err
}

// Demand is one entry of a URL resource profile: the request needs the
// given service, weighted by how heavily it uses it.
type Demand struct {
	Service string
	// Weight scales the admission margin: a request of weight w is admitted
	// only while the service's outstanding + w ≤ threshold. Weight 1 is a
	// single backend access.
	Weight int
}

// Centralized is the Figure 4 deployment: the web server runs admission
// control against broker load reports gathered by its listener goroutine
// and per-URL resource profiles, aborting doomed requests up front. The
// brokers behind it may be a replicated pool.
type Centralized struct {
	srv      *httpserver.Server
	cli      caller
	pool     *Pool
	listener *Listener
	profiles map[string][]Demand // pattern → demands
	reg      *metrics.Registry
	rec      *trace.Recorder
	ana      analytics

	events   *fleet.Log
	registry *registry.Registry
}

// NewCentralized starts the centralized front end. listenAddr is the UDP
// address its listener thread binds for load reports; each route's resource
// profile is given in profiles keyed by route pattern (routes without a
// profile are admitted unconditionally). gatewayAddr may name several pool
// members separated by "|".
func NewCentralized(addr, gatewayAddr, listenAddr string, routes []Route, profiles map[string][]Demand, opts ...httpserver.ServerOption) (*Centralized, error) {
	if len(routes) == 0 {
		return nil, errors.New("frontend: no routes")
	}
	listener, err := NewListener(listenAddr)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	pool, err := NewPool(PoolConfig{Gateways: splitGateways(gatewayAddr), Metrics: reg})
	if err != nil {
		listener.Close()
		return nil, err
	}
	srv, err := httpserver.NewServer(addr, opts...)
	if err != nil {
		pool.Close()
		listener.Close()
		return nil, err
	}
	c := &Centralized{
		srv:      srv,
		cli:      pool,
		pool:     pool,
		listener: listener,
		profiles: profiles,
		reg:      reg,
	}
	for _, route := range routes {
		route := route
		srv.Handle(route.Pattern, func(req *httpserver.Request) *httpserver.Response {
			return c.serve(req, route)
		})
	}
	return c, nil
}

// EnableRegistry turns on lease-based pool discovery over the existing
// load-report listener: REGISTER/RENEW/DEREGISTER datagrams arriving at
// ListenerAddr() maintain pool membership, and discovered members join the
// routing pool alongside the static gateways.
func (c *Centralized) EnableRegistry() *registry.Registry {
	if c.registry != nil {
		return c.registry
	}
	reg := registry.New(registry.Config{Metrics: c.reg, Logger: slog.Default(), Events: c.events})
	reg.Start(registryReconcileInterval)
	c.listener.AttachRegistry(reg)
	c.registry = reg
	c.pool.SetRegistry(reg)
	return reg
}

// PoolStatus returns the routing pool's /poolz rows (lease state merged
// with per-member routing health).
func (c *Centralized) PoolStatus() []registry.PoolView { return c.pool.Status() }

// EnableFleet wires the fleet event timeline (see Distributed.EnableFleet).
func (c *Centralized) EnableFleet(l *fleet.Log) {
	c.events = l
	c.pool.SetEvents(l)
	if c.registry != nil {
		c.registry.SetEvents(l)
	}
}

// FleetMembers returns the lease-discovered pool members that advertised an
// admin plane — the Discover feed for a fleet.Federator. Nil before
// EnableRegistry.
func (c *Centralized) FleetMembers() []fleet.MemberInfo {
	if c.registry == nil {
		return nil
	}
	return c.registry.FleetMembers()
}

// Addr returns the web server's address.
func (c *Centralized) Addr() string { return c.srv.Addr().String() }

// ListenerAddr returns the load-report UDP address brokers should report to.
func (c *Centralized) ListenerAddr() string { return c.listener.Addr() }

// ListenerUpdates counts load-report datagrams the listener thread has
// processed — the update workload the paper's scalability discussion is
// about.
func (c *Centralized) ListenerUpdates() int { return c.listener.Updates() }

// LoadEntries returns the listener's age-stamped load reports (fresh and
// stale) for /loadz.
func (c *Centralized) LoadEntries() []LoadEntry { return c.listener.Entries() }

// Metrics returns the front-end registry ("admitted", "aborted", "dropped",
// "errors").
func (c *Centralized) Metrics() *metrics.Registry { return c.reg }

// admit applies the centralized admission check for one route.
func (c *Centralized) admit(route Route) error {
	demands, ok := c.profiles[route.Pattern]
	if !ok {
		return nil
	}
	for _, d := range demands {
		report, ok := c.listener.Load(d.Service)
		if !ok {
			continue // no load information yet; fail open like the paper's warmup
		}
		weight := d.Weight
		if weight < 1 {
			weight = 1
		}
		// Abort when the demand does not fit the remaining headroom, or
		// when the broker has declared a hot spot.
		if report.Hot || report.Outstanding+weight > report.Threshold {
			return fmt.Errorf("frontend: service %s overloaded (%d/%d outstanding, hot=%v)",
				d.Service, report.Outstanding, report.Threshold, report.Hot)
		}
	}
	return nil
}

// EnableTracing assigns each admitted request an end-to-end trace ID,
// records the front end's wire span into rec, and propagates the ID to the
// brokers over the wire protocol.
func (c *Centralized) EnableTracing(rec *trace.Recorder) { c.rec = rec }

// EnableAnalytics attaches the front end's workload measurement (see
// Distributed.EnableAnalytics).
func (c *Centralized) EnableAnalytics(hk *sketch.Tracker, eng *slo.Engine) {
	c.ana = analytics{hotkeys: hk, slo: eng}
}

func (c *Centralized) serve(req *httpserver.Request, route Route) *httpserver.Response {
	if err := c.admit(route); err != nil {
		c.reg.Counter("aborted").Inc()
		return httpserver.Error(503, err.Error())
	}
	c.reg.Counter("admitted").Inc()
	txnID, step, idemKey := txnOf(req)
	resp, traceID, err := tracedCall(c.rec, c.ana, c.cli, route.Service, &broker.Request{
		Payload: payloadOf(req, route),
		Class:   classOf(req, route),
		TxnID:   txnID,
		TxnStep: step,
		IdemKey: idemKey,
	})
	if err != nil {
		c.reg.Counter("errors").Inc()
		return httpserver.Error(502, err.Error())
	}
	switch resp.Status {
	case broker.StatusDropped:
		c.reg.Counter("dropped").Inc()
	case broker.StatusShed:
		c.reg.Counter("shed").Inc()
	}
	return respond(resp, traceID)
}

// Drain gracefully stops the web server: no new connections, in-flight
// requests run to completion (bounded by ctx). Call before Close.
func (c *Centralized) Drain(ctx context.Context) error { return c.srv.Drain(ctx) }

// Close stops the web server, gateway pool, listener, and (when enabled)
// the registry reconciliation loop.
func (c *Centralized) Close() error {
	err := c.srv.Close()
	if cerr := c.cli.Close(); err == nil {
		err = cerr
	}
	if lerr := c.listener.Close(); err == nil {
		err = lerr
	}
	if c.registry != nil {
		c.registry.Close()
	}
	return err
}

// Reporter periodically pushes one broker's load report to a listener
// address over UDP. Attach one per broker in the centralized model; Close
// stops the reporting goroutine.
type Reporter struct {
	stop chan struct{}
	done chan struct{}
}

// NewReporter starts reporting b's load to listenAddr every interval.
func NewReporter(b *broker.Broker, listenAddr string, interval time.Duration) (*Reporter, error) {
	if b == nil {
		return nil, errors.New("frontend: nil broker")
	}
	if interval <= 0 {
		return nil, errors.New("frontend: report interval must be positive")
	}
	conn, err := dialReport(listenAddr)
	if err != nil {
		return nil, err
	}
	r := &Reporter{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		defer conn.Close()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				// Final report on the way out so a centralized front end
				// sees the broker's drained state instead of a stale load.
				sendReport(conn, b.Load())
				return
			case <-ticker.C:
				sendReport(conn, b.Load())
			}
		}
	}()
	return r, nil
}

// Close stops the reporter and waits for its goroutine.
func (r *Reporter) Close() {
	close(r.stop)
	<-r.done
}

// statusBody renders one line per known service load plus front-end
// counters — the /broker-status page both models expose.
func statusBody(loads []broker.LoadReport, reg *metrics.Registry) []byte {
	var b strings.Builder
	b.WriteString("service brokers\n")
	for _, r := range loads {
		state := "cool"
		if r.Hot {
			state = "hot"
		}
		fmt.Fprintf(&b, "  %-12s outstanding=%d/%d queued=%d %s\n",
			r.Service, r.Outstanding, r.Threshold, r.QueueLen, state)
	}
	b.WriteString("front end\n")
	b.WriteString(indentLines(reg.Dump()))
	return []byte(b.String())
}

func indentLines(s string) string {
	if s == "" {
		return ""
	}
	return "  " + strings.ReplaceAll(s, "\n", "\n  ") + "\n"
}

// ServeStatus registers the diagnostics pages on the distributed front
// end: /broker-status (front-end counters only — load information is not
// available in this model, brokers decide autonomously) and /poolz (pool
// membership, lease state, and per-member routing health).
func (d *Distributed) ServeStatus() {
	d.srv.Handle("/broker-status", func(*httpserver.Request) *httpserver.Response {
		return httpserver.Text(string(statusBody(nil, d.reg)))
	})
	d.srv.Handle("/poolz", func(*httpserver.Request) *httpserver.Response {
		return httpserver.Text(string(poolStatusBody(d.PoolStatus())))
	})
}

// ServeStatus registers the diagnostics pages on the centralized front
// end: /broker-status (the latest load report per profiled service from
// the listener thread, plus front-end counters) and /poolz (pool
// membership, lease state, and per-member routing health).
func (c *Centralized) ServeStatus() {
	c.srv.Handle("/broker-status", func(*httpserver.Request) *httpserver.Response {
		var loads []broker.LoadReport
		var names []string
		for pattern := range c.profiles {
			for _, d := range c.profiles[pattern] {
				names = append(names, d.Service)
			}
		}
		sort.Strings(names)
		seen := map[string]bool{}
		for _, name := range names {
			if seen[name] {
				continue
			}
			seen[name] = true
			if r, ok := c.listener.Load(name); ok {
				loads = append(loads, r)
			}
		}
		return httpserver.Text(string(statusBody(loads, c.reg)))
	})
	c.srv.Handle("/poolz", func(*httpserver.Request) *httpserver.Response {
		return httpserver.Text(string(poolStatusBody(c.PoolStatus())))
	})
}
