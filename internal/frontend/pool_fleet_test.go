package frontend

import (
	"context"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/fleet"
	"servicebroker/internal/metrics"
	"servicebroker/internal/qos"
	"servicebroker/internal/registry"
	"servicebroker/internal/resilience"
	"servicebroker/internal/trace"
)

// tracedPoolGateway spins up a broker+gateway member with span export
// enabled, the configuration brokerd runs with tracing on.
func tracedPoolGateway(t *testing.T, tag string) *broker.Gateway {
	t.Helper()
	rec := trace.NewRecorder(trace.WithExport(64))
	b, err := broker.New(&backend.DelayConnector{ServiceName: tag}, broker.WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	g, err := broker.NewGateway("127.0.0.1:0", map[string]*broker.Broker{"db": b})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// tracedDo runs one pool request under an active trace the way tracedCall
// does: trace in the context, remote spans merged back, trace finished.
func tracedDo(t *testing.T, p *Pool, rec *trace.Recorder, class qos.Class, payload string) (*broker.Response, error, trace.Trace) {
	t.Helper()
	tr := rec.Start(0, "db", int(class))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := p.Do(trace.NewContext(ctx, tr), "db", &broker.Request{
		Payload: []byte(payload), Class: class, TraceID: tr.ID()})
	if resp != nil {
		for _, sp := range resp.RemoteSpans {
			tr.RemoteSpan(sp.Stage, sp.Start, sp.End, sp.Note, sp.Broker)
		}
	}
	return resp, err, tr.Finish()
}

func TestPoolFailoverStitchesTraceAndPublishesEvents(t *testing.T) {
	g1 := tracedPoolGateway(t, "one")
	g2 := tracedPoolGateway(t, "two")
	// Lease loads pin the order: the soon-dead g1 looks idle so it is tried
	// first, forcing a failover hop onto the trace.
	reg := registry.New(registry.Config{})
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: g1.Addr().String(),
		TTL: time.Hour, Load: broker.LoadReport{Service: "db", Outstanding: 0, Threshold: 16}})
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: g2.Addr().String(),
		TTL: time.Hour, Load: broker.LoadReport{Service: "db", Outstanding: 8, Threshold: 16}})
	events := fleet.NewLog(32, nil)
	p := fastPool(t, PoolConfig{Registry: reg, Metrics: metrics.NewRegistry(), Events: events})
	if err := g1.Close(); err != nil {
		t.Fatal(err)
	}

	rec := trace.NewRecorder()
	resp, err, tr := tracedDo(t, p, rec, qos.Class1, "x")
	if err != nil || resp.Status != broker.StatusOK {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}

	// One stitched tree: a failover hop naming the dead member, plus remote
	// spans attributed to the member that answered.
	var sawHop, sawRemote bool
	for _, sp := range tr.Spans {
		if sp.Stage == trace.StageFailover {
			sawHop = true
			if sp.Broker != "" {
				t.Fatalf("failover hop attributed to a remote broker: %+v", sp)
			}
		}
		if sp.Broker == g2.Addr().String() {
			sawRemote = true
		}
	}
	if !sawHop {
		t.Fatalf("no %s span on the stitched trace: %+v", trace.StageFailover, tr.Spans)
	}
	if !sawRemote {
		t.Fatalf("no span attributed to the surviving member %s: %+v", g2.Addr(), tr.Spans)
	}

	// The failover also landed on the event timeline, linked to this trace.
	var sawEvent bool
	for _, e := range events.Snapshot(0) {
		if e.Kind == fleet.KindFailover && e.Member == g1.Addr().String() {
			if e.TraceID != uint64(tr.ID) {
				t.Fatalf("failover event trace = %x, want %x", e.TraceID, uint64(tr.ID))
			}
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Fatalf("no failover event published: %+v", events.Snapshot(0))
	}
}

// Losing every member mid-trace must yield an annotated partial trace — the
// failover hops and the stale-serve note — rather than an error or an empty
// record.
func TestPoolTraceMergeUnderMemberLoss(t *testing.T) {
	g := poolGateway(t, "one")
	events := fleet.NewLog(32, nil)
	p := fastPool(t, PoolConfig{Gateways: []string{g.Addr().String()},
		Metrics: metrics.NewRegistry(), Events: events,
		Breaker: resilience.BreakerConfig{FailureThreshold: 1000}})

	rec := trace.NewRecorder()
	// Seed the stale cache while the member is alive.
	if resp, err, _ := tracedDo(t, p, rec, qos.Class3, "q1"); err != nil || resp.Status != broker.StatusOK {
		t.Fatalf("seed request: resp=%+v err=%v", resp, err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err, tr := tracedDo(t, p, rec, qos.Class3, "q1")
	if err != nil {
		t.Fatalf("member loss surfaced as an error instead of a stale serve: %v", err)
	}
	if resp.Status != broker.StatusOK || resp.Fidelity != qos.FidelityLow {
		t.Fatalf("stale serve = status %v fidelity %v, want OK/low", resp.Status, resp.Fidelity)
	}
	// The partial trace is annotated: failover hops for the dead member and
	// the stale-serve note, with no remote spans (nothing answered).
	var hops int
	var sawStaleNote bool
	for _, sp := range tr.Spans {
		if sp.Stage == trace.StageFailover {
			hops++
			if sp.Note == "stale-serve: pool exhausted, answering from last-good cache" {
				sawStaleNote = true
			}
		}
		if sp.Broker != "" {
			t.Fatalf("dead pool produced a remote span: %+v", sp)
		}
	}
	if hops == 0 || !sawStaleNote {
		t.Fatalf("partial trace not annotated (hops=%d staleNote=%v): %+v", hops, sawStaleNote, tr.Spans)
	}
	var sawStaleEvent bool
	for _, e := range events.Snapshot(0) {
		if e.Kind == fleet.KindStaleServe && e.TraceID == uint64(tr.ID) {
			sawStaleEvent = true
		}
	}
	if !sawStaleEvent {
		t.Fatalf("no stale_serve event linked to the trace: %+v", events.Snapshot(0))
	}
}
