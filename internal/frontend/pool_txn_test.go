package frontend

import (
	"context"
	"testing"
	"time"

	"servicebroker/internal/broker"
	"servicebroker/internal/metrics"
	"servicebroker/internal/qos"
	"servicebroker/internal/registry"
	"servicebroker/internal/resilience"
)

// A low-class request at transaction step 2+ is premium for failover: it
// tries every member instead of giving up after two, because aborting a
// near-complete transaction forces compensation of the finished steps.
func TestPoolLateTxnStepsArePremium(t *testing.T) {
	dead1, dead2 := "127.0.0.1:1", "127.0.0.1:2"
	live := poolGateway(t, "three")

	reg := registry.New(registry.Config{})
	// Lease loads pin the order: both dead members look idler than the live
	// one, so a 2-attempt (non-premium) request never reaches it.
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: dead1, TTL: time.Hour,
		Load: broker.LoadReport{Service: "db", Outstanding: 0, Threshold: 16}})
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: dead2, TTL: time.Hour,
		Load: broker.LoadReport{Service: "db", Outstanding: 1, Threshold: 16}})
	reg.Apply(registry.Command{Verb: registry.VerbRegister, Service: "db", Addr: live.Addr().String(), TTL: time.Hour,
		Load: broker.LoadReport{Service: "db", Outstanding: 12, Threshold: 16}})

	m := metrics.NewRegistry()
	p := fastPool(t, PoolConfig{Registry: reg, Metrics: m, StaleEntries: -1,
		AttemptTimeout: 50 * time.Millisecond,
		Breaker:        resilience.BreakerConfig{FailureThreshold: 1000}})

	// Plain lowest-class request: capped at 2 attempts, both dead → error.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := p.Do(ctx, "db", &broker.Request{Payload: []byte("q"), Class: qos.Class3}); err == nil {
		t.Fatal("non-premium request reached the third member")
	}

	// Same class at txn step 2: premium, tries all three, succeeds.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	resp, err := p.Do(ctx2, "db", &broker.Request{Payload: []byte("q"), Class: qos.Class3,
		TxnID: "t1", TxnStep: 2, IdemKey: "charge"})
	if err != nil {
		t.Fatalf("step-2 request did not persist through failover: %v", err)
	}
	if resp.Status != broker.StatusOK {
		t.Fatalf("status = %v, want OK", resp.Status)
	}
}

// An idempotency-keyed mutation must never be stale-served or remembered for
// stale serving: a cached payload is not an executed effect.
func TestPoolNeverStaleServesIdemKeyedRequests(t *testing.T) {
	g := poolGateway(t, "one")
	p := fastPool(t, PoolConfig{Gateways: []string{g.Addr().String()},
		Metrics: metrics.NewRegistry(),
		Breaker: resilience.BreakerConfig{FailureThreshold: 1000}})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// A keyed mutation succeeds while the pool is up...
	if _, err := p.Do(ctx, "db", &broker.Request{Payload: []byte("m1"), Class: qos.Class3,
		TxnID: "t1", TxnStep: 1, IdemKey: "hold"}); err != nil {
		t.Fatal(err)
	}
	// ...and a plain read of a different payload seeds the stale cache.
	if _, err := p.Do(ctx, "db", &broker.Request{Payload: []byte("r1"), Class: qos.Class3}); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// The mutation's outcome was not remembered: replaying the same keyed
	// payload with the pool down errors instead of stale-serving.
	downCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if _, err := p.Do(downCtx, "db", &broker.Request{Payload: []byte("m1"), Class: qos.Class3,
		TxnID: "t1", TxnStep: 1, IdemKey: "hold"}); err == nil {
		t.Fatal("idempotency-keyed mutation was stale-served")
	}
	// The plain read still stale-serves — the guard is keyed, not global.
	downCtx2, cancel3 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel3()
	resp, err := p.Do(downCtx2, "db", &broker.Request{Payload: []byte("r1"), Class: qos.Class3})
	if err != nil || resp.Fidelity != qos.FidelityLow {
		t.Fatalf("plain read lost its stale fallback: resp=%+v err=%v", resp, err)
	}
}
