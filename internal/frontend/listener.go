package frontend

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"servicebroker/internal/broker"
)

// Load-report datagrams are single text lines:
//
//	LOAD <service> <outstanding> <threshold> <queuelen> <hot|cool>
//
// A plain-text format keeps the listener thread cheap — the paper notes the
// centralized model's scalability hinges on how little work per update the
// listener does.

// formatReport serializes one report into its datagram line. It is the
// inverse of parseReport; the fuzz target checks the round trip.
func formatReport(r broker.LoadReport) string {
	state := "cool"
	if r.Hot {
		state = "hot"
	}
	return fmt.Sprintf("LOAD %s %d %d %d %s", r.Service, r.Outstanding, r.Threshold, r.QueueLen, state)
}

// sendReport serializes and sends one report (best effort — UDP).
func sendReport(conn net.Conn, r broker.LoadReport) {
	fmt.Fprint(conn, formatReport(r))
}

// dialReport opens the UDP socket a Reporter writes to.
func dialReport(addr string) (net.Conn, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: dial listener %s: %w", addr, err)
	}
	return conn, nil
}

// Bounds the parser enforces on incoming datagrams. Reports arrive over an
// unauthenticated UDP socket, so a malformed or hostile packet must never
// poison the admission table: reject rather than clamp.
const (
	maxReportLine    = 512     // matches the listener's read buffer
	maxServiceName   = 128     // generous; real service names are short
	maxReportCounter = 1 << 30 // outstanding/threshold/queuelen sanity cap
)

// parseCounter decodes one non-negative bounded integer field.
func parseCounter(s string) (int, error) {
	// strconv.Atoi accepts a leading sign; forbid it so "-0" and "+1" are
	// rejected and every accepted field re-formats to the identical string.
	if s == "" || s[0] == '-' || s[0] == '+' {
		return 0, fmt.Errorf("frontend: bad counter %q", s)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n > maxReportCounter {
		return 0, fmt.Errorf("frontend: counter %d out of range", n)
	}
	return n, nil
}

// parseReport decodes one datagram. The format is exactly six
// space-separated fields (see the package comment above); anything else —
// wrong field count, unknown verb or state, signed or oversized numbers,
// unprintable service names — is rejected so garbage datagrams cannot
// perturb centralized admission control.
func parseReport(line string) (broker.LoadReport, error) {
	if len(line) > maxReportLine {
		return broker.LoadReport{}, fmt.Errorf("frontend: oversized load report (%d bytes)", len(line))
	}
	fields := strings.Fields(line)
	if len(fields) != 6 || fields[0] != "LOAD" {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad load report %q", line)
	}
	var r broker.LoadReport
	r.Service = fields[1]
	if len(r.Service) > maxServiceName || !printable(r.Service) {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad service name %q", r.Service)
	}
	var err error
	if r.Outstanding, err = parseCounter(fields[2]); err != nil {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad load report %q: %w", line, err)
	}
	if r.Threshold, err = parseCounter(fields[3]); err != nil {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad load report %q: %w", line, err)
	}
	if r.QueueLen, err = parseCounter(fields[4]); err != nil {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad load report %q: %w", line, err)
	}
	switch fields[5] {
	case "hot":
		r.Hot = true
	case "cool":
		r.Hot = false
	default:
		return broker.LoadReport{}, fmt.Errorf("frontend: bad state %q", fields[5])
	}
	return r, nil
}

// printable reports whether s is plain printable ASCII — service names are
// used as map keys and echoed on status pages, so control bytes are refused.
func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '!' || s[i] > '~' {
			return false
		}
	}
	return len(s) > 0
}

// Listener is the centralized model's listener thread: a goroutine that
// receives load-report datagrams and keeps the latest report per service.
type Listener struct {
	conn net.PacketConn

	mu      sync.Mutex
	loads   map[string]broker.LoadReport
	updates int
	closed  bool

	done chan struct{}
}

// NewListener binds a UDP socket on addr ("127.0.0.1:0" for ephemeral) and
// starts the receive goroutine.
func NewListener(addr string) (*Listener, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: listen %s: %w", addr, err)
	}
	l := &Listener{
		conn:  conn,
		loads: make(map[string]broker.LoadReport),
		done:  make(chan struct{}),
	}
	go l.run()
	return l, nil
}

// Addr returns the bound UDP address.
func (l *Listener) Addr() string { return l.conn.LocalAddr().String() }

func (l *Listener) run() {
	defer close(l.done)
	buf := make([]byte, 512)
	for {
		n, _, err := l.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		report, err := parseReport(string(buf[:n]))
		if err != nil {
			continue // drop garbage silently
		}
		l.mu.Lock()
		l.loads[report.Service] = report
		l.updates++
		l.mu.Unlock()
	}
}

// Load returns the latest report for a service.
func (l *Listener) Load(service string) (broker.LoadReport, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.loads[service]
	return r, ok
}

// Updates counts processed report datagrams (the listener-thread workload
// the paper's scalability discussion is about).
func (l *Listener) Updates() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.updates
}

// Record injects a report directly (in-process deployments and tests).
func (l *Listener) Record(r broker.LoadReport) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.loads[r.Service] = r
	l.updates++
}

// Close stops the receive goroutine and releases the socket.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	err := l.conn.Close()
	<-l.done
	return err
}
