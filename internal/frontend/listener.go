package frontend

import (
	"fmt"
	"net"
	"strings"
	"sync"

	"servicebroker/internal/broker"
)

// Load-report datagrams are single text lines:
//
//	LOAD <service> <outstanding> <threshold> <queuelen> <hot|cool>
//
// A plain-text format keeps the listener thread cheap — the paper notes the
// centralized model's scalability hinges on how little work per update the
// listener does.

// sendReport serializes and sends one report (best effort — UDP).
func sendReport(conn net.Conn, r broker.LoadReport) {
	state := "cool"
	if r.Hot {
		state = "hot"
	}
	fmt.Fprintf(conn, "LOAD %s %d %d %d %s", r.Service, r.Outstanding, r.Threshold, r.QueueLen, state)
}

// dialReport opens the UDP socket a Reporter writes to.
func dialReport(addr string) (net.Conn, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: dial listener %s: %w", addr, err)
	}
	return conn, nil
}

// parseReport decodes one datagram.
func parseReport(line string) (broker.LoadReport, error) {
	fields := strings.Fields(line)
	if len(fields) != 6 || fields[0] != "LOAD" {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad load report %q", line)
	}
	var r broker.LoadReport
	r.Service = fields[1]
	if _, err := fmt.Sscanf(fields[2]+" "+fields[3]+" "+fields[4], "%d %d %d",
		&r.Outstanding, &r.Threshold, &r.QueueLen); err != nil {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad load report %q: %w", line, err)
	}
	r.Hot = fields[5] == "hot"
	return r, nil
}

// Listener is the centralized model's listener thread: a goroutine that
// receives load-report datagrams and keeps the latest report per service.
type Listener struct {
	conn net.PacketConn

	mu      sync.Mutex
	loads   map[string]broker.LoadReport
	updates int
	closed  bool

	done chan struct{}
}

// NewListener binds a UDP socket on addr ("127.0.0.1:0" for ephemeral) and
// starts the receive goroutine.
func NewListener(addr string) (*Listener, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: listen %s: %w", addr, err)
	}
	l := &Listener{
		conn:  conn,
		loads: make(map[string]broker.LoadReport),
		done:  make(chan struct{}),
	}
	go l.run()
	return l, nil
}

// Addr returns the bound UDP address.
func (l *Listener) Addr() string { return l.conn.LocalAddr().String() }

func (l *Listener) run() {
	defer close(l.done)
	buf := make([]byte, 512)
	for {
		n, _, err := l.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		report, err := parseReport(string(buf[:n]))
		if err != nil {
			continue // drop garbage silently
		}
		l.mu.Lock()
		l.loads[report.Service] = report
		l.updates++
		l.mu.Unlock()
	}
}

// Load returns the latest report for a service.
func (l *Listener) Load(service string) (broker.LoadReport, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.loads[service]
	return r, ok
}

// Updates counts processed report datagrams (the listener-thread workload
// the paper's scalability discussion is about).
func (l *Listener) Updates() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.updates
}

// Record injects a report directly (in-process deployments and tests).
func (l *Listener) Record(r broker.LoadReport) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.loads[r.Service] = r
	l.updates++
}

// Close stops the receive goroutine and releases the socket.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	err := l.conn.Close()
	<-l.done
	return err
}
