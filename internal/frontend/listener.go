package frontend

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"servicebroker/internal/broker"
	"servicebroker/internal/registry"
)

// Load-report datagrams are single text lines:
//
//	LOAD <service> <outstanding> <threshold> <queuelen> <hot|cool>
//
// A plain-text format keeps the listener thread cheap — the paper notes the
// centralized model's scalability hinges on how little work per update the
// listener does.

// formatReport serializes one report into its datagram line. It is the
// inverse of parseReport; the fuzz target checks the round trip.
func formatReport(r broker.LoadReport) string {
	state := "cool"
	if r.Hot {
		state = "hot"
	}
	return fmt.Sprintf("LOAD %s %d %d %d %s", r.Service, r.Outstanding, r.Threshold, r.QueueLen, state)
}

// sendReport serializes and sends one report (best effort — UDP).
func sendReport(conn net.Conn, r broker.LoadReport) {
	fmt.Fprint(conn, formatReport(r))
}

// dialReport opens the UDP socket a Reporter writes to.
func dialReport(addr string) (net.Conn, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: dial listener %s: %w", addr, err)
	}
	return conn, nil
}

// Bounds the parser enforces on incoming datagrams. Reports arrive over an
// unauthenticated UDP socket, so a malformed or hostile packet must never
// poison the admission table: reject rather than clamp.
const (
	maxReportLine    = 512     // matches the listener's read buffer
	maxServiceName   = 128     // generous; real service names are short
	maxReportCounter = 1 << 30 // outstanding/threshold/queuelen sanity cap
)

// parseCounter decodes one non-negative bounded integer field.
func parseCounter(s string) (int, error) {
	// strconv.Atoi accepts a leading sign; forbid it so "-0" and "+1" are
	// rejected and every accepted field re-formats to the identical string.
	if s == "" || s[0] == '-' || s[0] == '+' {
		return 0, fmt.Errorf("frontend: bad counter %q", s)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n > maxReportCounter {
		return 0, fmt.Errorf("frontend: counter %d out of range", n)
	}
	return n, nil
}

// parseReport decodes one datagram. The format is exactly six
// space-separated fields (see the package comment above); anything else —
// wrong field count, unknown verb or state, signed or oversized numbers,
// unprintable service names — is rejected so garbage datagrams cannot
// perturb centralized admission control.
func parseReport(line string) (broker.LoadReport, error) {
	if len(line) > maxReportLine {
		return broker.LoadReport{}, fmt.Errorf("frontend: oversized load report (%d bytes)", len(line))
	}
	fields := strings.Fields(line)
	if len(fields) != 6 || fields[0] != "LOAD" {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad load report %q", line)
	}
	var r broker.LoadReport
	r.Service = fields[1]
	if len(r.Service) > maxServiceName || !printable(r.Service) {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad service name %q", r.Service)
	}
	var err error
	if r.Outstanding, err = parseCounter(fields[2]); err != nil {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad load report %q: %w", line, err)
	}
	if r.Threshold, err = parseCounter(fields[3]); err != nil {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad load report %q: %w", line, err)
	}
	if r.QueueLen, err = parseCounter(fields[4]); err != nil {
		return broker.LoadReport{}, fmt.Errorf("frontend: bad load report %q: %w", line, err)
	}
	switch fields[5] {
	case "hot":
		r.Hot = true
	case "cool":
		r.Hot = false
	default:
		return broker.LoadReport{}, fmt.Errorf("frontend: bad state %q", fields[5])
	}
	return r, nil
}

// printable reports whether s is plain printable ASCII — service names are
// used as map keys and echoed on status pages, so control bytes are refused.
func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '!' || s[i] > '~' {
			return false
		}
	}
	return len(s) > 0
}

// DefaultLoadTTL is how long a load report stays trusted without a refresh.
// A broker that stopped reporting is more likely dead than idle; serving
// its last-known load forever would let centralized admission keep
// admitting (or keep aborting) against a ghost.
const DefaultLoadTTL = 15 * time.Second

// loadEntry is one service's latest report plus its arrival time.
type loadEntry struct {
	report broker.LoadReport
	at     time.Time
}

// LoadEntry is one /loadz row: a report with its age and staleness.
type LoadEntry struct {
	Report broker.LoadReport
	Age    time.Duration
	// Stale means the report has outlived the listener's TTL: it is shown
	// for diagnosis but no longer consulted by admission control.
	Stale bool
}

// ListenerOption configures a Listener.
type ListenerOption func(*Listener)

// WithLoadTTL overrides how long a load report stays fresh (default
// DefaultLoadTTL). Zero or negative keeps the default.
func WithLoadTTL(d time.Duration) ListenerOption {
	return func(l *Listener) {
		if d > 0 {
			l.ttl = d
		}
	}
}

// WithRegistry attaches a broker-pool registry: datagrams that are not LOAD
// reports are parsed as registration commands (REGISTER/RENEW/DEREGISTER)
// and applied to it, so leases share the load-report socket. Loads
// piggybacked on REGISTER/RENEW also refresh the admission table.
func WithRegistry(r *registry.Registry) ListenerOption {
	return func(l *Listener) { l.registry = r }
}

// AttachRegistry attaches a registry after construction (the centralized
// model enables pooling on an already-running listener).
func (l *Listener) AttachRegistry(r *registry.Registry) {
	l.mu.Lock()
	l.registry = r
	l.mu.Unlock()
}

// reg reads the attached registry under the lock.
func (l *Listener) reg() *registry.Registry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.registry
}

// withClock substitutes the listener's time source (tests).
func withClock(now func() time.Time) ListenerOption {
	return func(l *Listener) { l.now = now }
}

// Listener is the centralized model's listener thread: a goroutine that
// receives load-report datagrams and keeps the latest report per service.
// With a registry attached it also accepts lease commands on the same
// socket.
type Listener struct {
	conn net.PacketConn
	ttl  time.Duration
	now  func() time.Time

	mu       sync.Mutex
	registry *registry.Registry
	loads    map[string]loadEntry
	updates  int
	closed   bool

	done chan struct{}
}

// NewListener binds a UDP socket on addr ("127.0.0.1:0" for ephemeral) and
// starts the receive goroutine.
func NewListener(addr string, opts ...ListenerOption) (*Listener, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("frontend: listen %s: %w", addr, err)
	}
	l := &Listener{
		conn:  conn,
		ttl:   DefaultLoadTTL,
		now:   time.Now,
		loads: make(map[string]loadEntry),
		done:  make(chan struct{}),
	}
	for _, o := range opts {
		o(l)
	}
	go l.run()
	return l, nil
}

// Addr returns the bound UDP address.
func (l *Listener) Addr() string { return l.conn.LocalAddr().String() }

// Registry returns the attached pool registry, nil if none.
func (l *Listener) Registry() *registry.Registry { return l.reg() }

func (l *Listener) run() {
	defer close(l.done)
	buf := make([]byte, 512)
	for {
		n, _, err := l.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		line := string(buf[:n])
		report, err := parseReport(line)
		if err != nil {
			// Not a LOAD report; with a registry attached it may be a lease
			// command. Garbage still drops silently.
			if r := l.reg(); r != nil {
				if cmd, cerr := registry.ParseCommand(line); cerr == nil {
					r.Apply(cmd)
					if cmd.Verb != registry.VerbDeregister {
						l.Record(cmd.Load)
					}
				}
			}
			continue
		}
		l.Record(report)
	}
}

// Load returns the latest report for a service. A report older than the
// listener's TTL is withheld (ok=false): admission then fails open exactly
// as it does before the first report arrives, rather than trusting a
// broker that stopped talking.
func (l *Listener) Load(service string) (broker.LoadReport, bool) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.loads[service]
	if !ok || now.Sub(e.at) > l.ttl {
		return broker.LoadReport{}, false
	}
	return e.report, true
}

// Entries returns every known report — fresh and stale — with ages, sorted
// by service, for /loadz.
func (l *Listener) Entries() []LoadEntry {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LoadEntry, 0, len(l.loads))
	for _, e := range l.loads {
		age := now.Sub(e.at)
		out = append(out, LoadEntry{Report: e.report, Age: age, Stale: age > l.ttl})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Report.Service < out[j].Report.Service })
	return out
}

// Updates counts processed report datagrams (the listener-thread workload
// the paper's scalability discussion is about).
func (l *Listener) Updates() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.updates
}

// Record injects a report directly (in-process deployments and tests).
func (l *Listener) Record(r broker.LoadReport) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.loads[r.Service] = loadEntry{report: r, at: now}
	l.updates++
}

// Close stops the receive goroutine and releases the socket.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	err := l.conn.Close()
	<-l.done
	return err
}
