package frontend

import (
	"strings"
	"testing"

	"servicebroker/internal/broker"
)

// TestParseReportHardening exercises the reject paths individually: the
// listener socket is unauthenticated, so every malformed shape must fail
// parsing rather than land in the admission table.
func TestParseReportHardening(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"empty", ""},
		{"wrong verb", "SAVE db 3 20 1 hot"},
		{"too few fields", "LOAD db 3 20 hot"},
		{"too many fields", "LOAD db 3 20 1 hot extra"},
		{"negative outstanding", "LOAD db -3 20 1 hot"},
		{"signed threshold", "LOAD db 3 +20 1 hot"},
		{"non-numeric queuelen", "LOAD db 3 20 z hot"},
		{"overflow", "LOAD db 3 99999999999999999999 1 hot"},
		{"counter above cap", "LOAD db 3 2000000000 1 hot"},
		{"unknown state", "LOAD db 3 20 1 tepid"},
		{"state case", "LOAD db 3 20 1 HOT"},
		{"control bytes in name", "LOAD d\x01b 3 20 1 hot"},
		{"oversized name", "LOAD " + strings.Repeat("x", 200) + " 3 20 1 hot"},
		{"oversized line", "LOAD db 3 20 1 hot" + strings.Repeat(" ", 600)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if r, err := parseReport(tc.line); err == nil {
				t.Fatalf("parseReport(%q) = %+v, want error", tc.line, r)
			}
		})
	}

	// Extra whitespace between fields is tolerated (strings.Fields), and the
	// result is identical to the canonical spelling.
	want := broker.LoadReport{Service: "db", Outstanding: 3, Threshold: 20, QueueLen: 1, Hot: true}
	got, err := parseReport("  LOAD   db  3\t20 1   hot ")
	if err != nil || got != want {
		t.Fatalf("whitespace-tolerant parse = %+v, %v; want %+v", got, err, want)
	}
}

// TestFormatReportRoundTrip pins formatReport as parseReport's inverse on
// representative reports.
func TestFormatReportRoundTrip(t *testing.T) {
	for _, r := range []broker.LoadReport{
		{Service: "db", Outstanding: 0, Threshold: 0, QueueLen: 0},
		{Service: "cgi-bin", Outstanding: 7, Threshold: 20, QueueLen: 3, Hot: true},
		{Service: "x", Outstanding: maxReportCounter, Threshold: maxReportCounter, QueueLen: maxReportCounter},
	} {
		got, err := parseReport(formatReport(r))
		if err != nil || got != r {
			t.Fatalf("round trip of %+v: got %+v, %v", r, got, err)
		}
	}
}

// FuzzParseReport drives the datagram parser with arbitrary bytes:
// it must never panic, and any line it accepts must survive a
// format → parse round trip unchanged (so the admission table only ever
// holds values the reporter could have sent).
func FuzzParseReport(f *testing.F) {
	f.Add("LOAD db 3 20 1 hot")
	f.Add("LOAD cgi 0 0 0 cool")
	f.Add(formatReport(broker.LoadReport{Service: "mail", Outstanding: 19, Threshold: 20, QueueLen: 64, Hot: true}))
	f.Add("LOAD db -3 20 1 hot")
	f.Add("LOAD db 3 99999999999999999999 1 hot")
	f.Add("NOISE not a report")
	f.Add("")
	f.Add("LOAD  db\t3 20 1  cool")

	f.Fuzz(func(t *testing.T, line string) {
		r, err := parseReport(line)
		if err != nil {
			return
		}
		if r.Outstanding < 0 || r.Threshold < 0 || r.QueueLen < 0 {
			t.Fatalf("accepted negative counters: %+v from %q", r, line)
		}
		again, err := parseReport(formatReport(r))
		if err != nil {
			t.Fatalf("formatReport(%+v) does not re-parse: %v", r, err)
		}
		if again != r {
			t.Fatalf("round trip changed report: %+v -> %+v (input %q)", r, again, line)
		}
	})
}
