package frontend

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"servicebroker/internal/backend"
	"servicebroker/internal/broker"
	"servicebroker/internal/httpserver"
	"servicebroker/internal/qos"
)

// testStack builds broker(s) + gateway and returns the gateway address.
func testStack(t *testing.T, process time.Duration, opts ...broker.Option) (string, *broker.Broker) {
	t.Helper()
	b, err := broker.New(&backend.DelayConnector{ServiceName: "db", ProcessTime: process}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	g, err := broker.NewGateway("127.0.0.1:0", map[string]*broker.Broker{"db": b})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g.Addr().String(), b
}

var testRoutes = []Route{{
	Pattern:      "/db",
	Service:      "db",
	DefaultClass: qos.Class3,
}}

func TestDistributedForwardsToBroker(t *testing.T) {
	gw, _ := testStack(t, 0)
	d, err := NewDistributed("127.0.0.1:0", gw, testRoutes)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cli := httpserver.NewClient(d.Addr())
	defer cli.Close()
	resp, err := cli.Get("/db", map[string]string{"q": "SELECT 1", "qos": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "done:SELECT 1" {
		t.Fatalf("resp = %d %q", resp.Status, resp.Body)
	}
	if resp.Header["x-fidelity"] != "full" || resp.Header["x-broker-status"] != "ok" {
		t.Fatalf("headers = %v", resp.Header)
	}
	if d.Metrics().Counter("forwarded").Value() != 1 {
		t.Fatal("forwarded not counted")
	}
}

func TestDistributedRelaysDrops(t *testing.T) {
	gw, _ := testStack(t, 300*time.Millisecond,
		broker.WithThreshold(2, 2), broker.WithWorkers(1))
	d, err := NewDistributed("127.0.0.1:0", gw, testRoutes)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cli := httpserver.NewClient(d.Addr())
	defer cli.Close()

	// Saturate class 2's share.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli.Get("/db", map[string]string{"q": "fill", "qos": "1"})
	}()
	time.Sleep(60 * time.Millisecond)

	resp, err := cli.Get("/db", map[string]string{"q": "x", "qos": "2"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header["x-broker-status"] != "shed" || resp.Header["x-fidelity"] != "busy" {
		t.Fatalf("headers = %v body = %q", resp.Header, resp.Body)
	}
	if ms, err := strconv.Atoi(resp.Header["x-retry-after-ms"]); err != nil || ms <= 0 {
		t.Fatalf("x-retry-after-ms = %q, want positive integer", resp.Header["x-retry-after-ms"])
	}
	if !strings.Contains(string(resp.Body), "busy") {
		t.Fatalf("body = %q", resp.Body)
	}
	wg.Wait()
	if d.Metrics().Counter("shed").Value() != 1 {
		t.Fatal("shed not counted")
	}
}

func TestDistributedDefaultClassAndPayload(t *testing.T) {
	gw, b := testStack(t, 0)
	routes := []Route{{
		Pattern: "/custom",
		Service: "db",
		Payload: func(req *httpserver.Request) []byte {
			return []byte("custom:" + req.Query["item"])
		},
		DefaultClass: qos.Class2,
	}}
	d, err := NewDistributed("127.0.0.1:0", gw, routes)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cli := httpserver.NewClient(d.Addr())
	defer cli.Close()
	resp, err := cli.Get("/custom", map[string]string{"item": "42"})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "done:custom:42" {
		t.Fatalf("body = %q", resp.Body)
	}
	if got := b.Metrics().Counter("requests_class_2").Value(); got != 1 {
		t.Fatalf("class-2 requests = %d, want 1 (route default)", got)
	}
}

func TestDistributedValidation(t *testing.T) {
	if _, err := NewDistributed("127.0.0.1:0", "127.0.0.1:9", nil); err == nil {
		t.Fatal("no routes accepted")
	}
}

func TestListenerReceivesReports(t *testing.T) {
	l, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	conn, err := dialReport(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sendReport(conn, broker.LoadReport{Service: "db", Outstanding: 7, Threshold: 20, QueueLen: 3, Hot: false})
	sendReport(conn, broker.LoadReport{Service: "db", Outstanding: 19, Threshold: 20, QueueLen: 9, Hot: true})

	deadline := time.After(2 * time.Second)
	for {
		if r, ok := l.Load("db"); ok && r.Outstanding == 19 {
			if !r.Hot || r.QueueLen != 9 || r.Threshold != 20 {
				t.Fatalf("report = %+v", r)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("reports never arrived")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	if l.Updates() < 2 {
		t.Fatalf("updates = %d", l.Updates())
	}
}

func TestListenerIgnoresGarbage(t *testing.T) {
	l, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, _ := dialReport(l.Addr())
	defer conn.Close()
	conn.Write([]byte("NOISE not a report"))
	conn.Write([]byte("LOAD db x y z hot"))
	sendReport(conn, broker.LoadReport{Service: "db", Outstanding: 1, Threshold: 2})
	deadline := time.After(2 * time.Second)
	for {
		if _, ok := l.Load("db"); ok {
			return
		}
		select {
		case <-deadline:
			t.Fatal("valid report lost among garbage")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestParseReport(t *testing.T) {
	r, err := parseReport("LOAD db 3 20 1 hot")
	if err != nil || r.Service != "db" || r.Outstanding != 3 || !r.Hot {
		t.Fatalf("parse = %+v, %v", r, err)
	}
	for _, bad := range []string{"", "LOAD db 3 20 1", "NOPE db 3 20 1 hot", "LOAD db a b c hot"} {
		if _, err := parseReport(bad); err == nil {
			t.Errorf("parseReport(%q) succeeded", bad)
		}
	}
}

func TestReporterPushesLoad(t *testing.T) {
	_, b := testStack(t, 0)
	l, err := NewListener("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r, err := NewReporter(b, l.Addr(), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	deadline := time.After(2 * time.Second)
	for {
		if report, ok := l.Load("db"); ok {
			if report.Threshold != 20 {
				t.Fatalf("report = %+v", report)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("reporter never delivered")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestReporterValidation(t *testing.T) {
	if _, err := NewReporter(nil, "127.0.0.1:1", time.Second); err == nil {
		t.Fatal("nil broker accepted")
	}
	_, b := testStack(t, 0)
	if _, err := NewReporter(b, "127.0.0.1:1", 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestCentralizedAdmitsAndAborts(t *testing.T) {
	gw, b := testStack(t, 0)
	profiles := map[string][]Demand{"/db": {{Service: "db", Weight: 1}}}
	c, err := NewCentralized("127.0.0.1:0", gw, "127.0.0.1:0", testRoutes, profiles)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := NewReporter(b, c.ListenerAddr(), 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	cli := httpserver.NewClient(c.Addr())
	defer cli.Close()

	// Light load: admitted.
	resp, err := cli.Get("/db", map[string]string{"q": "ok", "qos": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("light-load status = %d body %q", resp.Status, resp.Body)
	}

	// Simulate an overloaded backend via a direct listener record.
	c.listener.Record(broker.LoadReport{Service: "db", Outstanding: 20, Threshold: 20, Hot: true})
	resp, err = cli.Get("/db", map[string]string{"q": "doomed", "qos": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 503 {
		t.Fatalf("overload status = %d, want 503 (aborted up front)", resp.Status)
	}
	if c.Metrics().Counter("aborted").Value() != 1 {
		t.Fatal("abort not counted")
	}

	// Recovery: a fresh report re-opens the gate.
	c.listener.Record(broker.LoadReport{Service: "db", Outstanding: 0, Threshold: 20})
	resp, _ = cli.Get("/db", map[string]string{"q": "ok2", "qos": "1"})
	if resp.Status != 200 {
		t.Fatalf("recovery status = %d", resp.Status)
	}
}

func TestCentralizedFailsOpenWithoutReports(t *testing.T) {
	gw, _ := testStack(t, 0)
	profiles := map[string][]Demand{"/db": {{Service: "db"}}}
	c, err := NewCentralized("127.0.0.1:0", gw, "127.0.0.1:0", testRoutes, profiles)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cli := httpserver.NewClient(c.Addr())
	defer cli.Close()
	resp, err := cli.Get("/db", map[string]string{"q": "warmup", "qos": "1"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("warmup = %d, %v (should fail open before first report)", resp.Status, err)
	}
}

func TestCentralizedRouteWithoutProfile(t *testing.T) {
	gw, _ := testStack(t, 0)
	c, err := NewCentralized("127.0.0.1:0", gw, "127.0.0.1:0", testRoutes, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Even with an "overloaded" report, no profile means no admission check.
	c.listener.Record(broker.LoadReport{Service: "db", Outstanding: 99, Threshold: 20})
	cli := httpserver.NewClient(c.Addr())
	defer cli.Close()
	resp, err := cli.Get("/db", map[string]string{"q": "x", "qos": "1"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("resp = %d, %v", resp.Status, err)
	}
}

func TestCentralizedValidation(t *testing.T) {
	if _, err := NewCentralized("127.0.0.1:0", "127.0.0.1:9", "127.0.0.1:0", nil, nil); err == nil {
		t.Fatal("no routes accepted")
	}
}

func TestConcurrentFrontendTraffic(t *testing.T) {
	gw, _ := testStack(t, time.Millisecond, broker.WithThreshold(50, 3), broker.WithWorkers(8))
	d, err := NewDistributed("127.0.0.1:0", gw, testRoutes)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli := httpserver.NewClient(d.Addr(), httpserver.WithPersistent(1))
			defer cli.Close()
			for j := 0; j < 10; j++ {
				resp, err := cli.Get("/db", map[string]string{
					"q": fmt.Sprintf("q-%d-%d", i, j), "qos": fmt.Sprint(i%3 + 1),
				})
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if resp.Status != 200 {
					t.Errorf("status = %d body %q", resp.Status, resp.Body)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTransactionTagsFlowThroughFrontend(t *testing.T) {
	gw, b := testStack(t, 0, broker.WithTransactions())
	d, err := NewDistributed("127.0.0.1:0", gw, testRoutes)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cli := httpserver.NewClient(d.Addr())
	defer cli.Close()

	resp, err := cli.Get("/db", map[string]string{
		"q": "purchase", "qos": "3", "txn": "order-7", "step": "3",
	})
	if err != nil || resp.Status != 200 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if s, ok := b.Tracker().Lookup("order-7"); !ok || s.Step != 3 {
		t.Fatalf("tracker state = %+v, %v", s, ok)
	}

	// A txn tag with a missing/garbage step defaults to step 1.
	resp, err = cli.Get("/db", map[string]string{"q": "browse", "qos": "3", "txn": "order-8"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if s, ok := b.Tracker().Lookup("order-8"); !ok || s.Step != 1 {
		t.Fatalf("tracker state = %+v, %v", s, ok)
	}
}

func TestFrontendRelaysBackendError(t *testing.T) {
	// A broker whose backend always fails surfaces 502 at the front end.
	failing, err := broker.New(&backend.FuncConnector{
		ServiceName: "db",
		DoFn: func(context.Context, []byte) ([]byte, error) {
			return nil, fmt.Errorf("backend exploded")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer failing.Close()
	g, err := broker.NewGateway("127.0.0.1:0", map[string]*broker.Broker{"db": failing})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	d, err := NewDistributed("127.0.0.1:0", g.Addr().String(), testRoutes)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cli := httpserver.NewClient(d.Addr())
	defer cli.Close()
	resp, err := cli.Get("/db", map[string]string{"q": "x", "qos": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 502 || !strings.Contains(string(resp.Body), "exploded") {
		t.Fatalf("resp = %d %q", resp.Status, resp.Body)
	}
}

func TestStatusEndpoints(t *testing.T) {
	gw, b := testStack(t, 0)

	d, err := NewDistributed("127.0.0.1:0", gw, testRoutes)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.ServeStatus()
	cli := httpserver.NewClient(d.Addr())
	defer cli.Close()
	cli.Get("/db", map[string]string{"q": "warm", "qos": "1"})
	resp, err := cli.Get("/broker-status", nil)
	if err != nil || resp.Status != 200 {
		t.Fatalf("distributed status = %+v, %v", resp, err)
	}
	if !strings.Contains(string(resp.Body), "forwarded") {
		t.Fatalf("distributed status body = %q", resp.Body)
	}

	profiles := map[string][]Demand{"/db": {{Service: "db"}}}
	c, err := NewCentralized("127.0.0.1:0", gw, "127.0.0.1:0", testRoutes, profiles)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ServeStatus()
	rep, err := NewReporter(b, c.ListenerAddr(), 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	cli2 := httpserver.NewClient(c.Addr())
	defer cli2.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := cli2.Get("/broker-status", nil)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(resp.Body), "outstanding=") {
			if !strings.Contains(string(resp.Body), "db") {
				t.Fatalf("centralized status body = %q", resp.Body)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never showed broker load: %q", resp.Body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
