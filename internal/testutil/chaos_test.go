package testutil

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"
)

func TestRollingKillShape(t *testing.T) {
	events := RollingKill(3, 100*time.Millisecond, 200*time.Millisecond, 150*time.Millisecond)
	want := []ChaosEvent{
		{At: 100 * time.Millisecond, Member: 0, Action: ActionCrash, Duration: 150 * time.Millisecond},
		{At: 300 * time.Millisecond, Member: 1, Action: ActionCrash, Duration: 150 * time.Millisecond},
		{At: 500 * time.Millisecond, Member: 2, Action: ActionCrash, Duration: 150 * time.Millisecond},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("RollingKill = %+v, want %+v", events, want)
	}
	// downFor < interval ⇒ member i recovers before member i+1 dies.
	for i := 0; i < len(events)-1; i++ {
		if events[i].At+events[i].Duration >= events[i+1].At {
			t.Fatalf("members %d and %d down simultaneously", events[i].Member, events[i+1].Member)
		}
	}
}

// record runs the schedule and returns the hook firing order as strings.
func record(t *testing.T, events []ChaosEvent) []string {
	t.Helper()
	var got []string
	add := func(kind string, m int) { got = append(got, fmt.Sprintf("%s:%d", kind, m)) }
	onoff := func(kind string) func(int, bool) {
		return func(m int, on bool) {
			state := "off"
			if on {
				state = "on"
			}
			add(kind+"-"+state, m)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	RunChaos(ctx, events, ChaosHooks{
		Crash:        func(m int) { add("crash", m) },
		Restart:      func(m int) { add("restart", m) },
		Hang:         onoff("hang"),
		PartitionIn:  onoff("pin"),
		PartitionOut: onoff("pout"),
	})
	return got
}

func TestRunChaosDeterministicOrder(t *testing.T) {
	// Mixed schedule with simultaneous steps: the firing order must be a
	// pure function of the schedule, identical across runs.
	events := []ChaosEvent{
		{At: 10 * time.Millisecond, Member: 1, Action: ActionHang, Duration: 20 * time.Millisecond},
		{At: 10 * time.Millisecond, Member: 0, Action: ActionCrash, Duration: 20 * time.Millisecond},
		{At: 30 * time.Millisecond, Member: 2, Action: ActionPartitionIn, Duration: 10 * time.Millisecond},
		{At: 30 * time.Millisecond, Member: 2, Action: ActionPartitionOut, Duration: 10 * time.Millisecond},
	}
	want := []string{
		"crash:0", "hang-on:1",
		"restart:0", "hang-off:1", "pin-on:2", "pout-on:2",
		"pin-off:2", "pout-off:2",
	}
	for run := 0; run < 3; run++ {
		if got := record(t, events); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d order = %v, want %v", run, got, want)
		}
	}
}

func TestRunChaosHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fired := false
	RunChaos(ctx, RollingKill(2, time.Hour, time.Hour, time.Minute), ChaosHooks{
		Crash: func(int) { fired = true },
	})
	if fired {
		t.Fatal("cancelled schedule still fired hooks")
	}
}
