package testutil

import (
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) { VerifyMain(m) }

func TestNoLeaksOnCleanState(t *testing.T) {
	if err := CheckLeaks(time.Second); err != nil {
		t.Fatalf("clean state reported leaks: %v", err)
	}
}

func TestDetectsLeakedGoroutine(t *testing.T) {
	block := make(chan struct{})
	go func() { <-block }()
	err := CheckLeaks(50 * time.Millisecond)
	close(block) // unwind before the package-level check runs
	if err == nil {
		t.Fatal("blocked goroutine not reported")
	}
	if !strings.Contains(err.Error(), "TestDetectsLeakedGoroutine") {
		t.Fatalf("report does not name the leaking site:\n%v", err)
	}
}

func TestWaitsForSlowUnwind(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(80 * time.Millisecond)
		close(done)
	}()
	// The goroutine is alive when the check starts but exits within the
	// deadline; polling must see it disappear.
	if err := CheckLeaks(2 * time.Second); err != nil {
		t.Fatalf("transient goroutine reported as leak: %v", err)
	}
	<-done
}
