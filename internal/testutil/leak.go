// Package testutil holds shared test harness helpers. Its centerpiece is a
// goroutine-leak checker: the framework's servers, brokers, reporters, and
// clients all own background goroutines, and the drain/Close contracts this
// repo makes (graceful drain answers every accepted request, Close waits for
// in-flight work) are only honest if nothing is left running after a test
// package finishes. Wire it into a package with
//
//	func TestMain(m *testing.M) { testutil.VerifyMain(m) }
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredStacks matches goroutines that are not leaks: runtime-owned
// machinery, the testing framework itself, and the runtime's network poller.
var ignoredStacks = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.(*F).",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime.bgscavenge",
	"runtime.bgsweep",
	"runtime.forcegchelper",
	"internal/poll.runtime_pollWait",
	"signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
	"created by runtime.gc",
	"created by testing.RunTests",
	"testutil.leakedGoroutines", // the goroutine running this check
}

// leakedGoroutines returns the stacks of goroutines that look like leaks.
func leakedGoroutines() []string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var leaks []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		ignored := false
		for _, skip := range ignoredStacks {
			if strings.Contains(g, skip) {
				ignored = true
				break
			}
		}
		if !ignored {
			leaks = append(leaks, g)
		}
	}
	return leaks
}

// CheckLeaks fails if goroutines beyond the runtime/testing baseline are
// still alive. Goroutines legitimately take a moment to unwind after Close
// returns (a deferred conn.Close racing a reader, a worker draining its last
// job), so the check polls with a deadline before declaring a leak.
func CheckLeaks(deadline time.Duration) error {
	var leaks []string
	stop := time.Now().Add(deadline)
	for {
		leaks = leakedGoroutines()
		if len(leaks) == 0 {
			return nil
		}
		if time.Now().After(stop) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("testutil: %d leaked goroutine(s):\n\n%s",
		len(leaks), strings.Join(leaks, "\n\n"))
}

// VerifyMain runs a package's tests and then fails the run if any test left
// a goroutine behind. Use from TestMain; it calls os.Exit.
func VerifyMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := CheckLeaks(2 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}
