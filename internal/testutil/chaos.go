package testutil

import (
	"context"
	"sort"
	"time"
)

// ChaosAction is the kind of fault a chaos event injects.
type ChaosAction int

// Fault kinds. Crash closes the member's socket (peers see ICMP
// port-unreachable → fast failure detection); Hang and the partitions flip
// netsim gates (traffic vanishes silently — the slow case).
const (
	ActionCrash ChaosAction = iota + 1
	ActionHang
	ActionPartitionIn  // member stops hearing the network
	ActionPartitionOut // member's answers stop leaving
)

// String names the action for logs and schedule dumps.
func (a ChaosAction) String() string {
	switch a {
	case ActionCrash:
		return "crash"
	case ActionHang:
		return "hang"
	case ActionPartitionIn:
		return "partition-in"
	case ActionPartitionOut:
		return "partition-out"
	default:
		return "chaos-action(?)"
	}
}

// ChaosEvent is one scheduled fault: member Member suffers Action at offset
// At from schedule start and recovers Duration later.
type ChaosEvent struct {
	At       time.Duration
	Member   int
	Action   ChaosAction
	Duration time.Duration
}

// ChaosHooks receives fault and recovery callbacks. Only the hooks for
// actions present in the schedule need to be set; missing hooks are
// skipped. Hooks run on the schedule goroutine, serially and in
// deterministic order.
type ChaosHooks struct {
	// Crash kills the member (close its socket); Restart brings it back.
	Crash   func(member int)
	Restart func(member int)
	// Hang/PartitionIn/PartitionOut flip the corresponding gate; on=true at
	// fault time, on=false at recovery.
	Hang         func(member int, on bool)
	PartitionIn  func(member int, on bool)
	PartitionOut func(member int, on bool)
}

// RollingKill builds the canonical availability schedule: starting at
// start, each member in [0, members) crashes in turn every interval and
// stays down for downFor. With downFor < interval at most one member is
// down at any instant, so an N-replica pool should ride through the whole
// roll.
func RollingKill(members int, start, interval, downFor time.Duration) []ChaosEvent {
	events := make([]ChaosEvent, 0, members)
	for i := 0; i < members; i++ {
		events = append(events, ChaosEvent{
			At:       start + time.Duration(i)*interval,
			Member:   i,
			Action:   ActionCrash,
			Duration: downFor,
		})
	}
	return events
}

// chaosStep is one expanded timeline entry: a fault onset or a recovery.
type chaosStep struct {
	at      time.Duration
	ev      ChaosEvent
	recover bool
}

// chaosTimeline expands events into onset+recovery steps sorted by time,
// ties broken by (member, action, recovery-last) so identical schedules
// always execute identically.
func chaosTimeline(events []ChaosEvent) []chaosStep {
	steps := make([]chaosStep, 0, 2*len(events))
	for _, ev := range events {
		steps = append(steps, chaosStep{at: ev.At, ev: ev})
		steps = append(steps, chaosStep{at: ev.At + ev.Duration, ev: ev, recover: true})
	}
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].at != steps[j].at {
			return steps[i].at < steps[j].at
		}
		if steps[i].ev.Member != steps[j].ev.Member {
			return steps[i].ev.Member < steps[j].ev.Member
		}
		if steps[i].recover != steps[j].recover {
			return !steps[i].recover // recover after onset at the same instant
		}
		return steps[i].ev.Action < steps[j].ev.Action
	})
	return steps
}

// RunChaos executes the schedule against the hooks, sleeping real (not
// simulated) time between steps, and returns when the last recovery has
// fired or ctx is done. The timeline — which hook fires, for which member,
// in which order — is a pure function of the schedule; only the wall-clock
// spacing varies run to run.
func RunChaos(ctx context.Context, events []ChaosEvent, hooks ChaosHooks) {
	start := time.Now()
	for _, step := range chaosTimeline(events) {
		wait := step.at - time.Since(start)
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return
		}
		fire(step, hooks)
	}
}

func fire(step chaosStep, hooks ChaosHooks) {
	m := step.ev.Member
	switch step.ev.Action {
	case ActionCrash:
		if step.recover {
			if hooks.Restart != nil {
				hooks.Restart(m)
			}
		} else if hooks.Crash != nil {
			hooks.Crash(m)
		}
	case ActionHang:
		if hooks.Hang != nil {
			hooks.Hang(m, !step.recover)
		}
	case ActionPartitionIn:
		if hooks.PartitionIn != nil {
			hooks.PartitionIn(m, !step.recover)
		}
	case ActionPartitionOut:
		if hooks.PartitionOut != nil {
			hooks.PartitionOut(m, !step.recover)
		}
	}
}
