package slo

import (
	"bytes"
	"log/slog"
	"testing"
	"time"

	"servicebroker/internal/metrics"
	"servicebroker/internal/qos"
	"servicebroker/internal/trace"
)

// testEngine builds an engine with a manual clock, tight windows, and a
// captured slog buffer.
func testEngine(t *testing.T, objs []Objective) (*Engine, *time.Time, *bytes.Buffer) {
	t.Helper()
	now := time.Unix(10000, 0)
	var logBuf bytes.Buffer
	e := New(Config{
		Objectives: objs,
		FastWindow: 2 * time.Second,
		SlowWindow: 8 * time.Second,
		Resolution: 200 * time.Millisecond,
		Logger:     slog.New(slog.NewTextHandler(&logBuf, nil)),
		Clock:      func() time.Time { return now },
	})
	return e, &now, &logBuf
}

func objs() []Objective {
	return []Objective{
		{Class: qos.Class1, LatencyTarget: 100 * time.Millisecond, LatencyGoal: 0.99, AvailabilityGoal: 0.99},
		{Class: qos.Class3, LatencyTarget: 500 * time.Millisecond, LatencyGoal: 0.9, AvailabilityGoal: 0.95},
	}
}

func TestHealthyClassStaysOK(t *testing.T) {
	e, now, _ := testEngine(t, objs())
	for i := 0; i < 100; i++ {
		e.Record(qos.Class1, 10*time.Millisecond, true)
		*now = now.Add(50 * time.Millisecond)
	}
	st := e.Status()
	c1 := st.Classes[0]
	if c1.State != "ok" {
		t.Fatalf("state = %q, want ok", c1.State)
	}
	if c1.Availability.FastBurn != 0 || c1.Latency.FastBurn != 0 {
		t.Fatalf("burns = %v/%v, want 0/0", c1.Latency.FastBurn, c1.Availability.FastBurn)
	}
	if c1.Availability.Budget != 1 {
		t.Fatalf("budget = %v, want 1", c1.Availability.Budget)
	}
}

func TestAvailabilityBurnPagesAndRecovers(t *testing.T) {
	e, now, logBuf := testEngine(t, objs())
	// Sustained unavailability for class 3 across the whole slow window;
	// class 1 stays healthy throughout.
	for i := 0; i < 200; i++ {
		e.Record(qos.Class3, 10*time.Millisecond, false)
		e.Record(qos.Class1, 10*time.Millisecond, true)
		*now = now.Add(50 * time.Millisecond)
	}
	st := e.Status()
	var c1, c3 ClassStatus
	for _, c := range st.Classes {
		switch c.Class {
		case 1:
			c1 = c
		case 3:
			c3 = c
		}
	}
	if c3.State != "page" {
		t.Fatalf("class 3 state = %q, want page (fast %v slow %v)",
			c3.State, c3.Availability.FastBurn, c3.Availability.SlowBurn)
	}
	if c3.Availability.Budget != 0 {
		t.Fatalf("class 3 budget = %v, want 0", c3.Availability.Budget)
	}
	if c1.State != "ok" {
		t.Fatalf("class 1 state = %q, want ok", c1.State)
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("slo state change")) {
		t.Fatal("no slog transition recorded")
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("to=page")) {
		t.Fatalf("no page transition in log: %s", logBuf.String())
	}

	// Recovery: healthy traffic long enough to clear both windows.
	logBuf.Reset()
	for i := 0; i < 200; i++ {
		e.Record(qos.Class3, 10*time.Millisecond, true)
		*now = now.Add(50 * time.Millisecond)
	}
	st = e.Status()
	for _, c := range st.Classes {
		if c.Class == 3 && c.State != "ok" {
			t.Fatalf("class 3 state after recovery = %q, want ok", c.State)
		}
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("to=ok")) {
		t.Fatalf("no recovery transition in log: %s", logBuf.String())
	}
}

func TestLatencyBurn(t *testing.T) {
	e, now, _ := testEngine(t, objs())
	// All requests succeed but half blow the 100ms class-1 target: latency
	// burn = 0.5/0.01 = 50, availability burn stays 0.
	for i := 0; i < 200; i++ {
		lat := 10 * time.Millisecond
		if i%2 == 0 {
			lat = 300 * time.Millisecond
		}
		e.Record(qos.Class1, lat, true)
		*now = now.Add(50 * time.Millisecond)
	}
	st := e.Status()
	c1 := st.Classes[0]
	if c1.Availability.FastBurn != 0 {
		t.Fatalf("availability burn = %v, want 0", c1.Availability.FastBurn)
	}
	if c1.Latency.FastBurn < 40 {
		t.Fatalf("latency fast burn = %v, want ~50", c1.Latency.FastBurn)
	}
	if c1.State != "page" {
		t.Fatalf("state = %q, want page", c1.State)
	}
}

func TestBlipDoesNotPage(t *testing.T) {
	e, now, _ := testEngine(t, objs())
	// 6s of healthy history, then a 400ms spike of failures: the fast
	// window burns but the slow window stays below the page threshold.
	for i := 0; i < 120; i++ {
		e.Record(qos.Class1, 10*time.Millisecond, true)
		*now = now.Add(50 * time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		e.Record(qos.Class1, 10*time.Millisecond, false)
		*now = now.Add(50 * time.Millisecond)
	}
	st := e.Status()
	c1 := st.Classes[0]
	if c1.Availability.FastBurn < e.cfg.PageBurn {
		t.Fatalf("fast burn = %v, want hot (≥ %v)", c1.Availability.FastBurn, e.cfg.PageBurn)
	}
	if c1.State == "page" {
		t.Fatalf("state = page on a blip; slow burn %v", c1.Availability.SlowBurn)
	}
}

func TestStageAttribution(t *testing.T) {
	e, now, _ := testEngine(t, objs())
	for i := 0; i < 20; i++ {
		e.Record(qos.Class1, 50*time.Millisecond, true)
		e.RecordStage(qos.Class1, trace.StageQueue, 40*time.Millisecond)
		e.RecordStage(qos.Class1, trace.StageBackend, 10*time.Millisecond)
		*now = now.Add(50 * time.Millisecond)
	}
	st := e.Status()
	stages := st.Classes[0].Stages
	if len(stages) != 2 {
		t.Fatalf("len(stages) = %d, want 2 (%v)", len(stages), stages)
	}
	if stages[0].Stage != trace.StageQueue {
		t.Fatalf("dominant stage = %v, want queue", stages[0].Stage)
	}
	if stages[0].Share < 0.7 || stages[0].Share > 0.9 {
		t.Fatalf("queue share = %v, want ~0.8", stages[0].Share)
	}
}

func TestWindowExpiry(t *testing.T) {
	e, now, _ := testEngine(t, objs())
	for i := 0; i < 40; i++ {
		e.Record(qos.Class1, 10*time.Millisecond, false)
		*now = now.Add(50 * time.Millisecond)
	}
	// Idle past the slow window: all history expires.
	*now = now.Add(10 * time.Second)
	st := e.Status()
	c1 := st.Classes[0]
	if c1.SlowTotal != 0 || c1.FastTotal != 0 {
		t.Fatalf("window totals = %d/%d after expiry, want 0/0", c1.FastTotal, c1.SlowTotal)
	}
	if c1.State != "ok" {
		t.Fatalf("state = %q after expiry, want ok", c1.State)
	}
}

func TestMetricsGauges(t *testing.T) {
	now := time.Unix(10000, 0)
	reg := metrics.NewRegistry()
	e := New(Config{
		Objectives: objs(),
		FastWindow: 2 * time.Second,
		SlowWindow: 8 * time.Second,
		Resolution: 200 * time.Millisecond,
		Logger:     slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil)),
		Metrics:    reg,
		Clock:      func() time.Time { return now },
	})
	for i := 0; i < 200; i++ {
		e.Record(qos.Class3, 10*time.Millisecond, false)
		now = now.Add(50 * time.Millisecond)
	}
	e.Status()
	if got := reg.Gauge("slo_state_class_3").Value(); got != int64(StatePage) {
		t.Fatalf("slo_state_class_3 = %d, want %d", got, int64(StatePage))
	}
	if got := reg.Gauge("slo_budget_ppm_class_3").Value(); got != 0 {
		t.Fatalf("slo_budget_ppm_class_3 = %d, want 0", got)
	}
	if got := reg.Gauge("slo_state_class_1").Value(); got != int64(StateOK) {
		t.Fatalf("slo_state_class_1 = %d, want 0", got)
	}
}

func TestUnknownClassIgnored(t *testing.T) {
	e, _, _ := testEngine(t, objs())
	e.Record(qos.Class2, time.Millisecond, true) // no objective for class 2
	e.RecordStage(qos.Class2, trace.StageQueue, time.Millisecond)
	st := e.Status()
	if len(st.Classes) != 2 {
		t.Fatalf("len(Classes) = %d, want 2", len(st.Classes))
	}
}

func TestDefaultObjectivesTightenWithPriority(t *testing.T) {
	def := DefaultObjectives()
	if len(def) != 3 {
		t.Fatalf("len = %d, want 3", len(def))
	}
	for i := 1; i < len(def); i++ {
		if def[i].LatencyTarget <= def[i-1].LatencyTarget {
			t.Fatalf("latency targets must loosen with class: %v", def)
		}
		if def[i].AvailabilityGoal >= def[i-1].AvailabilityGoal {
			t.Fatalf("availability goals must loosen with class: %v", def)
		}
	}
}

func TestOnTransitionCallback(t *testing.T) {
	now := time.Unix(10000, 0)
	type transition struct {
		class    int
		from, to string
	}
	var seen []transition
	e := New(Config{
		Objectives: objs(),
		FastWindow: 2 * time.Second,
		SlowWindow: 8 * time.Second,
		Resolution: 200 * time.Millisecond,
		Clock:      func() time.Time { return now },
		OnTransition: func(class int, from, to string) {
			seen = append(seen, transition{class, from, to})
		},
	})

	// Burn class 3 into page, then recover it.
	for i := 0; i < 200; i++ {
		e.Record(qos.Class3, 10*time.Millisecond, false)
		now = now.Add(50 * time.Millisecond)
	}
	e.Status()
	for i := 0; i < 200; i++ {
		e.Record(qos.Class3, 10*time.Millisecond, true)
		now = now.Add(50 * time.Millisecond)
	}
	e.Status()

	if len(seen) < 2 {
		t.Fatalf("transitions = %+v, want at least degrade + recover", seen)
	}
	first, last := seen[0], seen[len(seen)-1]
	if first.class != 3 || first.from != "ok" {
		t.Fatalf("first transition = %+v, want class 3 leaving ok", first)
	}
	if last.class != 3 || last.to != "ok" {
		t.Fatalf("last transition = %+v, want class 3 back to ok", last)
	}
}
